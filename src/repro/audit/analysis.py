"""Query helpers over flight-recorder dumps: summaries and diffs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.audit.core import AuditEvent
from repro.core.results import ResultTable

__all__ = ["AuditDiff", "diff_audits", "summary_table", "violations_table"]


def _fmt_args(event: AuditEvent, limit: int = 60) -> str:
    text = ", ".join(f"{key}={value!r}" for key, value in event.args)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def summary_table(header: dict[str, Any], events: list[AuditEvent]) -> ResultTable:
    """Per-name aggregates of one dump: counts, kinds, last residual."""
    table = ResultTable(
        f"Audit dump ({header.get('notes', 0)} note(s), "
        f"{header.get('violations', 0)} violation(s), "
        f"{header.get('checks', 0)} check(s))",
        ["name", "kind", "events", "first (s)", "last (s)", "last args"],
    )
    order: list[tuple[str, str]] = []
    grouped: dict[tuple[str, str], list[AuditEvent]] = {}
    for event in events:
        key = (event.name, event.kind)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(event)
    # Violations first — they are what the reader opened the dump for.
    order.sort(key=lambda key: (key[1] != "violation", key[0]))
    for name, kind in order:
        group = grouped[(name, kind)]
        table.add_row(
            [
                name,
                kind,
                len(group),
                f"{group[0].time_s:g}",
                f"{group[-1].time_s:g}",
                _fmt_args(group[-1]),
            ]
        )
    if not events:
        table.add_row(["(no events)", "", "", "", "", ""])
    return table


def violations_table(events: list[AuditEvent]) -> ResultTable:
    """Every violation in emission order, verbatim."""
    table = ResultTable("Audit violations", ["name", "time (s)", "args"])
    for event in events:
        if event.kind == "violation":
            table.add_row([event.name, f"{event.time_s:g}", _fmt_args(event, limit=80)])
    return table


@dataclass(frozen=True)
class AuditDiff:
    """Comparison of two flight-recorder dumps."""

    identical: bool
    differences: list[str]

    def table(self) -> ResultTable:
        table = ResultTable("Audit diff", ["difference"])
        if self.identical:
            table.add_row(["(identical)"])
        else:
            for line in self.differences:
                table.add_row([line])
        return table


def diff_audits(
    a: tuple[dict[str, Any], list[AuditEvent]],
    b: tuple[dict[str, Any], list[AuditEvent]],
) -> AuditDiff:
    """Compare two dumps event-for-event.

    A deterministic run dumps byte-identical flight recorders, so any
    difference — counts, ordering, residual values — is reportable.
    """
    header_a, events_a = a
    header_b, events_b = b
    differences: list[str] = []
    for field in ("notes", "violations", "checks", "dropped"):
        va, vb = header_a.get(field, 0), header_b.get(field, 0)
        if va != vb:
            differences.append(f"header {field}: {va} != {vb}")
    if len(events_a) != len(events_b):
        differences.append(f"event count: {len(events_a)} != {len(events_b)}")
    for index, (ea, eb) in enumerate(zip(events_a, events_b)):
        if ea != eb:
            differences.append(
                f"event {index}: {ea.kind} {ea.name}@{ea.time_s:g} != "
                f"{eb.kind} {eb.name}@{eb.time_s:g}"
            )
            if len(differences) >= 10:
                differences.append("... (further differences suppressed)")
                break
    return AuditDiff(identical=not differences, differences=differences)
