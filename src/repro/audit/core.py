"""Runtime verification: conservation ledgers, invariant probes, a flight recorder.

The paper's headline diagnosis (an under-buffered router silently
corrupting TCP behaviour) was only visible because independent vantage
points were cross-checked; this module builds that habit into every run.
An :class:`Auditor` carries three cooperating mechanisms:

* **conservation ledgers** — components register :meth:`watch` callbacks
  returning a *residual* that must be ~zero (packets in = packets out +
  drops + resident; bytes likewise; TCP sequence bookkeeping; energy
  dwell times).  :meth:`checkpoint` evaluates every watch, records the
  per-ledger totals, and flags any residual beyond its tolerance.
* **invariant probes** — hot paths call :meth:`probe` with a boolean
  (virtual-time monotonicity, occupancy bounds, sojourn sanity, PEP
  backpressure bounds).  A passing probe costs one call and appends
  nothing; a failing probe records a violation.
* **flight recorder** — notes and violations land in a bounded ring
  buffer stamped with *virtual* time only, so a dump
  (:func:`repro.audit.export.write_jsonl`) is a pure function of
  (experiment, seed) and byte-identical across serial and parallel
  campaigns.

The enable/disable machinery mirrors ``repro.trace``/``repro.metrics``:
a module-level install stack, a :data:`NULL_AUDITOR` whose every hook is
a no-op, and components capturing :func:`current` once at construction.
The campaign runner installs a fresh per-run auditor by default
(``REPRO_NO_AUDIT=1`` opts out), checkpoints it at run end, and exports
the ledger totals as ``audit.*`` KPIs through ``repro.metrics``.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any, NamedTuple

__all__ = [
    "AuditError",
    "AuditEvent",
    "AuditStats",
    "Auditor",
    "NULL_AUDITOR",
    "NullAuditor",
    "auditing",
    "audits_enabled",
    "current",
    "install",
    "uninstall",
]

#: Default ring capacity.  Audit events are deliberately low-rate (notes
#: at checkpoints and quiescence, violations when something is wrong), so
#: a few thousand records cover a full campaign run.
DEFAULT_CAPACITY = 4096

#: Environment switch: set to ``"1"`` to skip per-run auditor installs.
NO_AUDIT_ENV = "REPRO_NO_AUDIT"

#: Violations retained verbatim (the ring may evict; these never do).
_MAX_VIOLATIONS = 256


def audits_enabled() -> bool:
    """Whether the campaign runner should install per-run auditors."""
    return os.environ.get(NO_AUDIT_ENV, "") != "1"


def _freeze_args(args: dict[str, Any]) -> tuple[tuple[str, Any], ...]:
    """Sort attributes so record equality and exports are order-independent."""
    return tuple(sorted(args.items()))


@dataclass(frozen=True)
class AuditEvent:
    """One flight-recorder entry on virtual time.

    ``kind`` is ``"note"`` (informational: checkpoint totals, quiescence
    checks, run milestones) or ``"violation"`` (a probe or ledger fired).
    """

    name: str
    time_s: float
    kind: str
    args: tuple[tuple[str, Any], ...] = ()


class AuditStats(NamedTuple):
    """Cumulative emission counts (independent of ring-buffer eviction)."""

    notes: int
    violations: int
    checks: int
    emitted: int
    dropped: int


class AuditError(RuntimeError):
    """Raised when a run finishes with unresolved audit violations."""

    def __init__(self, message: str, violations: list[AuditEvent] | None = None,
                 dump_path: str = "") -> None:
        super().__init__(message)
        self.violations = violations or []
        self.dump_path = dump_path


class Auditor:
    """Collects audit events into a bounded ring; see the module docstring."""

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._ring: list[AuditEvent] = []
        self._head = 0  # next overwrite position once the ring is full
        self._notes_emitted = 0
        self._violations_emitted = 0
        self._checks = 0
        self._watches: list[tuple[str, Callable[[], float], float]] = []
        self._violations: list[AuditEvent] = []
        self._ledger_totals: dict[str, float] = {}

    # ------------------------------------------------------------------ emit

    def _append(self, event: AuditEvent) -> None:
        ring = self._ring
        if len(ring) < self.capacity:
            ring.append(event)
        else:
            ring[self._head] = event
            self._head = (self._head + 1) % self.capacity

    def note(self, name: str, time_s: float, **args: Any) -> None:
        """Record an informational flight-recorder event."""
        self._notes_emitted += 1
        self._append(AuditEvent(name, time_s, "note", _freeze_args(args)))

    def flag(self, name: str, time_s: float, **args: Any) -> None:
        """Record a violation: the invariant named ``name`` does not hold."""
        self._violations_emitted += 1
        event = AuditEvent(name, time_s, "violation", _freeze_args(args))
        self._append(event)
        if len(self._violations) < _MAX_VIOLATIONS:
            self._violations.append(event)

    def probe(self, name: str, ok: bool, time_s: float, **args: Any) -> bool:
        """Check an invariant: free when it holds, a violation when not."""
        self._checks += 1
        if not ok:
            self.flag(name, time_s, **args)
        return ok

    def observe(self, name: str, residual: float, time_s: float = 0.0,
                tol: float = 0.0, **args: Any) -> None:
        """Feed one ledger residual directly (for one-shot accounting).

        The residual accumulates under ``name`` (exported by
        :meth:`export_kpis`) and is flagged when it exceeds ``tol``.
        """
        self._checks += 1
        self._ledger_totals[name] = self._ledger_totals.get(name, 0.0) + residual
        self.note(name, time_s, residual=residual, **args)
        if abs(residual) > tol:
            self.flag(name, time_s, residual=residual, **args)

    # ----------------------------------------------------------------- ledgers

    def watch(self, name: str, fn: Callable[[], float], tol: float = 0.0) -> None:
        """Register a conservation ledger: ``fn()`` returns the residual.

        Multiple watches may share a ``name`` (e.g. one per link instance);
        :meth:`checkpoint` sums their residuals per name.  Callbacks must
        be read-only — replint REP012 enforces that ``_audit_*`` helpers
        never mutate simulation state.
        """
        self._watches.append((name, fn, tol))

    def checkpoint(self, label: str, time_s: float = 0.0) -> dict[str, float]:
        """Evaluate every watch; note per-ledger totals, flag non-zero ones.

        Returns the per-name residual totals.  Evaluation follows watch
        registration order (component construction order), so the emitted
        note sequence is deterministic for a given (experiment, seed).
        """
        totals: dict[str, float] = {}
        tols: dict[str, float] = {}
        order: list[str] = []
        for name, fn, tol in self._watches:
            residual = float(fn())
            if name in totals:
                totals[name] += residual
                tols[name] = max(tols[name], tol)
            else:
                totals[name] = residual
                tols[name] = tol
                order.append(name)
        for name in order:
            self._checks += 1
            residual = totals[name]
            self._ledger_totals[name] = residual
            self.note(name, time_s, label=label, residual=residual)
            if abs(residual) > tols[name]:
                self.flag(name, time_s, label=label, residual=residual)
        return totals

    def assert_clean(self, context: str = "", dump_path: str = "") -> None:
        """Raise :class:`AuditError` if any violation has been recorded."""
        count = self._violations_emitted
        if count == 0:
            return
        head = ", ".join(
            f"{v.name}@{v.time_s:g}" for v in self._violations[:5]
        )
        suffix = f" (flight recorder: {dump_path})" if dump_path else ""
        prefix = f"{context}: " if context else ""
        raise AuditError(
            f"{prefix}{count} audit violation(s): {head}{suffix}",
            violations=list(self._violations),
            dump_path=dump_path,
        )

    # ----------------------------------------------------------------- export

    def export_kpis(self, registry: Any) -> None:
        """Publish ledger totals and event counts as ``audit.*`` metrics.

        ``registry`` is duck-typed (a :class:`repro.metrics.MetricRegistry`
        or anything with ``counter``/``gauge``).  A run that never touched
        an audited component exports nothing at all, so un-instrumented
        experiments keep their ``metrics is None`` records.
        """
        stats = self.stats()
        if stats.emitted == 0 and stats.checks == 0:
            return
        registry.counter("audit.checks_count").inc(float(stats.checks))
        registry.counter("audit.events_count").inc(float(stats.emitted))
        registry.counter("audit.violations_count").inc(float(stats.violations))
        for name in sorted(self._ledger_totals):
            registry.gauge(name).set(self._ledger_totals[name])

    # ----------------------------------------------------------------- query

    def records(self) -> list[AuditEvent]:
        """All retained events in emission order (oldest first)."""
        ring = self._ring
        if len(ring) < self.capacity:
            return list(ring)
        return ring[self._head:] + ring[:self._head]

    def violations(self) -> list[AuditEvent]:
        """Retained violations in emission order (never ring-evicted)."""
        return list(self._violations)

    @property
    def violation_count(self) -> int:
        """Total violations flagged so far."""
        return self._violations_emitted

    def ledger_totals(self) -> dict[str, float]:
        """Latest per-ledger residual totals, sorted by name."""
        return {name: self._ledger_totals[name] for name in sorted(self._ledger_totals)}

    def stats(self) -> AuditStats:
        """Cumulative emission counts plus how many records were evicted."""
        emitted = self._notes_emitted + self._violations_emitted
        return AuditStats(
            notes=self._notes_emitted,
            violations=self._violations_emitted,
            checks=self._checks,
            emitted=emitted,
            dropped=emitted - len(self._ring),
        )

    def clear(self) -> None:
        """Drop retained events and reset counts (watches stay registered)."""
        self._ring.clear()
        self._head = 0
        self._notes_emitted = 0
        self._violations_emitted = 0
        self._checks = 0
        self._violations.clear()
        self._ledger_totals.clear()


class NullAuditor:
    """The disabled auditor: every method is a no-op.

    Instrumented components capture :func:`current` once at construction;
    with no auditor installed every hook collapses to one attribute load
    (``enabled``) or one no-op call.
    """

    enabled = False

    __slots__ = ()

    def note(self, name: str, time_s: float, **args: Any) -> None:
        pass

    def flag(self, name: str, time_s: float, **args: Any) -> None:
        pass

    def probe(self, name: str, ok: bool, time_s: float, **args: Any) -> bool:
        return ok

    def observe(self, name: str, residual: float, time_s: float = 0.0,
                tol: float = 0.0, **args: Any) -> None:
        pass

    def watch(self, name: str, fn: Callable[[], float], tol: float = 0.0) -> None:
        pass

    def checkpoint(self, label: str, time_s: float = 0.0) -> dict[str, float]:
        return {}

    def assert_clean(self, context: str = "", dump_path: str = "") -> None:
        pass

    def export_kpis(self, registry: Any) -> None:
        pass

    def records(self) -> list[AuditEvent]:
        return []

    def violations(self) -> list[AuditEvent]:
        return []

    @property
    def violation_count(self) -> int:
        return 0

    def ledger_totals(self) -> dict[str, float]:
        return {}

    def stats(self) -> AuditStats:
        return AuditStats(0, 0, 0, 0, 0)

    def clear(self) -> None:
        pass


NULL_AUDITOR = NullAuditor()

# Stack of installed auditors; the top is what `current()` returns.  A
# stack (rather than a single slot) lets tests nest `auditing()` blocks.
_installed: list[Any] = [NULL_AUDITOR]


def current() -> Auditor | NullAuditor:
    """The active auditor (:data:`NULL_AUDITOR` when auditing is disabled)."""
    return _installed[-1]


def install(auditor: Auditor) -> Auditor:
    """Make ``auditor`` the active auditor until :func:`uninstall`."""
    _installed.append(auditor)
    return auditor


def uninstall(auditor: Auditor | None = None) -> None:
    """Pop the active auditor (validating it is ``auditor`` when given)."""
    if len(_installed) == 1:
        raise RuntimeError("no auditor installed")
    if auditor is not None and _installed[-1] is not auditor:
        raise RuntimeError("uninstall out of order: a different auditor is active")
    _installed.pop()


@dataclass
class auditing:
    """Context manager installing an auditor for the duration of a block.

    Example:
        >>> with auditing() as auditor:
        ...     current() is auditor
        True
    """

    auditor: Auditor | None = None
    capacity: int = DEFAULT_CAPACITY
    _active: Auditor = field(init=False, repr=False)

    def __enter__(self) -> Auditor:
        self._active = self.auditor if self.auditor is not None else Auditor(self.capacity)
        return install(self._active)

    def __exit__(self, *exc: Any) -> None:
        uninstall(self._active)
