"""The ``repro audit`` subcommand.

Usage::

    python -m repro audit show run.audit.jsonl            # per-name aggregates
    python -m repro audit show run.audit.jsonl --violations
    python -m repro audit diff a.audit.jsonl b.audit.jsonl  # exit 1 on drift
    python -m repro audit stalls .repro_audit --stall-timeout 300

Flight-recorder dumps come from failed/violating runs (written under
``$REPRO_AUDIT_DIR``, default ``.repro_audit`` for CLI runs) or from
``repro run --audit-dump DIR`` (every run).  ``diff`` exits 1 when two
dumps differ — a deterministic run dumps byte-identical recorders, so it
doubles as the parallel-vs-serial identity gate in CI.  ``stalls`` scans
worker heartbeat files and reports runs that look hung.

Missing, empty or truncated dumps fail fast: a one-line message on
stderr and exit code 1, never a stack trace.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.audit.analysis import diff_audits, summary_table, violations_table
from repro.audit.export import load_audit

__all__ = ["add_audit_arguments", "run_audit"]


def add_audit_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the audit sub-subcommands to a (sub)parser."""
    sub = parser.add_subparsers(dest="audit_command", required=True)
    show = sub.add_parser("show", help="summarise a flight-recorder dump")
    show.add_argument("audit_file", help="audit dump (.audit.jsonl)")
    show.add_argument("--violations", action="store_true",
                      help="list every violation verbatim instead of aggregating")
    diff = sub.add_parser("diff", help="compare two dumps; exit 1 if they differ")
    diff.add_argument("audit_a", help="first audit dump")
    diff.add_argument("audit_b", help="second audit dump")
    stalls = sub.add_parser(
        "stalls", help="scan worker heartbeats for hung parallel runs"
    )
    stalls.add_argument("heartbeat_dir", nargs="?", default=".repro_audit",
                        help="heartbeat directory (default: .repro_audit)")
    stalls.add_argument("--stall-timeout", type=float, default=300.0,
                        metavar="SECONDS",
                        help="age beyond which a live heartbeat counts as "
                             "stalled (default: 300)")


def _load(path: str):
    if not Path(path).exists():
        print(f"repro audit: no such file: {path}", file=sys.stderr)
        return None
    try:
        return load_audit(path)
    except ValueError as exc:
        print(f"repro audit: {path}: {exc}", file=sys.stderr)
        return None


def run_audit(args: argparse.Namespace) -> int:
    """Execute an audit subcommand; returns the process exit code."""
    if args.audit_command == "show":
        loaded = _load(args.audit_file)
        if loaded is None:
            return 1
        header, events = loaded
        if args.violations:
            print(violations_table(events).render())
        else:
            print(summary_table(header, events).render())
        return 0
    if args.audit_command == "diff":
        loaded_a = _load(args.audit_a)
        loaded_b = _load(args.audit_b)
        if loaded_a is None or loaded_b is None:
            return 1
        diff = diff_audits(loaded_a, loaded_b)
        print(diff.table().render())
        return 0 if diff.identical else 1
    if args.audit_command == "stalls":
        # Imported here: the runner pulls in the experiment catalogue,
        # which `audit show/diff` should not pay for.
        from repro.runner.worker import scan_stalls

        if not Path(args.heartbeat_dir).is_dir():
            print(f"repro audit: no heartbeat directory: {args.heartbeat_dir}",
                  file=sys.stderr)
            return 1
        stalls = scan_stalls(
            args.heartbeat_dir, time.monotonic(), args.stall_timeout
        )
        if not stalls:
            print("no stalled workers")
            return 0
        for stall in stalls:
            print(
                f"worker pid {stall['pid']} stalled on "
                f"{stall['experiment']!r} (seed {stall['seed']}) — busy "
                f"{stall['busy_s']:.0f}s > {args.stall_timeout:.0f}s"
            )
        return 1
    raise AssertionError(f"unknown audit command {args.audit_command!r}")
