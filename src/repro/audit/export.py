"""Flight-recorder serialisation: byte-deterministic JSONL dumps.

One sorted-key JSON object per line, preceded by a header.  Dumps carry
*virtual* timestamps only — no wall clock, no PIDs, no absolute paths —
so the flight recorder of a fixed (experiment, seed) is byte-identical
whether the run executed serially, in a pool worker, or on another
machine.  That is what makes ``repro audit diff`` a meaningful gate: two
dumps of the same run must be equal down to the byte.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.audit.core import AuditEvent, Auditor

__all__ = [
    "JSONL_SCHEMA_VERSION",
    "dump_basename",
    "load_audit",
    "to_jsonl_lines",
    "write_jsonl",
]

JSONL_SCHEMA_VERSION = 1


def dump_basename(experiment: str, seed: int) -> str:
    """Canonical flight-recorder file name for one run."""
    return f"{experiment}-seed{seed}.audit.jsonl"


def _event_to_dict(event: AuditEvent) -> dict[str, Any]:
    return {
        "kind": event.kind,
        "name": event.name,
        "time_s": event.time_s,
        "args": dict(event.args),
    }


def to_jsonl_lines(auditor: Auditor, meta: dict[str, Any] | None = None) -> list[str]:
    """Serialise a flight recorder as JSONL lines (header first, in order)."""
    stats = auditor.stats()
    header: dict[str, Any] = {
        "kind": "header",
        "tool": "repro.audit",
        "schema_version": JSONL_SCHEMA_VERSION,
        "notes": stats.notes,
        "violations": stats.violations,
        "checks": stats.checks,
        "dropped": stats.dropped,
    }
    if meta:
        header["meta"] = meta
    lines = [json.dumps(header, sort_keys=True)]
    for event in auditor.records():
        lines.append(json.dumps(_event_to_dict(event), sort_keys=True))
    return lines


def write_jsonl(auditor: Auditor, path: str, meta: dict[str, Any] | None = None) -> int:
    """Write the flight recorder to ``path``; returns the record count."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    lines = to_jsonl_lines(auditor, meta)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines))
        fh.write("\n")
    return len(lines) - 1


def load_audit(path: str) -> tuple[dict[str, Any], list[AuditEvent]]:
    """Load a flight-recorder dump: ``(header, events)``.

    Raises:
        ValueError: on empty, truncated or malformed input — an empty
            dump would make every query silently answer "no events".
    """
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    if not text.strip():
        raise ValueError("empty audit file")
    try:
        objects = [json.loads(line) for line in text.splitlines() if line.strip()]
    except json.JSONDecodeError as exc:
        raise ValueError(f"truncated or malformed audit JSONL: {exc}") from exc
    header: dict[str, Any] = {}
    events: list[AuditEvent] = []
    for obj in objects:
        if not isinstance(obj, dict):
            raise ValueError(f"truncated or malformed audit record: {obj!r}")
        kind = obj.get("kind")
        if kind == "header":
            if obj.get("tool") != "repro.audit":
                raise ValueError(f"not an audit dump: tool={obj.get('tool')!r}")
            header = obj
            continue
        if kind not in ("note", "violation"):
            raise ValueError(f"unknown audit record kind: {kind!r}")
        try:
            events.append(
                AuditEvent(
                    name=obj["name"],
                    time_s=obj["time_s"],
                    kind=kind,
                    args=tuple(sorted(obj.get("args", {}).items())),
                )
            )
        except KeyError as exc:
            raise ValueError(
                f"truncated or malformed {kind} record: missing field {exc}"
            ) from exc
    if not header:
        raise ValueError("audit dump has no header line")
    return header, events
