"""Runtime verification: conservation ledgers, invariant probes, a flight recorder.

Quick start::

    from repro import audit

    with audit.auditing() as auditor:
        result = fig7.run(seed=7)
        residuals = auditor.checkpoint("run-end")
    auditor.assert_clean("fig7 seed 7")
    audit.write_jsonl(auditor, "fig7.audit.jsonl")

Components capture :func:`current` once at construction, so the per-call
cost with no auditor installed is a no-op method on the shared
:data:`NULL_AUDITOR`.  Set ``REPRO_NO_AUDIT=1`` to keep runner-managed
runs on the null path entirely.

See :mod:`repro.audit.core` for the recording model,
:mod:`repro.audit.export` for the byte-deterministic JSONL dumps, and
:mod:`repro.audit.analysis` for ``repro audit show|diff`` queries.
"""

from repro.audit.analysis import AuditDiff, diff_audits, summary_table, violations_table
from repro.audit.core import (
    NULL_AUDITOR,
    AuditError,
    AuditEvent,
    AuditStats,
    Auditor,
    NullAuditor,
    auditing,
    audits_enabled,
    current,
    install,
    uninstall,
)
from repro.audit.export import (
    dump_basename,
    load_audit,
    to_jsonl_lines,
    write_jsonl,
)

__all__ = [
    "NULL_AUDITOR",
    "AuditDiff",
    "AuditError",
    "AuditEvent",
    "AuditStats",
    "Auditor",
    "NullAuditor",
    "auditing",
    "audits_enabled",
    "current",
    "diff_audits",
    "dump_basename",
    "install",
    "load_audit",
    "summary_table",
    "to_jsonl_lines",
    "uninstall",
    "violations_table",
    "write_jsonl",
]
