"""One typed deployment scenario, threaded from the CLI to the physics.

Public surface:

- :class:`Scenario` and its sections (:class:`RadioSection`,
  :class:`TopologySection`, :class:`WorkloadSection`,
  :class:`EnergySection`) — frozen, hashable, picklable.
- :func:`scenario_digest` — deterministic content hash for cache keys.
- :func:`resolve_scenario` — ``None`` / preset name / file path / value.
- :func:`apply_overrides` + the ``--set`` / sweep parsers.
"""

from repro.qdisc.config import RemedySection
from repro.scenario.core import (
    EnergySection,
    RadioSection,
    Scenario,
    ScenarioOverrideError,
    TopologySection,
    WorkloadSection,
    apply_overrides,
    parse_scalar,
    scenario_digest,
    scenario_to_dict,
)
from repro.scenario.loader import (
    dumps_toml,
    expand_sweep,
    load_scenario,
    parse_set_args,
    parse_sweep_args,
    resolve_scenario,
    scenario_from_mapping,
)
from repro.scenario.presets import (
    DEFAULT_SCENARIO_NAME,
    PRESET_NAMES,
    UnknownScenarioError,
    default_scenario,
    preset,
)

__all__ = [
    "DEFAULT_SCENARIO_NAME",
    "EnergySection",
    "PRESET_NAMES",
    "RadioSection",
    "RemedySection",
    "Scenario",
    "ScenarioOverrideError",
    "TopologySection",
    "UnknownScenarioError",
    "WorkloadSection",
    "apply_overrides",
    "default_scenario",
    "dumps_toml",
    "expand_sweep",
    "load_scenario",
    "parse_scalar",
    "parse_set_args",
    "parse_sweep_args",
    "preset",
    "resolve_scenario",
    "scenario_digest",
    "scenario_from_mapping",
    "scenario_to_dict",
]
