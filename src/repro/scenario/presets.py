"""Named scenario presets.

``paper-nsa`` is the deployment the paper measured; the other presets
are the "alternative deployments" the core config always promised:
standalone 5G, a densified gNB grid, an mmWave-flavoured carrier, an
FDD NR allocation, three remedied variants of the measured deployment
(CoDel, CAKE-with-autorate, split-connection PEP) that fix the Sec. 4.2
TCP anomaly, and three procedurally generated districts (``rural-sparse``,
``urban-canyon``, ``stadium-flash-crowd``) built by the seeded topology
generator of :mod:`repro.topology` (ROADMAP item 4).  Presets are plain
:class:`~repro.scenario.core.Scenario` values — every one of them can
also be expressed as a TOML file plus ``--set`` overrides.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

from repro.qdisc.config import RemedySection
from repro.scenario.core import Scenario, TopologySection

__all__ = [
    "PRESET_NAMES",
    "DEFAULT_SCENARIO_NAME",
    "UnknownScenarioError",
    "default_scenario",
    "preset",
]

DEFAULT_SCENARIO_NAME = "paper-nsa"


def _paper_nsa() -> Scenario:
    return Scenario()


def _sa_mode() -> Scenario:
    base = Scenario()
    return replace(base, name="sa-mode", radio=replace(base.radio, sa_mode=True))


def _dense_grid() -> Scenario:
    base = Scenario()
    return replace(
        base,
        name="dense-grid",
        topology=replace(base.topology, extra_gnb_sites=7),
    )


def _mmwave_ish() -> Scenario:
    base = Scenario()
    nr = base.radio.nr.with_overrides(
        name="5G NR mmWave",
        carrier_mhz=28000.0,
        bandwidth_mhz=400.0,
        subcarrier_khz=120.0,
        num_prb=264,
        tx_power_dbm=43.0,
    )
    return replace(base, name="mmwave-ish", radio=replace(base.radio, nr=nr))


def _fdd_nr() -> Scenario:
    base = Scenario()
    nr = base.radio.nr.with_overrides(
        name="5G NR FDD",
        duplex="FDD",
        dl_slot_fraction=1.0,
        ul_slot_fraction=1.0,
    )
    return replace(base, name="fdd-nr", radio=replace(base.radio, nr=nr))


def _paper_nsa_codel() -> Scenario:
    """The measured deployment with CoDel at the wireline bottleneck."""
    return replace(Scenario(), name="paper-nsa-codel", remedy=RemedySection(qdisc="codel"))


def _paper_nsa_cake_autorate() -> Scenario:
    """CAKE shaping plus the closed-loop autorate controller."""
    return replace(
        Scenario(),
        name="paper-nsa-cake-autorate",
        remedy=RemedySection(qdisc="cake", autorate=True),
    )


def _paper_nsa_pep() -> Scenario:
    """Split-connection TCP proxy at the RAN edge, buffers untouched."""
    return replace(Scenario(), name="paper-nsa-pep", remedy=RemedySection(pep=True))


def _generated(base: Scenario, topology: TopologySection) -> TopologySection:
    """A grid-generated topology keeping the base's server-path knobs."""
    return replace(
        topology,
        server_distance_km=base.topology.server_distance_km,
        wired_hops=base.topology.wired_hops,
        lte_anchor_max_gain_dbi=base.topology.lte_anchor_max_gain_dbi,
    )


def _rural_sparse() -> Scenario:
    """A 4 km^2 countryside town: long blocks, few sites, light load."""
    base = Scenario()
    topology = _generated(
        base,
        TopologySection(
            generator="grid",
            width_m=2000.0,
            height_m=2000.0,
            road_pitch_m=500.0,
            road_jitter_ratio=0.2,
            density_class="rural",
            site_policy="hex-grid",
            gnb_site_count=3,
            enb_site_count=5,
        ),
    )
    workload = replace(base.workload, user_count=8, offered_load_ratio=0.5)
    return replace(base, name="rural-sparse", topology=topology, workload=workload)


def _urban_canyon() -> Scenario:
    """A 2.25 km^2 high-rise district: tight blocks, street-level sites.

    The extent (>= 2 km^2) and site count size the district-scale survey
    of the acceptance criteria; concrete/glass canyons make indoor
    penetration the dominant coverage defect.
    """
    base = Scenario()
    topology = _generated(
        base,
        TopologySection(
            generator="grid",
            width_m=1500.0,
            height_m=1500.0,
            road_pitch_m=125.0,
            road_jitter_ratio=0.15,
            density_class="urban-canyon",
            site_policy="road-following",
            gnb_site_count=16,
            enb_site_count=20,
        ),
    )
    workload = replace(base.workload, user_count=120, offered_load_ratio=1.5)
    return replace(base, name="urban-canyon", topology=topology, workload=workload)


def _stadium_flash_crowd() -> Scenario:
    """A stadium event: hotspot-clustered sites, a dense video-heavy crowd."""
    base = Scenario()
    topology = _generated(
        base,
        TopologySection(
            generator="grid",
            width_m=900.0,
            height_m=900.0,
            road_pitch_m=150.0,
            road_jitter_ratio=0.1,
            density_class="suburban",
            site_policy="hotspot-infill",
            gnb_site_count=9,
            enb_site_count=12,
        ),
    )
    workload = replace(
        base.workload,
        user_count=400,
        offered_load_ratio=2.5,
        web_mix_ratio=0.2,
        video_mix_ratio=0.7,
        file_mix_ratio=0.1,
    )
    return replace(
        base, name="stadium-flash-crowd", topology=topology, workload=workload
    )


_FACTORIES = {
    "paper-nsa": _paper_nsa,
    "sa-mode": _sa_mode,
    "dense-grid": _dense_grid,
    "mmwave-ish": _mmwave_ish,
    "fdd-nr": _fdd_nr,
    "paper-nsa-codel": _paper_nsa_codel,
    "paper-nsa-cake-autorate": _paper_nsa_cake_autorate,
    "paper-nsa-pep": _paper_nsa_pep,
    "rural-sparse": _rural_sparse,
    "urban-canyon": _urban_canyon,
    "stadium-flash-crowd": _stadium_flash_crowd,
}

#: Preset names in documentation order.
PRESET_NAMES: tuple[str, ...] = tuple(_FACTORIES)


class UnknownScenarioError(ValueError):
    """The requested scenario is neither a preset nor a readable file."""


@lru_cache(maxsize=None)
def preset(name: str) -> Scenario:
    """Look a preset up by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise UnknownScenarioError(
            f"unknown scenario preset {name!r}; choose from {', '.join(PRESET_NAMES)}"
        ) from None
    return factory()


def default_scenario() -> Scenario:
    """The paper's measured NSA deployment."""
    return preset(DEFAULT_SCENARIO_NAME)
