"""Named scenario presets.

``paper-nsa`` is the deployment the paper measured; the other presets
are the "alternative deployments" the core config always promised:
standalone 5G, a densified gNB grid, an mmWave-flavoured carrier, an
FDD NR allocation, and three remedied variants of the measured
deployment (CoDel, CAKE-with-autorate, split-connection PEP) that fix
the Sec. 4.2 TCP anomaly.  Presets are plain :class:`~repro.scenario.core.Scenario`
values — every one of them can also be expressed as a TOML file plus
``--set`` overrides.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

from repro.qdisc.config import RemedySection
from repro.scenario.core import Scenario

__all__ = [
    "PRESET_NAMES",
    "DEFAULT_SCENARIO_NAME",
    "UnknownScenarioError",
    "default_scenario",
    "preset",
]

DEFAULT_SCENARIO_NAME = "paper-nsa"


def _paper_nsa() -> Scenario:
    return Scenario()


def _sa_mode() -> Scenario:
    base = Scenario()
    return replace(base, name="sa-mode", radio=replace(base.radio, sa_mode=True))


def _dense_grid() -> Scenario:
    base = Scenario()
    return replace(
        base,
        name="dense-grid",
        topology=replace(base.topology, extra_gnb_sites=7),
    )


def _mmwave_ish() -> Scenario:
    base = Scenario()
    nr = base.radio.nr.with_overrides(
        name="5G NR mmWave",
        carrier_mhz=28000.0,
        bandwidth_mhz=400.0,
        subcarrier_khz=120.0,
        num_prb=264,
        tx_power_dbm=43.0,
    )
    return replace(base, name="mmwave-ish", radio=replace(base.radio, nr=nr))


def _fdd_nr() -> Scenario:
    base = Scenario()
    nr = base.radio.nr.with_overrides(
        name="5G NR FDD",
        duplex="FDD",
        dl_slot_fraction=1.0,
        ul_slot_fraction=1.0,
    )
    return replace(base, name="fdd-nr", radio=replace(base.radio, nr=nr))


def _paper_nsa_codel() -> Scenario:
    """The measured deployment with CoDel at the wireline bottleneck."""
    return replace(Scenario(), name="paper-nsa-codel", remedy=RemedySection(qdisc="codel"))


def _paper_nsa_cake_autorate() -> Scenario:
    """CAKE shaping plus the closed-loop autorate controller."""
    return replace(
        Scenario(),
        name="paper-nsa-cake-autorate",
        remedy=RemedySection(qdisc="cake", autorate=True),
    )


def _paper_nsa_pep() -> Scenario:
    """Split-connection TCP proxy at the RAN edge, buffers untouched."""
    return replace(Scenario(), name="paper-nsa-pep", remedy=RemedySection(pep=True))


_FACTORIES = {
    "paper-nsa": _paper_nsa,
    "sa-mode": _sa_mode,
    "dense-grid": _dense_grid,
    "mmwave-ish": _mmwave_ish,
    "fdd-nr": _fdd_nr,
    "paper-nsa-codel": _paper_nsa_codel,
    "paper-nsa-cake-autorate": _paper_nsa_cake_autorate,
    "paper-nsa-pep": _paper_nsa_pep,
}

#: Preset names in documentation order.
PRESET_NAMES: tuple[str, ...] = tuple(_FACTORIES)


class UnknownScenarioError(ValueError):
    """The requested scenario is neither a preset nor a readable file."""


@lru_cache(maxsize=None)
def preset(name: str) -> Scenario:
    """Look a preset up by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise UnknownScenarioError(
            f"unknown scenario preset {name!r}; choose from {', '.join(PRESET_NAMES)}"
        ) from None
    return factory()


def default_scenario() -> Scenario:
    """The paper's measured NSA deployment."""
    return preset(DEFAULT_SCENARIO_NAME)
