"""Typed deployment scenarios threaded from the CLI down to the physics.

A :class:`Scenario` is a frozen, hashable bundle of every deployment
parameter the experiments used to pull from ambient module constants:
radio profiles, hand-off configuration, path/server topology knobs,
workload defaults and energy capacities.  The default construction
reproduces the paper's measured NSA deployment exactly, so threading a
scenario through a layer is behaviour-preserving until someone asks for
a different one.

Scenarios are value objects: equality is structural, they pickle across
process pools, and :func:`scenario_digest` gives a deterministic content
hash used to key the testbed and result caches.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields, is_dataclass, replace
from typing import Any, Mapping

from repro.core.config import (
    DEFAULT_HANDOFF_CONFIG,
    LTE_PROFILE,
    NR_PROFILE,
    HandoffConfig,
    RadioProfile,
)
from repro.energy.simulator import (
    FILE_CAPACITIES,
    VIDEO_CAPACITIES,
    WEB_CAPACITIES,
    WorkloadCapacities,
)
from repro.qdisc.config import RemedySection

__all__ = [
    "DENSITY_CLASS_NAMES",
    "SITE_POLICY_NAMES",
    "TOPOLOGY_GENERATOR_NAMES",
    "RadioSection",
    "TopologySection",
    "WorkloadSection",
    "EnergySection",
    "Scenario",
    "ScenarioOverrideError",
    "apply_overrides",
    "parse_scalar",
    "scenario_digest",
    "scenario_to_dict",
]

#: World producers understood by :func:`repro.topology.generate_world`.
#: ``paper-campus`` is the hand-crafted replica; ``grid`` is the seeded
#: procedural block-plan generator.
TOPOLOGY_GENERATOR_NAMES: tuple[str, ...] = ("paper-campus", "grid")

#: Building-stock density classes of the procedural generator.
DENSITY_CLASS_NAMES: tuple[str, ...] = ("rural", "suburban", "urban-canyon")

#: Site-placement policies of the procedural generator.
SITE_POLICY_NAMES: tuple[str, ...] = ("hex-grid", "road-following", "hotspot-infill")


@dataclass(frozen=True)
class RadioSection:
    """The two radio access technologies and how NR is anchored.

    ``sa_mode`` switches the 5G-5G hand-off from the NSA anchor dance
    (release NR, hand the LTE anchor over, re-add NR) to a standalone
    Xn hand-over — the counterfactual of Sec. 3.4 / Appendix A.
    """

    lte: RadioProfile = LTE_PROFILE
    nr: RadioProfile = NR_PROFILE
    sa_mode: bool = False


@dataclass(frozen=True)
class TopologySection:
    """Where the servers sit and how the deployment map is built.

    ``generator`` selects the world producer: ``paper-campus`` rebuilds the
    hand-crafted 0.5 x 0.92 km replica (the extent/site knobs below are
    ignored — the replica is fixed by construction), while ``grid`` runs
    the seeded procedural generator in :mod:`repro.topology`, where every
    knob below participates.  All knobs feed ``scenario_digest()``, so the
    runner cache and sweep machinery key on them automatically.
    """

    server_distance_km: float = 30.0
    wired_hops: int = 4
    extra_gnb_sites: int = 0
    lte_anchor_max_gain_dbi: float = 15.0
    generator: str = "paper-campus"
    width_m: float = 500.0
    height_m: float = 920.0
    road_pitch_m: float = 110.0
    road_jitter_ratio: float = 0.0
    density_class: str = "suburban"
    site_policy: str = "hex-grid"
    gnb_site_count: int = 6
    enb_site_count: int = 13

    def __post_init__(self) -> None:
        if self.server_distance_km <= 0:
            raise ValueError(f"server_distance_km must be > 0, got {self.server_distance_km}")
        if self.wired_hops < 1:
            raise ValueError(f"wired_hops must be >= 1, got {self.wired_hops}")
        if self.extra_gnb_sites < 0:
            raise ValueError(f"extra_gnb_sites must be >= 0, got {self.extra_gnb_sites}")
        if self.generator not in TOPOLOGY_GENERATOR_NAMES:
            raise ValueError(
                f"unknown topology generator {self.generator!r};"
                f" expected one of {TOPOLOGY_GENERATOR_NAMES}"
            )
        if self.width_m < 100.0 or self.height_m < 100.0:
            raise ValueError(
                f"extent must be >= 100 m per side, got {self.width_m} x {self.height_m}"
            )
        if self.road_pitch_m < 40.0:
            raise ValueError(f"road_pitch_m must be >= 40 m, got {self.road_pitch_m}")
        if not 0.0 <= self.road_jitter_ratio <= 0.4:
            raise ValueError(
                f"road_jitter_ratio out of [0, 0.4]: {self.road_jitter_ratio}"
            )
        if self.density_class not in DENSITY_CLASS_NAMES:
            raise ValueError(
                f"unknown density class {self.density_class!r};"
                f" expected one of {DENSITY_CLASS_NAMES}"
            )
        if self.site_policy not in SITE_POLICY_NAMES:
            raise ValueError(
                f"unknown site policy {self.site_policy!r};"
                f" expected one of {SITE_POLICY_NAMES}"
            )
        if self.gnb_site_count < 1:
            raise ValueError(f"gnb_site_count must be >= 1, got {self.gnb_site_count}")
        if self.enb_site_count < 1:
            raise ValueError(f"enb_site_count must be >= 1, got {self.enb_site_count}")


@dataclass(frozen=True)
class WorkloadSection:
    """Default knobs for the simulated measurement campaigns.

    The ``user_count`` / ``offered_load_ratio`` / ``*_mix_ratio`` knobs
    parameterise the workload synthesizer (:mod:`repro.topology.workload`):
    how many users populate the world, how hard they push relative to the
    paper's campaign, and the web/video/file application mix they draw
    their per-user traffic profiles from.  The mix ratios are relative
    weights — the synthesizer normalises them — so overrides can adjust
    one at a time without passing through an invalid intermediate state.
    """

    sim_scale: float = 0.05
    video_sim_scale: float = 0.25
    ho_duration_s: float = 1200.0
    walk_speed_kmh: float = 6.0
    measurement_noise_db: float = 2.5
    user_count: int = 50
    offered_load_ratio: float = 1.0
    web_mix_ratio: float = 0.5
    video_mix_ratio: float = 0.3
    file_mix_ratio: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 < self.sim_scale <= 1.0:
            raise ValueError(f"sim_scale out of (0, 1]: {self.sim_scale}")
        if not 0.0 < self.video_sim_scale <= 1.0:
            raise ValueError(f"video_sim_scale out of (0, 1]: {self.video_sim_scale}")
        if self.ho_duration_s <= 0:
            raise ValueError(f"ho_duration_s must be > 0, got {self.ho_duration_s}")
        if self.user_count < 1:
            raise ValueError(f"user_count must be >= 1, got {self.user_count}")
        if self.offered_load_ratio <= 0.0:
            raise ValueError(
                f"offered_load_ratio must be > 0, got {self.offered_load_ratio}"
            )
        mix = (self.web_mix_ratio, self.video_mix_ratio, self.file_mix_ratio)
        if any(m < 0.0 for m in mix):
            raise ValueError(f"app-mix ratios must be >= 0, got {mix}")
        if sum(mix) <= 0.0:
            raise ValueError(f"app-mix ratios must not all be zero, got {mix}")


@dataclass(frozen=True)
class EnergySection:
    """Per-workload network capacities feeding the energy models."""

    web: WorkloadCapacities = WEB_CAPACITIES
    video: WorkloadCapacities = VIDEO_CAPACITIES
    file: WorkloadCapacities = FILE_CAPACITIES


@dataclass(frozen=True)
class Scenario:
    """One deployment, end to end.

    The zero-argument construction *is* the paper's NSA deployment
    (preset ``paper-nsa``); everything else derives from it via
    :func:`dataclasses.replace` or :func:`apply_overrides`.  The
    ``name`` is a label only — it is excluded from the digest so two
    structurally identical scenarios share cache entries.
    """

    name: str = "paper-nsa"
    radio: RadioSection = RadioSection()
    handoff: HandoffConfig = DEFAULT_HANDOFF_CONFIG
    topology: TopologySection = TopologySection()
    workload: WorkloadSection = WorkloadSection()
    energy: EnergySection = EnergySection()
    remedy: RemedySection = RemedySection()

    def describe(self) -> str:
        """One-line summary for CLI listings."""
        nr = self.radio.nr
        mode = "SA" if self.radio.sa_mode else "NSA"
        return (
            f"{self.name}: {mode} NR @ {nr.carrier_mhz:g} MHz / {nr.bandwidth_mhz:g} MHz "
            f"{nr.duplex}, digest {scenario_digest(self)}"
        )


def scenario_to_dict(scenario: Scenario) -> dict[str, Any]:
    """The scenario as a plain nested dict of scalars (JSON/TOML-ready)."""
    return asdict(scenario)


def scenario_digest(scenario: Scenario) -> str:
    """Deterministic 16-hex-digit content hash of a scenario.

    Stable across processes and platforms: the digest is a SHA-256 of
    the canonical (sorted-key, compact) JSON encoding of every value
    field except the cosmetic ``name``.
    """
    payload = scenario_to_dict(scenario)
    payload.pop("name", None)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class ScenarioOverrideError(ValueError):
    """A ``--set`` path does not name a scenario field, or the value does not fit."""


def parse_scalar(text: str) -> bool | int | float | str:
    """Parse one CLI override value: bool, int, float, else string."""
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def apply_overrides(scenario: Scenario, overrides: Mapping[str, Any]) -> Scenario:
    """Return a copy of ``scenario`` with dotted-path overrides applied.

    Keys are dotted paths into the nested dataclasses, e.g.
    ``radio.nr.carrier_mhz`` or ``topology.wired_hops``.  Values are
    coerced to the type of the field they replace; an unknown path or an
    incompatible value raises :class:`ScenarioOverrideError`.
    """
    for path, value in overrides.items():
        parts = path.split(".")
        if not all(parts):
            raise ScenarioOverrideError(f"malformed scenario key {path!r}")
        scenario = _set_path(scenario, parts, value, path)
    return scenario


def _set_path(node: Any, parts: list[str], value: Any, full_path: str) -> Any:
    if not is_dataclass(node):
        raise ScenarioOverrideError(
            f"scenario key {full_path!r} descends into a scalar"
            f" ({type(node).__name__} has no fields)"
        )
    head, rest = parts[0], parts[1:]
    valid = {f.name for f in fields(node)}
    if head not in valid:
        raise ScenarioOverrideError(
            f"unknown scenario key {full_path!r}: {type(node).__name__} has no"
            f" field {head!r} (valid: {', '.join(sorted(valid))})"
        )
    current = getattr(node, head)
    if rest:
        return replace(node, **{head: _set_path(current, rest, value, full_path)})
    return replace(node, **{head: _coerce(value, current, full_path)})


def _coerce(value: Any, current: Any, full_path: str) -> Any:
    if is_dataclass(current):
        raise ScenarioOverrideError(
            f"scenario key {full_path!r} names a section"
            f" ({type(current).__name__}); set one of its fields instead"
        )
    if isinstance(value, str):
        value = parse_scalar(value)
    if isinstance(current, bool):
        if isinstance(value, bool):
            return value
    elif isinstance(current, int):
        if isinstance(value, bool):
            pass
        elif isinstance(value, int):
            return value
        elif isinstance(value, float) and value.is_integer():
            return int(value)
    elif isinstance(current, float):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    elif isinstance(current, str):
        return str(value)
    raise ScenarioOverrideError(
        f"scenario key {full_path!r} expects {type(current).__name__},"
        f" got {value!r} ({type(value).__name__})"
    )
