"""Scenario files, CLI overrides and sweep expansion.

A scenario file is TOML (or JSON, by suffix) with an optional ``base``
preset and nested section overrides::

    name = "my-mmwave"
    base = "paper-nsa"

    [radio.nr]
    carrier_mhz = 28000.0
    bandwidth_mhz = 400.0

    [topology]
    server_distance_km = 5.0

:func:`dumps_toml` writes the complete scenario back out so presets
round-trip exactly through ``dumps_toml`` → :func:`load_scenario`.
"""

from __future__ import annotations

import itertools
import json
import tomllib
from dataclasses import replace
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.scenario.core import (
    Scenario,
    ScenarioOverrideError,
    apply_overrides,
    parse_scalar,
    scenario_to_dict,
)
from repro.scenario.presets import (
    PRESET_NAMES,
    UnknownScenarioError,
    default_scenario,
    preset,
)

__all__ = [
    "dumps_toml",
    "expand_sweep",
    "load_scenario",
    "parse_set_args",
    "parse_sweep_args",
    "resolve_scenario",
    "scenario_from_mapping",
]


def scenario_from_mapping(data: Mapping[str, Any]) -> Scenario:
    """Build a scenario from a parsed TOML/JSON mapping."""
    payload = dict(data)
    base = payload.pop("base", None)
    name = payload.pop("name", None)
    scenario = preset(base) if base is not None else default_scenario()
    overrides = dict(_flatten(payload))
    scenario = apply_overrides(scenario, overrides)
    if name is not None:
        if not isinstance(name, str):
            raise ScenarioOverrideError(f"scenario name must be a string, got {name!r}")
        scenario = replace(scenario, name=name)
    return scenario


def _flatten(mapping: Mapping[str, Any], prefix: str = "") -> Iterable[tuple[str, Any]]:
    for key, value in mapping.items():
        if isinstance(value, Mapping):
            yield from _flatten(value, f"{prefix}{key}.")
        else:
            yield f"{prefix}{key}", value


def load_scenario(path: str | Path) -> Scenario:
    """Load a scenario from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix == ".json":
        data = json.loads(text)
    else:
        data = tomllib.loads(text)
    if not isinstance(data, Mapping):
        raise ScenarioOverrideError(f"scenario file {path} must contain a table/object")
    return scenario_from_mapping(data)


def resolve_scenario(spec: Scenario | str | None) -> Scenario:
    """Resolve ``None`` (default), a preset name, a file path, or pass through."""
    if spec is None:
        return default_scenario()
    if isinstance(spec, Scenario):
        return spec
    if spec in PRESET_NAMES:
        return preset(spec)
    path = Path(spec)
    if path.suffix in (".toml", ".json"):
        if not path.exists():
            raise UnknownScenarioError(f"scenario file not found: {spec}")
        return load_scenario(path)
    raise UnknownScenarioError(
        f"unknown scenario {spec!r}; choose a preset ({', '.join(PRESET_NAMES)})"
        " or a .toml/.json file path"
    )


def _toml_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    raise TypeError(f"cannot render {value!r} as a TOML value")


def dumps_toml(scenario: Scenario) -> str:
    """Render the complete scenario as TOML (round-trips via load)."""
    data = scenario_to_dict(scenario)
    lines = [f"name = {_toml_value(data.pop('name'))}", ""]

    def emit(table: str, mapping: Mapping[str, Any]) -> None:
        scalars = {k: v for k, v in mapping.items() if not isinstance(v, dict)}
        tables = {k: v for k, v in mapping.items() if isinstance(v, dict)}
        if scalars or not tables:
            lines.append(f"[{table}]")
            for key, value in scalars.items():
                lines.append(f"{key} = {_toml_value(value)}")
            lines.append("")
        for key, value in tables.items():
            emit(f"{table}.{key}", value)

    for key, value in data.items():
        emit(key, value)
    return "\n".join(lines).rstrip() + "\n"


def parse_set_args(pairs: Sequence[str]) -> dict[str, Any]:
    """Parse repeated ``--set key=value`` arguments into an override map."""
    overrides: dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ScenarioOverrideError(f"--set expects key=value, got {pair!r}")
        overrides[key.strip()] = parse_scalar(value)
    return overrides


def parse_sweep_args(pairs: Sequence[str]) -> list[tuple[str, tuple[Any, ...]]]:
    """Parse sweep ``--set key=v1,v2,...`` arguments into (key, values) axes."""
    axes: list[tuple[str, tuple[Any, ...]]] = []
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ScenarioOverrideError(f"--set expects key=value[,value...], got {pair!r}")
        values = tuple(parse_scalar(v) for v in value.split(",") if v != "")
        if not values:
            raise ScenarioOverrideError(f"--set {pair!r} lists no values")
        axes.append((key.strip(), values))
    return axes


def expand_sweep(
    base: Scenario, axes: Sequence[tuple[str, tuple[Any, ...]]]
) -> list[tuple[dict[str, Any], Scenario]]:
    """Cartesian-expand sweep axes into (overrides, scenario) points."""
    if not axes:
        return [({}, base)]
    keys = [key for key, _ in axes]
    points: list[tuple[dict[str, Any], Scenario]] = []
    for combo in itertools.product(*(values for _, values in axes)):
        overrides = dict(zip(keys, combo))
        points.append((overrides, apply_overrides(base, overrides)))
    return points
