"""In-network buffer estimation (Sec. 4.2, Tab. 3).

Implements the classical "max-min delay" method the paper uses: the
bottleneck buffer holds ``(RTT_max - RTT_min) * capacity`` worth of
packets, measured with small probes against a saturated path.  Also
provides the Stanford buffer-sizing rule the paper applies to argue the
wired buffers must roughly double for 5G.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

__all__ = ["BufferEstimate", "estimate_buffer_packets", "stanford_buffer_packets"]

#: The paper expresses Tab. 3 in 60-byte packets at an assumed 1 Gbps.
PROBE_PACKET_BYTES = 60
ASSUMED_CAPACITY_BPS = 1.0e9


@dataclass(frozen=True)
class BufferEstimate:
    """Outcome of a max-min delay estimation."""

    rtt_min_s: float
    rtt_max_s: float
    capacity_bps: float
    packet_bytes: int

    @property
    def queueing_delay_s(self) -> float:
        """Spread between the fullest and emptiest probe RTTs."""
        return self.rtt_max_s - self.rtt_min_s

    @property
    def buffer_packets(self) -> int:
        """Buffered packets: queueing delay times capacity."""
        return int(self.queueing_delay_s * self.capacity_bps / (8 * self.packet_bytes))

    @property
    def buffer_bytes(self) -> int:
        """Buffer estimate in bytes."""
        return self.buffer_packets * self.packet_bytes


def estimate_buffer_packets(
    rtt_samples_s: Sequence[float],
    capacity_bps: float = ASSUMED_CAPACITY_BPS,
    packet_bytes: int = PROBE_PACKET_BYTES,
) -> BufferEstimate:
    """Estimate the path buffer from a set of probe RTTs.

    Args:
        rtt_samples_s: RTTs measured across load conditions; the spread
            between the emptiest and fullest observation bounds the queue.
        capacity_bps: Assumed path capacity (the paper assumes 1 Gbps and
            notes absolute values may be off while *ratios* are reliable).
        packet_bytes: Probe packet size (60 B in the paper).
    """
    samples = list(rtt_samples_s)
    if len(samples) < 2:
        raise ValueError("need at least two RTT samples to bound the queue")
    if any(r <= 0 for r in samples):
        raise ValueError("RTT samples must be positive")
    return BufferEstimate(
        rtt_min_s=min(samples),
        rtt_max_s=max(samples),
        capacity_bps=capacity_bps,
        packet_bytes=packet_bytes,
    )


def stanford_buffer_packets(
    capacity_bps: float,
    rtt_s: float,
    concurrent_flows: int,
    packet_bytes: int = 1500,
) -> int:
    """Stanford buffer-sizing rule: ``B = RTT * C / sqrt(n)``.

    The paper uses this to argue that, with 5x the capacity at equal RTT
    and flow count, 5G paths need 5x the buffer of 4G paths, yet the
    deployed wired network only provides ~2.5x (Tab. 3) — hence the
    recommendation to roughly double the wired buffers.
    """
    if capacity_bps <= 0 or rtt_s <= 0:
        raise ValueError("capacity and RTT must be positive")
    if concurrent_flows < 1:
        raise ValueError(f"flow count must be >= 1, got {concurrent_flows}")
    bdp_bits = capacity_bps * rtt_s
    return int(bdp_bits / math.sqrt(concurrent_flows) / (8 * packet_bytes))
