"""Analysis tooling: buffer estimation, KPI logging, dataset IO."""

from repro.analysis.buffer_est import (
    BufferEstimate,
    estimate_buffer_packets,
    stanford_buffer_packets,
)
from repro.analysis.dataset import read_csv, read_json, write_csv, write_json
from repro.analysis.drive_test import DriveTester, DriveTestResult
from repro.analysis.kpi import KpiLogger, KpiSample
from repro.analysis.plots import bar_chart, cdf_plot, heatmap, timeseries_plot
from repro.analysis.release import DatasetRelease

__all__ = [
    "BufferEstimate",
    "DatasetRelease",
    "DriveTestResult",
    "DriveTester",
    "KpiLogger",
    "KpiSample",
    "bar_chart",
    "cdf_plot",
    "heatmap",
    "estimate_buffer_packets",
    "read_csv",
    "read_json",
    "stanford_buffer_packets",
    "timeseries_plot",
    "write_csv",
    "write_json",
]
