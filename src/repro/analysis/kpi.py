"""XCAL-style KPI logging.

The measurement campaign's passive tooling records time-stamped KPI rows
(RSRP, RSRQ, SINR, CQI, MCS, PRBs, serving PCI).  :class:`KpiLogger`
replicates that: experiments append samples while walking or transferring,
then query summaries or export the raw rows.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from collections.abc import Iterator

from repro.core.stats import Summary, summarize

__all__ = ["KpiSample", "KpiLogger"]


@dataclass(frozen=True)
class KpiSample:
    """One physical-layer KPI row, as XCAL-Mobile would log it."""

    time_s: float
    network: str
    pci: int
    rsrp_dbm: float
    rsrq_db: float
    sinr_db: float
    cqi: int
    mcs_index: int
    prb_granted: int
    bit_rate_bps: float


class KpiLogger:
    """An append-only KPI trace with per-network querying."""

    def __init__(self) -> None:
        self._samples: list[KpiSample] = []

    def __len__(self) -> int:
        return len(self._samples)

    def append(self, sample: KpiSample) -> None:
        """Append one KPI row; rows must arrive in time order."""
        if self._samples and sample.time_s < self._samples[-1].time_s:
            raise ValueError("KPI samples must be appended in time order")
        self._samples.append(sample)

    def samples(self, network: str | None = None) -> Iterator[KpiSample]:
        """Iterate samples, optionally filtered to one network ('4G'/'5G')."""
        for sample in self._samples:
            if network is None or sample.network == network:
                yield sample

    def summarize_field(self, field_name: str, network: str | None = None) -> Summary:
        """Mean/std summary of one KPI column."""
        values = [getattr(s, field_name) for s in self.samples(network)]
        if not values:
            raise ValueError(f"no samples for network={network!r}")
        return summarize(values)

    def to_rows(self) -> list[dict]:
        """Export as plain dictionaries (for dataset serialization)."""
        return [asdict(s) for s in self._samples]
