"""XCAL-style drive testing: full KPI traces along a walk.

Combines the route walker, the radio layer and the KPI logger into the
passive measurement workflow of Sec. 2: walk the campus, log a KPI row
per report interval for both networks, and keep the hand-off log — the
raw material behind Tab. 1/2 and Figs. 2-6, and the kind of trace the
paper released as its public dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.kpi import KpiLogger, KpiSample
from repro.core.config import HandoffConfig, DEFAULT_HANDOFF_CONFIG
from repro.mobility.handoff import HandoffCampaign, HandoffEngine
from repro.mobility.walker import RouteWalker
from repro.radio.cell import RadioNetwork
from repro.radio.linkadapt import LinkAdaptation
from repro.radio.phy import PrbAllocator, phy_bit_rate

__all__ = ["DriveTestResult", "DriveTester"]


@dataclass
class DriveTestResult:
    """Everything one drive test produced."""

    kpis: KpiLogger = field(default_factory=KpiLogger)
    handoffs: HandoffCampaign | None = None
    duration_s: float = 0.0

    def kpi_count(self, network: str | None = None) -> int:
        """Number of KPI rows logged (optionally for one network)."""
        return sum(1 for _ in self.kpis.samples(network))


class DriveTester:
    """Walks the campus while logging physical-layer KPIs on both RATs.

    Args:
        nr: The 5G network.
        lte: The 4G network.
        walker: Mobility source.
        rng: Randomness for PRB grants and the hand-off engine.
        handoff_config: A3 parameters; defaults to the operator's.
        time_of_day: Controls the PRB contention model.
    """

    def __init__(
        self,
        nr: RadioNetwork,
        lte: RadioNetwork,
        walker: RouteWalker,
        rng: np.random.Generator,
        handoff_config: HandoffConfig = DEFAULT_HANDOFF_CONFIG,
        time_of_day: str = "day",
    ) -> None:
        self.nr = nr
        self.lte = lte
        self.walker = walker
        self.time_of_day = time_of_day
        self._rng = rng
        self._engine = HandoffEngine(nr, lte, rng, config=handoff_config)
        self._allocators = {
            "5G": PrbAllocator(nr.profile, rng),
            "4G": PrbAllocator(lte.profile, rng),
        }

    def run(self, duration_s: float, report_interval_s: float = 0.5) -> DriveTestResult:
        """Walk for ``duration_s``, logging one KPI row per interval per RAT.

        The hand-off engine runs on the same trajectory (re-generated from
        the walker's deterministic stream), so the KPI trace and hand-off
        log describe the same walk.
        """
        if duration_s <= 0 or report_interval_s <= 0:
            raise ValueError("duration and report interval must be positive")
        result = DriveTestResult(duration_s=duration_s)
        trajectory = list(self.walker.trajectory(duration_s, dt_s=report_interval_s))
        for point in trajectory:
            for network_name, network in (("5G", self.nr), ("4G", self.lte)):
                cell, _ = network.best_cell_at(point.location)
                sample = network.sample_at(point.location, serving_pci=cell.pci)
                adaptation = LinkAdaptation.for_sinr(sample.sinr_db)
                grant = self._allocators[network_name].allocate(self.time_of_day)
                rate = phy_bit_rate(
                    network.profile,
                    sample.sinr_db,
                    direction="dl",
                    prb_fraction=grant.fraction,
                )
                result.kpis.append(
                    KpiSample(
                        time_s=point.time_s,
                        network=network_name,
                        pci=cell.pci,
                        rsrp_dbm=sample.rsrp_dbm,
                        rsrq_db=sample.rsrq_db,
                        sinr_db=sample.sinr_db,
                        cqi=adaptation.cqi,
                        mcs_index=adaptation.mcs_index,
                        prb_granted=grant.granted,
                        bit_rate_bps=rate,
                    )
                )
        result.handoffs = self._engine.run(iter(trajectory))
        return result
