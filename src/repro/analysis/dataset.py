"""Dataset serialization for measurement traces.

The paper released its traces publicly; this module gives the toolkit the
same capability: experiments dump their raw rows as CSV or JSON so
downstream analysis can run without re-simulating.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from collections.abc import Sequence
from typing import Any

__all__ = ["write_csv", "read_csv", "write_json", "read_json"]


def write_csv(path: str | Path, rows: Sequence[dict[str, Any]]) -> None:
    """Write homogeneous dict rows to CSV (column order from first row)."""
    if not rows:
        raise ValueError("refusing to write an empty dataset")
    path = Path(path)
    fieldnames = list(rows[0].keys())
    for i, row in enumerate(rows):
        if set(row.keys()) != set(fieldnames):
            raise ValueError(f"row {i} keys differ from header {fieldnames}")
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)


def read_csv(path: str | Path) -> list[dict[str, str]]:
    """Read a CSV written by :func:`write_csv` (values come back as str)."""
    with Path(path).open(newline="") as handle:
        return list(csv.DictReader(handle))


def write_json(path: str | Path, payload: Any) -> None:
    """Write any JSON-serializable payload, pretty-printed."""
    with Path(path).open("w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def read_json(path: str | Path) -> Any:
    """Read a JSON payload written by :func:`write_json`."""
    with Path(path).open() as handle:
        return json.load(handle)
