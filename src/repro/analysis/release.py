"""Dataset release builder.

The paper publicly released its measurement dataset and tools; this module
produces the equivalent artifact from the simulator: a directory of CSV/JSON
traces (coverage survey, KPI drive test, hand-off events, TCP runs, energy
timelines) plus a manifest, so downstream analysis can run without
re-simulating anything.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path
from typing import Any

from repro.analysis.dataset import write_csv, write_json
from repro.analysis.drive_test import DriveTestResult
from repro.energy.drx import EnergyResult
from repro.mobility.handoff import HandoffCampaign
from repro.radio.coverage import SurveyPoint
from repro.transport.iperf import TcpRunResult, UdpRunResult

__all__ = ["DatasetRelease"]


class DatasetRelease:
    """Accumulates traces and writes them as a versioned dataset directory.

    Example:
        >>> release = DatasetRelease("5G_measurement")   # doctest: +SKIP
        >>> release.add_coverage_survey("campus_5g", points)
        >>> release.write(Path("dataset/"))
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("release needs a name")
        self.name = name
        self._tables: dict[str, list[dict[str, Any]]] = {}
        self._payloads: dict[str, Any] = {}

    # -- adders ----------------------------------------------------------

    def add_coverage_survey(self, tag: str, points: list[SurveyPoint]) -> None:
        """Coverage survey rows: location, serving PCI, KPIs."""
        self._tables[f"coverage_{tag}"] = [
            {
                "x_m": p.location.x,
                "y_m": p.location.y,
                "pci": p.pci,
                "rsrp_dbm": p.rsrp_dbm,
                "rsrq_db": p.rsrq_db,
                "sinr_db": p.sinr_db,
                "bit_rate_bps": p.bit_rate_bps,
                "indoor": p.indoor,
                "in_service": p.in_service,
            }
            for p in points
        ]

    def add_drive_test(self, tag: str, result: DriveTestResult) -> None:
        """XCAL-style KPI rows plus the hand-off log of the same walk."""
        self._tables[f"kpi_{tag}"] = result.kpis.to_rows()
        if result.handoffs is not None:
            self.add_handoffs(tag, result.handoffs)

    def add_handoffs(self, tag: str, campaign: HandoffCampaign) -> None:
        """Hand-off event rows (time, kind, cells, latency, RSRQ)."""
        self._tables[f"handoff_{tag}"] = [
            {
                "time_s": e.time_s,
                "kind": e.kind,
                "source_pci": e.source_pci,
                "target_pci": e.target_pci,
                "latency_s": e.latency_s,
                "rsrq_before_db": e.rsrq_before_db,
                "rsrq_after_db": e.rsrq_after_db,
            }
            for e in campaign.events
        ]

    def add_tcp_run(self, tag: str, result: TcpRunResult) -> None:
        """Throughput summary plus the cwnd trace, iperf3+Wireshark style."""
        self._payloads[f"tcp_{tag}"] = {
            "algorithm": result.algorithm,
            "throughput_bps": result.throughput_bps,
            "utilization": result.utilization,
            "retransmissions": result.retransmissions,
            "timeouts": result.timeouts,
        }
        self._tables[f"tcp_{tag}_cwnd"] = [
            {"time_s": t, "cwnd_bytes": w} for t, w in result.cwnd_trace
        ]

    def add_udp_run(self, tag: str, result: UdpRunResult) -> None:
        """UDP run summary plus the lost-sequence trace."""
        self._payloads[f"udp_{tag}"] = {
            "offered_bps": result.offered_bps,
            "throughput_bps": result.throughput_bps,
            "loss_rate": result.loss_rate,
            "sent": result.sent,
            "received": result.received,
        }
        self._tables[f"udp_{tag}_losses"] = [
            {"lost_seq": seq} for seq in result.lost_seqs
        ] or [{"lost_seq": -1}]

    def add_energy_timeline(self, tag: str, result: EnergyResult) -> None:
        """pwrStrip-equivalent energy segments."""
        self._tables[f"energy_{tag}"] = [asdict(seg) for seg in result.segments]

    # -- output ------------------------------------------------------------

    def write(self, directory: str | Path) -> Path:
        """Write every trace plus a manifest; returns the dataset root."""
        if not self._tables and not self._payloads:
            raise ValueError("nothing to release; add traces first")
        root = Path(directory) / self.name
        root.mkdir(parents=True, exist_ok=True)
        manifest: dict[str, Any] = {"name": self.name, "files": {}}
        for table_name, rows in self._tables.items():
            if not rows:
                # A valid-but-empty trace (e.g. a walk without hand-offs):
                # record it in the manifest without writing a file.
                manifest["files"][f"{table_name}.csv"] = {"kind": "csv", "rows": 0}
                continue
            path = root / f"{table_name}.csv"
            write_csv(path, rows)
            manifest["files"][path.name] = {"kind": "csv", "rows": len(rows)}
        for payload_name, payload in self._payloads.items():
            path = root / f"{payload_name}.json"
            write_json(path, payload)
            manifest["files"][path.name] = {"kind": "json"}
        write_json(root / "MANIFEST.json", manifest)
        return root
