"""Terminal plotting: CDFs, time series, bars and the campus heatmap.

The paper communicates almost everything through CDFs and time-series
plots; this module renders the same artifacts as Unicode/ASCII text so
examples and the CLI can show figure-shaped output without a display
server or plotting dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.stats import Cdf

__all__ = ["cdf_plot", "timeseries_plot", "bar_chart", "heatmap"]

_BLOCKS = " .:-=+*#%@"


def _scale(value: float, lo: float, hi: float, width: int) -> int:
    if hi <= lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(width - 1, max(0, int(position * (width - 1))))


def cdf_plot(
    series: dict[str, Iterable[float]],
    width: int = 60,
    height: int = 12,
    title: str = "",
    unit: str = "",
) -> str:
    """Render one or more empirical CDFs on a shared x-axis.

    Args:
        series: Label -> sample values.
        width, height: Plot grid size in characters.
        title: Optional heading.
        unit: X-axis unit label.
    """
    if not series:
        raise ValueError("need at least one series")
    cdfs = {label: Cdf(values) for label, values in series.items()}
    lo = min(cdf.values[0] for cdf in cdfs.values())
    hi = max(cdf.values[-1] for cdf in cdfs.values())
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#"
    for marker, (label, cdf) in zip(markers, cdfs.items()):
        for col in range(width):
            x = lo + (hi - lo) * col / max(width - 1, 1)
            fraction = cdf.fraction_below(x)
            row = height - 1 - _scale(fraction, 0.0, 1.0, height)
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        fraction = 1.0 - i / (height - 1)
        lines.append(f"{fraction:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {lo:.3g}{' ' * max(width - 16, 1)}{hi:.3g} {unit}")
    legend = "  ".join(
        f"{marker}={label}" for marker, label in zip(markers, cdfs)
    )
    lines.append(f"      {legend}")
    return "\n".join(lines)


def timeseries_plot(
    points: Sequence[tuple[float, float]],
    width: int = 60,
    height: int = 10,
    title: str = "",
    y_unit: str = "",
) -> str:
    """Render a (time, value) series as a scatter-line."""
    if not points:
        raise ValueError("empty series")
    times = [t for t, _ in points]
    values = [v for _, v in points]
    t_lo, t_hi = min(times), max(times)
    v_lo, v_hi = min(values), max(values)
    grid = [[" "] * width for _ in range(height)]
    for t, v in points:
        col = _scale(t, t_lo, t_hi, width)
        row = height - 1 - _scale(v, v_lo, v_hi, height)
        grid[row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{v_hi:10.3g} |" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{v_lo:10.3g} |" + "".join(grid[-1]))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':11}{t_lo:<.3g}{' ' * max(width - 12, 1)}{t_hi:.3g} s")
    if y_unit:
        lines.append(f"{'':11}y: {y_unit}")
    return "\n".join(lines)


def bar_chart(
    values: dict[str, float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bar chart, labels left, values right."""
    if not values:
        raise ValueError("empty chart")
    peak = max(values.values())
    label_width = max(len(label) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * (_scale(value, 0.0, peak, width) + 1) if peak > 0 else ""
        lines.append(f"{label:>{label_width}} |{bar:<{width}} {value:.4g} {unit}")
    return "\n".join(lines)


def heatmap(
    samples: Sequence[tuple[float, float, float]],
    width_m: float,
    height_m: float,
    cols: int = 50,
    rows: int = 24,
    title: str = "",
) -> str:
    """Render (x, y, value) samples as a character-density map.

    Used for the Fig. 2(a)-style campus RSRP map: darker glyphs mean
    stronger values; empty cells have no sample.
    """
    if not samples:
        raise ValueError("no samples")
    values = [v for _, _, v in samples]
    v_lo, v_hi = min(values), max(values)
    # Accumulate the max value per cell (strongest observation wins).
    cells: dict[tuple[int, int], float] = {}
    for x, y, v in samples:
        col = _scale(x, 0.0, width_m, cols)
        row = rows - 1 - _scale(y, 0.0, height_m, rows)
        key = (row, col)
        cells[key] = max(cells.get(key, v_lo), v)
    lines = [title] if title else []
    for r in range(rows):
        line = []
        for c in range(cols):
            if (r, c) in cells:
                # Sampled cells always render visibly: the weakest glyph is
                # '.', blanks mean "no sample here".
                level = 1 + _scale(cells[(r, c)], v_lo, v_hi, len(_BLOCKS) - 1)
                line.append(_BLOCKS[level])
            else:
                line.append(" ")
        lines.append("".join(line))
    lines.append(f"scale: '{_BLOCKS[1]}' = {v_lo:.3g}  ..  '{_BLOCKS[-1]}' = {v_hi:.3g}")
    return "\n".join(lines)
