"""Measurement-report events A1-A5, B1, B2 (Appendix A, Tab. 5).

The UE periodically reports signal quality through RRC signaling; the
network reacts to configured events.  The paper observes that although the
UE reports five event kinds (21.98% A1, 0.18% A2, 67.25% A3, 9.19% A5,
1.40% B1), the operator only acts on A3 — the classic
"neighbour-better-than-serving" trigger of Eq. (1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["EventType", "EventThresholds", "MeasurementEvent", "classify_events"]


class EventType(Enum):
    """Hand-off related measurement events (Tab. 5)."""

    A1 = "A1"  # serving above threshold: stop measuring neighbours
    A2 = "A2"  # serving below threshold: start measuring neighbours
    A3 = "A3"  # neighbour better than serving by an offset (main HO event)
    A4 = "A4"  # neighbour above threshold
    A5 = "A5"  # serving below threshold1 and neighbour above threshold2
    B1 = "B1"  # inter-RAT neighbour above threshold
    B2 = "B2"  # serving below threshold1, inter-RAT neighbour above threshold2


@dataclass(frozen=True)
class EventThresholds:
    """Operator-configured thresholds, in the RSRQ (dB) domain."""

    a1_serving_db: float = -8.6
    a2_serving_db: float = -18.5
    a3_offset_db: float = 3.0
    a4_neighbor_db: float = -10.5
    a5_serving_db: float = -17.0
    a5_neighbor_db: float = -15.0
    b1_inter_rat_db: float = -5.5
    b2_serving_db: float = -17.0
    b2_inter_rat_db: float = -7.0


@dataclass(frozen=True)
class MeasurementEvent:
    """One event instance in a measurement report."""

    time_s: float
    event_type: EventType
    serving_db: float
    neighbor_db: float


def classify_events(
    time_s: float,
    serving_db: float,
    best_neighbor_db: float,
    inter_rat_db: float | None = None,
    thresholds: EventThresholds | None = None,
) -> list[MeasurementEvent]:
    """Evaluate all event conditions for one measurement report.

    Args:
        time_s: Report timestamp.
        serving_db: Serving-cell RSRQ.
        best_neighbor_db: Best intra-RAT neighbour RSRQ.
        inter_rat_db: Best inter-RAT (e.g. 4G while on 5G) RSRQ, if measured.
        thresholds: Operator thresholds; defaults reproduce the observed
            event mix, dominated by A1 and A3.

    Returns:
        Every event whose entry condition holds at this instant.
    """
    th = thresholds if thresholds is not None else EventThresholds()
    events: list[MeasurementEvent] = []

    def _add(event_type: EventType) -> None:
        events.append(
            MeasurementEvent(
                time_s=time_s,
                event_type=event_type,
                serving_db=serving_db,
                neighbor_db=best_neighbor_db,
            )
        )

    if serving_db > th.a1_serving_db:
        _add(EventType.A1)
    if serving_db < th.a2_serving_db:
        _add(EventType.A2)
    if best_neighbor_db > serving_db + th.a3_offset_db:
        _add(EventType.A3)
    if best_neighbor_db > th.a4_neighbor_db:
        _add(EventType.A4)
    if serving_db < th.a5_serving_db and best_neighbor_db > th.a5_neighbor_db:
        _add(EventType.A5)
    if inter_rat_db is not None:
        if inter_rat_db > th.b1_inter_rat_db:
            _add(EventType.B1)
        if serving_db < th.b2_serving_db and inter_rat_db > th.b2_inter_rat_db:
            _add(EventType.B2)
    return events
