"""Hand-off decision and execution under the 5G NSA architecture.

Implements the paper's Sec. 3.4 / Appendix A machinery:

* the A3 trigger of Eq. (1) — the neighbour's RSRQ must exceed the
  serving cell's by a 3 dB hysteresis continuously for a 324 ms
  time-to-trigger;
* the signaling procedures per hand-off kind, with per-step latencies.
  Under NSA a 5G-5G hand-off cannot switch gNBs directly: the UE releases
  its NR leg, hands the 4G anchor over, then re-adds NR on the target —
  which is why it takes ~108 ms against ~30 ms for a plain 4G-4G hand-off;
* vertical hand-offs: losing NR service drops the UE to its LTE anchor
  (5G-4G) and recovering NR coverage re-adds the leg (4G-5G).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.config import DEFAULT_HANDOFF_CONFIG, HandoffConfig
from repro.mobility.walker import TrajectoryPoint
from repro.radio import batch
from repro.radio.cell import RadioNetwork
from repro.radio.signal import MIN_SERVICE_RSRP_DBM
from repro.trace import core as trace

__all__ = [
    "HandoffKind",
    "SignalingStep",
    "SA_NR_TO_NR_STEPS",
    "HandoffProcedure",
    "HandoffEvent",
    "HandoffCampaign",
    "HandoffEngine",
]


class HandoffKind:
    """Canonical hand-off kind labels used throughout the experiments."""

    LTE_TO_LTE = "4G-4G"
    NR_TO_NR = "5G-5G"
    NR_TO_LTE = "5G-4G"
    LTE_TO_NR = "4G-5G"

    ALL = (LTE_TO_LTE, NR_TO_NR, NR_TO_LTE, LTE_TO_NR)


@dataclass(frozen=True)
class SignalingStep:
    """One control-plane message exchange with its mean latency."""

    name: str
    mean_latency_s: float


#: Signaling procedures reverse-engineered from XCAL traces (Appendix A,
#: Fig. 24).  Mean step latencies are calibrated so the totals match the
#: measured averages: 30.10 ms (4G-4G), 108.40 ms (5G-5G), 80.23 ms (4G-5G).
_PROCEDURES: dict[str, tuple[SignalingStep, ...]] = {
    HandoffKind.LTE_TO_LTE: (
        SignalingStep("measurement report", 0.002),
        SignalingStep("hand-off request", 0.004),
        SignalingStep("admission control", 0.005),
        SignalingStep("RRC connection reconfiguration", 0.008),
        SignalingStep("random access procedure", 0.008),
        SignalingStep("path switch", 0.003),
    ),
    HandoffKind.NR_TO_NR: (
        SignalingStep("measurement report", 0.002),
        SignalingStep("NR resource release at source", 0.015),
        SignalingStep("hand-off request (anchor eNB)", 0.004),
        SignalingStep("admission control", 0.005),
        SignalingStep("T-gNB addition request", 0.006),
        SignalingStep("T-gNB addition request ACK", 0.004),
        SignalingStep("RRC connection reconfiguration (x3)", 0.024),
        SignalingStep("SN status transfer", 0.005),
        SignalingStep("link synchronization with T-eNB", 0.020),
        SignalingStep("random access procedure", 0.008),
        SignalingStep("T-gNB RRC reconfiguration complete", 0.0154),
    ),
    HandoffKind.LTE_TO_NR: (
        SignalingStep("B1 measurement report", 0.002),
        SignalingStep("gNB addition request", 0.010),
        SignalingStep("gNB addition request ACK", 0.008),
        SignalingStep("RRC connection reconfiguration", 0.015),
        SignalingStep("link synchronization", 0.020),
        SignalingStep("random access procedure (NR)", 0.012),
        SignalingStep("RRC reconfiguration complete", 0.013),
    ),
    HandoffKind.NR_TO_LTE: (
        SignalingStep("measurement report", 0.002),
        SignalingStep("NR resource release", 0.015),
        SignalingStep("RRC connection reconfiguration", 0.012),
        SignalingStep("data path roll-back to eNB", 0.016),
    ),
}

#: Direct Xn hand-off between gNBs under standalone 5G: the same four
#: phases as a 4G X2 hand-off, on NR timing (Sec. 8 projection).  Under
#: ``sa_mode`` this replaces the NSA anchor dance for 5G-5G hand-offs.
SA_NR_TO_NR_STEPS: tuple[SignalingStep, ...] = (
    SignalingStep("measurement report", 0.002),
    SignalingStep("Xn hand-off request", 0.004),
    SignalingStep("admission control", 0.005),
    SignalingStep("RRC reconfiguration", 0.008),
    SignalingStep("random access procedure (NR)", 0.008),
    SignalingStep("path switch (5GC)", 0.004),
)


def _procedure_steps(kind: str, sa_mode: bool) -> tuple[SignalingStep, ...]:
    if sa_mode and kind == HandoffKind.NR_TO_NR:
        return SA_NR_TO_NR_STEPS
    try:
        return _PROCEDURES[kind]
    except KeyError:
        raise ValueError(f"unknown hand-off kind {kind!r}") from None


@dataclass(frozen=True)
class HandoffProcedure:
    """A realized signaling procedure: the steps with drawn latencies."""

    kind: str
    step_latencies_s: tuple[tuple[str, float], ...]

    @property
    def total_latency_s(self) -> float:
        """Sum of the drawn step latencies."""
        return sum(latency for _, latency in self.step_latencies_s)

    @classmethod
    def draw(
        cls, kind: str, rng: np.random.Generator, sa_mode: bool = False
    ) -> "HandoffProcedure":
        """Draw per-step latencies for a hand-off of ``kind``.

        Step latencies are gamma-distributed around their calibrated means
        (shape 9, giving ~33% coefficient of variation as in the measured
        CDFs of Fig. 6).  With ``sa_mode`` the 5G-5G hand-off runs the
        direct Xn procedure instead of the NSA anchor dance.
        """
        steps = _procedure_steps(kind, sa_mode)
        shape = 9.0
        drawn = tuple(
            (step.name, float(rng.gamma(shape, step.mean_latency_s / shape)))
            for step in steps
        )
        return cls(kind=kind, step_latencies_s=drawn)

    @staticmethod
    def mean_latency_s(kind: str, sa_mode: bool = False) -> float:
        """Calibrated mean total latency for a hand-off kind."""
        return sum(step.mean_latency_s for step in _procedure_steps(kind, sa_mode))


@dataclass(frozen=True)
class HandoffEvent:
    """One executed hand-off."""

    time_s: float
    kind: str
    source_pci: int
    target_pci: int
    latency_s: float
    rsrq_before_db: float
    rsrq_after_db: float

    @property
    def rsrq_gain_db(self) -> float:
        """Instantaneous RSRQ change across the hand-off (Fig. 5)."""
        return self.rsrq_after_db - self.rsrq_before_db


@dataclass
class TraceSample:
    """One measurement report in the campaign trace (Fig. 4 raw data)."""

    time_s: float
    rat: str
    serving_pci: int
    serving_rsrq_db: float
    neighbor_rsrqs_db: dict[int, float] = field(default_factory=dict)
    inter_rat_rsrq_db: float | None = None


@dataclass
class HandoffCampaign:
    """Everything a hand-off measurement walk produced."""

    events: list[HandoffEvent] = field(default_factory=list)
    trace: list[TraceSample] = field(default_factory=list)
    outages: list[tuple[float, float]] = field(default_factory=list)

    def events_of_kind(self, kind: str) -> list[HandoffEvent]:
        """All events of one hand-off kind."""
        return [e for e in self.events if e.kind == kind]

    @property
    def horizontal_count(self) -> int:
        """5G-5G plus 4G-4G event count."""
        return len(self.events_of_kind(HandoffKind.NR_TO_NR)) + len(
            self.events_of_kind(HandoffKind.LTE_TO_LTE)
        )

    @property
    def vertical_count(self) -> int:
        """5G-4G plus 4G-5G event count."""
        return len(self.events_of_kind(HandoffKind.NR_TO_LTE)) + len(
            self.events_of_kind(HandoffKind.LTE_TO_NR)
        )


class HandoffEngine:
    """Runs the NSA dual-connectivity hand-off logic over a trajectory.

    The UE always holds an LTE anchor; an NR leg is attached whenever NR
    coverage allows.  A3 events steer both legs; losing/regaining NR
    service causes vertical hand-offs.

    Args:
        nr_network: The 5G campus network.
        lte_network: The 4G campus network (anchors + infill).
        rng: Randomness for signaling latency draws.
        config: A3 hysteresis / time-to-trigger parameters.
        nr_reentry_margin_db: RSRP above the service floor required before
            re-adding the NR leg, preventing ping-pong at the coverage
            edge.
        measurement_noise_db: Std-dev of per-report RSRQ measurement noise.
            Real filtered RSRQ reports jitter by 1-2 dB, which is what
            makes a quarter of triggered hand-offs land on a worse cell
            (Fig. 5).
        sa_mode: Run 5G-5G hand-offs as direct standalone Xn hand-overs
            instead of the NSA release/anchor/re-add procedure.
    """

    def __init__(
        self,
        nr_network: RadioNetwork,
        lte_network: RadioNetwork,
        rng: np.random.Generator,
        config: HandoffConfig = DEFAULT_HANDOFF_CONFIG,
        nr_reentry_margin_db: float = 12.0,
        measurement_noise_db: float = 1.5,
        sa_mode: bool = False,
    ) -> None:
        self.nr = nr_network
        self.lte = lte_network
        self.config = config
        self.nr_reentry_margin_db = nr_reentry_margin_db
        self.measurement_noise_db = measurement_noise_db
        self.sa_mode = sa_mode
        self._rng = rng
        self._tracer = trace.current()

    def _measured(self, rsrq_db: float) -> float:
        """Apply report-level measurement noise."""
        if self.measurement_noise_db <= 0.0:
            return rsrq_db
        return rsrq_db + float(self._rng.normal(0.0, self.measurement_noise_db))

    def run(self, trajectory: Iterable[TrajectoryPoint]) -> HandoffCampaign:
        """Walk ``trajectory``, producing hand-off events and traces."""
        campaign = HandoffCampaign()
        nr_pci: int | None = None
        lte_pci: int | None = None
        a3_since: dict[str, float | None] = {"nr": None, "lte": None}
        nr_good_since: float | None = None
        blocked_until = -1.0
        attached = False

        # All radio measurements the walk will ever need, batched up
        # front: per-tick RSRP rows plus the RSRQ of every candidate
        # serving choice.  The walker RNG is independent of the engine's
        # latency/noise streams, so materializing the trajectory first
        # does not perturb any draw order.
        ticks = list(trajectory)
        if not ticks:
            return campaign
        locations = [sample.location for sample in ticks]
        nr_matrix = self.nr.rsrp_matrix_at(locations)
        lte_matrix = self.lte.rsrp_matrix_at(locations)
        nr_rsrq_matrix = batch.rsrq_matrix(
            nr_matrix,
            subcarrier_khz=self.nr.profile.subcarrier_khz,
            interference_floor_dbm=self.nr.interference_floor_dbm,
        )
        lte_rsrq_matrix = batch.rsrq_matrix(
            lte_matrix,
            subcarrier_khz=self.lte.profile.subcarrier_khz,
            interference_floor_dbm=self.lte.interference_floor_dbm,
        )
        nr_pcis, lte_pcis = self.nr.pcis, self.lte.pcis
        nr_col = {pci: j for j, pci in enumerate(nr_pcis)}
        lte_col = {pci: j for j, pci in enumerate(lte_pcis)}

        for i, sample in enumerate(ticks):
            t = sample.time_s
            nr_rsrps = dict(zip(nr_pcis, nr_matrix[i].tolist()))
            lte_rsrps = dict(zip(lte_pcis, lte_matrix[i].tolist()))
            nr_rsrqs = nr_rsrq_matrix[i].tolist()
            lte_rsrqs = lte_rsrq_matrix[i].tolist()

            if not attached:
                # Initial attach: pick the LTE anchor and, if covered, the
                # NR leg without emitting hand-off events.  Later NR
                # re-attachment goes through the 4G-5G procedure below.
                lte_pci = max(lte_rsrps, key=lambda p: lte_rsrps[p])
                if self._nr_usable(nr_rsrps):
                    nr_pci = max(nr_rsrps, key=lambda p: nr_rsrps[p])
                attached = True

            on_nr = nr_pci is not None
            serving_rsrps = nr_rsrps if on_nr else lte_rsrps
            serving_rsrqs = nr_rsrqs if on_nr else lte_rsrqs
            serving_col = nr_col if on_nr else lte_col
            serving_pci = nr_pci if on_nr else lte_pci
            serving_rsrq = self._measured(serving_rsrqs[serving_col[serving_pci]])
            neighbor_rsrqs = {
                pci: self._measured(serving_rsrqs[serving_col[pci]])
                for pci in serving_rsrps
                if pci != serving_pci
            }
            # Inter-RAT measurement: the LTE anchor while riding NR, or the
            # best NR cell while camped on LTE (feeds B1/B2 events).
            if on_nr:
                inter_rat = lte_rsrqs[lte_col[lte_pci]]
            else:
                best_nr_pci = max(nr_rsrps, key=lambda p: nr_rsrps[p])
                inter_rat = nr_rsrqs[nr_col[best_nr_pci]]
            campaign.trace.append(
                TraceSample(
                    time_s=t,
                    rat="5G" if on_nr else "4G",
                    serving_pci=serving_pci,
                    serving_rsrq_db=serving_rsrq,
                    neighbor_rsrqs_db=neighbor_rsrqs,
                    inter_rat_rsrq_db=self._measured(inter_rat),
                )
            )

            if t < blocked_until:
                continue

            # Vertical: NR leg lost -> fall back to the LTE anchor.
            if on_nr and nr_rsrps[nr_pci] < MIN_SERVICE_RSRP_DBM:
                best_nr = max(nr_rsrps, key=lambda p: nr_rsrps[p])
                if nr_rsrps[best_nr] >= MIN_SERVICE_RSRP_DBM:
                    # A usable neighbour exists; let A3 handle it instead.
                    pass
                else:
                    blocked_until = self._execute(
                        campaign,
                        t,
                        HandoffKind.NR_TO_LTE,
                        source_pci=nr_pci,
                        target_pci=lte_pci,
                        rsrq_before=serving_rsrq,
                        rsrq_after=lte_rsrqs[lte_col[lte_pci]],
                    )
                    nr_pci = None
                    a3_since["nr"] = None
                    nr_good_since = None
                    continue

            # Vertical: NR coverage recovered -> re-add the NR leg (B1).
            if not on_nr:
                best_nr = max(nr_rsrps, key=lambda p: nr_rsrps[p])
                if nr_rsrps[best_nr] >= MIN_SERVICE_RSRP_DBM + self.nr_reentry_margin_db:
                    if nr_good_since is None:
                        nr_good_since = t
                    elif t - nr_good_since >= 3.0 * self.config.time_to_trigger_s:
                        blocked_until = self._execute(
                            campaign,
                            t,
                            HandoffKind.LTE_TO_NR,
                            source_pci=lte_pci,
                            target_pci=best_nr,
                            rsrq_before=serving_rsrq,
                            rsrq_after=nr_rsrqs[nr_col[best_nr]],
                            triggered_at_s=nr_good_since,
                        )
                        nr_pci = best_nr
                        nr_good_since = None
                        continue
                else:
                    nr_good_since = None

            # Horizontal A3 on the active data leg.
            leg = "nr" if on_nr else "lte"
            if neighbor_rsrqs:
                best_pci = max(neighbor_rsrqs, key=lambda p: neighbor_rsrqs[p])
                gap = neighbor_rsrqs[best_pci] - serving_rsrq
                if gap > self.config.hysteresis_db:
                    if a3_since[leg] is None:
                        a3_since[leg] = t
                    elif t - a3_since[leg] >= self.config.time_to_trigger_s:
                        kind = HandoffKind.NR_TO_NR if on_nr else HandoffKind.LTE_TO_LTE
                        blocked_until = self._execute(
                            campaign,
                            t,
                            kind,
                            source_pci=serving_pci,
                            target_pci=best_pci,
                            rsrq_before=serving_rsrq,
                            rsrq_after=serving_rsrqs[serving_col[best_pci]],
                            triggered_at_s=a3_since[leg],
                        )
                        if on_nr:
                            nr_pci = best_pci
                        else:
                            lte_pci = best_pci
                        a3_since[leg] = None
                else:
                    a3_since[leg] = None

            # The 4G anchor keeps its own A3 mobility even while the data
            # plane rides NR (NSA dual connectivity).
            if on_nr:
                anchor_rsrq = self._measured(lte_rsrqs[lte_col[lte_pci]])
                anchor_neighbors = {
                    pci: self._measured(lte_rsrqs[lte_col[pci]])
                    for pci in lte_rsrps
                    if pci != lte_pci
                }
                best_anchor = max(anchor_neighbors, key=lambda p: anchor_neighbors[p])
                if anchor_neighbors[best_anchor] - anchor_rsrq > self.config.hysteresis_db:
                    if a3_since["lte"] is None:
                        a3_since["lte"] = t
                    elif t - a3_since["lte"] >= self.config.time_to_trigger_s:
                        blocked_until = self._execute(
                            campaign,
                            t,
                            HandoffKind.LTE_TO_LTE,
                            source_pci=lte_pci,
                            target_pci=best_anchor,
                            rsrq_before=anchor_rsrq,
                            rsrq_after=lte_rsrqs[lte_col[best_anchor]],
                            triggered_at_s=a3_since["lte"],
                        )
                        lte_pci = best_anchor
                        a3_since["lte"] = None
                else:
                    a3_since["lte"] = None

        return campaign

    def _nr_usable(self, nr_rsrps: dict[int, float]) -> bool:
        return max(nr_rsrps.values()) >= MIN_SERVICE_RSRP_DBM

    def _execute(
        self,
        campaign: HandoffCampaign,
        t: float,
        kind: str,
        source_pci: int,
        target_pci: int,
        rsrq_before: float,
        rsrq_after: float,
        triggered_at_s: float | None = None,
    ) -> float:
        """Record one hand-off; returns the time the UE is busy until."""
        procedure = HandoffProcedure.draw(kind, self._rng, sa_mode=self.sa_mode)
        latency = procedure.total_latency_s
        tracer = self._tracer
        if tracer.enabled:
            # The full measurement-to-completion interval (A3 trigger start
            # through the last signaling step), then the Appendix A phases
            # laid back-to-back inside the procedure span.
            if triggered_at_s is not None:
                tracer.complete(
                    "ho.a3_to_complete", triggered_at_s, t + latency, kind=kind
                )
            tracer.instant(
                "ho.trigger", t, kind=kind, source_pci=source_pci, target_pci=target_pci
            )
            tracer.complete(
                f"handoff:{kind}",
                t,
                t + latency,
                source_pci=source_pci,
                target_pci=target_pci,
            )
            cursor_s = t
            for step_name, step_latency_s in procedure.step_latencies_s:
                tracer.complete(
                    f"ho.phase:{step_name}", cursor_s, cursor_s + step_latency_s, kind=kind
                )
                cursor_s += step_latency_s
            tracer.instant("ho.complete", t + latency, kind=kind, target_pci=target_pci)
        campaign.events.append(
            HandoffEvent(
                time_s=t,
                kind=kind,
                source_pci=source_pci,
                target_pci=target_pci,
                latency_s=latency,
                rsrq_before_db=rsrq_before,
                rsrq_after_db=rsrq_after,
            )
        )
        campaign.outages.append((t, t + latency))
        return t + latency


def rsrq_gain_cdf_fraction(
    events: Sequence[HandoffEvent], threshold_db: float = 3.0
) -> float:
    """Fraction of hand-offs whose RSRQ gain exceeds ``threshold_db``.

    The paper reports only ~75% of hand-offs gain more than the 3 dB the
    trigger nominally guarantees (Fig. 5).
    """
    if not events:
        raise ValueError("no hand-off events")
    return sum(1 for e in events if e.rsrq_gain_db > threshold_db) / len(events)
