"""Standalone (SA) 5G projections (Sec. 8, "Exploiting the coexistence...").

The paper attributes the 108 ms 5G-5G hand-off and the doubled energy tail
to the NSA architecture, and predicts both go away once SA gives NR its own
control plane.  This module encodes those projections so the ablation
benchmarks can quantify the NSA→SA gains:

* a direct gNB-to-gNB (Xn) hand-off procedure — no NR release, no anchor
  hand-off, no re-addition;
* an SA DRX configuration with the Rel-15 RRC_INACTIVE state: connection
  context survives release, so promotion is fast and the tail is short.
"""

from __future__ import annotations

from repro.energy.drx import DrxConfig, RadioPowerProfile, NR_POWER
from repro.mobility.handoff import (
    SA_NR_TO_NR_STEPS,
    HandoffKind,
    HandoffProcedure,
)

__all__ = [
    "SA_NR_TO_NR_STEPS",
    "sa_handoff_mean_latency_s",
    "draw_sa_handoff",
    "NR_SA_DRX_CONFIG",
    "NR_SA_POWER",
]

#: SA DRX: RRC_INACTIVE keeps the UE context, cutting the promotion to a
#: resume exchange and letting the network release the connection quickly.
NR_SA_DRX_CONFIG = DrxConfig(
    promotion_s=0.080,  # RRC resume from INACTIVE
    inactivity_s=0.100,
    tail_s=5.0,  # aggressive release: INACTIVE makes long tails pointless
)

#: Same RF hardware as NSA — SA changes protocol states, not silicon.  The
#: paper's point stands: the hardware floor remains.
NR_SA_POWER: RadioPowerProfile = NR_POWER


def sa_handoff_mean_latency_s() -> float:
    """Mean latency of a direct SA 5G-5G hand-off."""
    return HandoffProcedure.mean_latency_s(HandoffKind.NR_TO_NR, sa_mode=True)


def draw_sa_handoff(rng) -> float:
    """Draw one SA hand-off latency (same gamma model as the NSA draws)."""
    return HandoffProcedure.draw(HandoffKind.NR_TO_NR, rng, sa_mode=True).total_latency_s
