"""Mobility: pedestrian walkers, measurement events and NSA hand-off."""

from repro.mobility.events import (
    EventThresholds,
    EventType,
    MeasurementEvent,
    classify_events,
)
from repro.mobility.handoff import (
    HandoffCampaign,
    HandoffEngine,
    HandoffEvent,
    HandoffKind,
    HandoffProcedure,
    SignalingStep,
    rsrq_gain_cdf_fraction,
)
from repro.mobility.sa import (
    NR_SA_DRX_CONFIG,
    SA_NR_TO_NR_STEPS,
    draw_sa_handoff,
    sa_handoff_mean_latency_s,
)
from repro.mobility.walker import RouteWalker, TrajectoryPoint

__all__ = [
    "EventThresholds",
    "EventType",
    "HandoffCampaign",
    "HandoffEngine",
    "HandoffEvent",
    "HandoffKind",
    "HandoffProcedure",
    "MeasurementEvent",
    "NR_SA_DRX_CONFIG",
    "RouteWalker",
    "SA_NR_TO_NR_STEPS",
    "SignalingStep",
    "TrajectoryPoint",
    "classify_events",
    "draw_sa_handoff",
    "rsrq_gain_cdf_fraction",
    "sa_handoff_mean_latency_s",
]
