"""Pedestrian mobility along the world's road network.

The hand-off campaign (Sec. 3.4) was collected while walking/bicycling at
3-10 km/h along campus roads; :class:`RouteWalker` reproduces that: it
wanders the road graph at a configurable speed and emits a time-stamped
position trace.  Any :class:`~repro.geometry.world.WorldModel` works — the
hand-crafted paper campus and procedurally generated districts alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

import numpy as np

from repro.geometry.points import Point, Segment
from repro.geometry.world import WorldModel

__all__ = ["TrajectoryPoint", "RouteWalker"]

#: Default speed range of the measurement campaign, km/h.
MIN_SPEED_KMH = 3.0
MAX_SPEED_KMH = 10.0


@dataclass(frozen=True)
class TrajectoryPoint:
    """One time-stamped sample of the walker's position."""

    time_s: float
    location: Point


class RouteWalker:
    """Walks the world's roads, turning at intersections at random.

    Turn decisions consult the precomputed :class:`~repro.geometry.world.RoadGraph`
    junction adjacency — O(degree) per turn instead of a distance scan over
    every segment — while preserving the historical candidate order, so
    trajectories on the paper campus are byte-identical to the old scan.

    Args:
        world: Road network to walk.
        rng: Randomness source (turn choices, speed jitter).
        speed_kmh: Walking speed; jittered per segment within +-20%.
    """

    def __init__(
        self,
        world: WorldModel,
        rng: np.random.Generator,
        speed_kmh: float = 5.0,
    ) -> None:
        if not MIN_SPEED_KMH <= speed_kmh <= MAX_SPEED_KMH:
            raise ValueError(
                f"speed must be within the campaign range "
                f"[{MIN_SPEED_KMH}, {MAX_SPEED_KMH}] km/h, got {speed_kmh}"
            )
        self._world = world
        self._graph = world.road_graph
        self._rng = rng
        self._speed_mps = speed_kmh / 3.6

    def _random_road(self) -> Segment:
        roads = self._world.roads
        return roads[int(self._rng.integers(len(roads)))]

    def trajectory(self, duration_s: float, dt_s: float = 0.040) -> Iterator[TrajectoryPoint]:
        """Yield positions every ``dt_s`` for ``duration_s`` seconds.

        The default 40 ms step matches the RRC measurement-report interval,
        so the hand-off engine can consume the trace directly.
        """
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        if dt_s <= 0:
            raise ValueError(f"dt must be positive, got {dt_s}")

        road = self._random_road()
        heading_to_end = bool(self._rng.random() < 0.5)
        fraction = float(self._rng.random())
        time_s = 0.0
        while time_s <= duration_s:
            point = road.interpolate(fraction)
            yield TrajectoryPoint(time_s=time_s, location=point)
            speed = self._speed_mps * float(self._rng.uniform(0.8, 1.2))
            step_fraction = speed * dt_s / max(road.length, 1e-9)
            fraction += step_fraction if heading_to_end else -step_fraction
            if fraction > 1.0 or fraction < 0.0:
                # Reached the end of the road: turn onto a random incident
                # road, entering at the end nearest to the current position.
                end = road.end if fraction > 1.0 else road.start
                road = self._pick_next_road(end)
                start_dist = end.distance_to(road.start)
                end_dist = end.distance_to(road.end)
                heading_to_end = start_dist <= end_dist
                fraction = 0.0 if heading_to_end else 1.0
            time_s += dt_s

    def _pick_next_road(self, at: Point) -> Segment:
        """Choose the next road among those incident to the junction ``at``.

        Falls back to the whole network when the junction is isolated
        (mirrors the old nearest-segment scan's fallback, and keeps the RNG
        draw count identical in both branches).
        """
        roads = self._world.roads
        incident = self._graph.roads_at(at)
        if incident:
            return roads[incident[int(self._rng.integers(len(incident)))]]
        return roads[int(self._rng.integers(len(roads)))]
