"""Summary statistics and empirical distributions.

The paper reports nearly every result as a CDF, a mean +/- std, or a binned
distribution; these helpers are the single implementation used by all
experiments so that "the CDF of X" means the same thing everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = ["Cdf", "Summary", "summarize", "histogram_counts", "percent"]


@dataclass(frozen=True)
class Summary:
    """Mean / spread summary of a sample, as reported in the paper's tables."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.std:.2f} (n={self.count})"


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` over ``values``.

    Raises:
        ValueError: ``"empty sample"`` if ``values`` is empty — the same
            message every empty-input statistic in this codebase raises
            (:class:`Cdf`, the :mod:`repro.metrics.sketches` estimators),
            so callers can handle the condition uniformly.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("empty sample")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
    )


class Cdf:
    """Empirical cumulative distribution over a finite sample.

    Example:
        >>> cdf = Cdf([1.0, 2.0, 2.0, 4.0])
        >>> cdf.fraction_below(2.5)
        0.75
        >>> cdf.percentile(50)
        2.0
    """

    def __init__(self, values: Iterable[float]) -> None:
        arr = np.sort(np.asarray(list(values), dtype=float))
        if arr.size == 0:
            raise ValueError("empty sample")
        self._values = arr

    def __len__(self) -> int:
        return int(self._values.size)

    @property
    def values(self) -> np.ndarray:
        """The sorted underlying sample (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    def fraction_below(self, threshold: float) -> float:
        """Fraction of the sample strictly at or below ``threshold``."""
        return float(np.searchsorted(self._values, threshold, side="right")) / len(self)

    def fraction_above(self, threshold: float) -> float:
        """Fraction of the sample strictly above ``threshold``."""
        return 1.0 - self.fraction_below(threshold)

    def percentile(self, pct: float) -> float:
        """Value at percentile ``pct`` (0..100), linear interpolation."""
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        return float(np.percentile(self._values, pct))

    @property
    def mean(self) -> float:
        """Sample mean."""
        return float(self._values.mean())

    @property
    def median(self) -> float:
        """Sample median (50th percentile)."""
        return self.percentile(50.0)

    def points(self) -> list[tuple[float, float]]:
        """(value, cumulative fraction) pairs suitable for plotting."""
        n = len(self)
        return [(float(v), (i + 1) / n) for i, v in enumerate(self._values)]


def histogram_counts(
    values: Iterable[float], edges: Sequence[float]
) -> list[tuple[tuple[float, float], int, float]]:
    """Bin ``values`` into ``edges`` like the paper's Tab. 2.

    Bins are half-open ``[edges[i], edges[i+1])``; values outside the edges
    are ignored.

    Returns:
        A list of ``((lo, hi), count, fraction)`` tuples, where fractions are
        relative to the total number of *binned* values.
    """
    arr = np.asarray(list(values), dtype=float)
    counts, _ = np.histogram(arr, bins=np.asarray(edges, dtype=float))
    total = int(counts.sum())
    rows = []
    for i, count in enumerate(counts):
        lo, hi = float(edges[i]), float(edges[i + 1])
        frac = float(count) / total if total else 0.0
        rows.append(((lo, hi), int(count), frac))
    return rows


def percent(fraction: float) -> str:
    """Format a fraction as the paper does, e.g. ``0.0807`` -> ``'8.07%'``."""
    return f"{fraction * 100:.2f}%"
