"""Elementwise libm-exact vector math for the batched radio core.

The golden-file discipline (``tests/test_scenario.py``) pins experiment
results *byte for byte*, and the scalar physics in :mod:`repro.radio`
computes its transcendentals through the C library via :mod:`math`.
NumPy's SIMD ufuncs (``np.log10``, ``np.power``, ``np.hypot``, ...) are
faster but round differently in the last ulp on many inputs, so a naive
numpy port of the radio formulas would silently shift every RSRP mean.

This module squares that circle: each transcendental is an
``np.frompyfunc`` wrapper around the exact scalar expression the radio
code uses, evaluated per element through libm.  That costs ~140 ns per
element — far below the Python-object path it replaces — and makes
``batch == scalar`` hold bitwise *by construction*.  Everything else the
batch kernels need (+, -, *, /, comparisons, ``np.maximum``/``minimum``,
``np.where``, ``np.searchsorted``) is exact IEEE-754 arithmetic and
therefore shared with the scalar path automatically.

Only the batched kernels should import this module; scalar code keeps
calling :mod:`math` directly.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "angle_difference_deg",
    "as_float_array",
    "bearing_deg",
    "exp10",
    "hypot",
    "log2",
    "log10",
    "powf",
    "shadow_grid_index",
]

_log10 = np.frompyfunc(math.log10, 1, 1)
_log2 = np.frompyfunc(math.log2, 1, 1)
_hypot = np.frompyfunc(math.hypot, 2, 1)
_exp10 = np.frompyfunc(lambda x: 10.0**x, 1, 1)
_powf = np.frompyfunc(lambda base, exponent: base**exponent, 2, 1)
# Matches Point.bearing_to: degrees(atan2(dx, dy)) folded into [0, 360).
_bearing = np.frompyfunc(
    lambda dx, dy: math.degrees(math.atan2(dx, dy)) % 360.0, 2, 1
)
# Matches antenna._angle_difference_deg: signed difference in [-180, 180).
_angle_difference = np.frompyfunc(
    lambda a, b: (a - b + 180.0) % 360.0 - 180.0, 2, 1
)


def as_float_array(values) -> np.ndarray:
    """``values`` as a float64 ndarray (no copy when already one)."""
    return np.asarray(values, dtype=np.float64)


def _apply(ufunc, *arrays) -> np.ndarray:
    out = ufunc(*(as_float_array(a) for a in arrays))
    return out.astype(np.float64)


def log10(values) -> np.ndarray:
    """Elementwise ``math.log10`` (bitwise equal to the scalar path)."""
    return _apply(_log10, values)


def log2(values) -> np.ndarray:
    """Elementwise ``math.log2``."""
    return _apply(_log2, values)


def exp10(values) -> np.ndarray:
    """Elementwise ``10.0 ** x`` — the :func:`repro.core.units.dbm_to_mw` kernel."""
    return _apply(_exp10, values)


def hypot(x, y) -> np.ndarray:
    """Elementwise ``math.hypot`` — the :meth:`Point.distance_to` kernel."""
    return _apply(_hypot, x, y)


def powf(base, exponent) -> np.ndarray:
    """Elementwise Python ``**`` (libm pow), broadcasting both operands."""
    return _apply(_powf, base, exponent)


def bearing_deg(dx, dy) -> np.ndarray:
    """Elementwise :meth:`Point.bearing_to` for displacement components."""
    return _apply(_bearing, dx, dy)


def angle_difference_deg(a, b) -> np.ndarray:
    """Elementwise smallest signed angular difference ``a - b``."""
    return _apply(_angle_difference, a, b)


def shadow_grid_index(values, grid_m: float) -> np.ndarray:
    """Elementwise ``int(v // grid_m)`` as an int64 array.

    Python's float floor-division is *not* ``floor(a / b)`` — it corrects
    the quotient through ``fmod`` — so this goes through the scalar
    operator to match the shadow-grid keys of
    :meth:`Environment._shadow_standard_normal` exactly.
    """
    ufunc = np.frompyfunc(lambda v: int(v // grid_m), 1, 1)
    return ufunc(as_float_array(values)).astype(np.int64)
