"""Core utilities: units, seeded randomness, configuration and statistics."""

from repro.core.config import (
    DEFAULT_HANDOFF_CONFIG,
    LTE_PROFILE,
    NR_PROFILE,
    HandoffConfig,
    RadioProfile,
)
from repro.core.results import ResultTable
from repro.core.rng import RngFactory, default_rng
from repro.core.stats import Cdf, Summary, histogram_counts, percent, summarize
from repro.core.units import (
    BITS_PER_BYTE,
    GB,
    KB,
    MB,
    MS,
    US,
    db_to_linear,
    dbm_to_mw,
    gbps,
    kbps,
    linear_to_db,
    mbps,
    mw_to_dbm,
    thermal_noise_dbm,
)

__all__ = [
    "BITS_PER_BYTE",
    "Cdf",
    "DEFAULT_HANDOFF_CONFIG",
    "GB",
    "HandoffConfig",
    "KB",
    "LTE_PROFILE",
    "MB",
    "MS",
    "NR_PROFILE",
    "RadioProfile",
    "ResultTable",
    "RngFactory",
    "Summary",
    "US",
    "db_to_linear",
    "dbm_to_mw",
    "default_rng",
    "gbps",
    "histogram_counts",
    "kbps",
    "linear_to_db",
    "mbps",
    "mw_to_dbm",
    "percent",
    "summarize",
    "thermal_noise_dbm",
]
