"""Deterministic random-number management.

Every stochastic component in the simulator draws from a ``numpy`` generator
seeded from a single campaign seed, so that experiments are exactly
reproducible while independent subsystems (propagation shadowing, traffic
arrivals, mobility jitter, ...) stay statistically independent of each other.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "RngFactory",
    "SANCTIONED_RNG_PROVIDERS",
    "default_rng",
    "derive",
    "is_sanctioned_rng",
    "streams_drawn",
]

#: Modules whose callables are sanctioned randomness constructors.  The
#: REP001 determinism rule (:mod:`repro.lint.rules.determinism`) consults
#: this so the linter and the runtime agree on what "going through
#: repro.core.rng" means; extend it here if a future provider is blessed.
SANCTIONED_RNG_PROVIDERS: tuple[str, ...] = ("repro.core.rng",)


def is_sanctioned_rng(qualified_name: str) -> bool:
    """Is ``qualified_name`` (e.g. ``repro.core.rng.default_rng``) a
    sanctioned randomness constructor?"""
    return any(
        qualified_name == provider or qualified_name.startswith(provider + ".")
        for provider in SANCTIONED_RNG_PROVIDERS
    )


# Per-process count of streams handed out by RngFactory.stream(), used by
# repro.runner.instrument to report how much randomness an experiment drew.
# The owning PID is tracked because fork-start ProcessPoolExecutor workers
# inherit the parent's module state: without the guard a worker would start
# from the coordinator's count and report inflated absolute totals.
_streams_drawn = 0
_counter_pid = os.getpid()


def _reset_if_forked() -> None:
    global _streams_drawn, _counter_pid
    pid = os.getpid()
    if pid != _counter_pid:
        _streams_drawn = 0
        _counter_pid = pid


def streams_drawn() -> int:
    """Total RngFactory streams drawn by this process so far.

    The count is strictly per-process: a pool worker forked mid-campaign
    starts again from zero rather than inheriting the coordinator's tally.
    """
    _reset_if_forked()
    return _streams_drawn


class RngFactory:
    """Spawns named, independent random generators from one master seed.

    Two factories built with the same seed hand out identical streams for
    identical names, regardless of the order the streams are requested in.

    Example:
        >>> factory = RngFactory(seed=42)
        >>> shadowing = factory.stream("shadowing")
        >>> traffic = factory.stream("traffic")
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The master seed this factory was built from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return a generator keyed by ``name``.

        Repeated calls with the same name return fresh generators positioned
        at the start of the same underlying stream.
        """
        global _streams_drawn
        _reset_if_forked()
        _streams_drawn += 1
        seq = np.random.SeedSequence([self._seed, _stable_hash(name)])
        return np.random.default_rng(seq)

    def child(self, name: str) -> "RngFactory":
        """Derive a sub-factory, e.g. one per experiment repetition."""
        return RngFactory(seed=_mix(self._seed, _stable_hash(name)))


def default_rng(seed: int = 0) -> np.random.Generator:
    """Shorthand for a standalone seeded generator.

    This is the *sanctioned* way to turn a campaign seed into a root
    generator: stochastic code must accept an ``np.random.Generator``
    parameter (or an :class:`RngFactory` stream) rather than calling
    ``np.random.default_rng`` itself — the REP001 lint rule enforces it.
    """
    return np.random.default_rng(seed)


def derive(rng: np.random.Generator) -> np.random.Generator:
    """A child generator deterministically derived from ``rng``'s stream.

    Consumes one draw from ``rng``; use it to hand independent
    sub-streams to components built from a single threaded generator
    without the components sharing (and racing on) the parent's state.
    """
    return np.random.default_rng(int(rng.integers(2**31)))


def _stable_hash(name: str) -> int:
    """A process-independent 63-bit hash of ``name``.

    Python's builtin ``hash`` is salted per process, which would break
    reproducibility across runs.
    """
    acc = 1469598103934665603  # FNV-1a offset basis
    for byte in name.encode("utf-8"):
        acc ^= byte
        acc = (acc * 1099511628211) & 0x7FFFFFFFFFFFFFFF
    return acc


def _mix(a: int, b: int) -> int:
    """Combine two integers into one well-spread 63-bit seed."""
    x = (a * 0x9E3779B97F4A7C15 + b) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 27
    return x & 0x7FFFFFFFFFFFFFFF
