"""Result tables for experiments.

Benchmarks print their output in the same row/column layout as the paper's
tables and figure captions; :class:`ResultTable` provides a small, dependency
free text renderer for that purpose, plus dict export for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence
from typing import Any

__all__ = ["ResultTable"]


@dataclass
class ResultTable:
    """A titled table of heterogeneous rows.

    Example:
        >>> table = ResultTable("Tab. 2", ["RSRP bin", "4G", "5G"])
        >>> table.add_row(["[-60,-40)", "0.13%", "0.95%"])
        >>> print(table.render())  # doctest: +SKIP
    """

    title: str
    columns: Sequence[str]
    rows: list[list[Any]] = field(default_factory=list)

    def add_row(self, row: Iterable[Any]) -> None:
        """Append a row; must match the number of columns."""
        cells = list(row)
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        """Render an aligned, pipe-separated text table."""
        headers = [str(c) for c in self.columns]
        body = [[_format_cell(c) for c in row] for row in self.rows]
        widths = [len(h) for h in headers]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("-+-".join("-" * w for w in widths))
        for row in body:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Export rows as column-keyed dictionaries."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> list[Any]:
        """Extract one column by header name."""
        try:
            idx = list(self.columns).index(name)
        except ValueError:
            raise KeyError(f"no column named {name!r}") from None
        return [row[idx] for row in self.rows]


def _format_cell(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
