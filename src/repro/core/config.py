"""Configuration dataclasses describing the measured networks.

The values mirror the deployment the paper measured: a 5G NSA network on the
n78 band (3.5 GHz carrier, 100 MHz TDD) co-sited with a 4G LTE network on the
b3 band (1.84 GHz carrier, 20 MHz FDD).  Every experiment takes these profiles
as input, so alternative deployments (e.g. a different slot ratio or MIMO
rank) can be explored by constructing modified profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "RadioProfile",
    "HandoffConfig",
    "LTE_PROFILE",
    "NR_PROFILE",
    "DEFAULT_HANDOFF_CONFIG",
]


@dataclass(frozen=True)
class RadioProfile:
    """Physical-layer profile of one radio access technology.

    Attributes:
        name: Human-readable RAT name.
        generation: 4 for LTE, 5 for NR.
        carrier_mhz: Downlink carrier frequency in MHz.
        bandwidth_mhz: Channel bandwidth in MHz.
        duplex: ``"TDD"`` or ``"FDD"``.
        dl_slot_fraction: Fraction of airtime available to the downlink.
            The measured NR cell used a 3:1 DL:UL TDD split (Rel-15 TS
            38.306); FDD dedicates the whole band to each direction.
        ul_slot_fraction: Fraction of airtime available to the uplink.
        num_prb: Physical resource blocks in the channel.
        subcarrier_khz: Subcarrier spacing.
        symbols_per_slot: OFDM symbols per slot (normal CP).
        mimo_layers: Spatial multiplexing rank.
        tx_power_dbm: Base-station transmit power.  Calibrated jointly with
            the propagation model so the blanket survey reproduces Tab. 1/2:
            the anchor eNBs are moderate macros (37 dBm; infill sites back off
            a further 12 dB as street micros), while the gNB conducts
            55 dBm into a 24 dBi massive-MIMO beamformed panel
            (EIRP ~79 dBm).
        base_station_cost_usd: Capital cost of one macro site (Sec. 3.3).
    """

    name: str
    generation: int
    carrier_mhz: float
    bandwidth_mhz: float
    duplex: str
    dl_slot_fraction: float
    ul_slot_fraction: float
    num_prb: int
    subcarrier_khz: float
    symbols_per_slot: int
    mimo_layers: int
    tx_power_dbm: float
    base_station_cost_usd: float

    def __post_init__(self) -> None:
        if self.duplex not in ("TDD", "FDD"):
            raise ValueError(f"duplex must be 'TDD' or 'FDD', got {self.duplex!r}")
        if not 0.0 < self.dl_slot_fraction <= 1.0:
            raise ValueError(f"dl_slot_fraction out of (0, 1]: {self.dl_slot_fraction}")
        if not 0.0 < self.ul_slot_fraction <= 1.0:
            raise ValueError(f"ul_slot_fraction out of (0, 1]: {self.ul_slot_fraction}")
        if self.duplex == "TDD" and self.dl_slot_fraction + self.ul_slot_fraction > 1.0 + 1e-9:
            raise ValueError("TDD DL and UL slot fractions cannot exceed the frame")

    @property
    def bandwidth_hz(self) -> float:
        """Channel bandwidth in hertz."""
        return self.bandwidth_mhz * 1e6

    @property
    def carrier_hz(self) -> float:
        """Carrier frequency in hertz."""
        return self.carrier_mhz * 1e6

    @property
    def slot_duration_s(self) -> float:
        """Slot duration from numerology: 1 ms at 15 kHz, halved per doubling."""
        return 1e-3 * (15.0 / self.subcarrier_khz)

    @property
    def subcarriers_per_prb(self) -> int:
        """Subcarriers per physical resource block (always 12)."""
        return 12

    def with_overrides(self, **changes: object) -> "RadioProfile":
        """Return a copy with selected fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass(frozen=True)
class HandoffConfig:
    """A3-event hand-off parameters observed in the operator configuration.

    The paper extracts a 3 dB effective RSRQ threshold and a 324 ms
    time-to-trigger from the RRC reconfiguration messages (Sec. 3.4).
    """

    hysteresis_db: float = 3.0
    time_to_trigger_s: float = 0.324
    frequency_offset_db: float = 0.0
    cell_offset_db: float = 0.0
    report_interval_s: float = 0.040

    def __post_init__(self) -> None:
        if self.hysteresis_db < 0:
            raise ValueError(f"hysteresis must be >= 0, got {self.hysteresis_db}")
        if self.time_to_trigger_s < 0:
            raise ValueError(f"time-to-trigger must be >= 0, got {self.time_to_trigger_s}")
        if self.report_interval_s <= 0:
            raise ValueError(f"report interval must be > 0, got {self.report_interval_s}")


#: The measured 4G LTE network: b3 band, FDD, 20 MHz, 2x2 MIMO.
LTE_PROFILE = RadioProfile(
    name="4G LTE",
    generation=4,
    carrier_mhz=1840.0,
    bandwidth_mhz=20.0,
    duplex="FDD",
    dl_slot_fraction=1.0,
    ul_slot_fraction=1.0,
    num_prb=100,
    subcarrier_khz=15.0,
    symbols_per_slot=14,
    mimo_layers=2,
    tx_power_dbm=37.0,
    base_station_cost_usd=14_500.0,
)

#: The measured 5G NR network: n78 band, TDD 3:1 DL:UL, 100 MHz, 4x4 MIMO.
NR_PROFILE = RadioProfile(
    name="5G NR",
    generation=5,
    carrier_mhz=3500.0,
    bandwidth_mhz=100.0,
    duplex="TDD",
    dl_slot_fraction=0.75,
    ul_slot_fraction=0.25,
    num_prb=273,
    subcarrier_khz=30.0,
    symbols_per_slot=14,
    mimo_layers=4,
    tx_power_dbm=52.0,
    base_station_cost_usd=28_833.40,
)

DEFAULT_HANDOFF_CONFIG = HandoffConfig()
