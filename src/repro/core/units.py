"""Unit conversions used throughout the toolkit.

The radio layer works in logarithmic units (dBm, dB) while the network and
energy layers work in linear units (watts, bits per second).  Keeping the
conversions in one place avoids the classic factor-of-10 bugs when moving
between the two domains.
"""

from __future__ import annotations

import math

__all__ = [
    "dbm_to_mw",
    "mw_to_dbm",
    "db_to_linear",
    "linear_to_db",
    "mbps",
    "gbps",
    "kbps",
    "BITS_PER_BYTE",
    "KB",
    "MB",
    "GB",
    "MS",
    "US",
    "thermal_noise_dbm",
    "UNIT_DIMENSIONS",
    "LOG_DOMAIN_DIMENSIONS",
    "unit_suffix",
]

BITS_PER_BYTE = 8

#: Sizes in bytes.
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Durations in seconds.
MS = 1e-3
US = 1e-6

#: Thermal noise power spectral density at 290 K, in dBm/Hz.
_NOISE_PSD_DBM_HZ = -174.0

#: The unit-suffix lattice: every canonical variable-name suffix used in
#: this codebase, mapped to the physical dimension it denotes.  The REP002
#: lint rule (:mod:`repro.lint.rules.units`) is derived from this table —
#: two names may be added/subtracted or passed through a keyword argument
#: only when their suffixes agree (log-domain quantities are mutually
#: compatible: ``x_dbm + gain_db`` is the *point* of working in dB).
#: Multi-token suffixes (``dbm_hz``) take precedence over their tails.
UNIT_DIMENSIONS: dict[str, str] = {
    # log-domain (mutually compatible under +/-)
    "dbm": "log-power",
    "db": "log-ratio",
    "dbi": "log-ratio",
    "dbm_hz": "log-power-density",
    # linear power
    "w": "power",
    "mw": "power",
    # frequency
    "hz": "frequency",
    "khz": "frequency",
    "mhz": "frequency",
    "ghz": "frequency",
    # time
    "s": "time",
    "ms": "time",
    "us": "time",
    "ns": "time",
    # distance
    "m": "distance",
    "km": "distance",
    # data rate
    "bps": "rate",
    "kbps": "rate",
    "mbps": "rate",
    "gbps": "rate",
    # data volume
    "bits": "data",
    "bytes": "data",
    "pkts": "data",
    # energy (uj/nj show up in per-bit figures: ~µJ/bit on 4G, nJ-scale
    # per-bit energy at 5G line rates)
    "j": "energy",
    "mj": "energy",
    "uj": "energy",
    "nj": "energy",
}

#: Dimensions whose members may be mixed in additive expressions: adding
#: a dB ratio to a dBm level (or a dBm/Hz density) is log-domain
#: arithmetic, not a unit error.
LOG_DOMAIN_DIMENSIONS: frozenset[str] = frozenset(
    {"log-power", "log-ratio", "log-power-density"}
)


def unit_suffix(name: str) -> str | None:
    """The canonical unit suffix carried by identifier ``name``, if any.

    Longest suffix wins so ``noise_psd_dbm_hz`` resolves to ``dbm_hz``,
    not ``hz``.  Matching is case-insensitive (constants are SHOUTED).
    """
    lowered = name.lower()
    best: str | None = None
    for suffix in UNIT_DIMENSIONS:
        if lowered == suffix or lowered.endswith("_" + suffix):
            if best is None or len(suffix) > len(best):
                best = suffix
    return best


def dbm_to_mw(dbm: float) -> float:
    """Convert a power level in dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert a power level in milliwatts to dBm.

    Raises:
        ValueError: if ``mw`` is not strictly positive (zero power has no
            logarithmic representation).
    """
    if mw <= 0.0:
        raise ValueError(f"power must be positive to express in dBm, got {mw}")
    return 10.0 * math.log10(mw)


def db_to_linear(db: float) -> float:
    """Convert a ratio expressed in dB to a linear ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear ratio to dB.

    Raises:
        ValueError: if ``ratio`` is not strictly positive.
    """
    if ratio <= 0.0:
        raise ValueError(f"ratio must be positive to express in dB, got {ratio}")
    return 10.0 * math.log10(ratio)


def mbps(value: float) -> float:
    """Express ``value`` megabits per second in bits per second."""
    return value * 1e6


def gbps(value: float) -> float:
    """Express ``value`` gigabits per second in bits per second."""
    return value * 1e9


def kbps(value: float) -> float:
    """Express ``value`` kilobits per second in bits per second."""
    return value * 1e3


def thermal_noise_dbm(bandwidth_hz: float, noise_figure_db: float = 7.0) -> float:
    """Thermal noise power over ``bandwidth_hz`` including receiver noise figure.

    Args:
        bandwidth_hz: Receiver bandwidth in hertz.
        noise_figure_db: Receiver noise figure (default 7 dB, a typical
            smartphone receiver).

    Returns:
        Noise floor in dBm.
    """
    if bandwidth_hz <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    return _NOISE_PSD_DBM_HZ + 10.0 * math.log10(bandwidth_hz) + noise_figure_db
