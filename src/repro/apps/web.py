"""Mobile web browsing: page-load-time measurement (Sec. 5.1).

PLT decomposes into content download and page rendering.  Download runs
as a real (simulated) TCP transfer, so TCP's transient behaviour — the
seconds-long ramp toward a multi-hundred-Mbps bandwidth — is what limits
it, exactly the paper's finding: most pages finish before TCP converges,
so 5G's 5x capacity only buys ~20% faster downloads (Fig. 16/17).
Rendering is a device-side cost independent of the network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import RadioProfile
from repro.core.units import MB
from repro.core.rng import default_rng
from repro.net.path import PathConfig, build_cellular_path
from repro.net.sim import Simulator
from repro.transport.base import TcpConnection
from repro.transport.iperf import make_cc

__all__ = ["WebPage", "PltBreakdown", "WEB_PAGE_CATALOG", "measure_plt", "image_page"]


@dataclass(frozen=True)
class WebPage:
    """A page model: transfer size plus a rendering-cost profile.

    Attributes:
        category: Paper's page category (search/image/shopping/map/video).
        size_bytes: Total content bytes fetched.
        base_render_s: Fixed parse/layout cost on the test device.
        render_s_per_mb: Incremental raster/layout cost per content MB.
        num_objects: Distinct resources on the page; each fetch chain costs
            a request round-trip plus server think time, amortized over
            HTTP/2's six concurrent streams.
    """

    category: str
    size_bytes: int
    base_render_s: float
    render_s_per_mb: float
    num_objects: int = 1

    @property
    def render_time_s(self) -> float:
        """Device-side rendering time — network-independent."""
        return self.base_render_s + self.render_s_per_mb * self.size_bytes / MB


#: The five site categories of Fig. 16 with representative page weights.
WEB_PAGE_CATALOG: tuple[WebPage, ...] = (
    WebPage("search", int(0.6 * MB), 0.30, 0.10, num_objects=24),
    WebPage("image", int(3.0 * MB), 0.35, 0.12, num_objects=16),
    WebPage("shopping", int(4.5 * MB), 0.80, 0.14, num_objects=64),
    WebPage("map", int(6.0 * MB), 1.10, 0.16, num_objects=48),
    WebPage("video", int(8.0 * MB), 0.70, 0.12, num_objects=30),
)

#: Server think time per object fetch chain.
_SERVER_THINK_S = 0.030
#: Concurrent HTTP/2 streams.
_PARALLEL_FETCHES = 6


def image_page(size_mb: float) -> WebPage:
    """An image page of ``size_mb`` MB (the Fig. 17 sweep)."""
    if size_mb <= 0:
        raise ValueError(f"page size must be positive, got {size_mb}")
    return WebPage("image", int(size_mb * MB), 0.15, 0.09, num_objects=8)


@dataclass(frozen=True)
class PltBreakdown:
    """Page load time split into its two phases (Fig. 16/17 bars)."""

    download_s: float
    render_s: float

    @property
    def total_s(self) -> float:
        """Total page load time: download plus render."""
        return self.download_s + self.render_s


def measure_plt(
    page: WebPage,
    profile: RadioProfile,
    algorithm: str = "bbr",
    scale: float = 0.1,
    seed: int = 1,
    timeout_s: float = 120.0,
) -> PltBreakdown:
    """Load ``page`` over a fresh TCP connection and measure the PLT.

    The transfer size is scaled together with the link rates so the
    download *time* is scale-invariant; caches and cookies are implicitly
    cold because every call builds a fresh connection (the paper clears
    them before each trial).
    """
    config = PathConfig(profile=profile, scale=scale)
    sim = Simulator()
    rng = default_rng(seed)
    path = build_cellular_path(sim, config, rng)
    cc = make_cc(algorithm, config.mss_bytes, rate_scale=scale)
    transfer = max(int(page.size_bytes * scale), config.mss_bytes)
    conn = TcpConnection.establish(sim, path, cc, transfer_bytes=transfer)
    conn.start()
    sim.run(until=timeout_s)
    if conn.sender.completed_at is None:
        raise RuntimeError(
            f"page download did not complete within {timeout_s}s "
            f"({conn.sender.cum_ack}/{transfer} bytes)"
        )
    chains = -(-page.num_objects // _PARALLEL_FETCHES)
    request_overhead = chains * (path.base_rtt_s + _SERVER_THINK_S)
    return PltBreakdown(
        download_s=conn.sender.completed_at + request_overhead,
        render_s=page.render_time_s,
    )
