"""UHD panoramic video telephony (the paper's 360TEL system, Sec. 5.2).

Models the full pipeline of a real-time 360-degree video call:

    camera capture -> patch splice -> H.264 hardware encode -> RTMP
    uplink push -> network -> decode -> render

The processing stages take constants measured by the paper's stopwatch
method (encode ~160 ms, decode ~50 ms, capture+splice+render ~440 ms);
the network stage is a packet-level simulation of the uplink.  The
headline result reproduces: even on 5G the end-to-end frame delay sits
near a second because processing outweighs transmission by ~10x (Fig. 20).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import RadioProfile
from repro.core.rng import default_rng
from repro.net.packet import DATA, Packet
from repro.net.path import PathConfig, build_cellular_path
from repro.net.sim import Simulator

__all__ = [
    "VideoProfile",
    "VIDEO_PROFILES",
    "FrameRecord",
    "VideoSessionResult",
    "run_video_session",
]

#: Frame-processing constants measured in Sec. 5.2 (seconds).
ENCODE_S = 0.160
DECODE_S = 0.050
CAPTURE_SPLICE_RENDER_S = 0.440

#: RTMP ingest/remux buffering at the EasyDSS relay plus the pulling leg
#: the receiver reads from; calibrated so the quiescent 5G end-to-end
#: frame delay sits near the measured ~950 ms (Fig. 20).
RTMP_RELAY_S = 0.235

#: A frame is frozen if it is displayed this much later than its slot.
FREEZE_THRESHOLD_S = 0.5

FPS = 30.0


@dataclass(frozen=True)
class VideoProfile:
    """Bit-rate profile of one panoramic resolution.

    ``fluctuation_sigma`` is the log-normal sigma of per-frame sizes;
    dynamic scenes (camera constantly moving) fluctuate far more than
    static ones, which is what overwhelms the 5G uplink at 5.7K (Fig. 19).
    """

    name: str
    mean_rate_bps: float
    static_sigma: float
    dynamic_sigma: float

    def sigma(self, dynamic: bool) -> float:
        """Log-normal sigma of per-frame sizes for the scene kind."""
        return self.dynamic_sigma if dynamic else self.static_sigma


#: Resolution ladder of the Insta360 ONE X pipeline (Fig. 18).
VIDEO_PROFILES: dict[str, VideoProfile] = {
    "720P": VideoProfile("720P", 6e6, 0.10, 0.25),
    "1080P": VideoProfile("1080P", 12e6, 0.10, 0.25),
    "4K": VideoProfile("4K", 45e6, 0.12, 0.35),
    "5.7K": VideoProfile("5.7K", 80e6, 0.15, 0.45),
}


@dataclass
class FrameRecord:
    """Life of one video frame through the pipeline."""

    index: int
    capture_time_s: float
    size_bytes: int
    sent_time_s: float | None = None
    network_done_s: float | None = None

    def display_time_s(self) -> float | None:
        """When the frame can appear at the far end."""
        if self.network_done_s is None:
            return None
        return self.network_done_s + DECODE_S

    def end_to_end_delay_s(self) -> float | None:
        """Stopwatch delay: capture wall-clock to remote display.

        ``display - capture`` already covers encode + uplink network +
        decode (all simulated); the camera-side capture/splice/render and
        the RTMP relay stage are fixed pipeline constants.
        """
        display = self.display_time_s()
        if display is None:
            return None
        return display - self.capture_time_s + CAPTURE_SPLICE_RENDER_S + RTMP_RELAY_S


@dataclass
class VideoSessionResult:
    """Everything a telephony session run produced."""

    profile_name: str
    dynamic: bool
    duration_s: float
    frames: list[FrameRecord] = field(default_factory=list)
    throughput_trace: list[tuple[float, float]] = field(default_factory=list)

    @property
    def delivered_frames(self) -> list[FrameRecord]:
        """Frames whose last packet reached the far end."""
        return [f for f in self.frames if f.network_done_s is not None]

    @property
    def mean_throughput_bps(self) -> float:
        """Receiver-side video throughput over the session."""
        delivered = self.delivered_frames
        if not delivered:
            return 0.0
        return sum(f.size_bytes for f in delivered) * 8 / self.duration_s

    def frame_delays_s(self) -> list[float]:
        """End-to-end frame delays (Fig. 20 series)."""
        return [
            delay
            for f in self.delivered_frames
            if (delay := f.end_to_end_delay_s()) is not None
        ]

    def freeze_count(self) -> int:
        """Frames whose network transit exceeds the freeze threshold, plus
        frames that never arrived (Fig. 19's freeze events)."""
        freezes = 0
        for frame in self.frames:
            if frame.network_done_s is None or frame.sent_time_s is None:
                freezes += 1
                continue
            if frame.network_done_s - frame.sent_time_s > FREEZE_THRESHOLD_S:
                freezes += 1
        return freezes


def run_video_session(
    profile: RadioProfile,
    resolution: str,
    dynamic: bool,
    duration_s: float = 30.0,
    scale: float = 0.25,
    seed: int = 1,
) -> VideoSessionResult:
    """Run a 360TEL uplink pushing session and collect frame statistics.

    Args:
        profile: Radio profile carrying the uplink.
        resolution: Key into :data:`VIDEO_PROFILES`.
        dynamic: Whether the camera view is constantly changing.
        duration_s: Session length.
        scale: Simulation bandwidth scale (video bit-rates scale along, so
            capacity ratios are preserved).
        seed: Frame-size and cross-traffic randomness.
    """
    try:
        video = VIDEO_PROFILES[resolution]
    except KeyError:
        raise ValueError(
            f"unknown resolution {resolution!r}; choose from {sorted(VIDEO_PROFILES)}"
        ) from None

    sim = Simulator()
    rng = default_rng(seed)
    config = PathConfig(profile=profile, direction="ul", scale=scale)
    path = build_cellular_path(sim, config, rng)
    result = VideoSessionResult(
        profile_name=resolution, dynamic=dynamic, duration_s=duration_s
    )

    mean_frame_bytes = video.mean_rate_bps * scale / FPS / 8
    sigma = video.sigma(dynamic)
    packet_bytes = 1400
    pending: dict[int, tuple[FrameRecord, int]] = {}  # frame idx -> (rec, packets left)
    window_bytes = [0]
    window_start = [0.0]

    def on_delivery(packet: Packet) -> None:
        idx = packet.meta["frame"]
        record, remaining = pending[idx]
        remaining -= 1
        window_bytes[0] += packet.size_bytes
        if remaining == 0:
            record.network_done_s = sim.now
            del pending[idx]
        else:
            pending[idx] = (record, remaining)
        # 1-second receiver throughput buckets (Fig. 19 trace).
        if sim.now - window_start[0] >= 1.0:
            result.throughput_trace.append(
                (window_start[0], window_bytes[0] * 8 / (sim.now - window_start[0]))
            )
            window_start[0] = sim.now
            window_bytes[0] = 0

    path.on_forward_delivery(on_delivery)

    def capture(index: int) -> None:
        t = sim.now
        size = int(mean_frame_bytes * float(rng.lognormal(0.0, sigma)))
        size = max(size, packet_bytes)
        record = FrameRecord(index=index, capture_time_s=t, size_bytes=size)
        result.frames.append(record)
        sim.schedule(ENCODE_S, push_frame, record)
        if t + 1.0 / FPS < duration_s:
            sim.schedule(1.0 / FPS, capture, index + 1)

    def push_frame(record: FrameRecord) -> None:
        record.sent_time_s = sim.now
        packets = max(1, -(-record.size_bytes // packet_bytes))
        pending[record.index] = (record, packets)
        for i in range(packets):
            path.send_forward(
                Packet(
                    flow_id=1,
                    kind=DATA,
                    size_bytes=packet_bytes,
                    seq=record.index * 100_000 + i,
                    created_at=sim.now,
                    meta={"frame": record.index},
                )
            )

    capture(0)
    sim.run(until=duration_s + 5.0)  # drain tail frames
    return result
