"""Bulk file transfer over a cellular path.

Used directly for the paper's download experiments and as the saturated
traffic source for the energy study (Tab. 4's "File" workload).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import RadioProfile
from repro.core.rng import default_rng
from repro.net.path import PathConfig, build_cellular_path
from repro.net.sim import Simulator
from repro.transport.base import TcpConnection
from repro.transport.iperf import make_cc

__all__ = ["TransferResult", "download_file"]


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one bulk transfer."""

    size_bytes: int
    duration_s: float
    retransmissions: int

    @property
    def goodput_bps(self) -> float:
        """Application-level goodput of the transfer."""
        return self.size_bytes * 8 / self.duration_s


def download_file(
    profile: RadioProfile,
    size_bytes: int,
    algorithm: str = "bbr",
    scale: float = 0.1,
    seed: int = 1,
    timeout_s: float = 600.0,
) -> TransferResult:
    """Download ``size_bytes`` over a fresh TCP connection.

    The transfer size scales with the link rates so the wall-clock
    duration is scale-invariant.
    """
    if size_bytes <= 0:
        raise ValueError(f"size must be positive, got {size_bytes}")
    config = PathConfig(profile=profile, scale=scale)
    sim = Simulator()
    rng = default_rng(seed)
    path = build_cellular_path(sim, config, rng)
    cc = make_cc(algorithm, config.mss_bytes, rate_scale=scale)
    scaled = max(int(size_bytes * scale), config.mss_bytes)
    conn = TcpConnection.establish(sim, path, cc, transfer_bytes=scaled)
    conn.start()
    sim.run(until=timeout_s)
    if conn.sender.completed_at is None:
        raise RuntimeError(f"transfer did not complete within {timeout_s}s")
    return TransferResult(
        size_bytes=size_bytes,
        duration_s=conn.sender.completed_at,
        retransmissions=conn.sender.stats.retransmissions,
    )
