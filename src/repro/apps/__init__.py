"""Application layer: web browsing, panoramic video telephony, file transfer."""

from repro.apps.filetransfer import TransferResult, download_file
from repro.apps.video import (
    VIDEO_PROFILES,
    FrameRecord,
    VideoProfile,
    VideoSessionResult,
    run_video_session,
)
from repro.apps.web import (
    WEB_PAGE_CATALOG,
    PltBreakdown,
    WebPage,
    image_page,
    measure_plt,
)

__all__ = [
    "FrameRecord",
    "PltBreakdown",
    "TransferResult",
    "VIDEO_PROFILES",
    "VideoProfile",
    "VideoSessionResult",
    "WEB_PAGE_CATALOG",
    "WebPage",
    "download_file",
    "image_page",
    "measure_plt",
    "run_video_session",
]
