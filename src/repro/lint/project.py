"""The whole-program lint pass: symbol table, call graph, ProjectRules.

The per-file pass (:mod:`repro.lint.engine`) sees one module at a time,
so a ``_ms`` value crossing a function boundary into an ``_s`` parameter
two modules away is invisible to it.  This module assembles the parsed
:class:`~repro.lint.engine.FileContext` cache into a
:class:`ProjectContext`:

* a **symbol table** mapping fully-qualified dotted names to function
  and method definitions (``repro.mobility.handoff.HandoffEngine.step``),
  with import aliases — including relative imports and chained
  re-exports (``from repro.x import f as g``) — resolved to their
  defining module, and
* a **call graph** of resolved edges, attributing every call to its
  enclosing function (``self.method(...)`` resolves within the
  enclosing class; bare names resolve to module-local definitions
  before imports).

``ProjectRule`` subclasses register with :func:`project_rule` and
implement :meth:`~ProjectRule.check_project`; the engine's
:func:`~repro.lint.engine.lint_paths` runs them after the file pass, so
their findings flow through the same pragma and baseline machinery.

The graph itself is exportable (``repro lint --graph json|dot``) for CI
artifacts and ad-hoc archaeology.
"""

from __future__ import annotations

import ast
import json
from collections import deque
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.lint.engine import FileContext, Rule, Violation

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ProjectContext",
    "ProjectRule",
    "all_project_rules",
    "build_project",
    "check_project",
    "project_rule",
]

#: Schema of the ``--graph json`` export.
GRAPH_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str  # e.g. repro.mobility.handoff.HandoffEngine.step
    module: str
    name: str  # bare function name (methods: just the method name)
    class_name: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: FileContext
    params: tuple[str, ...]  # positional-mappable params, self/cls dropped
    kwonly: tuple[str, ...]
    has_vararg: bool
    has_kwarg: bool
    _walk_cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def all_params(self) -> tuple[str, ...]:
        return self.params + self.kwonly

    def walk(self, *types: type) -> list[ast.AST]:
        """Nodes of the given types under this definition, walked once.

        The per-function analogue of :meth:`FileContext.walk`: REP009
        and REP010 each inspect several node families per function, and
        sharing one ``ast.walk`` keeps the project pass a small constant
        over the file pass.
        """
        cached = self._walk_cache.get(types)
        if cached is None:
            nodes = self._walk_cache.get(())
            if nodes is None:
                nodes = self._walk_cache[()] = list(ast.walk(self.node))
            cached = self._walk_cache[types] = [
                node for node in nodes if isinstance(node, types)
            ]
        return cached


@dataclass(frozen=True)
class CallSite:
    """One resolved call-graph edge."""

    caller: str  # qualname of the enclosing function, or the module name
    callee: str  # qualname of the resolved definition
    node: ast.Call
    ctx: FileContext

    @property
    def line(self) -> int:
        return self.node.lineno


def _function_params(
    node: ast.FunctionDef | ast.AsyncFunctionDef, is_method: bool
) -> tuple[tuple[str, ...], tuple[str, ...], bool, bool]:
    args = node.args
    positional = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if is_method and positional and positional[0] in ("self", "cls"):
        positional = positional[1:]
    kwonly = tuple(a.arg for a in args.kwonlyargs)
    return tuple(positional), kwonly, args.vararg is not None, args.kwarg is not None


def _is_staticmethod(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return any(
        isinstance(dec, ast.Name) and dec.id == "staticmethod"
        for dec in node.decorator_list
    )


class ProjectContext:
    """The whole program: every parsed module, symbol and call edge."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        #: module qualname -> parsed file
        self.modules: dict[str, FileContext] = {}
        #: function qualname -> definition
        self.functions: dict[str, FunctionInfo] = {}
        #: ``module.local`` alias -> imported qualified name (re-exports)
        self._aliases: dict[str, str] = {}
        #: every resolved call edge, in file/line order
        self.calls: list[CallSite] = []
        self._calls_by_caller: dict[str, list[CallSite]] = {}
        self._calls_by_callee: dict[str, list[CallSite]] = {}

        for ctx in contexts:
            if not ctx.module_name:
                continue
            self.modules[ctx.module_name] = ctx
        for ctx in self.modules.values():
            self._collect_definitions(ctx)
        for ctx in self.modules.values():
            self._collect_calls(ctx)

    # -- symbol table -------------------------------------------------

    def _collect_definitions(self, ctx: FileContext) -> None:
        module = ctx.module_name
        for local, qualified in ctx.imports.aliases.items():
            self._aliases[f"{module}.{local}"] = qualified
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(ctx, node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add_function(ctx, item, class_name=node.name)

    def _add_function(
        self,
        ctx: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> None:
        is_method = class_name is not None and not _is_staticmethod(node)
        params, kwonly, has_vararg, has_kwarg = _function_params(node, is_method)
        scope = f"{ctx.module_name}.{class_name}" if class_name else ctx.module_name
        qualname = f"{scope}.{node.name}"
        self.functions[qualname] = FunctionInfo(
            qualname=qualname,
            module=ctx.module_name,
            name=node.name,
            class_name=class_name,
            node=node,
            ctx=ctx,
            params=params,
            kwonly=kwonly,
            has_vararg=has_vararg,
            has_kwarg=has_kwarg,
        )

    def resolve_function(self, qualified: str) -> FunctionInfo | None:
        """The definition ``qualified`` names, following re-export chains.

        ``repro.radio.path_loss`` resolves through
        ``repro/radio/__init__.py``'s ``from .propagation import
        path_loss`` to ``repro.radio.propagation.path_loss``; diamond
        import chains terminate via a visited set.
        """
        seen: set[str] = set()
        current = qualified
        while current not in seen:
            seen.add(current)
            info = self.functions.get(current)
            if info is not None:
                return info
            alias = self._aliases.get(current)
            if alias is None:
                return None
            current = alias
        return None

    # -- call graph ---------------------------------------------------

    def _collect_calls(self, ctx: FileContext) -> None:
        # An explicit stack instead of recursion + ast.iter_child_nodes:
        # this traversal touches every node of every file a second time
        # after the file pass, so per-node overhead is the project pass's
        # single hottest cost.
        module = ctx.module_name
        stack: list[tuple[ast.AST, str, str | None]] = [(ctx.tree, module, None)]
        push = stack.append
        while stack:
            node, caller, class_name = stack.pop()
            for value in node.__dict__.values():
                if value.__class__ is list:
                    children = value
                elif isinstance(value, ast.AST):
                    children = (value,)
                else:
                    continue
                for child in children:
                    if not isinstance(child, ast.AST):
                        continue
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if caller == module and class_name is None:
                            inner_caller = f"{module}.{child.name}"
                        elif caller == f"{module}.{class_name}":
                            inner_caller = f"{caller}.{child.name}"
                        else:
                            inner_caller = caller  # nested defs fold into parent
                        push((child, inner_caller, None))
                    elif isinstance(child, ast.ClassDef):
                        push((child, f"{module}.{child.name}", child.name))
                    else:
                        if isinstance(child, ast.Call):
                            self._add_call(ctx, child, caller, class_name)
                        push((child, caller, class_name))

    def _enclosing_class(self, caller: str, module: str) -> str | None:
        remainder = caller[len(module) + 1 :] if caller.startswith(module + ".") else ""
        parts = remainder.split(".")
        return parts[0] if len(parts) == 2 else None

    def _add_call(
        self, ctx: FileContext, call: ast.Call, caller: str, class_name: str | None
    ) -> None:
        target = self._resolve_call_target(ctx, call, caller)
        if target is None:
            return
        self.calls.append(CallSite(caller=caller, callee=target, node=call, ctx=ctx))
        site = self.calls[-1]
        self._calls_by_caller.setdefault(caller, []).append(site)
        self._calls_by_callee.setdefault(target, []).append(site)

    def _resolve_call_target(
        self, ctx: FileContext, call: ast.Call, caller: str
    ) -> str | None:
        module = ctx.module_name
        func = call.func
        if isinstance(func, ast.Name):
            # module-local definitions shadow imports of the same name
            local = self.resolve_function(f"{module}.{func.id}")
            if local is not None:
                return local.qualname
            qualified = ctx.imports.resolve(func)
            if qualified is not None:
                info = self.resolve_function(qualified)
                if info is not None:
                    return info.qualname
            return None
        if isinstance(func, ast.Attribute):
            # self.method() / cls.method() within the enclosing class
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
            ):
                enclosing = self._enclosing_class(caller, module)
                if enclosing is not None:
                    info = self.resolve_function(
                        f"{module}.{enclosing}.{func.attr}"
                    )
                    if info is not None:
                        return info.qualname
                return None
            qualified = ctx.imports.resolve(func)
            if qualified is not None:
                info = self.resolve_function(qualified)
                if info is not None:
                    return info.qualname
        return None

    def calls_to(self, qualname: str) -> list[CallSite]:
        """Every resolved call site targeting ``qualname``."""
        return list(self._calls_by_callee.get(qualname, []))

    def calls_from(self, caller: str) -> list[CallSite]:
        """Every resolved call made from inside ``caller``."""
        return list(self._calls_by_caller.get(caller, []))

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """Qualnames of all functions reachable from ``roots`` (inclusive)."""
        seen: set[str] = set()
        queue: deque[str] = deque(roots)
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            for site in self._calls_by_caller.get(current, []):
                if site.callee not in seen:
                    queue.append(site.callee)
        return seen

    # -- export -------------------------------------------------------

    def graph_dict(self) -> dict[str, object]:
        """JSON-ready call-graph document (stable ordering)."""
        modules = {
            name: {
                "path": ctx.display_path,
                "functions": sorted(
                    info.qualname
                    for info in self.functions.values()
                    if info.module == name
                ),
            }
            for name, ctx in sorted(self.modules.items())
        }
        edges = [
            {
                "caller": site.caller,
                "callee": site.callee,
                "path": site.ctx.display_path,
                "line": site.line,
            }
            for site in sorted(
                self.calls, key=lambda s: (s.ctx.display_path, s.line, s.callee)
            )
        ]
        return {
            "schema_version": GRAPH_SCHEMA_VERSION,
            "modules": modules,
            "edges": edges,
        }

    def to_json(self) -> str:
        return json.dumps(self.graph_dict(), indent=2)

    def to_dot(self) -> str:
        """Graphviz rendering of the resolved call edges."""
        lines = ["digraph replint {", "  rankdir=LR;", "  node [shape=box];"]
        seen: set[tuple[str, str]] = set()
        for site in sorted(self.calls, key=lambda s: (s.caller, s.callee)):
            edge = (site.caller, site.callee)
            if edge in seen:
                continue
            seen.add(edge)
            lines.append(f'  "{site.caller}" -> "{site.callee}";')
        lines.append("}")
        return "\n".join(lines)


class ProjectRule(Rule):
    """Base class for whole-program rules.

    Subclasses implement :meth:`check_project` instead of ``check``;
    violations are still anchored to a concrete file via
    ``self.violation(info.ctx, node, ...)`` so pragmas and the baseline
    treat them exactly like file-pass findings.
    """

    def check(self, ctx: FileContext) -> Iterator[Violation]:  # pragma: no cover
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        raise NotImplementedError


_PROJECT_REGISTRY: dict[str, ProjectRule] = {}


def project_rule(cls: type[ProjectRule]) -> type[ProjectRule]:
    """Class decorator registering a project rule under its ``id``."""
    instance = cls()
    if instance.id in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate project rule id {instance.id!r}")
    _PROJECT_REGISTRY[instance.id] = instance
    return cls


def all_project_rules() -> list[ProjectRule]:
    """Every registered project rule, ordered by id."""
    import repro.lint.rules  # noqa: F401  (registration side effect)

    return [_PROJECT_REGISTRY[rule_id] for rule_id in sorted(_PROJECT_REGISTRY)]


def build_project(contexts: Sequence[FileContext]) -> ProjectContext:
    """Assemble the whole-program view from the parsed-file cache."""
    return ProjectContext(contexts)


def check_project(
    contexts: Sequence[FileContext],
    rules: Iterable[ProjectRule] | None = None,
) -> list[Violation]:
    """Run the project pass; returns non-suppressed violations."""
    active = list(rules) if rules is not None else all_project_rules()
    if not active:
        return []
    project = build_project(contexts)
    by_path = {ctx.display_path: ctx for ctx in contexts}
    violations: list[Violation] = []
    for rule_ in active:
        for violation in rule_.check_project(project):
            ctx = by_path.get(violation.path)
            if ctx is not None and ctx.suppressed(
                violation.line, violation.rule, violation.end_line
            ):
                continue
            violations.append(violation)
    return sorted(violations)
