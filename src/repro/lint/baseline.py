"""Committed-baseline support: grandfather old violations, gate new ones.

A baseline entry is ``(rule, path, fingerprint)`` where the fingerprint
is the stripped source text of the offending line — deliberately *not*
the line number, so entries survive unrelated edits above them.  Each
entry carries a count: two identical offending lines in one file need
two entries (``--write-baseline`` handles this automatically).

Matching consumes entries, so a baseline with one entry for a pattern
lets exactly one occurrence through; a second, newly introduced copy of
the same line still fails the gate.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.engine import LintResult, Violation

__all__ = ["BASELINE_SCHEMA_VERSION", "Baseline", "DEFAULT_BASELINE_NAME"]

BASELINE_SCHEMA_VERSION = 1

#: Looked for in the working directory when ``--baseline`` is not given.
DEFAULT_BASELINE_NAME = "lint-baseline.json"

_Key = tuple[str, str, str]


@dataclass
class Baseline:
    """A multiset of grandfathered violations."""

    entries: Counter = field(default_factory=Counter)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        version = payload.get("schema_version")
        if version != BASELINE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported baseline schema {version!r} in {path} "
                f"(expected {BASELINE_SCHEMA_VERSION}); regenerate with "
                "`repro lint --write-baseline`"
            )
        entries: Counter = Counter()
        for entry in payload.get("entries", []):
            key: _Key = (entry["rule"], entry["path"], entry["fingerprint"])
            entries[key] += int(entry.get("count", 1))
        return cls(entries=entries)

    @classmethod
    def from_violations(cls, violations: list[Violation]) -> "Baseline":
        entries: Counter = Counter()
        for violation in violations:
            entries[(violation.rule, violation.path, violation.fingerprint)] += 1
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        """Write the baseline as stable, diff-friendly JSON."""
        payload = {
            "schema_version": BASELINE_SCHEMA_VERSION,
            "entries": [
                {"rule": rule, "path": file_path, "fingerprint": fingerprint, "count": count}
                for (rule, file_path, fingerprint), count in sorted(self.entries.items())
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def apply(self, result: LintResult) -> LintResult:
        """Partition ``result`` into new vs baselined violations."""
        remaining = Counter(self.entries)
        fresh: list[Violation] = []
        grandfathered: list[Violation] = []
        for violation in result.violations:
            key = (violation.rule, violation.path, violation.fingerprint)
            if remaining[key] > 0:
                remaining[key] -= 1
                grandfathered.append(violation)
            else:
                fresh.append(violation)
        return LintResult(
            violations=fresh,
            baselined=result.baselined + grandfathered,
            files_scanned=result.files_scanned,
        )
