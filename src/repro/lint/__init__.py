"""replint: the repro domain linter.

An AST-based static-analysis pass enforcing the invariants generic
linters cannot see:

* **REP001 determinism** — all randomness flows through
  :mod:`repro.core.rng` (named streams / threaded generators).
* **REP002 unit consistency** — identifier unit suffixes
  (``_dbm``, ``_hz``, ``_s``, ...) are never mixed across additive
  expressions or keyword-argument boundaries.
* **REP003 simulator API** — no negative literal delays, no discarded
  cancellable timer handles, no ``Simulator()`` construction inside
  experiment sweep loops.
* **REP004 hidden state** — no mutable default arguments; no mutable
  module-level globals in experiment modules.

On top of the per-file pass, a **whole-program pass**
(:mod:`repro.lint.project`) builds a project symbol table and call
graph and runs the interprocedural rules:

* **REP009 unit flow** — unit suffixes inferred and checked *across*
  function boundaries (positional arguments, conflicting inference,
  return units).
* **REP010 rng flow** — generator provenance taint: everything
  reaching an experiment ``run()`` must flow from the campaign seed,
  and no experiment-reachable path may mutate module-level state.

See ``EXPERIMENTS.md`` ("Determinism and unit conventions") for the
conventions themselves, the pragma syntax and baseline workflow, and
the README rule catalogue for one-line summaries of every rule.
"""

from repro.lint.baseline import Baseline
from repro.lint.engine import (
    FileContext,
    LintResult,
    Rule,
    Violation,
    all_rules,
    lint_paths,
    parse_files,
    rule,
)
from repro.lint.project import (
    ProjectContext,
    ProjectRule,
    all_project_rules,
    build_project,
    project_rule,
)
from repro.lint.report import render_json, render_text

__all__ = [
    "Baseline",
    "FileContext",
    "LintResult",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "Violation",
    "all_project_rules",
    "all_rules",
    "build_project",
    "lint_paths",
    "parse_files",
    "project_rule",
    "render_json",
    "render_text",
    "rule",
]
