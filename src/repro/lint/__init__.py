"""replint: the repro domain linter.

An AST-based static-analysis pass enforcing the invariants generic
linters cannot see:

* **REP001 determinism** — all randomness flows through
  :mod:`repro.core.rng` (named streams / threaded generators).
* **REP002 unit consistency** — identifier unit suffixes
  (``_dbm``, ``_hz``, ``_s``, ...) are never mixed across additive
  expressions or keyword-argument boundaries.
* **REP003 simulator API** — no negative literal delays, no discarded
  cancellable timer handles, no ``Simulator()`` construction inside
  experiment sweep loops.
* **REP004 hidden state** — no mutable default arguments; no mutable
  module-level globals in experiment modules.

See ``EXPERIMENTS.md`` ("Determinism and unit conventions") for the
conventions themselves, the pragma syntax and baseline workflow.
"""

from repro.lint.baseline import Baseline
from repro.lint.engine import (
    FileContext,
    LintResult,
    Rule,
    Violation,
    all_rules,
    lint_paths,
    rule,
)
from repro.lint.report import render_json, render_text

__all__ = [
    "Baseline",
    "FileContext",
    "LintResult",
    "Rule",
    "Violation",
    "all_rules",
    "lint_paths",
    "render_json",
    "render_text",
    "rule",
]
