"""The replint rule engine: contexts, registry, pragmas and the runner.

replint is a domain linter: its rules encode invariants of *this*
codebase (sanctioned randomness, unit-suffix discipline, simulator API
contracts) that generic linters cannot know about.  Each rule lives in
one module under :mod:`repro.lint.rules` and registers itself with the
:func:`rule` decorator; the engine parses every target file once and
hands the same :class:`FileContext` to every rule.

Suppression happens at two levels:

* a ``# replint: ignore[REP001]`` pragma on the reported line silences
  named rules (bare ``# replint: ignore`` silences them all), and
* a committed baseline file grandfathers existing violations so the
  gate only fails on *new* ones (see :mod:`repro.lint.baseline`).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "FileContext",
    "LintResult",
    "Rule",
    "Violation",
    "all_rules",
    "lint_paths",
    "rule",
]

#: Matches ``# replint: ignore`` and ``# replint: ignore[REP001,REP003]``.
_PRAGMA_RE = re.compile(r"#\s*replint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".repro_cache"}


@dataclass(frozen=True, order=True)
class Violation:
    """One rule finding, anchored to a source line.

    ``fingerprint`` (the stripped source text of the reported line) is
    what the baseline matches on, so grandfathered entries survive the
    line-number drift of unrelated edits.
    """

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str
    snippet: str

    @property
    def fingerprint(self) -> str:
        return self.snippet

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for the JSON report."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }


class Rule:
    """Base class for replint rules.

    Subclasses set ``id``/``name``/``severity`` and implement
    :meth:`check`, yielding violations via ``ctx.violation(...)``.
    Registration is explicit through the :func:`rule` decorator so a
    rule module is exactly one import away from being active.
    """

    id: str = "REP000"
    name: str = "unnamed"
    severity: str = "error"

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, ctx: "FileContext", node: ast.AST, message: str
    ) -> Violation:
        """A violation of this rule anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Violation(
            path=ctx.display_path,
            line=line,
            col=col,
            rule=self.id,
            severity=self.severity,
            message=message,
            snippet=ctx.source_line(line).strip(),
        )


_REGISTRY: dict[str, Rule] = {}


def rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator registering a rule instance under its ``id``."""
    instance = cls()
    if instance.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.id!r}")
    _REGISTRY[instance.id] = instance
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id (imports the rule modules)."""
    import repro.lint.rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


class ImportTable:
    """Maps local aliases to fully qualified import paths for one module.

    The table is flat (function-level imports are folded in with
    module-level ones); replint resolves *names*, not scopes, which is
    the right precision for spotting calls into banned modules.
    """

    def __init__(self, tree: ast.Module) -> None:
        self._aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self._aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        self._aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports are never to banned modules
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> str | None:
        """The fully qualified dotted name of ``node``, if import-rooted.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``;
        attribute chains rooted in local variables resolve to ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        qualified = self._aliases.get(node.id)
        if qualified is None:
            return None
        parts.append(qualified)
        return ".".join(reversed(parts))


@dataclass
class FileContext:
    """One parsed file plus the helpers rules need."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    imports: ImportTable
    lines: list[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, display_path: str) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            display_path=display_path,
            source=source,
            tree=tree,
            imports=ImportTable(tree),
            lines=source.splitlines(),
        )

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    @property
    def path_parts(self) -> tuple[str, ...]:
        return tuple(part.lower() for part in Path(self.display_path).parts)

    def in_package_dir(self, name: str) -> bool:
        """Is this file under a directory called ``name`` (e.g. 'experiments')?"""
        return name.lower() in self.path_parts[:-1]

    def is_module(self, *suffixes: str) -> bool:
        """Does the file path end with any of ``suffixes`` (posix style)?"""
        posix = Path(self.display_path).as_posix()
        return any(posix.endswith(suffix) for suffix in suffixes)

    def suppressed(self, lineno: int, rule_id: str) -> bool:
        """Is ``rule_id`` pragma-silenced on ``lineno``?"""
        match = _PRAGMA_RE.search(self.source_line(lineno))
        if match is None:
            return False
        named = match.group("rules")
        if named is None:
            return True
        return rule_id in {part.strip() for part in named.split(",")}


@dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run."""

    violations: list[Violation]
    baselined: list[Violation]
    files_scanned: int

    @property
    def counts(self) -> dict[str, int]:
        """New-violation counts per rule id."""
        totals: dict[str, int] = {}
        for violation in self.violations:
            totals[violation.rule] = totals.get(violation.rule, 0) + 1
        return dict(sorted(totals.items()))


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """All ``*.py`` files under ``paths`` (files pass through verbatim)."""
    for path in paths:
        if path.is_file():
            yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if not _SKIP_DIR_NAMES.intersection(candidate.parts):
                yield candidate


def _display_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(
    path: Path, display_path: str, rules: Iterable[Rule]
) -> list[Violation]:
    """All non-pragma-suppressed violations in one file."""
    try:
        ctx = FileContext.parse(path, display_path)
    except SyntaxError as exc:
        return [
            Violation(
                path=display_path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="REP000",
                severity="error",
                message=f"file does not parse: {exc.msg}",
                snippet=(exc.text or "").strip(),
            )
        ]
    violations: list[Violation] = []
    for active in rules:
        for violation in active.check(ctx):
            if not ctx.suppressed(violation.line, violation.rule):
                violations.append(violation)
    return sorted(violations)


def lint_paths(
    paths: Sequence[Path],
    rules: Iterable[Rule] | None = None,
    root: Path | None = None,
) -> LintResult:
    """Lint every python file under ``paths``.

    Args:
        paths: Files or directories to scan.
        rules: Rule instances to run (default: the full registry).
        root: Directory violation paths are reported relative to
            (default: the current working directory), which is also the
            frame of reference baseline entries are stored in.
    """
    active = list(rules) if rules is not None else all_rules()
    base = root if root is not None else Path.cwd()
    violations: list[Violation] = []
    scanned = 0
    for path in iter_python_files(paths):
        scanned += 1
        violations.extend(lint_file(path, _display_path(path, base), active))
    return LintResult(
        violations=sorted(violations), baselined=[], files_scanned=scanned
    )
