"""The replint rule engine: contexts, registry, pragmas and the runner.

replint is a domain linter: its rules encode invariants of *this*
codebase (sanctioned randomness, unit-suffix discipline, simulator API
contracts) that generic linters cannot know about.  Each rule lives in
one module under :mod:`repro.lint.rules` and registers itself with the
:func:`rule` decorator; the engine parses every target file once and
hands the same :class:`FileContext` to every rule.

Linting is a two-pass affair:

1. the **file pass** runs every :class:`Rule` over each
   :class:`FileContext` in isolation, and
2. the **project pass** (:mod:`repro.lint.project`) assembles the parsed
   files into a whole-program symbol table and call graph and runs the
   registered :class:`~repro.lint.project.ProjectRule` instances over it
   — this is how a ``_ms`` value flowing into an ``_s`` parameter two
   modules away gets caught.

Suppression happens at two levels:

* a ``# replint: ignore[REP001]`` pragma on any line of the reported
  statement silences named rules (bare ``# replint: ignore`` silences
  them all), and
* a committed baseline file grandfathers existing violations so the
  gate only fails on *new* ones (see :mod:`repro.lint.baseline`).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "FileContext",
    "ImportTable",
    "LintResult",
    "Rule",
    "Violation",
    "all_rules",
    "lint_paths",
    "module_name_for",
    "parse_files",
    "rule",
]

#: Matches ``# replint: ignore`` and ``# replint: ignore[REP001,REP003]``.
_PRAGMA_RE = re.compile(r"#\s*replint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".repro_cache"}


@dataclass(frozen=True, order=True)
class Violation:
    """One rule finding, anchored to a source line.

    ``fingerprint`` (the stripped source text of the reported line) is
    what the baseline matches on, so grandfathered entries survive the
    line-number drift of unrelated edits.  ``end_line`` is the last
    source line of the offending statement — pragma suppression honours
    a ``# replint: ignore`` on *any* line of the span, so the pragma can
    sit at the end of a black-wrapped call.
    """

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str
    snippet: str
    end_line: int = field(default=0, compare=False)

    @property
    def fingerprint(self) -> str:
        return self.snippet

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for the JSON report."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "end_line": self.end_line or self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }


class Rule:
    """Base class for per-file replint rules.

    Subclasses set ``id``/``name``/``severity`` and implement
    :meth:`check`, yielding violations via ``ctx.violation(...)``.
    Registration is explicit through the :func:`rule` decorator so a
    rule module is exactly one import away from being active.
    """

    id: str = "REP000"
    name: str = "unnamed"
    severity: str = "error"

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, ctx: "FileContext", node: ast.AST, message: str
    ) -> Violation:
        """A violation of this rule anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        end_line = getattr(node, "end_lineno", None) or line
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and hasattr(body[0], "lineno"):
            # Compound statements (def/for/with/...) span their whole
            # body; the reported statement is just the header, so a
            # pragma inside the body must not silence the finding.
            end_line = max(line, body[0].lineno - 1)
        return Violation(
            path=ctx.display_path,
            line=line,
            col=col,
            rule=self.id,
            severity=self.severity,
            message=message,
            snippet=ctx.source_line(line).strip(),
            end_line=end_line,
        )


_REGISTRY: dict[str, Rule] = {}


def rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator registering a rule instance under its ``id``."""
    instance = cls()
    if instance.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.id!r}")
    _REGISTRY[instance.id] = instance
    return cls


def all_rules() -> list[Rule]:
    """Every registered per-file rule, ordered by id (imports the rule modules)."""
    import repro.lint.rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def module_name_for(display_path: str) -> str:
    """The dotted module name a repo-relative file path denotes.

    ``src/repro/mobility/handoff.py`` is ``repro.mobility.handoff``; a
    leading ``src`` layout directory is dropped, ``__init__.py`` names
    the package itself.  Paths outside a ``src`` layout map verbatim
    (``tests/data/lint/dirty/radio/survey.py`` →
    ``tests.data.lint.dirty.radio.survey``) so fixture packages get
    stable, resolvable names too.
    """
    parts = list(Path(display_path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    return ".".join(part for part in parts if part)


class ImportTable:
    """Maps local aliases to fully qualified import paths for one module.

    The table is flat (function-level imports are folded in with
    module-level ones); replint resolves *names*, not scopes, which is
    the right precision for spotting calls into banned modules.

    Relative imports are resolved against ``module_name`` (the dotted
    path of the file being parsed): under ``repro.mobility.handoff``,
    ``from ..core import rng`` binds ``rng`` to ``repro.core.rng`` and
    ``from . import flow`` binds ``flow`` to ``repro.mobility.flow``.
    """

    def __init__(
        self,
        tree: ast.Module,
        module_name: str = "",
        is_package: bool = False,
    ) -> None:
        self._aliases: dict[str, str] = {}
        self._module_name = module_name
        self._is_package = is_package
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self._aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        self._aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = self._relative_base(node.level)
                    if base is None:
                        continue
                    module = f"{base}.{node.module}" if node.module else base
                elif node.module is not None:
                    module = node.module
                else:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{module}.{alias.name}"

    def _relative_base(self, level: int) -> str | None:
        """The package a ``level``-dots relative import anchors to."""
        if not self._module_name:
            return None
        parts = self._module_name.split(".")
        if not self._is_package:
            parts = parts[:-1]  # the current *package*, not the module
        if level > 1:
            parts = parts[: len(parts) - (level - 1)]
        if not parts:
            return None
        return ".".join(parts)

    @property
    def aliases(self) -> dict[str, str]:
        """Read-only view of the local-name → qualified-name mapping."""
        return dict(self._aliases)

    def resolve(self, node: ast.AST) -> str | None:
        """The fully qualified dotted name of ``node``, if import-rooted.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``;
        attribute chains rooted in local variables resolve to ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        qualified = self._aliases.get(node.id)
        if qualified is None:
            return None
        parts.append(qualified)
        return ".".join(reversed(parts))


@dataclass
class FileContext:
    """One parsed file plus the helpers rules need."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    imports: ImportTable
    module_name: str = ""
    lines: list[str] = field(default_factory=list)
    _all_nodes: list[ast.AST] | None = field(
        default=None, repr=False, compare=False
    )
    _nodes_by_type: dict[tuple[type, ...], list[ast.AST]] = field(
        default_factory=dict, repr=False, compare=False
    )

    @classmethod
    def parse(cls, path: Path, display_path: str) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        module_name = module_name_for(display_path)
        return cls(
            path=path,
            display_path=display_path,
            source=source,
            tree=tree,
            imports=ImportTable(
                tree,
                module_name=module_name,
                is_package=path.name == "__init__.py",
            ),
            module_name=module_name,
            lines=source.splitlines(),
        )

    def walk(self, *types: type) -> list[ast.AST]:
        """All AST nodes of the given types, from one cached full walk.

        The first call walks the tree once and memoises the flat node
        list; subsequent calls — from *any* rule — filter that list and
        memoise per type-tuple, so ten rules asking for ``ast.Call``
        cost one traversal plus nine list lookups instead of ten
        traversals.  With no arguments, returns every node.
        """
        if self._all_nodes is None:
            self._all_nodes = list(ast.walk(self.tree))
        if not types:
            return self._all_nodes
        cached = self._nodes_by_type.get(types)
        if cached is None:
            cached = [node for node in self._all_nodes if isinstance(node, types)]
            self._nodes_by_type[types] = cached
        return cached

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    @property
    def path_parts(self) -> tuple[str, ...]:
        return tuple(part.lower() for part in Path(self.display_path).parts)

    def in_package_dir(self, name: str) -> bool:
        """Is this file under a directory called ``name`` (e.g. 'experiments')?"""
        return name.lower() in self.path_parts[:-1]

    def is_module(self, *suffixes: str) -> bool:
        """Does the file path end with any of ``suffixes`` (posix style)?"""
        posix = Path(self.display_path).as_posix()
        return any(posix.endswith(suffix) for suffix in suffixes)

    def suppressed(
        self, lineno: int, rule_id: str, end_lineno: int | None = None
    ) -> bool:
        """Is ``rule_id`` pragma-silenced anywhere on ``lineno..end_lineno``?

        Multi-line statements carry their pragma wherever the formatter
        left room — typically the last physical line of a wrapped call —
        so every line of the span is consulted, not just the anchor.
        """
        last = max(lineno, end_lineno or lineno)
        last = min(last, len(self.lines))
        for candidate in range(lineno, last + 1):
            match = _PRAGMA_RE.search(self.source_line(candidate))
            if match is None:
                continue
            named = match.group("rules")
            if named is None:
                return True
            if rule_id in {part.strip() for part in named.split(",")}:
                return True
        return False


@dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run."""

    violations: list[Violation]
    baselined: list[Violation]
    files_scanned: int

    @property
    def counts(self) -> dict[str, int]:
        """New-violation counts per rule id."""
        totals: dict[str, int] = {}
        for violation in self.violations:
            totals[violation.rule] = totals.get(violation.rule, 0) + 1
        return dict(sorted(totals.items()))


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """All ``*.py`` files under ``paths`` (files pass through verbatim)."""
    for path in paths:
        if path.is_file():
            yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if not _SKIP_DIR_NAMES.intersection(candidate.parts):
                yield candidate


def _display_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _parse_error(display_path: str, exc: SyntaxError) -> Violation:
    return Violation(
        path=display_path,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        rule="REP000",
        severity="error",
        message=f"file does not parse: {exc.msg}",
        snippet=(exc.text or "").strip(),
        end_line=exc.lineno or 1,
    )


def parse_files(
    paths: Sequence[Path], root: Path | None = None
) -> tuple[list[FileContext], list[Violation]]:
    """Parse every python file under ``paths`` exactly once.

    Returns the shared :class:`FileContext` cache both lint passes run
    over, plus a REP000 violation per unparseable file.
    """
    base = root if root is not None else Path.cwd()
    contexts: list[FileContext] = []
    errors: list[Violation] = []
    for path in iter_python_files(paths):
        display = _display_path(path, base)
        try:
            contexts.append(FileContext.parse(path, display))
        except SyntaxError as exc:
            errors.append(_parse_error(display, exc))
    return contexts, errors


def lint_file(
    path: Path, display_path: str, rules: Iterable[Rule]
) -> list[Violation]:
    """All non-pragma-suppressed violations in one file (file pass only)."""
    try:
        ctx = FileContext.parse(path, display_path)
    except SyntaxError as exc:
        return [_parse_error(display_path, exc)]
    return check_context(ctx, rules)


def check_context(ctx: FileContext, rules: Iterable[Rule]) -> list[Violation]:
    """Run the file-pass ``rules`` over one parsed context."""
    violations: list[Violation] = []
    for active in rules:
        for violation in active.check(ctx):
            if not ctx.suppressed(violation.line, violation.rule, violation.end_line):
                violations.append(violation)
    return sorted(violations)


def lint_paths(
    paths: Sequence[Path],
    rules: Iterable[Rule] | None = None,
    root: Path | None = None,
    project: bool = True,
) -> LintResult:
    """Lint every python file under ``paths`` (both passes).

    Args:
        paths: Files or directories to scan.
        rules: File-pass rule instances to run (default: the full
            registry).  Passing an explicit list disables the project
            pass unless ``project`` is set.
        root: Directory violation paths are reported relative to
            (default: the current working directory), which is also the
            frame of reference baseline entries are stored in.
        project: Run the whole-program pass (symbol table, call graph,
            ``ProjectRule`` registry) after the per-file pass.
    """
    active = list(rules) if rules is not None else all_rules()
    contexts, violations = parse_files(paths, root=root)
    violations = list(violations)
    for ctx in contexts:
        violations.extend(check_context(ctx, active))
    if project:
        from repro.lint.project import check_project

        violations.extend(check_project(contexts))
    return LintResult(
        violations=sorted(violations), baselined=[], files_scanned=len(contexts)
    )
