"""Render lint results as terminal text or machine-readable JSON.

The JSON layout is a stable contract (``schema_version`` guards it) so
CI and editor integrations can parse it::

    {
      "schema_version": 2,
      "tool": "replint",
      "files_scanned": 102,
      "counts": {"REP001": 2},
      "violations": [
        {"rule": "REP001", "severity": "error", "path": "src/...",
         "line": 10, "end_line": 12, "col": 4, "message": "...",
         "snippet": "..."}
      ],
      "baselined_count": 0,
      "exit_code": 1
    }

Schema history: v2 added ``end_line`` (the last physical line of the
offending statement, for span-aware pragma placement and editor
integrations).
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult

__all__ = ["REPORT_SCHEMA_VERSION", "render_json", "render_text"]

REPORT_SCHEMA_VERSION = 2


def render_text(result: LintResult) -> str:
    """Human-readable report, one line per violation plus a summary."""
    out: list[str] = []
    for violation in result.violations:
        out.append(
            f"{violation.path}:{violation.line}:{violation.col + 1}: "
            f"{violation.rule} [{violation.severity}] {violation.message}"
        )
        if violation.snippet:
            out.append(f"    {violation.snippet}")
    summary = (
        f"replint: {len(result.violations)} new violation(s), "
        f"{len(result.baselined)} baselined, "
        f"{result.files_scanned} file(s) scanned"
    )
    if result.violations:
        per_rule = ", ".join(f"{k}: {v}" for k, v in result.counts.items())
        summary += f" [{per_rule}]"
    out.append(summary)
    return "\n".join(out)


def render_json(result: LintResult, exit_code: int) -> str:
    """The documented machine-readable report."""
    payload = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "tool": "replint",
        "files_scanned": result.files_scanned,
        "counts": result.counts,
        "violations": [violation.as_dict() for violation in result.violations],
        "baselined_count": len(result.baselined),
        "exit_code": exit_code,
    }
    return json.dumps(payload, indent=2)
