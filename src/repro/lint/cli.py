"""The ``repro lint`` subcommand.

Usage::

    python -m repro lint src/                      # gate: exit 1 on new violations
    python -m repro lint src/ --format json        # machine-readable report
    python -m repro lint src/ --write-baseline     # grandfather the current state
    python -m repro lint src/ --no-baseline        # report everything, baseline or not
    python -m repro lint src/ --graph json         # export the resolved call graph
    python -m repro lint src/ --no-project         # per-file rules only

Both passes run by default: the per-file rules (REP001–REP008) and the
whole-program pass (REP009/REP010 over the project symbol table and
call graph).  Project-pass findings flow through the same pragma and
baseline machinery, so the gate stays baseline-compatible.

The baseline defaults to ``lint-baseline.json`` in the working
directory; a missing file is simply an empty baseline, so a clean tree
needs no baseline at all.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.lint.engine import lint_paths, parse_files
from repro.lint.report import render_json, render_text

__all__ = ["add_lint_arguments", "run_lint"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE_NAME,
        metavar="PATH",
        help=f"baseline file of grandfathered violations "
        f"(default: {DEFAULT_BASELINE_NAME}; missing file = empty)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file and report every violation",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write all current violations to the baseline file and exit 0",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="skip the whole-program pass (project symbol table + call graph)",
    )
    parser.add_argument(
        "--graph",
        choices=("dot", "json"),
        metavar="{dot,json}",
        help="print the resolved call graph in the given format and exit "
        "(no lint gate is applied)",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint run; returns the process exit code."""
    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"repro lint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    if args.graph:
        from repro.lint.project import build_project

        contexts, _errors = parse_files(paths)
        project = build_project(contexts)
        print(project.to_json() if args.graph == "json" else project.to_dot())
        return 0

    try:
        result = lint_paths(paths, project=not args.no_project)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    if args.write_baseline:
        Baseline.from_violations(result.violations).save(baseline_path)
        print(
            f"wrote {len(result.violations)} grandfathered violation(s) "
            f"to {baseline_path}"
        )
        return 0

    if not args.no_baseline:
        try:
            result = Baseline.load(baseline_path).apply(result)
        except ValueError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2

    exit_code = 1 if result.violations else 0
    if args.output_format == "json":
        print(render_json(result, exit_code))
    else:
        print(render_text(result))
    return exit_code
