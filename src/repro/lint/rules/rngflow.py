"""REP010: RNG provenance and fork-safety over the call graph.

Every generator reaching an experiment ``run()`` must flow from the
campaign seed: either threaded in as a parameter, drawn from a named
``RngFactory`` stream, or derived from a threaded generator via
``repro.core.rng.derive``.  REP001 already bans raw ``numpy.random`` /
``random`` calls syntactically; this project rule catches the flows a
per-file rule cannot:

* **shadowed provenance** — a function that *accepts* an ``rng``/
  ``rngf`` parameter but constructs its own generator anyway: the
  parameter documents a provenance contract the body silently breaks,
  so half the randomness ignores the campaign seed;
* **constant reseeds on experiment-reachable paths** — calling
  ``default_rng(0)`` / ``RngFactory(42)`` with a literal seed (or no
  seed) anywhere reachable from an experiment ``run()`` freezes that
  stream across repetitions while the rest of the run varies;
* **fork-unsafe module state** — a module-level mutable container
  mutated on an experiment-reachable path: a fork-started pool worker
  inherits the coordinator's accumulated state while a spawn-started
  one starts clean, so sharded campaigns stop merging to the serial
  result.  (SHOUTED lookup tables are exempt only if never mutated —
  mutation is exactly what disqualifies them.)

Roots are the module-level ``run()`` functions of modules under an
``experiments/`` package; reachability follows resolved call edges
(imports incl. relative ones, module-local calls, ``self.``-methods),
so the rule under-approximates: dynamic dispatch it cannot resolve
never produces a finding.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.lint.engine import FileContext, Violation
from repro.lint.project import (
    FunctionInfo,
    ProjectContext,
    ProjectRule,
    project_rule,
)

#: Parameters that promise seeded provenance.
_RNG_PARAM_RE = re.compile(r"(^|_)rngf?(_factory)?$|(^|_)rng_factory$")

#: Constructors that root a *new* generator lineage.
_CONSTRUCTORS = frozenset(
    {
        "repro.core.rng.default_rng",
        "repro.core.rng.RngFactory",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
        "random.Random",
    }
)

#: The sanctioned way to branch off a threaded generator.
_DERIVE = "repro.core.rng.derive"

#: The module allowed to construct generators from anything.
_EXEMPT_MODULES = ("core/rng.py",)

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque"}
)

_MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        name = node.func.id if isinstance(node.func, ast.Name) else None
        if name is None and isinstance(node.func, ast.Attribute):
            name = node.func.attr
        return name in _MUTABLE_FACTORIES
    return False


def _module_mutables(ctx: FileContext) -> set[str]:
    """Module-level names bound to mutable containers."""
    names: set[str] = set()
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        if not _is_mutable_value(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _local_names(info: FunctionInfo) -> set[str]:
    """Names the function binds locally (params + assignment targets)."""
    args = info.node.args
    bound = {
        a.arg
        for a in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + [a for a in (args.vararg, args.kwarg) if a is not None]
        )
    }
    declared_global: set[str] = set()
    for inner in info.walk(
        ast.Global, ast.Assign, ast.AnnAssign, ast.AugAssign, ast.For, ast.AsyncFor
    ):
        if isinstance(inner, ast.Global):
            declared_global.update(inner.names)
        elif isinstance(inner, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                inner.targets
                if isinstance(inner, ast.Assign)
                else [inner.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(inner, (ast.For, ast.AsyncFor)) and isinstance(
            inner.target, ast.Name
        ):
            bound.add(inner.target.id)
    return bound - declared_global


def _constant_seed(call: ast.Call) -> bool:
    """Does this constructor call pin its seed to a literal (or default)?"""
    seed: ast.AST | None = None
    if call.args:
        seed = call.args[0]
    else:
        for kw in call.keywords:
            if kw.arg == "seed":
                seed = kw.value
        if seed is None and not any(kw.arg is None for kw in call.keywords):
            return True  # no seed argument at all: the default literal
    return isinstance(seed, ast.Constant)


@project_rule
class RngFlowRule(ProjectRule):
    """Flag unsanctioned generator provenance and fork-unsafe state."""

    id = "REP010"
    name = "rng-flow"
    severity = "error"

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        roots = [
            info.qualname
            for info in project.functions.values()
            if info.name == "run"
            and info.class_name is None
            and info.ctx.in_package_dir("experiments")
        ]
        reachable = project.reachable_from(roots)
        for info in project.functions.values():
            if info.ctx.is_module(*_EXEMPT_MODULES):
                continue
            yield from self._check_shadowed_provenance(info)
            if info.qualname in reachable:
                yield from self._check_constant_reseed(info)
        yield from self._check_fork_safety(project, reachable)

    # -- rng param + own constructor -----------------------------------

    def _check_shadowed_provenance(self, info: FunctionInfo) -> Iterator[Violation]:
        rng_params = [p for p in info.all_params if _RNG_PARAM_RE.search(p)]
        if not rng_params:
            return
        for node in info.walk(ast.Call):
            assert isinstance(node, ast.Call)
            qualified = info.ctx.imports.resolve(node.func)
            if qualified is None or qualified == _DERIVE:
                continue
            if qualified in _CONSTRUCTORS:
                yield self.violation(
                    info.ctx,
                    node,
                    f"{info.qualname}() accepts {rng_params[0]!r} but "
                    f"constructs its own generator via {qualified}; derive "
                    "a child stream with repro.core.rng.derive() so all "
                    "randomness flows from the campaign seed",
                )

    # -- constant reseeds on reachable paths ---------------------------

    def _check_constant_reseed(self, info: FunctionInfo) -> Iterator[Violation]:
        for node in info.walk(ast.Call):
            assert isinstance(node, ast.Call)
            qualified = info.ctx.imports.resolve(node.func)
            if qualified not in _CONSTRUCTORS:
                continue
            if _constant_seed(node):
                yield self.violation(
                    info.ctx,
                    node,
                    f"{qualified} called with a constant seed on an "
                    f"experiment-reachable path ({info.qualname}); the "
                    "stream freezes across repetitions — thread the "
                    "campaign seed or an rng parameter instead",
                )

    # -- fork-unsafe module state --------------------------------------

    def _check_fork_safety(
        self, project: ProjectContext, reachable: set[str]
    ) -> Iterator[Violation]:
        for module, ctx in project.modules.items():
            mutables = _module_mutables(ctx)
            if not mutables:
                continue
            for info in project.functions.values():
                if info.module != module or info.qualname not in reachable:
                    continue
                locals_ = _local_names(info)
                shadowed = {
                    name for name in mutables if name in locals_
                }
                visible = mutables - shadowed
                if not visible:
                    continue
                yield from self._check_mutations(info, visible)

    def _check_mutations(
        self, info: FunctionInfo, globals_: set[str]
    ) -> Iterator[Violation]:
        def flag(node: ast.AST, name: str) -> Violation:
            return self.violation(
                info.ctx,
                node,
                f"module-level mutable {name!r} is mutated on an "
                f"experiment-reachable path ({info.qualname}); "
                "fork-started workers inherit the coordinator's state "
                "while spawned ones start clean — pass the state "
                "explicitly or key it per process",
            )

        for node in info.walk(ast.Call, ast.Assign, ast.AugAssign, ast.Delete):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in globals_
                and node.func.attr in _MUTATOR_METHODS
            ):
                yield flag(node, node.func.value.id)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in globals_
                    ):
                        yield flag(node, target.value.id)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in globals_
                    ):
                        yield flag(node, target.value.id)
