"""REP011: remedy-config unit suffixes and wall-clock-free controllers.

The ``[remedy]`` scenario section (``repro.qdisc.config.RemedySection``)
is operator-facing configuration: every numeric knob must say what unit
it is in (``target_ms``, ``pep_buffer_bytes``) or declare itself
dimensionless (``_ratio``/``_count``), because a bare ``interval`` field
silently read as seconds by one caller and milliseconds by another is
exactly the bug class the unit lattice exists to kill.

The second half of the rule guards the closed-loop controller code:
everything under a ``qdisc`` package runs on *virtual* time fed in by
the simulator, so any wall-clock read there — including the monotonic
clocks (``time.monotonic``, ``time.perf_counter``, ``time.process_time``
and their ``_ns`` twins) that REP001 deliberately leaves alone for
benchmarking code — breaks serial/parallel byte-identity.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.core.units import unit_suffix
from repro.lint.engine import FileContext, Rule, Violation, rule

#: Dataclass names whose numeric fields must carry unit suffixes.
_CONFIG_CLASS_NAMES = ("RemedySection",)

#: Suffixes acceptable on dimensionless numeric config fields.
_DIMENSIONLESS_SUFFIXES = ("_ratio", "_count")

#: Numeric annotations the suffix requirement applies to.
_NUMERIC_ANNOTATIONS = frozenset({"int", "float"})

#: Wall-clock reads banned inside qdisc/controller packages.  REP001
#: bans the absolute clocks everywhere; the monotonic family is legal
#: for benchmarking elsewhere but never inside virtual-time control
#: loops.
_BANNED_CLOCKS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.thread_time",
        "time.thread_time_ns",
    }
)


def _annotation_name(annotation: ast.AST | None) -> str | None:
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # ``from __future__ import annotations`` leaves plain strings.
        return annotation.value
    return None


def _field_is_suffixed(name: str) -> bool:
    if unit_suffix(name) is not None:
        return True
    return name.endswith(_DIMENSIONLESS_SUFFIXES)


@rule
class RemedyConfigRule(Rule):
    """Unit-suffixed remedy knobs; virtual-time-only controller code."""

    id = "REP011"
    name = "remedy-config"
    severity = "error"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        yield from self._check_config_fields(ctx)
        if ctx.in_package_dir("qdisc"):
            yield from self._check_wall_clock(ctx)

    def _check_config_fields(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ctx.walk(ast.ClassDef):
            if node.name not in _CONFIG_CLASS_NAMES:
                continue
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                target = statement.target
                if not isinstance(target, ast.Name):
                    continue
                if _annotation_name(statement.annotation) not in _NUMERIC_ANNOTATIONS:
                    continue
                if _field_is_suffixed(target.id):
                    continue
                yield self.violation(
                    ctx,
                    statement,
                    f"numeric remedy field {target.id!r} has no unit suffix; "
                    "name the unit (_ms, _bytes, _bps, ...) or declare it "
                    "dimensionless (_ratio/_count) so every caller reads "
                    "the same quantity",
                )

    def _check_wall_clock(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ctx.walk(ast.Call):
            qualified = ctx.imports.resolve(node.func)
            if qualified in _BANNED_CLOCKS:
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock read {qualified} inside qdisc/controller "
                    "code; control loops run on virtual time passed in by "
                    "the simulator (now_s), never the host clock",
                )
