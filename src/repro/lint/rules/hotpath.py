"""REP008: no per-point scalar radio evaluation inside Python loops.

The batched radio core (``repro.radio.batch`` and the matrix methods of
``RadioNetwork``) evaluates every point×cell pair at once; a Python loop
that calls ``rsrp_map_at`` per point, or walks ``network.cells`` calling
a scalar evaluator per cell, rebuilds exactly the quadratic hot path the
vectorization removed — at 100-1000× the cost for survey-sized inputs.
The rule guards the packages on that hot path (``radio/`` — including
the survey code in ``coverage.py`` — and ``mobility/``); glue code
elsewhere may still use the per-UE API freely.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.engine import FileContext, Rule, Violation, rule

#: Per-UE/per-cell evaluators that have a batched twin.
_EVAL_METHODS = frozenset(
    {
        "rsrp_at",
        "sample_at",
        "rsrp_map_at",
        "bit_rate_at",
        "best_cell_at",
        "path_loss_db",
        "breakdown",
    }
)

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)


def _method_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _iterates_cells(iter_node: ast.AST) -> bool:
    """Does a loop iterate something spelled ``<expr>.cells``?"""
    return isinstance(iter_node, ast.Attribute) and iter_node.attr == "cells"


@rule
class ScalarHotPathRule(Rule):
    """Flag per-point/per-cell scalar radio evaluation in loops."""

    id = "REP008"
    name = "scalar-hot-path"
    severity = "error"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not (ctx.in_package_dir("radio") or ctx.in_package_dir("mobility")):
            return
        reported: set[int] = set()
        for node in ctx.walk(ast.For, ast.AsyncFor, ast.While, *_COMPREHENSIONS):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                over_cells = not isinstance(node, ast.While) and _iterates_cells(
                    node.iter
                )
                yield from self._scan(
                    ctx, node.body + node.orelse, over_cells, reported
                )
            elif isinstance(node, _COMPREHENSIONS):
                over_cells = any(
                    _iterates_cells(gen.iter) for gen in node.generators
                )
                if isinstance(node, ast.DictComp):
                    scope: list[ast.AST] = [node.key, node.value]
                else:
                    scope = [node.elt]
                scope.extend(
                    test for gen in node.generators for test in gen.ifs
                )
                yield from self._scan(ctx, scope, over_cells, reported)

    def _scan(
        self,
        ctx: FileContext,
        scope: list[ast.AST],
        over_cells: bool,
        reported: set[int],
    ) -> Iterator[Violation]:
        for top in scope:
            for inner in ast.walk(top):
                name = _method_name(inner)
                if name is None or id(inner) in reported:
                    continue
                if name == "rsrp_map_at":
                    reported.add(id(inner))
                    yield self.violation(
                        ctx,
                        inner,
                        "rsrp_map_at called per point inside a loop; batch the "
                        "points and use rsrp_matrix_at / samples_at / "
                        "bit_rates_at instead",
                    )
                elif over_cells and name in _EVAL_METHODS:
                    reported.add(id(inner))
                    yield self.violation(
                        ctx,
                        inner,
                        f"per-cell {name}() in a loop over .cells rebuilds the "
                        "scalar hot path; evaluate all cells at once through "
                        "repro.radio.batch",
                    )
