"""REP007: experiments must take deployment knobs from the Scenario.

The ambient module constants ``LTE_PROFILE``, ``NR_PROFILE`` and
``DEFAULT_HANDOFF_CONFIG`` describe exactly one deployment — the paper's
NSA campus.  An experiment that imports them is pinned to that
deployment: running it under ``--scenario sa-mode`` or a sweep silently
keeps the hard-coded radio parameters, so two scenario points produce
identical "results".  Experiments must read radio profiles, hand-off
configuration, topology and energy capacities from the
:class:`repro.scenario.Scenario` threaded into ``run()`` (usually via
``resolve_scenario(scenario)``); only the scenario layer itself may
reference the ambient defaults, as preset building blocks.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.engine import FileContext, Rule, Violation, rule

#: The deployment constants experiments must not hard-wire.
_BANNED_NAMES = frozenset({"LTE_PROFILE", "NR_PROFILE", "DEFAULT_HANDOFF_CONFIG"})

#: Modules that export them (directly or by re-export).
_BANNED_QUALIFIED = frozenset(
    f"{module}.{name}"
    for module in ("repro.core.config", "repro.core")
    for name in _BANNED_NAMES
)


@rule
class AmbientDeploymentRule(Rule):
    """Flag experiments importing the ambient deployment constants."""

    id = "REP007"
    name = "ambient-deployment"
    severity = "error"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_package_dir("experiments"):
            return
        for node in ctx.walk(ast.ImportFrom, ast.Attribute):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(ctx, node)
            elif isinstance(node, ast.Attribute):
                qualified = ctx.imports.resolve(node)
                if qualified in _BANNED_QUALIFIED:
                    yield self._pinned(ctx, node, qualified.rsplit(".", 1)[1])

    def _check_import_from(
        self, ctx: FileContext, node: ast.ImportFrom
    ) -> Iterator[Violation]:
        if node.level or node.module not in ("repro.core.config", "repro.core"):
            return
        for alias in node.names:
            if alias.name in _BANNED_NAMES:
                yield self._pinned(ctx, node, alias.name)

    def _pinned(self, ctx: FileContext, node: ast.AST, name: str) -> Violation:
        return self.violation(
            ctx,
            node,
            f"{name} pins the experiment to the paper's NSA deployment; "
            "read it from the Scenario instead "
            "(resolve_scenario(scenario).radio / .handoff)",
        )
