"""REP006: metric-name hygiene for the KPI registry.

Metric names are a public, diffable surface: ``repro metrics diff`` and
the bench KPI gate match on them byte-for-byte, and the Prometheus
exporter folds them into series names.  A typo'd or unit-less name
silently forks a KPI series, so names registered from source must

* match ``[a-z0-9_.]+`` (lowercase dotted — no dashes, no camelCase), and
* end in a unit suffix from :data:`repro.core.units.UNIT_DIMENSIONS`
  (``_ms``, ``_bps``, ``_nj``, ...) or one of the dimensionless suffixes
  ``_count`` / ``_ratio``.

The rule fires on the KPI helpers (``record_kpi``,
``record_kpi_samples``, ``bump_kpi`` from ``repro.experiments.common``)
and on the registry accessors (``.counter``/``.gauge``/``.welford``/
``.quantile``/``.histogram``) when the receiver is recognisably a metric
registry — a name containing ``registry``/``metrics`` or a call to
``repro.metrics``' ``current()``.  f-string names are checked on their
literal fragments (the trailing fragment carries the unit suffix);
names built by opaque expressions are out of static reach and skipped,
as is the :mod:`repro.metrics` package itself.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.core.units import unit_suffix
from repro.lint.engine import FileContext, Rule, Violation, rule

#: Helper functions (fully qualified) whose first argument is a metric name.
_KPI_HELPERS = {
    "repro.experiments.common.record_kpi",
    "repro.experiments.common.record_kpi_samples",
    "repro.experiments.common.bump_kpi",
}

#: Registry accessor methods whose first argument is a metric name.
_ACCESSORS = {"counter", "gauge", "welford", "quantile", "histogram"}

#: ``current()`` spellings that yield the ambient registry.
_CURRENT_FUNCS = {"repro.metrics.current", "repro.metrics.core.current"}

#: Dimensionless suffixes allowed alongside the units lattice.
_EXTRA_SUFFIXES = ("_count", "_ratio")

_NAME_CHARS = frozenset("abcdefghijklmnopqrstuvwxyz0123456789_.")


def _registry_receiver(node: ast.AST, ctx: FileContext) -> bool:
    """Does ``node`` plausibly evaluate to a metric registry?"""
    if isinstance(node, ast.Name):
        lowered = node.id.lower()
        return "registry" in lowered or "metrics" in lowered
    if isinstance(node, ast.Attribute):
        lowered = node.attr.lower()
        return "registry" in lowered or "metrics" in lowered
    if isinstance(node, ast.Call):
        return ctx.imports.resolve(node.func) in _CURRENT_FUNCS
    return False


def _name_parts(node: ast.AST) -> list[str | None] | None:
    """The metric-name expression as literal fragments.

    ``None`` entries stand for interpolated values; a ``None`` return
    means the expression is not statically analysable at all.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, ast.JoinedStr):
        parts: list[str | None] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                parts.append(None)
        return parts
    return None


def _has_unit_suffix(tail: str) -> bool:
    last = tail.rsplit(".", 1)[-1]
    if last.endswith(_EXTRA_SUFFIXES):
        return True
    return unit_suffix(last) is not None


@rule
class MetricNameRule(Rule):
    """Flag malformed or unit-less metric names at registration sites."""

    id = "REP006"
    name = "metric-names"
    severity = "error"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.in_package_dir("metrics"):
            return  # the registry implementation handles names generically
        for node in ctx.walk(ast.Call):
            name_node = self._metric_name_argument(ctx, node)
            if name_node is None:
                continue
            parts = _name_parts(name_node)
            if parts is None:
                continue  # dynamically built name: out of static reach
            yield from self._check_name(ctx, name_node, parts)

    def _metric_name_argument(self, ctx: FileContext, node: ast.Call) -> ast.AST | None:
        """The metric-name argument of ``node``, if it is a registration call."""
        qualified = ctx.imports.resolve(node.func)
        is_registration = qualified in _KPI_HELPERS or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _ACCESSORS
            and _registry_receiver(node.func.value, ctx)
        )
        if not is_registration:
            return None
        if node.args:
            return node.args[0]
        for keyword in node.keywords:
            if keyword.arg == "name":
                return keyword.value
        return None

    def _check_name(
        self, ctx: FileContext, node: ast.AST, parts: list[str | None]
    ) -> Iterator[Violation]:
        literal_text = "".join(part for part in parts if part is not None)
        bad = sorted({ch for ch in literal_text if ch not in _NAME_CHARS})
        if bad:
            yield self.violation(
                ctx,
                node,
                f"metric name contains {', '.join(map(repr, bad))}: "
                "names must match [a-z0-9_.]+",
            )
            return
        tail = parts[-1]
        if tail is None:
            return  # interpolated tail: suffix is not statically known
        if not _has_unit_suffix(tail):
            yield self.violation(
                ctx,
                node,
                f"metric name ends in {tail.rsplit('.', 1)[-1]!r}: names must "
                "end in a core.units suffix (_ms, _bps, ...) or _count/_ratio",
            )
