"""REP001: all randomness must flow through ``repro.core.rng``.

The campaign cache keys results by (experiment, seed, source hash); a
stochastic draw that bypasses the seeded ``RngFactory``/``Generator``
plumbing either freezes randomness across repetitions (hard-coded
seeds) or varies between runs (wall clock, process entropy) — both
silently poison cached figures.  This rule flags every call into the
banned constructors outside ``core/rng.py`` itself; fixes are to accept
an ``np.random.Generator`` parameter, draw a named ``RngFactory``
stream, or use the sanctioned helpers in :mod:`repro.core.rng`.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.core.rng import is_sanctioned_rng
from repro.lint.engine import FileContext, Rule, Violation, rule

#: Any call into these namespaces is nondeterministic or bypasses the
#: seeded-stream discipline.
_BANNED_PREFIXES: tuple[str, ...] = ("numpy.random.", "random.")

_BANNED_EXACT: frozenset[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
    }
)

#: The one module allowed to touch ``numpy.random`` directly.
_EXEMPT_MODULES: tuple[str, ...] = ("core/rng.py",)


def _message(qualified: str) -> str:
    if qualified.startswith("numpy.random."):
        return (
            f"direct call to {qualified}; take an np.random.Generator "
            "parameter or draw a named RngFactory stream "
            "(repro.core.rng) so campaign seeds stay reproducible"
        )
    if qualified.startswith("random."):
        return (
            f"stdlib {qualified} uses hidden global state; use a seeded "
            "np.random.Generator from repro.core.rng instead"
        )
    return (
        f"{qualified} is nondeterministic across runs; results keyed by "
        "seed must not depend on wall clock or process entropy"
    )


@rule
class DeterminismRule(Rule):
    """Flag randomness and wall-clock calls outside the sanctioned module."""

    id = "REP001"
    name = "determinism"
    severity = "error"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.is_module(*_EXEMPT_MODULES):
            return
        for node in ctx.walk(ast.Call):
            qualified = ctx.imports.resolve(node.func)
            if qualified is None or is_sanctioned_rng(qualified):
                continue
            if qualified in _BANNED_EXACT or qualified.startswith(_BANNED_PREFIXES):
                yield self.violation(ctx, node, _message(qualified))
