"""REP012: audit-event name hygiene and side-effect-free probe helpers.

Audit events are a public, diffable surface twice over: ledger totals are
exported as ``audit.*`` KPIs through :mod:`repro.metrics`, and flight
recorder dumps are compared byte-for-byte by ``repro audit diff`` and the
CI determinism gate.  A misspelt event name silently forks a ledger, so
names registered from source must

* start with the ``audit.`` namespace prefix,
* match ``[a-z0-9_.]+`` (lowercase dotted — no dashes, no camelCase), and
* end in a unit suffix from :data:`repro.core.units.UNIT_DIMENSIONS` or
  one of the dimensionless suffixes ``_count`` / ``_ratio``.

The rule fires on the auditor registration methods (``.note``/``.flag``/
``.probe``/``.observe``/``.watch``) when the receiver is recognisably an
auditor — a name containing ``audit`` or a call to :mod:`repro.audit`'s
``current()``.  f-string names are checked on their literal fragments;
names built by opaque expressions are out of static reach and skipped,
as is the :mod:`repro.audit` package itself.

The second half of the rule keeps probes honest: by convention, helpers
named ``_audit_*`` are *read-only* observers called from simulation hot
paths, so an always-on audit layer cannot perturb the very run it is
checking (registration helpers that do mutate state are named
``_register_audit``).  Any attribute/subscript assignment or ``del``
inside an ``_audit_*`` function is therefore a probe mutating simulation
state — the one bug class that would make audited and unaudited runs
diverge.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.core.units import unit_suffix
from repro.lint.engine import FileContext, Rule, Violation, rule

#: Auditor methods whose first argument is an audit event name.
_REGISTRATION_METHODS = frozenset({"note", "flag", "probe", "observe", "watch"})

#: ``current()`` spellings that yield the ambient auditor.
_CURRENT_FUNCS = {"repro.audit.current", "repro.audit.core.current"}

#: Dimensionless suffixes allowed alongside the units lattice.
_EXTRA_SUFFIXES = ("_count", "_ratio")

_NAME_CHARS = frozenset("abcdefghijklmnopqrstuvwxyz0123456789_.")

#: Prefix naming the read-only probe-helper convention.
_PROBE_HELPER_PREFIX = "_audit_"


def _auditor_receiver(node: ast.AST, ctx: FileContext) -> bool:
    """Does ``node`` plausibly evaluate to an auditor?"""
    if isinstance(node, ast.Name):
        return "audit" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "audit" in node.attr.lower()
    if isinstance(node, ast.Call):
        return ctx.imports.resolve(node.func) in _CURRENT_FUNCS
    return False


def _name_parts(node: ast.AST) -> list[str | None] | None:
    """The event-name expression as literal fragments.

    ``None`` entries stand for interpolated values; a ``None`` return
    means the expression is not statically analysable at all.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, ast.JoinedStr):
        parts: list[str | None] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                parts.append(None)
        return parts
    return None


def _has_unit_suffix(tail: str) -> bool:
    last = tail.rsplit(".", 1)[-1]
    if last.endswith(_EXTRA_SUFFIXES):
        return True
    return unit_suffix(last) is not None


@rule
class AuditHygieneRule(Rule):
    """Namespaced, unit-suffixed audit names; read-only ``_audit_*`` helpers."""

    id = "REP012"
    name = "audit-hygiene"
    severity = "error"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.in_package_dir("audit"):
            return  # the auditor implementation handles names generically
        yield from self._check_event_names(ctx)
        yield from self._check_probe_helpers(ctx)

    def _check_event_names(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ctx.walk(ast.Call):
            name_node = self._event_name_argument(ctx, node)
            if name_node is None:
                continue
            parts = _name_parts(name_node)
            if parts is None:
                continue  # dynamically built name: out of static reach
            yield from self._check_name(ctx, name_node, parts)

    def _event_name_argument(self, ctx: FileContext, node: ast.Call) -> ast.AST | None:
        """The event-name argument of ``node``, if it is a registration call."""
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _REGISTRATION_METHODS
            and _auditor_receiver(node.func.value, ctx)
        ):
            return None
        if node.args:
            return node.args[0]
        for keyword in node.keywords:
            if keyword.arg == "name":
                return keyword.value
        return None

    def _check_name(
        self, ctx: FileContext, node: ast.AST, parts: list[str | None]
    ) -> Iterator[Violation]:
        literal_text = "".join(part for part in parts if part is not None)
        bad = sorted({ch for ch in literal_text if ch not in _NAME_CHARS})
        if bad:
            yield self.violation(
                ctx,
                node,
                f"audit event name contains {', '.join(map(repr, bad))}: "
                "names must match [a-z0-9_.]+",
            )
            return
        head = parts[0]
        if head is not None and not head.startswith("audit."):
            yield self.violation(
                ctx,
                node,
                f"audit event name starts with {head.split('.', 1)[0]!r}: names "
                "must live under the 'audit.' namespace so exported KPIs and "
                "flight-recorder dumps stay greppable as one family",
            )
            return
        tail = parts[-1]
        if tail is None:
            return  # interpolated tail: suffix is not statically known
        if not _has_unit_suffix(tail):
            yield self.violation(
                ctx,
                node,
                f"audit event name ends in {tail.rsplit('.', 1)[-1]!r}: names "
                "must end in a core.units suffix (_s, _bytes, ...) or "
                "_count/_ratio",
            )

    def _check_probe_helpers(self, ctx: FileContext) -> Iterator[Violation]:
        for fn in ctx.walk(ast.FunctionDef):
            if not fn.name.startswith(_PROBE_HELPER_PREFIX):
                continue
            for node in ast.walk(fn):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    if not any(
                        isinstance(t, (ast.Attribute, ast.Subscript)) for t in targets
                    ):
                        continue
                elif not isinstance(node, ast.Delete):
                    continue
                yield self.violation(
                    ctx,
                    node,
                    f"probe helper {fn.name!r} mutates state: _audit_* "
                    "functions are read-only observers (an audit layer that "
                    "perturbs the run cannot certify it); mutate from a "
                    "_register_audit helper or rename the function",
                )
