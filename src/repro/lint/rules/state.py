"""REP004: hidden mutable state that couples runs to each other.

Two patterns:

* **mutable default arguments** (anywhere) — the default binds once at
  import, so one call's mutation leaks into the next call and, under
  the campaign runner, into the next *experiment*.
* **module-level mutable globals in ``experiments/``** — an experiment
  module accumulating into a lowercase module-level list/dict/set keeps
  state across repetitions within one worker process while fresh
  workers start clean, so serial and ``--parallel`` campaigns diverge.
  SHOUTED names are exempt: the codebase convention is that all-caps
  module-level containers are frozen-by-convention lookup tables.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.lint.engine import FileContext, Rule, Violation, rule

_CONSTANT_NAME_RE = re.compile(r"_{0,2}[A-Z][A-Z0-9_]*")

_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque"})

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        name = node.func.id if isinstance(node.func, ast.Name) else None
        if name is None and isinstance(node.func, ast.Attribute):
            name = node.func.attr
        return name in _MUTABLE_FACTORIES
    return False


@rule
class HiddenStateRule(Rule):
    """Flag mutable defaults and experiment-module mutable globals."""

    id = "REP004"
    name = "hidden-state"
    severity = "warning"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        yield from self._mutable_defaults(ctx)
        if ctx.in_package_dir("experiments"):
            yield from self._module_globals(ctx)

    def _mutable_defaults(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ctx.walk(ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda):
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if _is_mutable_value(default):
                    yield self.violation(
                        ctx,
                        default,
                        "mutable default argument is shared across calls; "
                        "default to None and construct inside the function",
                    )

    def _module_globals(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            if not _is_mutable_value(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if _CONSTANT_NAME_RE.fullmatch(target.id):
                    continue  # SHOUTED constants: frozen by convention
                if target.id.startswith("__") and target.id.endswith("__"):
                    continue  # dunders (__all__) are interpreter contracts
                yield self.violation(
                    ctx,
                    node,
                    f"module-level mutable global {target.id!r} in an "
                    "experiment module persists across repetitions within "
                    "a worker; pass state explicitly or make it a "
                    "SHOUTED frozen constant",
                )
