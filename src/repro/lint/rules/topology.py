"""REP013: topology-generator hygiene — suffixed knobs, injected RNG.

The :mod:`repro.topology` generators are the seam between scenario
configuration and the simulated world, so their parameters are
operator-facing: every numeric knob must say what unit it is in
(``pitch_m``, ``extent_m``) or declare itself dimensionless
(``_ratio``/``_count``), exactly like the scenario sections REP011
guards.  ``seed`` is the one sanctioned bare name — it is the
campaign-wide entropy label, not a physical quantity.

The second half of the rule enforces the package's reproducibility
contract: generator code may only *consume* randomness from a generator
injected by its caller (or split off one with
:func:`repro.core.rng.derive`), never mint its own.  Constructing
``RngFactory``/``default_rng`` mid-generator would silently fork the
stream tree and break the ``(seed, TopologySection) -> world``
byte-identity the golden files pin.  ``topology/generate.py`` is the
single documented seam where the root stream is created.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.core.units import unit_suffix
from repro.lint.engine import FileContext, Rule, Violation, rule

#: Suffixes acceptable on dimensionless numeric generator parameters.
_DIMENSIONLESS_SUFFIXES = ("_ratio", "_count")

#: Bare parameter names exempt from the suffix requirement.
_BARE_NAME_ALLOWLIST = frozenset({"seed"})

#: Numeric annotations the suffix requirement applies to.
_NUMERIC_ANNOTATIONS = frozenset({"int", "float"})

#: RNG constructors banned inside topology generators.  ``derive`` is
#: deliberately absent: splitting a child off an *injected* generator is
#: the sanctioned way to fan out streams.
_BANNED_RNG_CONSTRUCTORS = frozenset(
    {
        "repro.core.rng.RngFactory",
        "repro.core.rng.default_rng",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
        "random.Random",
    }
)

#: The one module allowed to mint the root stream from the seed.
_RNG_SEAM_MODULES = ("topology/generate.py",)


def _annotation_name(annotation: ast.AST | None) -> str | None:
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # ``from __future__ import annotations`` leaves plain strings.
        return annotation.value
    return None


def _param_is_suffixed(name: str) -> bool:
    if name in _BARE_NAME_ALLOWLIST:
        return True
    if unit_suffix(name) is not None:
        return True
    return name.endswith(_DIMENSIONLESS_SUFFIXES)


@rule
class TopologyGeneratorRule(Rule):
    """Unit-suffixed generator knobs; randomness only via injected rng."""

    id = "REP013"
    name = "topology-generator"
    severity = "error"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_package_dir("topology"):
            return
        yield from self._check_parameter_suffixes(ctx)
        if not ctx.is_module(*_RNG_SEAM_MODULES):
            yield from self._check_rng_construction(ctx)

    def _check_parameter_suffixes(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ctx.walk(ast.FunctionDef, ast.AsyncFunctionDef):
            if node.name.startswith("_"):
                continue
            arguments = node.args
            for arg in (*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs):
                if arg.arg in ("self", "cls"):
                    continue
                if _annotation_name(arg.annotation) not in _NUMERIC_ANNOTATIONS:
                    continue
                if _param_is_suffixed(arg.arg):
                    continue
                yield self.violation(
                    ctx,
                    arg,
                    f"numeric generator parameter {arg.arg!r} of {node.name}() "
                    "has no unit suffix; name the unit (_m, _kmh, _mhz, ...) "
                    "or declare it dimensionless (_ratio/_count) so scenario "
                    "knobs and generator arguments stay in the same lattice",
                )

    def _check_rng_construction(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ctx.walk(ast.Call):
            qualified = ctx.imports.resolve(node.func)
            if qualified in _BANNED_RNG_CONSTRUCTORS:
                yield self.violation(
                    ctx,
                    node,
                    f"RNG constructed via {qualified} inside topology "
                    "generator code; generators must draw from the injected "
                    "generator (or a repro.core.rng.derive child of it) so "
                    "(seed, TopologySection) reproduces byte-identically — "
                    "only topology/generate.py mints the root stream",
                )
