"""REP002: unit-suffix consistency, derived from the ``core.units`` lattice.

Physical quantities in this codebase carry their unit in the identifier
suffix (``rsrp_dbm``, ``bandwidth_hz``, ``delay_s`` — see
``repro.core.units.UNIT_DIMENSIONS``).  This rule checks the two places
a wrong unit silently corrupts a figure:

* **additive expressions** — ``x_dbm + y_hz`` (different dimensions) or
  ``t_s + gap_ms`` (same dimension, mismatched scale).  Log-domain
  suffixes (``_dbm``/``_db``/``_dbm_hz``) are mutually additive because
  level + ratio arithmetic is the point of working in dB.
* **keyword arguments** — passing ``x_ms`` to a ``bandwidth_hz=``
  parameter, or any suffixed name to a parameter with a different
  suffix.

Multiplication and division change dimensions legitimately, so the rule
treats them as opaque; unsuffixed operands resolve to "unknown" and
never fire.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.core.units import LOG_DOMAIN_DIMENSIONS, UNIT_DIMENSIONS, unit_suffix
from repro.lint.engine import FileContext, Rule, Violation, rule

#: (suffix, dimension) — resolved unit of a subexpression.
_Unit = tuple[str, str]


def _name_unit(node: ast.AST) -> _Unit | None:
    if isinstance(node, ast.Name):
        suffix = unit_suffix(node.id)
    elif isinstance(node, ast.Attribute):
        suffix = unit_suffix(node.attr)
    else:
        return None
    if suffix is None:
        return None
    return suffix, UNIT_DIMENSIONS[suffix]


def _additive_compatible(left: _Unit, right: _Unit) -> bool:
    if left[0] == right[0]:
        return True
    return left[1] in LOG_DOMAIN_DIMENSIONS and right[1] in LOG_DOMAIN_DIMENSIONS


def _describe(unit: _Unit) -> str:
    return f"_{unit[0]} ({unit[1]})"


@rule
class UnitConsistencyRule(Rule):
    """Flag additive and keyword-passing mixes of incompatible suffixes."""

    id = "REP002"
    name = "unit-consistency"
    severity = "error"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        found: list[Violation] = []
        additive_children: set[int] = set()
        for node in ctx.walk(ast.BinOp):
            if isinstance(node.op, (ast.Add, ast.Sub)):
                for child in (node.left, node.right):
                    if isinstance(child, ast.BinOp) and isinstance(
                        child.op, (ast.Add, ast.Sub)
                    ):
                        additive_children.add(id(child))
        for node in ctx.walk(ast.BinOp, ast.AugAssign, ast.Call):
            if (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, (ast.Add, ast.Sub))
                and id(node) not in additive_children
            ):
                self._resolve(ctx, node, found)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                target = _name_unit(node.target)
                value = self._resolve(ctx, node.value, found)
                if target and value and not _additive_compatible(target, value):
                    found.append(self._mix_violation(ctx, node, target, value))
            elif isinstance(node, ast.Call):
                found.extend(self._check_keywords(ctx, node))
        yield from found

    def _resolve(
        self, ctx: FileContext, node: ast.AST, found: list[Violation]
    ) -> _Unit | None:
        """Unit of an expression; records a violation on incompatible adds.

        Only additive structure is traversed — any other operator yields
        "unknown" so dimension-changing arithmetic never misfires.  When
        one operand is unknown the other's unit propagates, keeping
        chains like ``noise_dbm + 10 * log10(bw) + nf_db`` checkable.
        """
        if isinstance(node, ast.UnaryOp):
            return self._resolve(ctx, node.operand, found)
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            left = self._resolve(ctx, node.left, found)
            right = self._resolve(ctx, node.right, found)
            if left is None:
                return right
            if right is None:
                return left
            if not _additive_compatible(left, right):
                found.append(self._mix_violation(ctx, node, left, right))
                return None
            if left[1] in LOG_DOMAIN_DIMENSIONS and left[1] != right[1]:
                # level +/- ratio keeps the level's (absolute) unit
                return left if left[1] != "log-ratio" else right
            return left
        return _name_unit(node)

    def _mix_violation(
        self, ctx: FileContext, node: ast.AST, left: _Unit, right: _Unit
    ) -> Violation:
        if left[1] == right[1]:
            message = (
                f"adding {_describe(left)} to {_describe(right)}: same "
                "dimension but mismatched scales — convert explicitly"
            )
        else:
            message = (
                f"adding {_describe(left)} to {_describe(right)}: "
                "incompatible unit dimensions"
            )
        return self.violation(ctx, node, message)

    def _check_keywords(self, ctx: FileContext, node: ast.Call) -> Iterator[Violation]:
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            param = unit_suffix(keyword.arg)
            if param is None:
                continue
            value = _name_unit(keyword.value)
            if value is None or value[0] == param:
                continue
            expected = (param, UNIT_DIMENSIONS[param])
            yield self.violation(
                ctx,
                keyword.value,
                f"passing {_describe(value)} value to keyword "
                f"{keyword.arg}= which expects {_describe(expected)}",
            )
