"""REP005: tracer span hygiene outside :mod:`repro.trace`.

:meth:`Tracer.begin` opens a span and returns a handle that must be
closed with ``.end(...)`` — a leaked handle silently produces a trace
with missing intervals, which defeats the whole point of asserting on
internals.  Instrumentation code should prefer the self-closing forms
(``complete(...)`` for known intervals, ``span(...)`` as a context
manager); when ``begin`` is unavoidable, the handle must be kept and
ended in the same function.

Two patterns are flagged, on any receiver whose name mentions a tracer
(``tracer``, ``self._tracer``, ``trace``):

* ``tracer.begin(...)`` as a bare statement — the handle is discarded
  and the span can never be closed;
* ``handle = tracer.begin(...)`` with no ``handle.end(...)`` anywhere in
  the same function scope.

Handles that flow elsewhere (returned, passed as arguments, stored on
``self``) are out of the rule's static reach and are left alone, as is
everything under ``repro/trace/`` itself, where the machinery lives.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.lint.engine import FileContext, Rule, Violation, rule

#: Receivers considered tracers; matches ``tracer``, ``_tracer``,
#: ``self._tracer`` and a module imported as ``trace``.
_TRACER_NAME_RE = re.compile(r"(^|_)tracer?$", re.IGNORECASE)


def _receiver_name(node: ast.AST) -> str | None:
    """Last identifier of the receiver chain (``self._tracer`` -> ``_tracer``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_tracer_begin(call: ast.AST) -> bool:
    if not (isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute)):
        return False
    if call.func.attr != "begin":
        return False
    receiver = _receiver_name(call.func.value)
    return receiver is not None and _TRACER_NAME_RE.search(receiver) is not None


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Descendants of ``scope`` excluding nested function/lambda bodies."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@rule
class SpanHygieneRule(Rule):
    """Flag Tracer.begin() whose span handle is dropped or never ended."""

    id = "REP005"
    name = "trace-span-hygiene"
    severity = "error"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.in_package_dir("trace"):
            return
        scopes: list[ast.AST] = [ctx.tree]
        scopes.extend(ctx.walk(ast.FunctionDef, ast.AsyncFunctionDef))
        for scope in scopes:
            yield from self._check_scope(ctx, scope)

    def _check_scope(self, ctx: FileContext, scope: ast.AST) -> Iterator[Violation]:
        opened: list[tuple[ast.Call, str]] = []  # handle name -> begin call
        ended: set[str] = set()
        for node in _scope_nodes(scope):
            if isinstance(node, ast.Expr) and _is_tracer_begin(node.value):
                yield self.violation(
                    ctx,
                    node.value,
                    "span handle from Tracer.begin() is discarded; the span "
                    "can never be ended — use complete()/span() or keep the "
                    "handle and call .end()",
                )
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _is_tracer_begin(node.value)
            ):
                opened.append((node.value, node.targets[0].id))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "end"
                and isinstance(node.func.value, ast.Name)
            ):
                ended.add(node.func.value.id)
        for call, handle in opened:
            if handle not in ended:
                yield self.violation(
                    ctx,
                    call,
                    f"span handle {handle!r} from Tracer.begin() is never "
                    "ended in this function; close it with "
                    f"{handle}.end(...) or use the span() context manager",
                )
