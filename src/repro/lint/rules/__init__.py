"""Rule modules register themselves on import; one file per rule family.

Adding a rule in a future PR means adding one module here and importing
it below — the engine, CLI, baseline and report layers need no changes.
"""

from repro.lint.rules import (
    audit,
    determinism,
    hotpath,
    metrics,
    remedy,
    rngflow,
    scenario,
    simapi,
    spans,
    state,
    topology,
    units,
    unitsflow,
)

__all__ = [
    "audit",
    "determinism",
    "hotpath",
    "metrics",
    "remedy",
    "rngflow",
    "scenario",
    "simapi",
    "spans",
    "state",
    "topology",
    "units",
    "unitsflow",
]
