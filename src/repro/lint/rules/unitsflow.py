"""REP009: interprocedural unit-dimension inference over the call graph.

REP002 checks unit suffixes *within* one expression or keyword argument;
it cannot see a ``window_ms`` value crossing a function boundary into a
``delay_s`` parameter defined two modules away — the exact class of slip
that silently scales a hand-off timer by 1000×.  This project rule walks
the resolved call graph and checks three flows:

* **positional arguments** — a suffixed value passed *positionally* to a
  parameter declaring a different suffix (REP002's keyword check never
  sees these);
* **conflicting inference** — an *unsuffixed* parameter that receives
  same-dimension but different-scale values from different call sites
  (``_ms`` here, ``_s`` there): one of the callers is wrong, and the
  parameter needs a suffix to say which.  Cross-dimension mixes are
  treated as evidence of a genuinely generic parameter (a KPI value, a
  formatting helper) and stay quiet;
* **returns** — a function whose *name* carries a suffix must not return
  expressions resolving to an incompatible unit, and a call result must
  not be assigned to a name whose suffix contradicts the function's
  declared or unanimously inferred return unit.

Log-domain quantities (``_dbm``/``_db``/...) are mutually compatible
exactly as in REP002.  Anything the resolver cannot type stays silent:
the rule under-approximates rather than guesses.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.core.units import LOG_DOMAIN_DIMENSIONS, UNIT_DIMENSIONS, unit_suffix
from repro.lint.engine import FileContext, Violation
from repro.lint.project import (
    CallSite,
    FunctionInfo,
    ProjectContext,
    ProjectRule,
    project_rule,
)

#: (suffix, dimension) — resolved unit of a subexpression.
_Unit = tuple[str, str]


def expression_unit(node: ast.AST) -> _Unit | None:
    """Unit of an expression, traversing only additive structure.

    Mirrors REP002's resolver (dimension-changing operators are opaque;
    an unknown operand lets the other's unit propagate) without the
    violation side channel — here a mixed additive chain just resolves
    to "unknown" and the interprocedural checks stay quiet.
    """
    if isinstance(node, ast.UnaryOp):
        return expression_unit(node.operand)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left = expression_unit(node.left)
        right = expression_unit(node.right)
        if left is None:
            return right
        if right is None:
            return left
        if not _compatible(left, right):
            return None
        if left[1] in LOG_DOMAIN_DIMENSIONS and left[1] != right[1]:
            return left if left[1] != "log-ratio" else right
        return left
    if isinstance(node, ast.Name):
        suffix = unit_suffix(node.id)
    elif isinstance(node, ast.Attribute):
        suffix = unit_suffix(node.attr)
    else:
        return None
    if suffix is None:
        return None
    return suffix, UNIT_DIMENSIONS[suffix]


def _compatible(left: _Unit, right: _Unit) -> bool:
    if left[0] == right[0]:
        return True
    return left[1] in LOG_DOMAIN_DIMENSIONS and right[1] in LOG_DOMAIN_DIMENSIONS


def _describe(unit: _Unit) -> str:
    return f"_{unit[0]} ({unit[1]})"


def _map_positional(
    info: FunctionInfo, call: ast.Call
) -> Iterator[tuple[str, ast.AST]]:
    """(param name, argument expression) for plain positional arguments."""
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            return  # everything after *args is positionally untrackable
        if index >= len(info.params):
            return
        yield info.params[index], arg


def _assignment_targets(ctx: FileContext) -> dict[int, str]:
    """Map ``id(call node)`` -> simple-name assignment target in ``ctx``."""
    targets: dict[int, str] = {}
    for node in ctx.walk(ast.Assign):
        assert isinstance(node, ast.Assign)
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
        ):
            targets[id(node.value)] = node.targets[0].id
    for node in ctx.walk(ast.AnnAssign):
        assert isinstance(node, ast.AnnAssign)
        if isinstance(node.target, ast.Name) and isinstance(node.value, ast.Call):
            targets[id(node.value)] = node.target.id
    return targets


@project_rule
class UnitFlowRule(ProjectRule):
    """Flag unit mismatches that only the whole-program view can see."""

    id = "REP009"
    name = "unit-flow"
    severity = "error"

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        assign_targets: dict[str, dict[int, str]] = {}
        for info in project.functions.values():
            sites = project.calls_to(info.qualname)
            if sites:
                yield from self._check_positional(info, sites)
                yield from self._check_inference(info, sites)
                yield from self._check_result_assignment(info, sites, assign_targets)
            yield from self._check_returns(info)

    # -- positional arguments ----------------------------------------

    def _check_positional(
        self, info: FunctionInfo, sites: list[CallSite]
    ) -> Iterator[Violation]:
        declared = {
            param: (suffix, UNIT_DIMENSIONS[suffix])
            for param in info.params
            if (suffix := unit_suffix(param)) is not None
        }
        if not declared:
            return
        for site in sites:
            for param, arg in _map_positional(info, site.node):
                expected = declared.get(param)
                if expected is None:
                    continue
                actual = expression_unit(arg)
                if actual is None or _compatible(actual, expected):
                    continue
                yield self.violation(
                    site.ctx,
                    arg,
                    f"passing {_describe(actual)} value positionally to "
                    f"parameter {param!r} of {info.qualname}() which "
                    f"expects {_describe(expected)}",
                )

    # -- conflicting inference for unsuffixed parameters ---------------

    def _check_inference(
        self, info: FunctionInfo, sites: list[CallSite]
    ) -> Iterator[Violation]:
        unsuffixed = [p for p in info.all_params if unit_suffix(p) is None]
        if not unsuffixed or not sites:
            return
        evidence: dict[str, dict[str, CallSite]] = {p: {} for p in unsuffixed}
        for site in sites:
            seen: list[tuple[str, ast.AST]] = list(
                _map_positional(info, site.node)
            )
            seen.extend(
                (kw.arg, kw.value)
                for kw in site.node.keywords
                if kw.arg is not None
            )
            for param, arg in seen:
                if param not in evidence:
                    continue
                actual = expression_unit(arg)
                if actual is not None:
                    evidence[param].setdefault(actual[0], site)
        for param, units in evidence.items():
            if len(units) < 2:
                continue
            dims = {UNIT_DIMENSIONS[s] for s in units}
            if len(dims) != 1 or dims & LOG_DOMAIN_DIMENSIONS:
                # cross-dimension: a generic parameter, not a unit slip
                continue
            ordered = sorted(units)
            witnesses = "; ".join(
                f"_{suffix} at {units[suffix].ctx.display_path}:"
                f"{units[suffix].line}"
                for suffix in ordered
            )
            yield self.violation(
                info.ctx,
                info.node,
                f"parameter {param!r} of {info.qualname}() receives "
                f"same-dimension values at different scales ({witnesses}); "
                "suffix the parameter and convert at the wrong call site",
            )

    # -- returns -------------------------------------------------------

    def _return_unit(self, info: FunctionInfo) -> _Unit | None:
        """Declared (name-suffix) or unanimously inferred return unit."""
        suffix = unit_suffix(info.name)
        if suffix is not None:
            return suffix, UNIT_DIMENSIONS[suffix]
        inferred: set[str] = set()
        for node in info.walk(ast.Return):
            assert isinstance(node, ast.Return)
            if node.value is not None:
                unit = expression_unit(node.value)
                if unit is None:
                    return None  # an untypable return keeps us honest
                inferred.add(unit[0])
        if len(inferred) == 1:
            only = next(iter(inferred))
            return only, UNIT_DIMENSIONS[only]
        return None

    def _check_returns(self, info: FunctionInfo) -> Iterator[Violation]:
        suffix = unit_suffix(info.name)
        if suffix is None:
            return
        declared = (suffix, UNIT_DIMENSIONS[suffix])
        for node in info.walk(ast.Return):
            assert isinstance(node, ast.Return)
            if node.value is None:
                continue
            actual = expression_unit(node.value)
            if actual is None or _compatible(actual, declared):
                continue
            yield self.violation(
                info.ctx,
                node,
                f"{info.qualname}() declares {_describe(declared)} in its "
                f"name but returns {_describe(actual)}",
            )

    def _check_result_assignment(
        self,
        info: FunctionInfo,
        sites: list[CallSite],
        assign_targets: dict[str, dict[int, str]],
    ) -> Iterator[Violation]:
        if not sites:
            return
        returned = self._return_unit(info)
        if returned is None:
            return
        for site in sites:
            per_ctx = assign_targets.get(site.ctx.display_path)
            if per_ctx is None:
                per_ctx = _assignment_targets(site.ctx)
                assign_targets[site.ctx.display_path] = per_ctx
            target = per_ctx.get(id(site.node))
            if target is None:
                continue
            suffix = unit_suffix(target)
            if suffix is None:
                continue
            expected = (suffix, UNIT_DIMENSIONS[suffix])
            if _compatible(returned, expected):
                continue
            yield self.violation(
                site.ctx,
                site.node,
                f"result of {info.qualname}() ({_describe(returned)}) "
                f"assigned to {target!r} which implies "
                f"{_describe(expected)}",
            )
