"""REP003: discrete-event simulator API contracts.

Three misuse patterns around :class:`repro.net.sim.Simulator`:

* **negative literal delays** — ``sim.schedule(-0.1, cb)`` raises at
  runtime and ``schedule_at`` with a negative literal timestamp can
  never be reached; both are compile-time-detectable typos.
* **discarded timer handles** — ``schedule``/``schedule_at`` return a
  cancellable :class:`Event`.  For fire-and-forget callbacks discarding
  it is idiomatic, but timers that *must* be cancellable (timeouts,
  retransmission/RTO timers) leak a stale timer if the handle is
  dropped — exactly the bug class behind spurious retransmissions.
* **re-entrant construction** — building a fresh ``Simulator()``
  directly inside an experiment sweep loop mixes per-iteration virtual
  time with loop-carried components built against the previous
  instance; construct it in a per-repetition helper instead.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.lint.engine import FileContext, Rule, Violation, rule

_SCHEDULE_METHODS = ("schedule", "schedule_at")

#: Callback names that by convention are cancellable timers.
_TIMER_NAME_RE = re.compile(r"timeout|retransmit|rto", re.IGNORECASE)


def _is_schedule_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _SCHEDULE_METHODS
    )


def _negative_literal(node: ast.AST) -> bool:
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, (int, float))
    ):
        return True
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and node.value < 0
    )


def _callback_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@rule
class SimulatorApiRule(Rule):
    """Flag schedule/Simulator usage that breaks the event-loop contract."""

    id = "REP003"
    name = "simulator-api"
    severity = "error"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ctx.walk(ast.Call, ast.Expr):
            if isinstance(node, ast.Call) and _is_schedule_call(node):
                yield from self._check_delay(ctx, node)
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                yield from self._check_discarded_timer(ctx, node.value)
        if ctx.in_package_dir("experiments"):
            yield from self._simulator_in_loop(ctx)

    def _check_delay(self, ctx: FileContext, call: ast.Call) -> Iterator[Violation]:
        if call.args and _negative_literal(call.args[0]):
            method = call.func.attr  # type: ignore[union-attr]
            yield self.violation(
                ctx,
                call,
                f"negative literal delay/time passed to {method}(); "
                "the simulator cannot schedule into the past",
            )

    def _check_discarded_timer(
        self, ctx: FileContext, call: ast.Call
    ) -> Iterator[Violation]:
        if not _is_schedule_call(call) or len(call.args) < 2:
            return
        name = _callback_name(call.args[1])
        if name is not None and _TIMER_NAME_RE.search(name):
            yield self.violation(
                ctx,
                call,
                f"discarding the Event handle of a cancellable timer "
                f"({name}); keep it so the timer can be cancelled when "
                "the awaited reply arrives",
            )

    def _simulator_in_loop(self, ctx: FileContext) -> Iterator[Violation]:
        reported: set[int] = set()
        for loop in ctx.walk(ast.For, ast.AsyncFor, ast.While):
            for node in ast.walk(loop):
                if node is loop or not isinstance(node, ast.Call):
                    continue
                qualified = ctx.imports.resolve(node.func)
                if (
                    qualified is not None
                    and qualified.endswith(".Simulator")
                    and id(node) not in reported
                ):
                    reported.add(id(node))
                    yield self.violation(
                        ctx,
                        node,
                        "Simulator() constructed inside an experiment loop; "
                        "build one per repetition in a helper function so "
                        "components cannot leak across iterations",
                    )
