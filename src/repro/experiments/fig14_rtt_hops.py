"""Fig. 14: RTT growth along each hop of one example 8-hop path.

The decomposition shows where 5G's latency advantage lives: hop 1 (the
air interface) saves well under a millisecond, while hop 2 (RAN to core)
saves ~20 ms thanks to the flattened core and dedicated fiber; the wired
hops beyond are identical for both networks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import ResultTable
from repro.core.rng import RngFactory
from repro.experiments.common import DEFAULT_SEED
from repro.net.path import segment_delays_s
from repro.scenario import Scenario, resolve_scenario

__all__ = ["Fig14Result", "run"]

_PROBE_JITTER_S = 0.0004


@dataclass(frozen=True)
class Fig14Result:
    """Cumulative per-hop RTTs (ms) for both networks."""

    lte_hop_rtts_ms: tuple[float, ...]
    nr_hop_rtts_ms: tuple[float, ...]

    @property
    def ran_gap_ms(self) -> float:
        """Hop-1 (air interface) RTT difference."""
        return self.lte_hop_rtts_ms[0] - self.nr_hop_rtts_ms[0]

    @property
    def core_gap_ms(self) -> float:
        """Extra gap contributed by hop 2 (RAN to core network)."""
        lte_step = self.lte_hop_rtts_ms[1] - self.lte_hop_rtts_ms[0]
        nr_step = self.nr_hop_rtts_ms[1] - self.nr_hop_rtts_ms[0]
        return lte_step - nr_step

    def table(self) -> ResultTable:
        """Render per-hop RTTs as a text table."""
        table = ResultTable(
            "Fig. 14 — RTT along each path hop",
            ["hop", "4G RTT (ms)", "5G RTT (ms)"],
        )
        for i, (l4, l5) in enumerate(zip(self.lte_hop_rtts_ms, self.nr_hop_rtts_ms), 1):
            table.add_row([i, f"{l4:.2f}", f"{l5:.2f}"])
        return table


def run(
    seed: int = DEFAULT_SEED,
    distance_km: float = 30.0,
    wired_hops: int = 6,
    probes: int = 30,
    scenario: Scenario | str | None = None,
) -> Fig14Result:
    """Probe hop-by-hop RTTs on one example path for both networks."""
    scn = resolve_scenario(scenario)
    lte_gen, nr_gen = scn.radio.lte.generation, scn.radio.nr.generation
    rngf = RngFactory(seed)
    results: dict[int, list[float]] = {}
    for generation in (lte_gen, nr_gen):
        rng = rngf.stream(f"fig14:{generation}")
        delays = segment_delays_s(generation, distance_km, wired_hops)
        cumulative = np.cumsum(delays)
        hop_means = []
        for hop_delay in cumulative:
            samples = [
                2.0 * hop_delay + abs(float(rng.normal(0.0, _PROBE_JITTER_S)))
                for _ in range(probes)
            ]
            hop_means.append(float(np.mean(samples)) * 1000)
        results[generation] = hop_means
    return Fig14Result(
        lte_hop_rtts_ms=tuple(results[lte_gen]), nr_hop_rtts_ms=tuple(results[nr_gen])
    )
