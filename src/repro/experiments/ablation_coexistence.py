"""Ablation: 4G and 5G flows sharing one wireline path (Sec. 4.2).

The paper flags a trade-off it leaves for future work: enlarging wired
buffers cuts the 5G flow's loss, but 4G flows sharing the same routers
then queue behind the 5G traffic — bufferbloat.  This ablation builds two
cellular paths that share a single wireline bottleneck and sweeps its
buffer size, measuring the 5G flow's loss alongside the 4G flow's RTT
inflation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import RadioProfile
from repro.core.results import ResultTable
from repro.core.rng import default_rng
from repro.experiments.common import DEFAULT_SEED
from repro.net.packet import Packet
from repro.scenario import Scenario, resolve_scenario
from repro.net.path import NetworkPath, PathConfig, build_cellular_path
from repro.net.sim import Simulator
from repro.transport.base import TcpConnection
from repro.transport.iperf import make_cc

#: Display normalization for the table: the default packet-level scale.
_DISPLAY_SCALE = 0.05

__all__ = ["CoexistenceResult", "BUFFER_MULTIPLIERS", "run"]

BUFFER_MULTIPLIERS: tuple[float, ...] = (1.0, 4.0)

_NR_FLOW = 1
_LTE_FLOW = 2


@dataclass(frozen=True)
class CoexistencePoint:
    """Outcome at one buffer size."""

    nr_retransmissions: int
    nr_throughput_bps: float
    lte_mean_rtt_s: float
    lte_p95_rtt_s: float
    lte_throughput_bps: float


@dataclass(frozen=True)
class CoexistenceResult:
    """The buffer-size sweep."""

    points: dict[float, CoexistencePoint]

    @property
    def bigger_buffer_cuts_nr_loss(self) -> bool:
        """Whether the largest buffer reduces the 5G flow's retransmissions."""
        small = self.points[BUFFER_MULTIPLIERS[0]]
        big = self.points[BUFFER_MULTIPLIERS[-1]]
        return big.nr_retransmissions < small.nr_retransmissions

    @property
    def bigger_buffer_bloats_lte_rtt(self) -> bool:
        """Whether the largest buffer inflates the 4G flow's tail RTT."""
        small = self.points[BUFFER_MULTIPLIERS[0]]
        big = self.points[BUFFER_MULTIPLIERS[-1]]
        return big.lte_p95_rtt_s > small.lte_p95_rtt_s

    def table(self) -> ResultTable:
        """Render the sweep as a text table."""
        table = ResultTable(
            "Ablation — shared wireline path: 5G loss vs 4G bufferbloat",
            ["wired buffer", "5G retx", "5G tput (Mbps)", "4G p95 RTT (ms)", "4G tput (Mbps)"],
        )
        for mult, point in self.points.items():
            table.add_row(
                [
                    f"{mult:.0f}x",
                    point.nr_retransmissions,
                    f"{point.nr_throughput_bps / _DISPLAY_SCALE / 1e6:.0f}",
                    f"{point.lte_p95_rtt_s * 1000:.1f}",
                    f"{point.lte_throughput_bps / _DISPLAY_SCALE / 1e6:.0f}",
                ]
            )
        return table


def _build_shared_paths(
    sim: Simulator,
    scale: float,
    seed: int,
    buffer_multiplier: float,
    nr_profile: RadioProfile,
    lte_profile: RadioProfile,
) -> tuple[NetworkPath, NetworkPath]:
    """Two cellular paths whose data direction shares one wireline link.

    Both paths are built normally, then the 4G path's head is replaced by
    the 5G path's wired link, with a flow-id demultiplexer deciding which
    core segment each serialized packet continues into.
    """
    rng = default_rng(seed)
    path5 = build_cellular_path(sim, PathConfig(profile=nr_profile, scale=scale), rng)
    path4 = build_cellular_path(
        sim,
        PathConfig(profile=lte_profile, scale=scale, with_cross_traffic=False),
        rng,
    )
    shared = path5.wired_link
    shared.queue.capacity_packets = int(
        shared.queue.capacity_packets * buffer_multiplier
    )
    core5 = path5.forward[1]
    core4 = path4.forward[1]

    def demux(packet: Packet) -> None:
        if packet.flow_id == _NR_FLOW:
            core5.send(packet)
        else:
            core4.send(packet)

    shared.connect(demux)
    # The 4G path's own head link is bypassed: its sender now injects
    # straight into the shared wireline bottleneck.
    path4.forward[0] = shared
    return path5, path4


def _run_point(
    seed: int,
    duration_s: float,
    scale: float,
    multiplier: float,
    nr_profile: RadioProfile,
    lte_profile: RadioProfile,
) -> CoexistencePoint:
    """One coexistence repetition on its own freshly built simulator."""
    sim = Simulator()
    path5, path4 = _build_shared_paths(sim, scale, seed, multiplier, nr_profile, lte_profile)
    conn5 = TcpConnection.establish(
        sim, path5, make_cc("bbr", path5.config.mss_bytes, scale), flow_id=_NR_FLOW
    )
    conn4 = TcpConnection.establish(
        sim, path4, make_cc("cubic", path4.config.mss_bytes, scale), flow_id=_LTE_FLOW
    )
    conn5.start()
    conn4.start()
    sim.run(until=duration_s)
    rtts = [rtt for _, rtt in conn4.sender.stats.rtt_samples]
    return CoexistencePoint(
        nr_retransmissions=conn5.sender.stats.retransmissions,
        nr_throughput_bps=conn5.sender.stats.throughput_bps(duration_s),
        lte_mean_rtt_s=float(np.mean(rtts)) if rtts else 0.0,
        lte_p95_rtt_s=float(np.percentile(rtts, 95)) if rtts else 0.0,
        lte_throughput_bps=conn4.sender.stats.throughput_bps(duration_s),
    )


def run(
    seed: int = DEFAULT_SEED,
    duration_s: float = 20.0,
    scale: float | None = None,
    scenario: Scenario | str | None = None,
) -> CoexistenceResult:
    """Run a 5G BBR bulk flow next to a 4G Cubic flow per buffer size."""
    scn = resolve_scenario(scenario)
    if scale is None:
        scale = scn.workload.sim_scale
    points = {
        multiplier: _run_point(
            seed, duration_s, scale, multiplier, scn.radio.nr, scn.radio.lte
        )
        for multiplier in BUFFER_MULTIPLIERS
    }
    return CoexistenceResult(points=points)
