"""Tab. 4: energy consumption of the four power-management models.

Each model replays the same three workload traces to completion; the
completion times (and hence the energies) diverge per RAT, exactly as
the paper notes.  Totals include the Android system baseline the
battery also sees during the replay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import ResultTable
from repro.core.rng import RngFactory
from repro.energy.power_model import SYSTEM_POWER_W
from repro.energy.simulator import MODEL_RUNNERS
from repro.energy.traffic import (
    file_transfer_trace,
    video_telephony_trace,
    web_browsing_trace,
)
from repro.experiments.common import DEFAULT_SEED
from repro.scenario import Scenario, resolve_scenario

__all__ = ["Tab4Result", "WORKLOADS", "run"]

WORKLOADS = ("Web", "Video", "File")


@dataclass(frozen=True)
class Tab4Result:
    """Energy (J) per (model, workload)."""

    energy_j: dict[tuple[str, str], float]

    def saving_vs_nsa(self, model: str, workload: str) -> float:
        """Relative energy saving of ``model`` against NR NSA."""
        return 1.0 - self.energy_j[(model, workload)] / self.energy_j[("NR NSA", workload)]

    def table(self) -> ResultTable:
        """Render Tab. 4 as a text table."""
        table = ResultTable(
            "Tab. 4 — energy consumption (J) of different models",
            ["Model"] + list(WORKLOADS),
        )
        for model in MODEL_RUNNERS:
            table.add_row(
                [model] + [f"{self.energy_j[(model, w)]:.2f}" for w in WORKLOADS]
            )
        return table


def run(
    seed: int = DEFAULT_SEED, scenario: Scenario | str | None = None
) -> Tab4Result:
    """Replay all three workloads through all four models."""
    energy = resolve_scenario(scenario).energy
    rng = RngFactory(seed).stream("tab4")
    traces = {
        "Web": (web_browsing_trace(rng=rng), energy.web),
        "Video": (video_telephony_trace(), energy.video),
        "File": (file_transfer_trace(), energy.file),
    }
    energy: dict[tuple[str, str], float] = {}
    for model, runner in MODEL_RUNNERS.items():
        for workload, (trace, capacities) in traces.items():
            result = runner(trace, capacities)
            energy[(model, workload)] = (
                result.total_energy_j + SYSTEM_POWER_W * result.end_s
            )
    return Tab4Result(energy_j=energy)
