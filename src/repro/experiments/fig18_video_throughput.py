"""Fig. 18: uplink video throughput by resolution, scene and network.

5G carries every resolution up to 5.7K; 4G collapses on 5.7K (and on
dynamic 4K), losing frames to uplink congestion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import ResultTable
from repro.apps.video import VIDEO_PROFILES, run_video_session
from repro.experiments.common import DEFAULT_SEED
from repro.scenario import Scenario, resolve_scenario

__all__ = ["Fig18Result", "run"]


@dataclass(frozen=True)
class Fig18Result:
    """Received throughput (unscaled Mbps) per (resolution, network, scene)."""

    throughput_mbps: dict[tuple[str, str, str], float]
    freeze_counts: dict[tuple[str, str, str], int]

    def table(self) -> ResultTable:
        """Render throughput per resolution as a text table."""
        table = ResultTable(
            "Fig. 18 — received video throughput (Mbps)",
            ["resolution", "4G static", "4G dynamic", "5G static", "5G dynamic"],
        )
        for resolution in VIDEO_PROFILES:
            table.add_row(
                [
                    resolution,
                    f"{self.throughput_mbps[(resolution, '4G', 'static')]:.1f}",
                    f"{self.throughput_mbps[(resolution, '4G', 'dynamic')]:.1f}",
                    f"{self.throughput_mbps[(resolution, '5G', 'static')]:.1f}",
                    f"{self.throughput_mbps[(resolution, '5G', 'dynamic')]:.1f}",
                ]
            )
        return table


def run(
    seed: int = DEFAULT_SEED,
    duration_s: float = 20.0,
    scale: float | None = None,
    scenario: Scenario | str | None = None,
) -> Fig18Result:
    """Push every resolution over both uplinks, static and dynamic."""
    scn = resolve_scenario(scenario)
    if scale is None:
        scale = scn.workload.video_sim_scale
    throughput: dict[tuple[str, str, str], float] = {}
    freezes: dict[tuple[str, str, str], int] = {}
    for resolution in VIDEO_PROFILES:
        for network, profile in (("4G", scn.radio.lte), ("5G", scn.radio.nr)):
            for scene, dynamic in (("static", False), ("dynamic", True)):
                session = run_video_session(
                    profile,
                    resolution,
                    dynamic=dynamic,
                    duration_s=duration_s,
                    scale=scale,
                    seed=seed,
                )
                key = (resolution, network, scene)
                throughput[key] = session.mean_throughput_bps / scale / 1e6
                freezes[key] = session.freeze_count()
    return Fig18Result(throughput_mbps=throughput, freeze_counts=freezes)
