"""Fig. 13: 4G vs 5G RTT over 80 nationwide paths.

Traceroute probes from 4 campus base stations to the 20 SPEEDTEST
servers of Tab. 6, 30 probes each.  5G trims ~22 ms off the RTT (all of
it at the RAN-to-core segment), but the mean one-way latency stays above
the 10 ms budget interactive applications demand.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import ResultTable
from repro.core.rng import RngFactory
from repro.experiments.common import DEFAULT_SEED, record_kpi, record_kpi_samples
from repro.net.path import segment_delays_s
from repro.net.servers import SPEEDTEST_SERVERS
from repro.scenario import Scenario, resolve_scenario

__all__ = ["Fig13Result", "run", "probe_rtt_s"]

#: Per-probe jitter (queueing noise along the path), seconds std-dev.
_PROBE_JITTER_S = 0.0012


def probe_rtt_s(
    generation: int,
    distance_km: float,
    rng: np.random.Generator,
    wired_hops: int | None = None,
) -> float:
    """One traceroute probe RTT to a server ``distance_km`` away.

    Longer paths traverse more routers; hop count grows gently with
    distance (6 hops in-city up to ~16 cross-country).
    """
    if wired_hops is None:
        wired_hops = int(6 + min(10, distance_km / 350.0))
    one_way = sum(segment_delays_s(generation, distance_km, wired_hops))
    jitter = abs(float(rng.normal(0.0, _PROBE_JITTER_S)))
    return 2.0 * one_way + jitter


@dataclass(frozen=True)
class Fig13Result:
    """Paired RTT means per path (the Fig. 13 scatter points)."""

    lte_rtts_ms: tuple[float, ...]
    nr_rtts_ms: tuple[float, ...]

    @property
    def mean_gap_ms(self) -> float:
        """Mean RTT advantage of 5G over 4G across paths."""
        return float(np.mean(self.lte_rtts_ms) - np.mean(self.nr_rtts_ms))

    @property
    def mean_nr_latency_ms(self) -> float:
        """Mean 5G one-way latency (half the RTT), the paper's 21.8 ms."""
        return float(np.mean(self.nr_rtts_ms)) / 2.0

    @property
    def gap_relative(self) -> float:
        """The gap as a fraction of the 4G RTT."""
        return self.mean_gap_ms / float(np.mean(self.lte_rtts_ms))

    def table(self) -> ResultTable:
        """Render the summary as a text table."""
        table = ResultTable(
            "Fig. 13 — end-to-end RTT",
            ["metric", "value"],
        )
        table.add_row(["paths", len(self.nr_rtts_ms)])
        table.add_row(["mean 5G RTT (ms)", f"{float(np.mean(self.nr_rtts_ms)):.1f}"])
        table.add_row(["mean 4G RTT (ms)", f"{float(np.mean(self.lte_rtts_ms)):.1f}"])
        table.add_row(["mean gap (ms)", f"{self.mean_gap_ms:.1f}"])
        table.add_row(["mean 5G latency (ms)", f"{self.mean_nr_latency_ms:.1f}"])
        return table


def run(
    seed: int = DEFAULT_SEED,
    base_stations: int = 4,
    probes_per_path: int = 30,
    scenario: Scenario | str | None = None,
) -> Fig13Result:
    """Probe all (base station, server) pairs on both networks."""
    scn = resolve_scenario(scenario)
    lte_gen, nr_gen = scn.radio.lte.generation, scn.radio.nr.generation
    rngf = RngFactory(seed)
    lte_means: list[float] = []
    nr_means: list[float] = []
    for bs in range(base_stations):
        for server in SPEEDTEST_SERVERS:
            rng = rngf.stream(f"fig13:{bs}:{server.server_id}")
            lte = [
                probe_rtt_s(lte_gen, server.distance_km, rng)
                for _ in range(probes_per_path)
            ]
            nr = [
                probe_rtt_s(nr_gen, server.distance_km, rng)
                for _ in range(probes_per_path)
            ]
            lte_means.append(float(np.mean(lte)) * 1000)
            nr_means.append(float(np.mean(nr)) * 1000)
    result = Fig13Result(lte_rtts_ms=tuple(lte_means), nr_rtts_ms=tuple(nr_means))
    record_kpi_samples("fig13.rtt.5g.paths_ms", nr_means)
    record_kpi_samples("fig13.rtt.4g.paths_ms", lte_means)
    record_kpi("fig13.rtt_gap.mean_ms", result.mean_gap_ms)
    record_kpi("fig13.latency.5g.mean_ms", result.mean_nr_latency_ms)
    return result
