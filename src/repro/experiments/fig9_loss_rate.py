"""Fig. 9: UDP packet loss versus offered load fraction.

5G sessions lose multi-fold more than 4G at every load point: the
wireline routers' buffers were provisioned for 4G-scale flows, and the
5x capacity jump overruns them whenever cross-traffic bursts align.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import ResultTable
from repro.core.stats import percent
from repro.experiments.common import DEFAULT_SEED, path_config
from repro.scenario import Scenario, resolve_scenario
from repro.transport.iperf import run_udp, run_udp_baseline

__all__ = ["Fig9Result", "LOAD_FRACTIONS", "run"]

#: The paper's load points: {1/5, 1/4, 1/3, 1/2, 1} of the baseline.
LOAD_FRACTIONS: tuple[float, ...] = (0.2, 0.25, 1 / 3, 0.5, 1.0)


@dataclass(frozen=True)
class Fig9Result:
    """Loss rate per (network, load fraction)."""

    loss_rates: dict[tuple[str, float], float]

    def series(self, network: str) -> list[float]:
        """Loss rates across load fractions for one network."""
        return [self.loss_rates[(network, frac)] for frac in LOAD_FRACTIONS]

    def table(self) -> ResultTable:
        """Render the loss grid as a text table."""
        table = ResultTable(
            "Fig. 9 — UDP loss vs offered fraction of the baseline",
            ["network"] + [f"{f:.2f}" for f in LOAD_FRACTIONS],
        )
        for network in ("4G", "5G"):
            table.add_row([network] + [percent(v) for v in self.series(network)])
        return table


def run(
    seed: int = DEFAULT_SEED,
    duration_s: float = 15.0,
    scale: float | None = None,
    scenario: Scenario | str | None = None,
) -> Fig9Result:
    """Offer CBR UDP at each fraction of the measured UDP baseline."""
    scn = resolve_scenario(scenario)
    if scale is None:
        scale = scn.workload.sim_scale
    loss_rates: dict[tuple[str, float], float] = {}
    for network, profile in (("4G", scn.radio.lte), ("5G", scn.radio.nr)):
        config = path_config(scn, profile=profile, scale=scale)
        baseline = run_udp_baseline(config, duration_s=duration_s, seed=seed)
        for fraction in LOAD_FRACTIONS:
            result = run_udp(config, baseline * fraction, duration_s=duration_s, seed=seed)
            loss_rates[(network, fraction)] = result.loss_rate
    return Fig9Result(loss_rates=loss_rates)
