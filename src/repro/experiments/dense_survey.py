"""Dense campus grid survey: the batched radio core's showcase workload.

Surveys the full campus on a fine uniform grid under the ``dense-grid``
densification scenario (all seven infill gNBs on air).  With tens of
thousands of point x cell pairs, this is the workload the struct-of-arrays
radio core (:meth:`repro.radio.cell.RadioNetwork.rsrp_matrix_at` and
:func:`repro.radio.coverage.survey_at_locations`) exists for; the
``benchmarks`` tree times it against the per-point scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import fmean

from repro.core.results import ResultTable
from repro.core.stats import percent
from repro.experiments.common import DEFAULT_SEED, record_kpi, testbed
from repro.geometry.points import Point
from repro.radio.coverage import coverage_hole_fraction, survey_at_locations
from repro.scenario import Scenario

__all__ = ["DenseSurveyResult", "grid_locations", "run"]


@dataclass(frozen=True)
class DenseSurveyResult:
    """Aggregate coverage picture of the dense grid sweep."""

    grid_spacing_m: float
    points_count: int
    holes_ratio: float
    rsrp_mean_dbm: float
    indoor_ratio: float

    def table(self) -> ResultTable:
        """Render the sweep summary as a text table."""
        table = ResultTable("Dense grid survey", ["quantity", "value"])
        table.add_row(["grid spacing", f"{self.grid_spacing_m:.0f} m"])
        table.add_row(["points", str(self.points_count)])
        table.add_row(["coverage holes", percent(self.holes_ratio)])
        table.add_row(["mean RSRP", f"{self.rsrp_mean_dbm:.1f} dBm"])
        table.add_row(["indoor points", percent(self.indoor_ratio)])
        return table


def grid_locations(
    width_m: float, height_m: float, grid_spacing_m: float
) -> list[Point]:
    """Uniform grid over the campus rectangle, inclusive of both edges."""
    if grid_spacing_m <= 0:
        raise ValueError(f"grid_spacing_m must be positive, got {grid_spacing_m}")
    cols = int(width_m // grid_spacing_m)
    rows = int(height_m // grid_spacing_m)
    return [
        Point(ix * grid_spacing_m, iy * grid_spacing_m)
        for ix in range(cols + 1)
        for iy in range(rows + 1)
    ]


def run(
    seed: int = DEFAULT_SEED,
    grid_spacing_m: float = 10.0,
    scenario: Scenario | str | None = "dense-grid",
) -> DenseSurveyResult:
    """Survey the whole campus grid on the 5G network.

    Unlike the other experiments, the default scenario is ``dense-grid``
    rather than the paper deployment: the sweep exists to exercise the
    densified topology (and the batched survey path that makes it cheap).
    """
    bed = testbed(seed, scenario)
    locations = grid_locations(
        bed.world.width_m, bed.world.height_m, grid_spacing_m
    )
    points = survey_at_locations(bed.nr, locations)
    holes = coverage_hole_fraction(points)
    rsrp_mean = fmean(p.rsrp_dbm for p in points)
    indoor = sum(1 for p in points if p.indoor) / len(points)
    record_kpi("dense_survey.points_count", len(points))
    record_kpi("dense_survey.holes_ratio", holes)
    record_kpi("dense_survey.rsrp_mean_dbm", rsrp_mean)
    return DenseSurveyResult(
        grid_spacing_m=grid_spacing_m,
        points_count=len(points),
        holes_ratio=holes,
        rsrp_mean_dbm=rsrp_mean,
        indoor_ratio=indoor,
    )
