"""Shared context for the experiment modules.

Every experiment builds on the same campus, propagation environment and
radio networks; this module constructs them once per (seed) and caches
the result, mirroring how the measurement campaign reused one testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.config import LTE_PROFILE, NR_PROFILE
from repro.core.rng import RngFactory
from repro.geometry.campus import Campus, build_campus
from repro.radio.cell import RadioNetwork
from repro.radio.propagation import Environment

__all__ = ["Testbed", "testbed", "warm", "testbed_cache_info", "DEFAULT_SEED"]

DEFAULT_SEED = 7


@dataclass(frozen=True)
class Testbed:
    """The measurement testbed: campus plus both radio networks."""

    seed: int
    campus: Campus
    environment: Environment
    nr: RadioNetwork
    lte: RadioNetwork
    lte_anchors: RadioNetwork

    @property
    def rng_factory(self) -> RngFactory:
        """A fresh factory positioned at the campaign seed."""
        return RngFactory(self.seed)


@lru_cache(maxsize=4)
def testbed(seed: int = DEFAULT_SEED) -> Testbed:
    """Build (or fetch the cached) testbed for ``seed``."""
    campus = build_campus()
    rngf = RngFactory(seed)
    environment = Environment(campus.buildings, rngf)
    nr = RadioNetwork.from_campus(campus, NR_PROFILE, environment)
    lte = RadioNetwork.from_campus(campus, LTE_PROFILE, environment)
    lte_anchors = RadioNetwork.from_sites(
        campus.co_sited_enbs(), LTE_PROFILE, environment, max_gain_dbi=15.0
    )
    return Testbed(
        seed=seed,
        campus=campus,
        environment=environment,
        nr=nr,
        lte=lte,
        lte_anchors=lte_anchors,
    )


def warm(seed: int = DEFAULT_SEED) -> Testbed:
    """Pre-build the testbed for ``seed`` so later experiments hit the cache.

    Campaign-runner workers call this from their pool initializer: the
    testbed build dominates the startup cost of cheap experiments, so each
    worker pays it once up front instead of inside its first task.
    """
    return testbed(seed)


def testbed_cache_info():
    """``functools`` cache statistics for the per-process testbed cache."""
    return testbed.cache_info()
