"""Shared context for the experiment modules.

Every experiment builds on the same world model, propagation environment
and radio networks; this module constructs them once per (seed, scenario)
and caches the result, mirroring how the measurement campaign reused one
testbed.  The scenario decides the deployment — radio profiles, anchor
gain, and the topology generator that produces the world (the hand-crafted
paper campus or a seeded procedural district) — so alternative deployments
flow through every experiment without touching the physics code.

It also hosts the KPI helpers (:func:`record_kpi`,
:func:`record_kpi_samples`, :func:`bump_kpi`): thin wrappers over the
ambient :mod:`repro.metrics` registry that experiments call to publish
headline numbers — throughput, hand-off latency, energy per bit — under
stable dotted names.  Names follow ``<experiment>.<quantity>.<variant>``
and end in a unit suffix from :data:`repro.core.units.UNIT_DIMENSIONS`
(or ``_count``/``_ratio``), which the REP006 lint rule enforces.  Outside
an instrumented run the ambient registry is a no-op, so experiments pay
nothing when invoked directly from tests or notebooks.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from functools import lru_cache

from typing import Any

from repro.core.rng import RngFactory
from repro.geometry.world import WorldModel
from repro.metrics import core as metrics
from repro.net.path import PathConfig
from repro.radio.cell import RadioNetwork
from repro.radio.propagation import Environment
from repro.scenario import Scenario, resolve_scenario
from repro.topology import generate_world

__all__ = [
    "Testbed",
    "testbed",
    "warm",
    "testbed_cache_info",
    "path_config",
    "DEFAULT_SEED",
    "bump_kpi",
    "record_kpi",
    "record_kpi_samples",
]

DEFAULT_SEED = 7


@dataclass(frozen=True)
class Testbed:
    """The measurement testbed: the world model plus both radio networks."""

    seed: int
    scenario: Scenario
    world: WorldModel
    environment: Environment
    nr: RadioNetwork
    lte: RadioNetwork
    lte_anchors: RadioNetwork

    @property
    def campus(self) -> WorldModel:
        """Back-compat alias of :attr:`world` (the paper's map was a campus)."""
        return self.world

    @property
    def rng_factory(self) -> RngFactory:
        """A fresh factory positioned at the campaign seed."""
        return RngFactory(self.seed)


def testbed(seed: int = DEFAULT_SEED, scenario: Scenario | str | None = None) -> Testbed:
    """Build (or fetch the cached) testbed for ``(seed, scenario)``.

    ``scenario`` accepts anything :func:`repro.scenario.resolve_scenario`
    does: ``None`` (the paper's NSA deployment), a preset name, a file
    path or a :class:`Scenario` value.  Scenarios hash by content, so the
    cache keys on ``(seed, digest)`` for free.
    """
    return _build_testbed(seed, resolve_scenario(scenario))


@lru_cache(maxsize=4)
def _build_testbed(seed: int, scenario: Scenario) -> Testbed:
    world = generate_world(seed, scenario.topology)
    rngf = RngFactory(seed)
    environment = Environment(world.buildings, rngf)
    nr = RadioNetwork.from_world(world, scenario.radio.nr, environment)
    lte = RadioNetwork.from_world(world, scenario.radio.lte, environment)
    lte_anchors = RadioNetwork.from_sites(
        world.co_sited_enbs(),
        scenario.radio.lte,
        environment,
        max_gain_dbi=scenario.topology.lte_anchor_max_gain_dbi,
    )
    return Testbed(
        seed=seed,
        scenario=scenario,
        world=world,
        environment=environment,
        nr=nr,
        lte=lte,
        lte_anchors=lte_anchors,
    )


def path_config(scenario: Scenario, **overrides: Any) -> PathConfig:
    """The scenario's end-to-end measurement path, remedies included.

    Collects the :class:`~repro.net.path.PathConfig` fields a scenario
    determines — NR profile, simulation scale, server topology, and the
    ``[remedy]`` section — so experiments cannot silently drop the
    remedy when an operator asks for ``paper-nsa-codel``.  Keyword
    overrides win (e.g. ``direction="ul"`` or an explicit ``scale``).
    """
    settings: dict[str, Any] = {
        "profile": scenario.radio.nr,
        "scale": scenario.workload.sim_scale,
        "server_distance_km": scenario.topology.server_distance_km,
        "wired_hops": scenario.topology.wired_hops,
        "remedy": scenario.remedy,
    }
    settings.update(overrides)
    return PathConfig(**settings)


def warm(seed: int = DEFAULT_SEED, scenario: Scenario | str | None = None) -> Testbed:
    """Pre-build the testbed so later experiments hit the cache.

    Campaign-runner workers call this from their pool initializer: the
    testbed build dominates the startup cost of cheap experiments, so each
    worker pays it once up front instead of inside its first task.
    """
    return testbed(seed, scenario)


def testbed_cache_info():
    """``functools`` cache statistics for the per-process testbed cache."""
    return _build_testbed.cache_info()


def record_kpi(name: str, value: float) -> None:
    """Publish a headline scalar (gauge) under the ambient registry.

    Use for single derived numbers: a mean throughput, a coverage
    fraction, an energy-per-bit figure.  Last write wins on re-entry
    within a run; across runs each run's value is kept per origin.
    """
    metrics.current().gauge(name).set(float(value))


def record_kpi_samples(name: str, samples: Iterable[float]) -> None:
    """Publish a sample population into a mergeable quantile sketch.

    Use for distributions the paper reports as CDFs/percentiles —
    hand-off latencies, per-path RTTs.  The sketch keeps an exact mean
    and a bottom-k reservoir for quantiles, and merges deterministically
    across workers.
    """
    sketch = metrics.current().quantile(name)
    for sample in samples:
        sketch.observe(float(sample))


def bump_kpi(name: str, delta: int = 1) -> None:
    """Increment a monotone event counter under the ambient registry."""
    metrics.current().counter(name).inc(delta)
