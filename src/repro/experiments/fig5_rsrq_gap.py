"""Fig. 5: RSRQ gap before vs after each hand-off, by hand-off kind."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import ResultTable
from repro.core.stats import Cdf, percent
from repro.experiments.common import DEFAULT_SEED
from repro.experiments.ho_campaign import campaign
from repro.scenario import Scenario
from repro.mobility.handoff import HandoffKind, rsrq_gain_cdf_fraction

__all__ = ["Fig5Result", "run"]


@dataclass(frozen=True)
class Fig5Result:
    """Gain CDFs per kind plus the headline >3 dB fractions."""

    gains_by_kind: dict[str, tuple[float, ...]]
    fraction_above_3db: dict[str, float]
    overall_fraction_above_3db: float

    def cdf(self, kind: str) -> Cdf:
        """The gain CDF for one hand-off kind."""
        return Cdf(self.gains_by_kind[kind])

    def table(self) -> ResultTable:
        """Render the per-kind fractions as a text table."""
        table = ResultTable(
            "Fig. 5 — RSRQ gain across hand-offs",
            ["kind", "events", "gain > 3 dB"],
        )
        for kind, gains in self.gains_by_kind.items():
            table.add_row([kind, len(gains), percent(self.fraction_above_3db[kind])])
        table.add_row(["overall", sum(len(g) for g in self.gains_by_kind.values()),
                       percent(self.overall_fraction_above_3db)])
        return table


def run(
    seed: int = DEFAULT_SEED,
    duration_s: float | None = None,
    scenario: Scenario | str | None = None,
) -> Fig5Result:
    """Compute per-kind RSRQ-gain statistics over the walk campaign."""
    data = campaign(seed, duration_s, scenario)
    if not data.events:
        raise RuntimeError("no hand-off events; extend duration_s")
    gains: dict[str, tuple[float, ...]] = {}
    fractions: dict[str, float] = {}
    for kind in HandoffKind.ALL:
        events = data.events_of_kind(kind)
        if not events:
            continue
        gains[kind] = tuple(e.rsrq_gain_db for e in events)
        fractions[kind] = rsrq_gain_cdf_fraction(events)
    return Fig5Result(
        gains_by_kind=gains,
        fraction_above_3db=fractions,
        overall_fraction_above_3db=rsrq_gain_cdf_fraction(data.events),
    )
