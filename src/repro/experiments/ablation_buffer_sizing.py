"""Ablation: does resizing (or disciplining) the wired buffers fix the anomaly?

Sec. 4.2 proposes two remedies: (i) grow the wireline router buffers
(the Stanford rule says the 5G path needs ~5x the 4G buffer, i.e. about
2x what is deployed), or (ii) switch to loss-insensitive probing TCP
(BBR).  This ablation sweeps the wired buffer multiplier and measures
Cubic's utilization, with BBR as the no-buffer-change alternative —
and adds the third remedy the paper never had hardware for: replacing
the drop-tail FIFO with an AQM discipline (:mod:`repro.qdisc`) at the
deployed buffer budget's multiple.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import ResultTable
from repro.core.stats import percent
from repro.core.rng import default_rng
from repro.core.config import RadioProfile
from repro.experiments.common import DEFAULT_SEED
from repro.net.path import PathConfig, build_cellular_path
from repro.qdisc import RemedySection
from repro.scenario import Scenario, resolve_scenario
from repro.net.sim import Simulator
from repro.transport.base import TcpConnection
from repro.transport.iperf import make_cc, run_tcp, run_udp_baseline

__all__ = ["BufferAblationResult", "BUFFER_MULTIPLIERS", "QDISC_AXIS", "run"]

BUFFER_MULTIPLIERS: tuple[float, ...] = (1.0, 2.0, 4.0)

#: The queue-discipline axis: each AQM runs at its default (deep)
#: buffer allocation — the discipline, not the depth, is the variable.
QDISC_AXIS: tuple[str, ...] = ("codel", "fq-codel", "cake")


@dataclass(frozen=True)
class BufferAblationResult:
    """Cubic utilization per buffer multiplier, plus the alternatives."""

    cubic_utilization: dict[float, float]
    bbr_utilization_at_1x: float
    qdisc_utilization: dict[str, float]

    @property
    def doubling_helps(self) -> bool:
        """The paper's suggestion: ~2x the wired buffer restores Cubic."""
        return self.cubic_utilization[2.0] > 1.3 * self.cubic_utilization[1.0]

    @property
    def aqm_beats_deployed_droptail(self) -> bool:
        """Every AQM discipline outperforms the 1x drop-tail deployment."""
        return all(
            self.qdisc_utilization[name] > self.cubic_utilization[1.0]
            for name in QDISC_AXIS
        )

    def table(self) -> ResultTable:
        """Render the sweep as a text table."""
        table = ResultTable(
            "Ablation — wired buffer sizing vs Cubic utilization (5G)",
            ["wired buffer", "cubic utilization"],
        )
        for mult in BUFFER_MULTIPLIERS:
            table.add_row([f"{mult:.0f}x deployed", percent(self.cubic_utilization[mult])])
        table.add_row(["(BBR at 1x)", percent(self.bbr_utilization_at_1x)])
        for name in QDISC_AXIS:
            table.add_row([f"({name} qdisc)", percent(self.qdisc_utilization[name])])
        return table


def _run_with_buffer(
    multiplier: float,
    algorithm: str,
    seed: int,
    scale: float,
    baseline: float,
    profile: RadioProfile,
) -> float:
    """One 5G TCP run with the wired buffer scaled by ``multiplier``."""
    config = PathConfig(profile=profile, scale=scale)
    sim = Simulator()
    rng = default_rng(seed)
    path = build_cellular_path(sim, config, rng)
    extra = int(path.wired_link.queue.capacity_packets * (multiplier - 1.0))
    path.wired_link.queue.capacity_packets += extra
    cc = make_cc(algorithm, config.mss_bytes, rate_scale=scale)
    conn = TcpConnection.establish(sim, path, cc)
    conn.start()
    duration = 30.0
    sim.run(until=duration)
    return conn.sender.stats.throughput_bps(duration) / baseline


def run(
    seed: int = DEFAULT_SEED,
    scale: float | None = None,
    repeats: int = 2,
    scenario: Scenario | str | None = None,
) -> BufferAblationResult:
    """Sweep wired-buffer multipliers under Cubic; measure BBR at 1x."""
    scn = resolve_scenario(scenario)
    if scale is None:
        scale = scn.workload.sim_scale
    nr_profile = scn.radio.nr
    config = PathConfig(profile=nr_profile, scale=scale)
    baseline = run_udp_baseline(config, duration_s=15.0, seed=seed)
    cubic: dict[float, float] = {}
    for multiplier in BUFFER_MULTIPLIERS:
        runs = [
            _run_with_buffer(multiplier, "cubic", seed + 2 * i, scale, baseline, nr_profile)
            for i in range(repeats)
        ]
        cubic[multiplier] = sum(runs) / repeats
    bbr = sum(
        _run_with_buffer(1.0, "bbr", seed + 2 * i, scale, baseline, nr_profile)
        for i in range(repeats)
    ) / repeats
    qdisc_util: dict[str, float] = {}
    for name in QDISC_AXIS:
        config = PathConfig(
            profile=nr_profile, scale=scale, remedy=RemedySection(qdisc=name)
        )
        runs = [
            run_tcp(
                config, "cubic", duration_s=30.0, seed=seed + 2 * i, baseline_bps=baseline
            ).utilization
            for i in range(repeats)
        ]
        qdisc_util[name] = sum(runs) / repeats
    return BufferAblationResult(
        cubic_utilization=cubic, bbr_utilization_at_1x=bbr, qdisc_utilization=qdisc_util
    )
