"""Fig. 23: the 5G energy-management showcase.

Ten web loads at 3 s spacing (t1..t3), then the tails: the 4G radio is
back to idle ~10 s after the last transfer (t4) while the NSA 5G radio
takes ~20 s (t5) because releasing NR re-activates an LTE tail.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rng import RngFactory
from repro.energy.drx import EnergyResult
from repro.energy.pwrstrip import PowerSample, sample_timeline
from repro.energy.simulator import simulate_lte, simulate_nr_nsa
from repro.energy.traffic import web_browsing_trace
from repro.experiments.common import DEFAULT_SEED
from repro.scenario import Scenario, resolve_scenario

__all__ = ["Fig23Result", "run"]


@dataclass(frozen=True)
class Fig23Result:
    """Sampled power traces plus the landmark times t1..t5."""

    lte_samples: tuple[PowerSample, ...]
    nr_samples: tuple[PowerSample, ...]
    transfer_start_s: float  # t2 (t1 = promotion start precedes it)
    transfer_end_s: float  # t3
    lte_tail_end_s: float  # t4
    nr_tail_end_s: float  # t5
    lte_energy_j: float
    nr_energy_j: float

    @property
    def nr_over_lte_energy(self) -> float:
        """Energy ratio over the same sessions (paper: ~1.67x)."""
        return self.nr_energy_j / self.lte_energy_j

    @property
    def nr_tail_duration_s(self) -> float:
        """Time from last transfer to the end of the 5G tail (t5)."""
        return self.nr_tail_end_s - self.transfer_end_s

    @property
    def lte_tail_duration_s(self) -> float:
        """Time from last transfer to the end of the 4G tail (t4)."""
        return self.lte_tail_end_s - self.transfer_end_s


def _tail_end(result: EnergyResult) -> float:
    tails = [s.end_s for s in result.segments if s.state in ("tail-drx", "inactivity")]
    return max(tails) if tails else result.completion_s


def run(
    seed: int = DEFAULT_SEED,
    num_pages: int = 10,
    think_time_s: float = 3.0,
    scenario: Scenario | str | None = None,
) -> Fig23Result:
    """Replay the web-loading showcase on both radios and sample power."""
    rng = RngFactory(seed).stream("fig23")
    trace = web_browsing_trace(
        num_pages=num_pages, think_time_s=think_time_s, rng=rng
    )
    web = resolve_scenario(scenario).energy.web
    lte = simulate_lte(trace, web)
    nr = simulate_nr_nsa(trace, web)
    return Fig23Result(
        lte_samples=tuple(sample_timeline(lte, seed=seed)),
        nr_samples=tuple(sample_timeline(nr, seed=seed)),
        transfer_start_s=trace[0].start_s,
        transfer_end_s=max(lte.completion_s, nr.completion_s),
        lte_tail_end_s=_tail_end(lte),
        nr_tail_end_s=_tail_end(nr),
        lte_energy_j=lte.total_energy_j,
        nr_energy_j=nr.total_energy_j,
    )
