"""Discussion experiment: can 5G fixed wireless replace DSL? (Sec. 8)

The paper measures ~650 Mbps to a window-mounted CPE and argues a
50-house neighbourhood sharing a 3-sector gNB still beats the 24 Mbps
average US DSL line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import ResultTable
from repro.experiments.common import DEFAULT_SEED
from repro.scenario import Scenario, resolve_scenario
from repro.radio.cpe import CpeLink, DslComparison, dsl_replacement_study

__all__ = ["CpeDslResult", "run"]


@dataclass(frozen=True)
class CpeDslResult:
    """CPE link quality plus the neighbourhood sharing analysis."""

    window_throughput_bps: float
    deep_indoor_throughput_bps: float
    comparison: DslComparison

    @property
    def window_placement_matters(self) -> bool:
        """The paper stresses 'favorable locations (near windows)'."""
        return self.window_throughput_bps > 1.2 * self.deep_indoor_throughput_bps

    def table(self) -> ResultTable:
        """Render the study as a text table."""
        table = ResultTable(
            "Sec. 8 — 5G CPE vs DSL",
            ["metric", "value"],
        )
        table.add_row(
            ["CPE at window (Mbps)", f"{self.window_throughput_bps / 1e6:.0f}"]
        )
        table.add_row(
            ["CPE deep indoor (Mbps)", f"{self.deep_indoor_throughput_bps / 1e6:.0f}"]
        )
        table.add_row(
            [
                f"per-house share ({self.comparison.houses} houses, "
                f"{self.comparison.sectors} sectors)",
                f"{self.comparison.per_house_bps / 1e6:.0f} Mbps",
            ]
        )
        table.add_row(["US DSL average", f"{self.comparison.dsl_bps / 1e6:.0f} Mbps"])
        table.add_row(["replaces DSL?", "yes" if self.comparison.replaces_dsl else "no"])
        return table


def run(
    seed: int = DEFAULT_SEED,
    cpe_distance_m: float = 240.0,
    scenario: Scenario | str | None = None,
) -> CpeDslResult:
    """Evaluate the CPE link at and away from the window, then share it."""
    nr = resolve_scenario(scenario).radio.nr
    window = CpeLink(profile=nr, distance_m=cpe_distance_m, window_mounted=True)
    indoor = CpeLink(profile=nr, distance_m=cpe_distance_m, window_mounted=False)
    comparison = dsl_replacement_study(nr, cpe_distance_m=cpe_distance_m)
    return CpeDslResult(
        window_throughput_bps=window.throughput_bps(),
        deep_indoor_throughput_bps=indoor.throughput_bps(),
        comparison=comparison,
    )
