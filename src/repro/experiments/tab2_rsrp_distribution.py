"""Tab. 2: RSRP distribution and coverage holes of the blanket survey."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import ResultTable
from repro.core.stats import percent
from repro.experiments.common import DEFAULT_SEED, bump_kpi, record_kpi, testbed
from repro.scenario import Scenario
from repro.radio.coverage import (
    coverage_hole_fraction,
    road_locations,
    rsrp_distribution,
    survey_at_locations,
)

__all__ = ["Tab2Result", "run"]

#: Sample count of the paper's survey.
PAPER_SAMPLE_COUNT = 4630


@dataclass(frozen=True)
class Tab2Result:
    """Per-network RSRP histograms (descending bins, like the paper)."""

    bins: tuple[tuple[float, float], ...]
    lte_fractions: tuple[float, ...]
    nr_fractions: tuple[float, ...]
    lte_anchor_fractions: tuple[float, ...]
    lte_holes: float
    nr_holes: float
    lte_anchor_holes: float

    def table(self) -> ResultTable:
        """Render Tab. 2 as a text table."""
        table = ResultTable(
            "Tab. 2 — RSRP distribution",
            ["RSRP (dBm)", "4G", "5G", "4G (6 eNBs)"],
        )
        for (lo, hi), f4, f5, f46 in zip(
            self.bins, self.lte_fractions, self.nr_fractions, self.lte_anchor_fractions
        ):
            table.add_row(
                [f"[{lo:.0f}, {hi:.0f})", percent(f4), percent(f5), percent(f46)]
            )
        return table


def run(
    seed: int = DEFAULT_SEED,
    num_points: int = 1200,
    scenario: Scenario | str | None = None,
) -> Tab2Result:
    """Sample the roads and bin RSRP for 4G, 5G and the 6-anchor subset.

    ``num_points`` defaults lower than the paper's 4630 for speed; pass
    the full count for the closest replication.
    """
    bed = testbed(seed, scenario)
    locations = road_locations(bed.world, num_points, bed.rng_factory.stream("tab2"))
    nr_points = survey_at_locations(bed.nr, locations)
    lte_points = survey_at_locations(bed.lte, locations)
    anchor_points = survey_at_locations(bed.lte_anchors, locations)

    nr_hist = rsrp_distribution(nr_points)
    lte_hist = rsrp_distribution(lte_points)
    anchor_hist = rsrp_distribution(anchor_points)

    # Present descending (strongest bin first), like the paper's table.
    bins = tuple(edges for edges, _, _ in reversed(nr_hist))
    bump_kpi("tab2.survey.points_count", len(locations))
    record_kpi("tab2.coverage_holes.5g_ratio", coverage_hole_fraction(nr_points))
    record_kpi("tab2.coverage_holes.4g_ratio", coverage_hole_fraction(lte_points))
    return Tab2Result(
        bins=bins,
        lte_fractions=tuple(frac for _, _, frac in reversed(lte_hist)),
        nr_fractions=tuple(frac for _, _, frac in reversed(nr_hist)),
        lte_anchor_fractions=tuple(frac for _, _, frac in reversed(anchor_hist)),
        lte_holes=coverage_hole_fraction(lte_points),
        nr_holes=coverage_hole_fraction(nr_points),
        lte_anchor_holes=coverage_hole_fraction(anchor_points),
    )
