"""Tab. 1: basic physical info of the co-located 4G and 5G networks."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import ResultTable
from repro.core.stats import Summary, summarize
from repro.experiments.common import DEFAULT_SEED, testbed
from repro.radio.coverage import road_locations, survey_at_locations
from repro.scenario import Scenario

__all__ = ["Tab1Result", "run"]


@dataclass(frozen=True)
class Tab1Result:
    """Structured Tab. 1 output."""

    lte_band_mhz: tuple[float, float]
    nr_band_mhz: tuple[float, float]
    lte_cells: int
    nr_cells: int
    lte_rsrp: Summary
    nr_rsrp: Summary

    def table(self) -> ResultTable:
        """Render Tab. 1 as a text table."""
        table = ResultTable("Tab. 1 — Basic physical info", ["Info.", "4G", "5G"])
        table.add_row(
            [
                "DL Band (MHz)",
                f"{self.lte_band_mhz[0]:.0f}~{self.lte_band_mhz[1]:.0f}",
                f"{self.nr_band_mhz[0]:.0f}~{self.nr_band_mhz[1]:.0f}",
            ]
        )
        table.add_row(["# Cells", self.lte_cells, self.nr_cells])
        table.add_row(
            [
                "RSRP (dBm)",
                f"{self.lte_rsrp.mean:.2f} ± {self.lte_rsrp.std:.2f}",
                f"{self.nr_rsrp.mean:.2f} ± {self.nr_rsrp.std:.2f}",
            ]
        )
        return table


def run(
    seed: int = DEFAULT_SEED,
    num_points: int = 1000,
    scenario: Scenario | str | None = None,
) -> Tab1Result:
    """Survey both networks and assemble Tab. 1."""
    bed = testbed(seed, scenario)
    lte, nr = bed.scenario.radio.lte, bed.scenario.radio.nr
    locations = road_locations(bed.world, num_points, bed.rng_factory.stream("tab1"))
    nr_points = survey_at_locations(bed.nr, locations)
    lte_points = survey_at_locations(bed.lte, locations)
    return Tab1Result(
        lte_band_mhz=(
            lte.carrier_mhz,
            lte.carrier_mhz + lte.bandwidth_mhz,
        ),
        nr_band_mhz=(
            nr.carrier_mhz,
            nr.carrier_mhz + nr.bandwidth_mhz,
        ),
        lte_cells=bed.world.cell_count("4G"),
        nr_cells=bed.world.cell_count("5G"),
        lte_rsrp=summarize(p.rsrp_dbm for p in lte_points),
        nr_rsrp=summarize(p.rsrp_dbm for p in nr_points),
    )
