"""Fig. 12: TCP throughput drop across hand-offs.

A BBR flow rides each path while a hand-off outage of the measured
duration interrupts the radio link; 5G's long NSA hand-offs (and the
capacity cliff of 5G-4G fallbacks) gut the throughput, while 4G-4G
hand-offs barely dent it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import ResultTable
from repro.core.stats import percent
from repro.core.rng import default_rng
from repro.experiments.common import DEFAULT_SEED
from repro.mobility.handoff import HandoffKind, HandoffProcedure
from repro.scenario import Scenario, resolve_scenario
from repro.net.path import PathConfig, build_cellular_path
from repro.net.sim import Simulator
from repro.transport.base import TcpConnection
from repro.transport.iperf import make_cc

__all__ = ["Fig12Result", "run"]

#: Throughput comparison window on each side of the hand-off (the paper
#: measures over fine-grained windows right at the hand-off instant).
WINDOW_S = 0.15


@dataclass(frozen=True)
class Fig12Result:
    """Normalized throughput drop per hand-off kind."""

    drops: dict[str, tuple[float, ...]]

    def mean_drop(self, kind: str) -> float:
        """Mean normalized throughput drop for one hand-off kind."""
        return float(np.mean(self.drops[kind]))

    def table(self) -> ResultTable:
        """Render the drops as a text table."""
        table = ResultTable(
            "Fig. 12 — TCP throughput drop at hand-off",
            ["kind", "events", "mean drop"],
        )
        for kind, values in self.drops.items():
            table.add_row([kind, len(values), percent(float(np.mean(values)))])
        return table


def _measure_drop(
    profile,
    kind: str,
    seed: int,
    scale: float,
    rate_after_factor: float = 1.0,
    sa_mode: bool = False,
    server_distance_km: float = 30.0,
    wired_hops: int = 4,
) -> float:
    """Run one BBR flow with a mid-flow hand-off; return the tput drop.

    Cross traffic and scheduling stalls are disabled so the measured gap
    isolates the hand-off-induced interruption, as the paper's per-event
    normalization does.
    """
    config = PathConfig(
        profile=profile,
        scale=scale,
        with_cross_traffic=False,
        with_scheduling_stalls=False,
        server_distance_km=server_distance_km,
        wired_hops=wired_hops,
    )
    sim = Simulator()
    rng = default_rng(seed)
    path = build_cellular_path(sim, config, rng)
    conn = TcpConnection.establish(sim, path, make_cc("bbr", config.mss_bytes, scale))

    ho_at = 8.0
    outage = HandoffProcedure.draw(kind, rng, sa_mode=sa_mode).total_latency_s
    path.schedule_access_outage(ho_at, outage)
    if rate_after_factor != 1.0:
        # Vertical fallback: the access link continues at 4G speed.
        sim.schedule_at(
            ho_at, lambda: setattr(path.access_link, "rate_bps",
                                   path.access_link.rate_bps * rate_after_factor)
        )
    conn.start()
    sim.run(until=ho_at + 2.0)

    delivered = conn.sender.stats.delivered_trace

    def window_bytes(t0: float, t1: float) -> int:
        lo = hi = 0
        for t, d in delivered:
            if t <= t0:
                lo = d
            if t <= t1:
                hi = d
        return hi - lo

    # Baseline: mean windowed delivery over the second before the HO.
    before_windows = [
        window_bytes(ho_at - 1.0 + i * WINDOW_S, ho_at - 1.0 + (i + 1) * WINDOW_S)
        for i in range(int(1.0 / WINDOW_S))
    ]
    before = sum(before_windows) / len(before_windows)
    # "Immediately after": the worst window sliding across the hand-off
    # gap (a catch-up flush after the outage must not mask the stall the
    # user experienced).
    after = min(
        window_bytes(ho_at + offset / 100.0, ho_at + offset / 100.0 + WINDOW_S)
        for offset in range(0, 60, 2)
    )
    if before <= 0:
        return 0.0
    return max(0.0, 1.0 - after / before)


def run(
    seed: int = DEFAULT_SEED,
    repeats: int = 3,
    scale: float | None = None,
    scenario: Scenario | str | None = None,
) -> Fig12Result:
    """Measure drops for 4G-4G, 5G-5G and 5G-4G hand-offs."""
    scn = resolve_scenario(scenario)
    if scale is None:
        scale = scn.workload.sim_scale
    lte_profile, nr_profile = scn.radio.lte, scn.radio.nr
    lte_capacity = PathConfig(profile=lte_profile, scale=scale).access_rate_bps()
    nr_capacity = PathConfig(profile=nr_profile, scale=scale).access_rate_bps()
    cases = (
        (HandoffKind.LTE_TO_LTE, lte_profile, 1.0),
        (HandoffKind.NR_TO_NR, nr_profile, 1.0),
        (HandoffKind.NR_TO_LTE, nr_profile, lte_capacity / nr_capacity),
    )
    drops: dict[str, tuple[float, ...]] = {}
    for kind, profile, factor in cases:
        values = tuple(
            _measure_drop(
                profile,
                kind,
                seed + i,
                scale,
                rate_after_factor=factor,
                sa_mode=scn.radio.sa_mode,
                server_distance_km=scn.topology.server_distance_km,
                wired_hops=scn.topology.wired_hops,
            )
            for i in range(repeats)
        )
        drops[kind] = values
    return Fig12Result(drops=drops)
