"""Discussion experiment: how much does mobile edge computing buy? (Sec. 8)

MEC moves the server behind the base station, eliminating the wireline
path — the component Fig. 15 shows dominating end-to-end latency.  This
experiment compares cloud-server paths at several distances against an
edge deployment, for both raw RTT and web page-load time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import RadioProfile
from repro.core.results import ResultTable
from repro.core.rng import default_rng, derive
from repro.scenario import Scenario, resolve_scenario
from repro.apps.web import WEB_PAGE_CATALOG
from repro.experiments.common import DEFAULT_SEED
from repro.net.path import PathConfig, build_cellular_path
from repro.net.sim import Simulator

__all__ = ["EdgeComputingResult", "run"]

#: An edge server sits just behind the gNB: one short wired hop, no fiber.
_EDGE_DISTANCE_KM = 0.5
_CLOUD_DISTANCES_KM = (30.0, 500.0, 2000.0)


@dataclass(frozen=True)
class EdgeComputingResult:
    """RTT and PLT, edge vs cloud."""

    edge_rtt_ms: float
    cloud_rtt_ms: dict[float, float]
    edge_plt_s: float
    cloud_plt_s: float

    @property
    def rtt_saving_at(self) -> dict[float, float]:
        """Relative RTT saving of edge vs each cloud distance."""
        return {
            d: 1.0 - self.edge_rtt_ms / rtt for d, rtt in self.cloud_rtt_ms.items()
        }

    @property
    def meets_urllc_budget(self) -> bool:
        """Does the edge path meet the 10 ms interactive budget the NSA
        wide-area paths miss (Sec. 4.4)?"""
        return self.edge_rtt_ms / 2.0 <= 10.0

    def table(self) -> ResultTable:
        """Render the comparison as a text table."""
        table = ResultTable(
            "Sec. 8 — mobile edge computing",
            ["deployment", "RTT (ms)", "one-way (ms)"],
        )
        table.add_row(
            ["edge (behind gNB)", f"{self.edge_rtt_ms:.1f}", f"{self.edge_rtt_ms / 2:.1f}"]
        )
        for distance, rtt in self.cloud_rtt_ms.items():
            table.add_row([f"cloud @ {distance:.0f} km", f"{rtt:.1f}", f"{rtt / 2:.1f}"])
        return table


def _path_rtt_ms(
    profile: RadioProfile,
    distance_km: float,
    wired_hops: int,
    rng: np.random.Generator,
) -> float:
    config = PathConfig(
        profile=profile,
        server_distance_km=distance_km,
        wired_hops=wired_hops,
        with_scheduling_stalls=False,
    )
    path = build_cellular_path(Simulator(), config, rng)
    return path.base_rtt_s * 1000


def run(
    seed: int = DEFAULT_SEED, scenario: Scenario | str | None = None
) -> EdgeComputingResult:
    """Compare the edge deployment against cloud servers."""
    nr = resolve_scenario(scenario).radio.nr
    rng = default_rng(seed)
    edge_rtt = _path_rtt_ms(nr, _EDGE_DISTANCE_KM, wired_hops=1, rng=derive(rng))
    cloud_rtt = {
        d: _path_rtt_ms(nr, d, wired_hops=int(6 + min(10, d / 350.0)), rng=derive(rng))
        for d in _CLOUD_DISTANCES_KM
    }
    page = WEB_PAGE_CATALOG[0]
    edge_page_plt = _plt_at_distance(page, nr, _EDGE_DISTANCE_KM, 1, seed)
    cloud_page_plt = _plt_at_distance(page, nr, 2000.0, 12, seed)
    return EdgeComputingResult(
        edge_rtt_ms=edge_rtt,
        cloud_rtt_ms=cloud_rtt,
        edge_plt_s=edge_page_plt,
        cloud_plt_s=cloud_page_plt,
    )


def _plt_at_distance(
    page, profile: RadioProfile, distance_km: float, hops: int, seed: int
) -> float:
    from repro.transport.base import TcpConnection
    from repro.transport.iperf import make_cc

    scale = 0.1
    config = PathConfig(
        profile=profile,
        server_distance_km=distance_km,
        wired_hops=hops,
        scale=scale,
    )
    sim = Simulator()
    path = build_cellular_path(sim, config, default_rng(seed))
    cc = make_cc("bbr", config.mss_bytes, rate_scale=scale)
    transfer = max(int(page.size_bytes * scale), config.mss_bytes)
    conn = TcpConnection.establish(sim, path, cc, transfer_bytes=transfer)
    conn.start()
    sim.run(until=120.0)
    if conn.sender.completed_at is None:
        raise RuntimeError("page download did not complete")
    return conn.sender.completed_at + page.render_time_s
