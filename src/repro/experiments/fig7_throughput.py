"""Fig. 7: UDP baselines and TCP bandwidth utilization.

Reproduces the headline TCP anomaly: over 5G, the loss/delay-based
algorithms utilize under ~32% of the UDP baseline while BBR reaches
~82%; over 4G everything behaves far more reasonably.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import ResultTable
from repro.core.stats import percent
from repro.experiments.common import DEFAULT_SEED, path_config, record_kpi
from repro.scenario import Scenario, resolve_scenario
from repro.transport.iperf import CC_ALGORITHMS, run_tcp, run_udp_baseline

__all__ = ["Fig7Result", "run"]


@dataclass(frozen=True)
class Fig7Result:
    """Baselines (unscaled bits/s) and per-algorithm utilization."""

    udp_baselines_bps: dict[tuple[str, str], float]  # (network, time) -> bps
    utilization: dict[tuple[str, str], float]  # (network, algorithm) -> ratio

    def table(self) -> ResultTable:
        """Render baselines and utilization as a text table."""
        table = ResultTable(
            "Fig. 7 — UDP baseline and TCP utilization",
            ["network", "UDP day (Mbps)", "UDP night (Mbps)"]
            + sorted(CC_ALGORITHMS),
        )
        for network in ("4G", "5G"):
            row = [
                network,
                f"{self.udp_baselines_bps[(network, 'day')] / 1e6:.0f}",
                f"{self.udp_baselines_bps[(network, 'night')] / 1e6:.0f}",
            ]
            for alg in sorted(CC_ALGORITHMS):
                row.append(percent(self.utilization[(network, alg)]))
            table.add_row(row)
        return table


def run(
    seed: int = DEFAULT_SEED,
    duration_s: float = 30.0,
    scale: float | None = None,
    algorithms: tuple[str, ...] | None = None,
    repeats: int = 2,
    scenario: Scenario | str | None = None,
) -> Fig7Result:
    """Measure UDP baselines (day and night) and every TCP variant.

    Each TCP point averages ``repeats`` independent runs, like the
    paper's five repetitions per configuration.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    scn = resolve_scenario(scenario)
    if scale is None:
        scale = scn.workload.sim_scale
    algorithms = algorithms if algorithms is not None else tuple(sorted(CC_ALGORITHMS))
    baselines: dict[tuple[str, str], float] = {}
    utilization: dict[tuple[str, str], float] = {}
    for network, profile in (("4G", scn.radio.lte), ("5G", scn.radio.nr)):
        for time_of_day in ("day", "night"):
            config = path_config(scn, profile=profile, scale=scale, time_of_day=time_of_day)
            baseline = run_udp_baseline(config, duration_s=min(duration_s, 15.0), seed=seed)
            baselines[(network, time_of_day)] = baseline / scale
        day_config = path_config(scn, profile=profile, scale=scale, time_of_day="day")
        day_baseline = baselines[(network, "day")] * scale
        for alg in algorithms:
            runs = [
                run_tcp(
                    day_config,
                    alg,
                    duration_s=duration_s,
                    seed=seed + 2 * i,
                    baseline_bps=day_baseline,
                )
                for i in range(repeats)
            ]
            utilization[(network, alg)] = sum(r.utilization for r in runs) / repeats
    for network in ("4G", "5G"):
        tag = network.lower()
        record_kpi(f"fig7.udp_baseline.{tag}.day_bps", baselines[(network, "day")])
        if "bbr" in algorithms:
            record_kpi(f"fig7.utilization.{tag}.bbr_ratio", utilization[(network, "bbr")])
    return Fig7Result(udp_baselines_bps=baselines, utilization=utilization)
