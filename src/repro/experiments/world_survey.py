"""District survey over a procedurally generated world.

The generated-topology twin of :mod:`repro.experiments.dense_survey`:
surveys the whole extent of a :mod:`repro.topology` world on a uniform
grid through the batched radio core, synthesizes the scenario's user
population over the generated road graph, and walks one synthesized user
to exercise mobility on split-segment procedural roads.  The default
scenario is the ``urban-canyon`` district — the acceptance workload of
ROADMAP item 4 — but any preset works, including ``paper-nsa``.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import fmean

from repro.core.results import ResultTable
from repro.core.stats import percent
from repro.experiments.common import DEFAULT_SEED, record_kpi, testbed
from repro.experiments.dense_survey import grid_locations
from repro.radio.coverage import coverage_hole_fraction, survey_at_locations
from repro.scenario import Scenario
from repro.topology.workload import synthesize_workload, walker_for_user

__all__ = ["WorldSurveyResult", "run"]

#: Seconds of one synthesized user's walk sampled per run (mobility probe).
_WALK_PROBE_S = 60.0


@dataclass(frozen=True)
class WorldSurveyResult:
    """Aggregate picture of one generated district."""

    scenario_name: str
    area_km2: float
    road_length_km: float
    buildings_count: int
    sites_count: int
    grid_spacing_m: float
    points_count: int
    holes_ratio: float
    rsrp_mean_dbm: float
    indoor_ratio: float
    users_count: int
    offered_load_mbps: float
    walk_points_count: int

    def table(self) -> ResultTable:
        """Render the district summary as a text table."""
        table = ResultTable(f"World survey ({self.scenario_name})", ["quantity", "value"])
        table.add_row(["area", f"{self.area_km2:.2f} km^2"])
        table.add_row(["roads", f"{self.road_length_km:.1f} km"])
        table.add_row(["buildings", str(self.buildings_count)])
        table.add_row(["sites (5G+4G)", str(self.sites_count)])
        table.add_row(["grid spacing", f"{self.grid_spacing_m:.0f} m"])
        table.add_row(["survey points", str(self.points_count)])
        table.add_row(["coverage holes", percent(self.holes_ratio)])
        table.add_row(["mean RSRP", f"{self.rsrp_mean_dbm:.1f} dBm"])
        table.add_row(["indoor points", percent(self.indoor_ratio)])
        table.add_row(["users", str(self.users_count)])
        table.add_row(["offered load", f"{self.offered_load_mbps:.0f} Mbit/s"])
        return table


def run(
    seed: int = DEFAULT_SEED,
    grid_spacing_m: float = 30.0,
    scenario: Scenario | str | None = "urban-canyon",
) -> WorldSurveyResult:
    """Survey a generated district's 5G layer and synthesize its workload.

    The default 30 m spacing keeps the bench-gated run under a couple of
    seconds on the 2.25 km^2 urban canyon; the CI acceptance job drops
    the spacing to reach >= 10^4 points on the same district.
    """
    bed = testbed(seed, scenario)
    world = bed.world
    locations = grid_locations(world.width_m, world.height_m, grid_spacing_m)
    points = survey_at_locations(bed.nr, locations)
    holes = coverage_hole_fraction(points)
    rsrp_mean = fmean(p.rsrp_dbm for p in points)
    indoor = sum(1 for p in points if p.indoor) / len(points)

    rngf = bed.rng_factory
    population = synthesize_workload(
        world, bed.scenario.workload, rngf.stream("world-survey.population")
    )
    probe_user = population.users[0]
    walker = walker_for_user(world, probe_user, rngf.stream("world-survey.walk"))
    walk_points = sum(1 for _ in walker.trajectory(_WALK_PROBE_S, dt_s=0.5))

    record_kpi("world_survey.points_count", len(points))
    record_kpi("world_survey.holes_ratio", holes)
    record_kpi("world_survey.rsrp_mean_dbm", rsrp_mean)
    record_kpi("world_survey.indoor_ratio", indoor)
    record_kpi("world_survey.road_length_km", world.road_length_km)
    record_kpi("world_survey.buildings_count", len(world.buildings))
    record_kpi("world_survey.users_count", len(population.users))
    record_kpi("world_survey.offered_load_mbps", population.total_offered_load_mbps)
    return WorldSurveyResult(
        scenario_name=bed.scenario.name,
        area_km2=world.area_km2,
        road_length_km=world.road_length_km,
        buildings_count=len(world.buildings),
        sites_count=len(world.gnb_sites) + len(world.enb_sites),
        grid_spacing_m=grid_spacing_m,
        points_count=len(points),
        holes_ratio=holes,
        rsrp_mean_dbm=rsrp_mean,
        indoor_ratio=indoor,
        users_count=len(population.users),
        offered_load_mbps=population.total_offered_load_mbps,
        walk_points_count=walk_points,
    )
