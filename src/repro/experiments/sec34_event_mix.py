"""Sec. 3.4: the measurement-event mix the UE reports while walking.

The paper observes five event kinds in the RRC measurement reports
(A1 21.98%, A2 0.18%, A3 67.25%, A5 9.19%, B1 1.40%) and that the
operator acts only on A3.  Exact proportions depend on per-event
reporting configurations the paper does not disclose; this experiment
classifies every report of the hand-off campaign with the Tab. 5
semantics and checks the qualitative structure: A3 dominates the
actionable intra-RAT events, A2 and B1 are rare.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.results import ResultTable
from repro.core.stats import percent
from repro.experiments.common import DEFAULT_SEED
from repro.experiments.ho_campaign import campaign
from repro.scenario import Scenario
from repro.mobility.events import EventType, classify_events

__all__ = ["EventMixResult", "run"]


@dataclass(frozen=True)
class EventMixResult:
    """Event counts over the walk."""

    counts: dict[EventType, int]
    reports: int

    @property
    def total(self) -> int:
        """Total events classified."""
        return sum(self.counts.values())

    def fraction(self, event: EventType) -> float:
        """One event kind's share of all classified events."""
        return self.counts.get(event, 0) / self.total if self.total else 0.0

    @property
    def a3_dominates_intra_rat_triggers(self) -> bool:
        """A3 outnumbers the other intra-RAT hand-off triggers (A2/A4/A5)."""
        a3 = self.counts.get(EventType.A3, 0)
        others = max(
            self.counts.get(e, 0) for e in (EventType.A2, EventType.A4, EventType.A5)
        )
        return a3 > others

    def table(self) -> ResultTable:
        """Render the mix as a text table."""
        table = ResultTable(
            "Sec. 3.4 — measurement event mix", ["event", "count", "share"]
        )
        for event in EventType:
            table.add_row(
                [
                    event.value,
                    self.counts.get(event, 0),
                    percent(self.fraction(event)),
                ]
            )
        return table


def run(
    seed: int = DEFAULT_SEED,
    duration_s: float | None = None,
    scenario: Scenario | str | None = None,
) -> EventMixResult:
    """Classify every measurement report of the walk campaign."""
    data = campaign(seed, duration_s, scenario)
    counts: Counter[EventType] = Counter()
    reports = 0
    for sample in data.trace:
        if not sample.neighbor_rsrqs_db:
            continue
        reports += 1
        events = classify_events(
            sample.time_s,
            sample.serving_rsrq_db,
            max(sample.neighbor_rsrqs_db.values()),
            inter_rat_db=sample.inter_rat_rsrq_db,
        )
        counts.update(e.event_type for e in events)
    return EventMixResult(counts=dict(counts), reports=reports)
