"""Fig. 16: page load time across website categories.

Despite 5G's ~5x downlink, PLT barely moves: rendering dominates, and
the short transfers finish inside TCP's ramp-up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import ResultTable
from repro.apps.web import WEB_PAGE_CATALOG, PltBreakdown, measure_plt
from repro.experiments.common import DEFAULT_SEED
from repro.scenario import Scenario, resolve_scenario

__all__ = ["Fig16Result", "run"]


@dataclass(frozen=True)
class Fig16Result:
    """PLT breakdown per (category, network)."""

    plts: dict[tuple[str, str], PltBreakdown]

    @property
    def categories(self) -> list[str]:
        """The five site categories, catalog order."""
        return [page.category for page in WEB_PAGE_CATALOG]

    @property
    def total_plt_reduction(self) -> float:
        """Overall 5G PLT saving across categories (paper: ~5%)."""
        lte = sum(self.plts[(c, "4G")].total_s for c in self.categories)
        nr = sum(self.plts[(c, "5G")].total_s for c in self.categories)
        return 1.0 - nr / lte

    @property
    def download_reduction(self) -> float:
        """Download-phase-only saving (paper: ~20.7%)."""
        lte = sum(self.plts[(c, "4G")].download_s for c in self.categories)
        nr = sum(self.plts[(c, "5G")].download_s for c in self.categories)
        return 1.0 - nr / lte

    def rendering_fraction(self, category: str, network: str) -> float:
        """Rendering's share of the PLT for one category/network."""
        plt = self.plts[(category, network)]
        return plt.render_s / plt.total_s

    def table(self) -> ResultTable:
        """Render the PLT breakdown as a text table."""
        table = ResultTable(
            "Fig. 16 — PLT by website category",
            ["category", "4G dl (s)", "4G render (s)", "5G dl (s)", "5G render (s)"],
        )
        for category in self.categories:
            p4 = self.plts[(category, "4G")]
            p5 = self.plts[(category, "5G")]
            table.add_row(
                [category, f"{p4.download_s:.2f}", f"{p4.render_s:.2f}",
                 f"{p5.download_s:.2f}", f"{p5.render_s:.2f}"]
            )
        return table


def run(
    seed: int = DEFAULT_SEED,
    trials: int = 3,
    scenario: Scenario | str | None = None,
) -> Fig16Result:
    """Load every category ``trials`` times per network and average."""
    scn = resolve_scenario(scenario)
    plts: dict[tuple[str, str], PltBreakdown] = {}
    for page in WEB_PAGE_CATALOG:
        for network, profile in (("4G", scn.radio.lte), ("5G", scn.radio.nr)):
            runs = [
                measure_plt(page, profile, seed=seed + i) for i in range(trials)
            ]
            plts[(page.category, network)] = PltBreakdown(
                download_s=sum(r.download_s for r in runs) / trials,
                render_s=sum(r.render_s for r in runs) / trials,
            )
    return Fig16Result(plts=plts)
