"""Fig. 11: the bursty loss pattern of 5G sessions.

Losses cluster into consecutive runs — the signature of intermittent
buffer overflow at the wireline bottleneck, not of independent random
corruption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import DEFAULT_SEED, path_config
from repro.scenario import Scenario, resolve_scenario
from repro.transport.iperf import run_udp
from repro.transport.udp import loss_runs

__all__ = ["Fig11Result", "run"]


@dataclass(frozen=True)
class Fig11Result:
    """Loss-run statistics of one 5G UDP session."""

    sent: int
    lost: int
    run_lengths: tuple[int, ...]

    @property
    def loss_rate(self) -> float:
        """Fraction of datagrams lost."""
        return self.lost / self.sent if self.sent else 0.0

    @property
    def mean_run_length(self) -> float:
        """Average consecutive-loss run length."""
        return float(np.mean(self.run_lengths)) if self.run_lengths else 0.0

    @property
    def burst_fraction(self) -> float:
        """Fraction of lost packets that fell in runs of >= 3."""
        if not self.run_lengths:
            return 0.0
        bursty = sum(r for r in self.run_lengths if r >= 3)
        return bursty / sum(self.run_lengths)

    @property
    def expected_random_mean_run(self) -> float:
        """Mean run length if losses were i.i.d. at the observed rate:
        1 / (1 - p) — barely above one for single-digit loss rates."""
        p = self.loss_rate
        return 1.0 / (1.0 - p) if p < 1.0 else float("inf")


def run(
    seed: int = DEFAULT_SEED,
    duration_s: float = 20.0,
    load_fraction: float = 0.8,
    scale: float | None = None,
    scenario: Scenario | str | None = None,
) -> Fig11Result:
    """Run one heavily-loaded 5G UDP session and extract its loss runs."""
    scn = resolve_scenario(scenario)
    if scale is None:
        scale = scn.workload.sim_scale
    config = path_config(scn, scale=scale)
    capacity = config.access_rate_bps() * scale
    result = run_udp(config, capacity * load_fraction, duration_s=duration_s, seed=seed)
    return Fig11Result(
        sent=result.sent,
        lost=len(result.lost_seqs),
        run_lengths=tuple(loss_runs(list(result.lost_seqs))),
    )
