"""Fig. 4: RSRQ evolution of serving and neighbour cells around a hand-off."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import DEFAULT_SEED
from repro.experiments.ho_campaign import campaign
from repro.scenario import Scenario
from repro.mobility.handoff import HandoffKind

__all__ = ["Fig4Result", "run"]


@dataclass(frozen=True)
class Fig4Result:
    """An RSRQ time window centred on one 5G-5G hand-off."""

    handoff_time_s: float
    source_pci: int
    target_pci: int
    times_s: tuple[float, ...]
    serving_rsrq_db: tuple[float, ...]
    neighbor_rsrq_db: dict[int, tuple[float, ...]]

    @property
    def serving_degrades_before_handoff(self) -> bool:
        """Whether the old serving cell was losing quality at the trigger."""
        pre = [
            rsrq
            for t, rsrq in zip(self.times_s, self.serving_rsrq_db)
            if t < self.handoff_time_s
        ]
        if len(pre) < 4:
            return False
        half = len(pre) // 2
        return sum(pre[half:]) / len(pre[half:]) <= sum(pre[:half]) / half + 1.0


def run(
    seed: int = DEFAULT_SEED,
    duration_s: float | None = None,
    window_s: float = 8.0,
    scenario: Scenario | str | None = None,
) -> Fig4Result:
    """Extract the RSRQ window around the first 5G-5G hand-off of the walk."""
    data = campaign(seed, duration_s, scenario)
    events = data.events_of_kind(HandoffKind.NR_TO_NR)
    if not events:
        raise RuntimeError("the walk produced no 5G-5G hand-offs; extend duration_s")
    event = events[0]
    lo, hi = event.time_s - window_s / 2, event.time_s + window_s / 2

    times: list[float] = []
    serving: list[float] = []
    neighbors: dict[int, list[float]] = {}
    for sample in data.trace:
        if not lo <= sample.time_s <= hi or sample.rat != "5G":
            continue
        times.append(sample.time_s)
        serving.append(sample.serving_rsrq_db)
        # Track the three strongest neighbours seen in the window.
        for pci, rsrq in sample.neighbor_rsrqs_db.items():
            neighbors.setdefault(pci, []).append(rsrq)
    top = sorted(neighbors, key=lambda p: -max(neighbors[p]))[:3]
    return Fig4Result(
        handoff_time_s=event.time_s,
        source_pci=event.source_pci,
        target_pci=event.target_pci,
        times_s=tuple(times),
        serving_rsrq_db=tuple(serving),
        neighbor_rsrq_db={pci: tuple(neighbors[pci]) for pci in top},
    )
