"""Appendix artifacts: Tab. 5 (hand-off events), Tab. 6 (servers),
Tab. 7 (DRX parameters), rendered from the implementing modules so the
code and the paper stay demonstrably in sync.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import ResultTable
from repro.energy.drx import LTE_DRX_CONFIG, NR_NSA_DRX_CONFIG
from repro.experiments.common import DEFAULT_SEED
from repro.scenario import Scenario
from repro.mobility.events import EventType
from repro.net.servers import SPEEDTEST_SERVERS

__all__ = ["AppendixResult", "run"]

#: Tab. 5 one-line event descriptions.
EVENT_DESCRIPTIONS: dict[EventType, str] = {
    EventType.A1: "serving above threshold: stop measuring neighbours",
    EventType.A2: "serving below threshold: start measuring neighbours",
    EventType.A3: "neighbour better than serving by an offset (main HO event)",
    EventType.A4: "neighbour above a fixed threshold",
    EventType.A5: "serving below threshold1 and neighbour above threshold2",
    EventType.B1: "inter-RAT cell better than a fixed threshold",
    EventType.B2: "serving below threshold1, inter-RAT cell above threshold2",
}


@dataclass(frozen=True)
class AppendixResult:
    """All three appendix tables plus a distance cross-check."""

    max_distance_error_km: float

    def tab5(self) -> ResultTable:
        """Tab. 5: hand-off event taxonomy."""
        table = ResultTable("Tab. 5 — hand-off related events", ["event", "description"])
        for event, description in EVENT_DESCRIPTIONS.items():
            table.add_row([event.value, description])
        return table

    def tab6(self) -> ResultTable:
        """Tab. 6: server list with recomputed distances."""
        table = ResultTable(
            "Tab. 6 — SPEEDTEST servers",
            ["id", "city", "paper distance (km)", "recomputed (km)"],
        )
        for server in SPEEDTEST_SERVERS:
            table.add_row(
                [
                    server.server_id,
                    server.city,
                    f"{server.distance_km:.2f}",
                    f"{server.recomputed_distance_km():.2f}",
                ]
            )
        return table

    def tab7(self) -> ResultTable:
        """Tab. 7: DRX timer configuration per RAT."""
        table = ResultTable(
            "Tab. 7 — NSA power-management parameters (ms)",
            ["parameter", "4G LTE", "5G NR NSA"],
        )
        rows = (
            ("paging DRX cycle", "paging_cycle_s"),
            ("on-duration timer", "on_duration_s"),
            ("promotion delay", "promotion_s"),
            ("DRX inactivity timer", "inactivity_s"),
            ("long C-DRX cycle", "long_drx_cycle_s"),
            ("tail cycle", "tail_s"),
        )
        for label, attr in rows:
            table.add_row(
                [
                    label,
                    f"{getattr(LTE_DRX_CONFIG, attr) * 1000:.0f}",
                    f"{getattr(NR_NSA_DRX_CONFIG, attr) * 1000:.0f}",
                ]
            )
        return table

    def table(self) -> ResultTable:
        """The CLI-facing table: the Tab. 6 distance cross-check (tab5 and
        tab7 are pure configuration renderings)."""
        return self.tab6()


def run(
    seed: int = DEFAULT_SEED, scenario: Scenario | str | None = None
) -> AppendixResult:
    """Cross-check the Tab. 6 distances against haversine geometry."""
    worst = max(
        abs(server.distance_km - server.recomputed_distance_km())
        for server in SPEEDTEST_SERVERS
    )
    return AppendixResult(max_distance_error_km=worst)
