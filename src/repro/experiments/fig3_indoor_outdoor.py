"""Fig. 3: the indoor/outdoor bit-rate gap near the base stations."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import ResultTable
from repro.core.stats import percent
from repro.experiments.common import DEFAULT_SEED, Testbed, testbed
from repro.radio.cell import RadioNetwork
from repro.scenario import Scenario
from repro.radio.coverage import indoor_outdoor_gap

__all__ = ["Fig3Result", "run"]


@dataclass(frozen=True)
class Fig3Result:
    """Aggregated indoor/outdoor comparison for both networks."""

    nr_outdoor_mbps: float
    nr_indoor_mbps: float
    lte_outdoor_mbps: float
    lte_indoor_mbps: float

    @property
    def nr_drop(self) -> float:
        """Relative 5G bit-rate drop moving indoors."""
        return 1.0 - self.nr_indoor_mbps / self.nr_outdoor_mbps

    @property
    def lte_drop(self) -> float:
        """Relative 4G bit-rate drop moving indoors."""
        return 1.0 - self.lte_indoor_mbps / self.lte_outdoor_mbps

    def table(self) -> ResultTable:
        """Render the gap as a text table."""
        table = ResultTable(
            "Fig. 3 — indoor/outdoor bit-rate gap",
            ["network", "outdoor (Mbps)", "indoor (Mbps)", "drop"],
        )
        table.add_row(["5G", f"{self.nr_outdoor_mbps:.0f}", f"{self.nr_indoor_mbps:.0f}", percent(self.nr_drop)])
        table.add_row(["4G", f"{self.lte_outdoor_mbps:.0f}", f"{self.lte_indoor_mbps:.0f}", percent(self.lte_drop)])
        return table


def _aggregate(bed: Testbed, network: RadioNetwork, pcis, pairs_per_cell: int, tag: str):
    outdoor: list[float] = []
    indoor: list[float] = []
    for pci in pcis:
        try:
            gap = indoor_outdoor_gap(
                network,
                bed.world,
                pci,
                pairs_per_cell,
                bed.rng_factory.stream(f"fig3:{tag}:{pci}"),
            )
        except ValueError:
            continue  # cells with no in-FoV walls in the distance window
        outdoor.extend(gap.outdoor_rates_bps)
        indoor.extend(gap.indoor_rates_bps)
    if not outdoor:
        raise RuntimeError(f"no measurable indoor/outdoor walls for {tag}")
    return float(np.mean(outdoor)) / 1e6, float(np.mean(indoor)) / 1e6


def run(
    seed: int = DEFAULT_SEED,
    pairs_per_cell: int = 40,
    scenario: Scenario | str | None = None,
) -> Fig3Result:
    """Measure adjacent indoor/outdoor spots around every eligible cell.

    5G cells are measured frequency-locked (the NSA methodology); the 4G
    side uses the co-sited anchor sectors, like the paper's spots around
    cell 72's mast.
    """
    bed = testbed(seed, scenario)
    nr_out, nr_in = _aggregate(
        bed, bed.nr, [c.pci for c in bed.nr.cells], pairs_per_cell, "5G"
    )
    anchor_pcis = [
        sector.pci for site in bed.world.co_sited_enbs() for sector in site.sectors
    ]
    lte_out, lte_in = _aggregate(bed, bed.lte, anchor_pcis, pairs_per_cell, "4G")
    return Fig3Result(
        nr_outdoor_mbps=nr_out,
        nr_indoor_mbps=nr_in,
        lte_outdoor_mbps=lte_out,
        lte_indoor_mbps=lte_in,
    )
