"""Fig. 17: PLT versus image page size (1-16 MB)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import ResultTable
from repro.apps.web import PltBreakdown, image_page, measure_plt
from repro.experiments.common import DEFAULT_SEED
from repro.scenario import Scenario, resolve_scenario

__all__ = ["Fig17Result", "IMAGE_SIZES_MB", "run"]

IMAGE_SIZES_MB: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0)


@dataclass(frozen=True)
class Fig17Result:
    """PLT per (image size, network)."""

    plts: dict[tuple[float, str], PltBreakdown]

    def total_s(self, size_mb: float, network: str) -> float:
        """Total PLT for one size/network."""
        return self.plts[(size_mb, network)].total_s

    @property
    def gap_grows_with_size(self) -> bool:
        """The 4G-5G download gap should widen with page size."""
        small = self.plts[(IMAGE_SIZES_MB[0], "4G")].download_s - self.plts[
            (IMAGE_SIZES_MB[0], "5G")
        ].download_s
        large = self.plts[(IMAGE_SIZES_MB[-1], "4G")].download_s - self.plts[
            (IMAGE_SIZES_MB[-1], "5G")
        ].download_s
        return large > small

    def table(self) -> ResultTable:
        """Render the size sweep as a text table."""
        table = ResultTable(
            "Fig. 17 — PLT by image size",
            ["size (MB)", "4G dl (s)", "4G render (s)", "5G dl (s)", "5G render (s)"],
        )
        for size in IMAGE_SIZES_MB:
            p4 = self.plts[(size, "4G")]
            p5 = self.plts[(size, "5G")]
            table.add_row(
                [f"{size:.0f}", f"{p4.download_s:.2f}", f"{p4.render_s:.2f}",
                 f"{p5.download_s:.2f}", f"{p5.render_s:.2f}"]
            )
        return table


def run(
    seed: int = DEFAULT_SEED,
    trials: int = 3,
    scenario: Scenario | str | None = None,
) -> Fig17Result:
    """Load each image page size on both networks."""
    scn = resolve_scenario(scenario)
    plts: dict[tuple[float, str], PltBreakdown] = {}
    for size in IMAGE_SIZES_MB:
        page = image_page(size)
        for network, profile in (("4G", scn.radio.lte), ("5G", scn.radio.nr)):
            runs = [measure_plt(page, profile, seed=seed + i) for i in range(trials)]
            plts[(size, network)] = PltBreakdown(
                download_s=sum(r.download_s for r in runs) / trials,
                render_s=sum(r.render_s for r in runs) / trials,
            )
    return Fig17Result(plts=plts)
