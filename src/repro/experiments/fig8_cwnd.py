"""Fig. 8: congestion-window evolution of Cubic vs BBR over 5G.

Cubic's window collapses repeatedly under the bursty wireline loss and
never holds its fair level; BBR's model-driven window stays pinned high
after its ~startup phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import DEFAULT_SEED, path_config
from repro.scenario import Scenario, resolve_scenario
from repro.transport.iperf import run_tcp

__all__ = ["Fig8Result", "run"]


@dataclass(frozen=True)
class Fig8Result:
    """cwnd traces (bytes, at the simulation scale) plus loss counters."""

    cubic_trace: tuple[tuple[float, float], ...]
    bbr_trace: tuple[tuple[float, float], ...]
    cubic_fast_retransmits: int
    bbr_fast_retransmits: int
    scale: float

    def mean_cwnd(self, trace: tuple[tuple[float, float], ...], from_s: float) -> float:
        """Mean cwnd (bytes) of a trace from ``from_s`` onward."""
        values = [w for t, w in trace if t >= from_s]
        return float(np.mean(values)) if values else 0.0

    @property
    def bbr_holds_higher_window(self) -> bool:
        """After slow start, BBR's window dwarfs Cubic's (the Fig. 8 story)."""
        return self.mean_cwnd(self.bbr_trace, 10.0) > 2.0 * self.mean_cwnd(
            self.cubic_trace, 10.0
        )


def run(
    seed: int = DEFAULT_SEED,
    duration_s: float = 45.0,
    scale: float | None = None,
    scenario: Scenario | str | None = None,
) -> Fig8Result:
    """Run one Cubic and one BBR 5G session and keep their cwnd traces."""
    scn = resolve_scenario(scenario)
    if scale is None:
        scale = scn.workload.sim_scale
    config = path_config(scn, scale=scale)
    baseline = config.access_rate_bps() * scale
    cubic = run_tcp(config, "cubic", duration_s=duration_s, seed=seed, baseline_bps=baseline)
    bbr = run_tcp(config, "bbr", duration_s=duration_s, seed=seed, baseline_bps=baseline)
    return Fig8Result(
        cubic_trace=cubic.cwnd_trace,
        bbr_trace=bbr.cwnd_trace,
        cubic_fast_retransmits=cubic.fast_retransmits,
        bbr_fast_retransmits=bbr.fast_retransmits,
        scale=scale,
    )
