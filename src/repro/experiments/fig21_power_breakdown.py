"""Fig. 21: smartphone power breakdown per application and RAT.

The 5G module dominates the budget (~55% averaged over the apps),
overtaking the screen — the component that used to define phone power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import ResultTable
from repro.core.stats import percent
from repro.energy.power_model import APP_CATALOG, PowerBreakdown, app_power_breakdown
from repro.experiments.common import DEFAULT_SEED, record_kpi
from repro.scenario import Scenario, resolve_scenario

__all__ = ["Fig21Result", "run"]


@dataclass(frozen=True)
class Fig21Result:
    """Component breakdown per (app, generation)."""

    breakdowns: dict[tuple[str, int], PowerBreakdown]

    def mean_radio_fraction(self, generation: int) -> float:
        """Radio share of the budget, averaged over apps."""
        return float(
            np.mean(
                [
                    self.breakdowns[(app.name, generation)].radio_fraction
                    for app in APP_CATALOG
                ]
            )
        )

    def mean_screen_fraction(self, generation: int) -> float:
        """Screen share of the budget, averaged over apps."""
        return float(
            np.mean(
                [
                    b.screen_w / b.total_w
                    for (name, gen), b in self.breakdowns.items()
                    if gen == generation
                ]
            )
        )

    def radio_power_ratio(self, app_name: str) -> float:
        """5G/4G radio-module power for one app (paper: 2-3x)."""
        return (
            self.breakdowns[(app_name, 5)].radio_w
            / self.breakdowns[(app_name, 4)].radio_w
        )

    def table(self) -> ResultTable:
        """Render the breakdown as a text table."""
        table = ResultTable(
            "Fig. 21 — power breakdown (W)",
            ["app", "RAT", "system", "screen", "app", "radio", "radio share"],
        )
        for app in APP_CATALOG:
            for generation in (4, 5):
                b = self.breakdowns[(app.name, generation)]
                table.add_row(
                    [
                        app.name,
                        f"{generation}G",
                        f"{b.system_w:.2f}",
                        f"{b.screen_w:.2f}",
                        f"{b.app_w:.2f}",
                        f"{b.radio_w:.2f}",
                        percent(b.radio_fraction),
                    ]
                )
        return table


def run(
    seed: int = DEFAULT_SEED, scenario: Scenario | str | None = None
) -> Fig21Result:
    """Compute the component breakdown for all apps on both RATs."""
    scn = resolve_scenario(scenario)
    generations = (scn.radio.lte.generation, scn.radio.nr.generation)
    breakdowns = {
        (app.name, generation): app_power_breakdown(app, generation)
        for app in APP_CATALOG
        for generation in generations
    }
    result = Fig21Result(breakdowns=breakdowns)
    for generation in generations:
        record_kpi(
            f"fig21.radio_share.{generation}g.mean_ratio",
            result.mean_radio_fraction(generation),
        )
    return result
