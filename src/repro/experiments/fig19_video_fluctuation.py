"""Fig. 19: received 5.7K throughput over time, static vs dynamic scenes.

Dynamic scenes inflate the codec's output unpredictably; the spikes
overrun even the 5G uplink and freeze frames.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.video import run_video_session
from repro.experiments.common import DEFAULT_SEED
from repro.scenario import Scenario, resolve_scenario

__all__ = ["Fig19Result", "run"]


@dataclass(frozen=True)
class Fig19Result:
    """Per-second throughput traces (unscaled Mbps) and freeze counts."""

    static_trace_mbps: tuple[tuple[float, float], ...]
    dynamic_trace_mbps: tuple[tuple[float, float], ...]
    static_freezes: int
    dynamic_freezes: int

    def fluctuation(self, trace: tuple[tuple[float, float], ...]) -> float:
        """Coefficient of variation of the received throughput."""
        values = [v for _, v in trace]
        if not values or float(np.mean(values)) == 0.0:
            return 0.0
        return float(np.std(values) / np.mean(values))

    @property
    def dynamic_fluctuates_more(self) -> bool:
        """Whether the dynamic scene's throughput varies more."""
        return self.fluctuation(self.dynamic_trace_mbps) > self.fluctuation(
            self.static_trace_mbps
        )


def run(
    seed: int = DEFAULT_SEED,
    duration_s: float = 30.0,
    scale: float | None = None,
    scenario: Scenario | str | None = None,
) -> Fig19Result:
    """Run 30 s 5.7K sessions over 5G in both scene modes."""
    scn = resolve_scenario(scenario)
    if scale is None:
        scale = scn.workload.video_sim_scale
    static = run_video_session(
        scn.radio.nr, "5.7K", dynamic=False, duration_s=duration_s, scale=scale, seed=seed
    )
    dynamic = run_video_session(
        scn.radio.nr, "5.7K", dynamic=True, duration_s=duration_s, scale=scale, seed=seed
    )

    def unscale(trace):
        return tuple((t, v / scale / 1e6) for t, v in trace)

    return Fig19Result(
        static_trace_mbps=unscale(static.throughput_trace),
        dynamic_trace_mbps=unscale(dynamic.throughput_trace),
        static_freezes=static.freeze_count(),
        dynamic_freezes=dynamic.freeze_count(),
    )
