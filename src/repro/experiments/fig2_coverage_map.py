"""Fig. 2: the campus RSRP map and the cell-72 bit-rate contour."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import ResultTable
from repro.experiments.common import DEFAULT_SEED, testbed
from repro.scenario import Scenario
from repro.radio.coverage import (
    SurveyPoint,
    cell_grid_survey,
    coverage_radius_m,
    road_locations,
    survey_at_locations,
)

__all__ = ["Fig2Result", "run"]


@dataclass(frozen=True)
class Fig2Result:
    """Map samples plus ring-averaged bit-rates around cell 72."""

    map_points: tuple[SurveyPoint, ...]
    contour_rings_m: tuple[float, ...]
    contour_rates_mbps: tuple[float, ...]
    coverage_radius_m: float
    lte_coverage_radius_m: float

    def table(self) -> ResultTable:
        """Render the contour rings as a text table."""
        table = ResultTable(
            "Fig. 2(b) — cell 72 bit-rate contour (ring means)",
            ["ring (m)", "bit-rate (Mbps)"],
        )
        for ring, rate in zip(self.contour_rings_m, self.contour_rates_mbps):
            table.add_row([f"<= {ring:.0f}", f"{rate:.0f}"])
        return table


def run(
    seed: int = DEFAULT_SEED,
    num_map_points: int = 600,
    grid_spacing_m: float = 25.0,
    scenario: Scenario | str | None = None,
) -> Fig2Result:
    """Survey the whole campus (Fig. 2a) and grid cell 72 (Fig. 2b)."""
    bed = testbed(seed, scenario)
    locations = road_locations(bed.world, num_map_points, bed.rng_factory.stream("fig2"))
    map_points = survey_at_locations(bed.nr, locations)

    grid = cell_grid_survey(bed.nr, 72, grid_spacing_m=grid_spacing_m, radius_m=250.0)
    rings = (50.0, 100.0, 150.0, 200.0, 250.0)
    cell = bed.nr.cell(72)
    ring_rates = []
    lower = 0.0
    for ring in rings:
        rates = [
            p.bit_rate_bps / 1e6
            for p in grid
            if lower < cell.position.distance_to(p.location) <= ring
        ]
        ring_rates.append(float(np.mean(rates)) if rates else 0.0)
        lower = ring
    return Fig2Result(
        map_points=tuple(map_points),
        contour_rings_m=rings,
        contour_rates_mbps=tuple(ring_rates),
        coverage_radius_m=coverage_radius_m(bed.nr, 72),
        lte_coverage_radius_m=coverage_radius_m(bed.lte, 200),
    )
