"""Fig. 10: HARQ retransmission statistics in the RAN.

The argument of Sec. 4.2: every RAN loss recovers within a handful of
retransmissions (<= 4 on 4G, <= 2 on 5G) against a threshold of 32, so
the TCP anomaly's packet loss cannot be coming from the radio link.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import ResultTable
from repro.core.rng import RngFactory
from repro.core.stats import percent
from repro.experiments.common import DEFAULT_SEED
from repro.radio.harq import RETRANSMISSION_THRESHOLD, HarqProcess, HarqStats
from repro.scenario import Scenario, resolve_scenario

__all__ = ["Fig10Result", "run"]


@dataclass(frozen=True)
class Fig10Result:
    """Retransmission distributions for both RANs."""

    lte: HarqStats
    nr: HarqStats
    abandonment_probability_50pct_link: float

    def table(self) -> ResultTable:
        """Render the distribution as a text table."""
        table = ResultTable(
            "Fig. 10 — HARQ retransmission distribution",
            ["# retransmissions", "4G", "5G"],
        )
        for attempts in range(1, 5):
            table.add_row(
                [
                    attempts,
                    percent(self.lte.retransmission_rate(attempts)),
                    percent(self.nr.retransmission_rate(attempts)),
                ]
            )
        return table


def run(
    seed: int = DEFAULT_SEED,
    transport_blocks: int = 200_000,
    scenario: Scenario | str | None = None,
) -> Fig10Result:
    """Simulate HARQ over both RANs and tally retransmission depths."""
    scn = resolve_scenario(scenario)
    rngf = RngFactory(seed)
    lte_gen, nr_gen = scn.radio.lte.generation, scn.radio.nr.generation
    lte = HarqProcess.for_generation(lte_gen, rngf.stream("harq-lte")).run(transport_blocks)
    nr = HarqProcess.for_generation(nr_gen, rngf.stream("harq-nr")).run(transport_blocks)
    # The paper's sanity bound: a 50%-loss link abandoning a block needs 32
    # consecutive failures, probability ~2.3e-10.
    lossy = HarqProcess(
        initial_bler=0.5,
        combining_gain=0.999999,
        rng=rngf.stream("harq-bound"),
        threshold=RETRANSMISSION_THRESHOLD,
    )
    return Fig10Result(
        lte=lte,
        nr=nr,
        abandonment_probability_50pct_link=lossy.abandonment_probability(),
    )
