"""Remedy × congestion-control matrix: does the fix generalize?

The remedy comparison (:mod:`repro.experiments.remedy_comparison`) shows
CoDel/CAKE/PEP rescuing Cubic; this matrix checks the fixes are not a
Cubic-shaped coincidence by running every congestion-control algorithm
the paper measured (Reno, Cubic, Vegas, Veno, BBR) against drop-tail,
CoDel and the split-connection PEP.

The loss-based algorithms (Reno, Cubic, Veno) are the anomaly's victims
and gain the most; the delay/model-based ones (Vegas, BBR) were already
insensitive to the burst losses, so the remedies must *not* hurt them —
"first, do no harm" is the second acceptance axis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import ResultTable
from repro.experiments.common import DEFAULT_SEED, path_config, record_kpi
from repro.qdisc import RemedySection
from repro.scenario import Scenario, resolve_scenario
from repro.transport.iperf import CC_ALGORITHMS, run_tcp

__all__ = ["MATRIX_VARIANTS", "RemedyCcaMatrixResult", "run"]

#: The remedy columns of the matrix (rows are CC algorithms).
MATRIX_VARIANTS: dict[str, RemedySection] = {
    "droptail": RemedySection(),
    "codel": RemedySection(qdisc="codel"),
    "pep": RemedySection(pep=True),
}

#: Algorithms the anomaly actually collapses (loss-based AIMD).
LOSS_BASED = ("reno", "cubic", "veno")


@dataclass(frozen=True)
class RemedyCcaMatrixResult:
    """Goodput (bits/s) per (algorithm, remedy) cell."""

    goodput_bps: dict[tuple[str, str], float]
    baseline_bps: float

    def gain(self, algorithm: str, variant: str) -> float:
        """Goodput ratio of ``variant`` over drop-tail for one algorithm."""
        return self.goodput_bps[(algorithm, variant)] / self.goodput_bps[(algorithm, "droptail")]

    @property
    def loss_based_all_recover(self) -> bool:
        """Every loss-based algorithm gains under both CoDel and PEP."""
        return all(
            self.gain(alg, variant) > 1.0
            for alg in LOSS_BASED
            for variant in ("codel", "pep")
        )

    def table(self) -> ResultTable:
        """Render the matrix as a text table (utilization per cell)."""
        variants = list(MATRIX_VARIANTS)
        table = ResultTable(
            "Remedy × congestion control — utilization of the UDP baseline",
            ["algorithm"] + variants,
        )
        for alg in sorted({a for a, _ in self.goodput_bps}):
            row = [alg]
            for variant in variants:
                row.append(f"{self.goodput_bps[(alg, variant)] / self.baseline_bps:.0%}")
            table.add_row(row)
        return table


def run(
    seed: int = DEFAULT_SEED,
    duration_s: float = 30.0,
    algorithms: tuple[str, ...] | None = None,
    scenario: Scenario | str | None = None,
) -> RemedyCcaMatrixResult:
    """Fill the (algorithm × remedy) goodput matrix on the fig. 8 workload."""
    scn = resolve_scenario(scenario)
    names = algorithms if algorithms is not None else tuple(sorted(CC_ALGORITHMS))
    baseline = path_config(scn).access_rate_bps() * scn.workload.sim_scale
    goodput: dict[tuple[str, str], float] = {}
    for variant, remedy in MATRIX_VARIANTS.items():
        config = path_config(scn, remedy=remedy)
        for alg in names:
            result = run_tcp(
                config, alg, duration_s=duration_s, seed=seed, baseline_bps=baseline
            )
            goodput[(alg, variant)] = result.throughput_bps
            record_kpi(f"remedy_matrix.goodput.{alg}.{variant}_bps", result.throughput_bps)
    return RemedyCcaMatrixResult(goodput_bps=goodput, baseline_bps=baseline)
