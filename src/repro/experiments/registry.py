"""The experiment catalogue: one entry per paper table/figure.

The CLI (:mod:`repro.cli`), the campaign runner (:mod:`repro.runner`) and
the benchmark harness all drive experiments through this single registry,
so adding an experiment here is the only step needed to make it runnable
everywhere.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from types import ModuleType
from collections.abc import Callable, Iterable
from typing import Any

from repro.scenario import Scenario

from repro.experiments import (
    ablation_buffer_sizing,
    ablation_coexistence,
    ablation_sa_mode,
    appendix_tables,
    dense_survey,
    discussion_cpe_dsl,
    discussion_edge_computing,
    fig2_coverage_map,
    fig3_indoor_outdoor,
    fig4_handoff_rsrq,
    fig5_rsrq_gap,
    fig6_handoff_latency,
    fig7_throughput,
    fig8_cwnd,
    fig9_loss_rate,
    fig10_retransmissions,
    fig11_bursty_loss,
    fig12_ho_throughput,
    fig13_rtt_scatter,
    fig14_rtt_hops,
    fig15_rtt_distance,
    fig16_plt_sites,
    fig17_plt_images,
    fig18_video_throughput,
    fig19_video_fluctuation,
    fig20_frame_delay,
    fig21_power_breakdown,
    fig22_energy_per_bit,
    fig23_energy_timeline,
    remedy_cca_matrix,
    remedy_comparison,
    sec34_event_mix,
    tab1_physical_info,
    tab2_rsrp_distribution,
    tab3_buffer_size,
    tab4_energy_models,
    world_survey,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "UnknownExperimentError",
    "resolve_names",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """One catalogue entry."""

    name: str
    module: ModuleType
    description: str
    describe: Callable[[Any], str] | None = None

    @property
    def default_params(self) -> dict[str, Any]:
        """Tunable keyword parameters of ``run()`` with their defaults.

        ``seed`` and ``scenario`` are threaded by the harness, so they are
        excluded; what remains is what ``run(..., **params)`` accepts.
        """
        signature = inspect.signature(self.module.run)
        return {
            name: parameter.default
            for name, parameter in signature.parameters.items()
            if name not in ("seed", "scenario")
            and parameter.default is not inspect.Parameter.empty
        }

    def run(
        self,
        seed: int,
        scenario: Scenario | str | None = None,
        **params: Any,
    ) -> Any:
        """Execute the experiment under ``scenario``.

        Extra keyword ``params`` are forwarded to the module's ``run()``
        (see :attr:`default_params`); unknown names raise ``TypeError``
        rather than being silently dropped.
        """
        unknown = sorted(set(params) - set(self.default_params))
        if unknown:
            raise TypeError(
                f"experiment {self.name!r} does not accept parameter(s)"
                f" {', '.join(unknown)}; valid: {', '.join(sorted(self.default_params))}"
            )
        return self.module.run(seed=seed, scenario=scenario, **params)


class UnknownExperimentError(KeyError):
    """Raised when a requested experiment name is not in the catalogue."""

    def __init__(self, names: list[str]) -> None:
        super().__init__(", ".join(names))
        self.names = names

    def __str__(self) -> str:
        return f"unknown experiment(s): {', '.join(self.names)}"


def _describe_fig4(r: Any) -> str:
    return (
        f"5G-5G hand-off at t={r.handoff_time_s:.1f}s "
        f"(PCI {r.source_pci} -> {r.target_pci}), {len(r.times_s)} RSRQ samples, "
        f"serving degrades beforehand: {r.serving_degrades_before_handoff}"
    )


def _describe_fig8(r: Any) -> str:
    cubic = r.mean_cwnd(r.cubic_trace, 10.0) / 1448
    bbr = r.mean_cwnd(r.bbr_trace, 10.0) / 1448
    return (
        f"mean cwnd after slow-start: cubic {cubic:.0f} segs vs bbr {bbr:.0f} segs; "
        f"cubic fast-retransmits: {r.cubic_fast_retransmits}"
    )


def _describe_fig11(r: Any) -> str:
    return (
        f"loss {r.loss_rate:.2%}; mean run {r.mean_run_length:.1f} pkts "
        f"(i.i.d. would be {r.expected_random_mean_run:.2f}); "
        f"burst fraction {r.burst_fraction:.0%}"
    )


def _describe_fig19(r: Any) -> str:
    return (
        f"throughput CV static {r.fluctuation(r.static_trace_mbps):.3f} vs "
        f"dynamic {r.fluctuation(r.dynamic_trace_mbps):.3f}; "
        f"freezes static {r.static_freezes} / dynamic {r.dynamic_freezes}"
    )


def _describe_fig20(r: Any) -> str:
    return (
        f"mean frame delay 5G {r.nr_mean_s * 1000:.0f} ms / 4G {r.lte_mean_s * 1000:.0f} ms; "
        f"processing {r.processing_s * 1000:.0f} ms vs "
        f"5G network {r.nr_network_s * 1000:.0f} ms"
    )


def _describe_remedy(r: Any) -> str:
    dt = r.goodput_bps.get("droptail", 0.0) / 1e6
    best = max(
        (v for v in r.goodput_bps if v != "droptail"),
        key=lambda v: r.goodput_bps[v],
        default=None,
    )
    if best is None:
        return f"droptail {dt:.1f} Mbps (no remedies run)"
    return (
        f"droptail {dt:.1f} Mbps -> best remedy {best} "
        f"{r.goodput_bps[best] / 1e6:.1f} Mbps; "
        f"all headline remedies beat droptail: {r.remedies_beat_droptail}"
    )


def _catalogue() -> dict[str, ExperimentSpec]:
    entries: list[tuple[str, ModuleType, str, Callable[[Any], str] | None]] = [
        ("tab1", tab1_physical_info, "basic physical info of both networks", None),
        ("tab2", tab2_rsrp_distribution, "RSRP distribution and coverage holes", None),
        ("fig2", fig2_coverage_map, "campus RSRP map + cell-72 bit-rate contour", None),
        ("fig3", fig3_indoor_outdoor, "indoor/outdoor bit-rate gap", None),
        ("fig4", fig4_handoff_rsrq, "RSRQ evolution across one hand-off", _describe_fig4),
        ("fig5", fig5_rsrq_gap, "RSRQ gain across hand-offs", None),
        ("fig6", fig6_handoff_latency, "hand-off latency by kind", None),
        ("fig7", fig7_throughput, "UDP baselines + TCP utilization anomaly", None),
        ("fig8", fig8_cwnd, "Cubic vs BBR cwnd evolution", _describe_fig8),
        ("fig9", fig9_loss_rate, "UDP loss vs offered load", None),
        ("fig10", fig10_retransmissions, "HARQ retransmission depth", None),
        ("fig11", fig11_bursty_loss, "bursty loss pattern", _describe_fig11),
        ("tab3", tab3_buffer_size, "in-network buffer estimation", None),
        ("fig12", fig12_ho_throughput, "TCP throughput drop at hand-off", None),
        ("fig13", fig13_rtt_scatter, "4G vs 5G RTT over 80 paths", None),
        ("fig14", fig14_rtt_hops, "per-hop RTT decomposition", None),
        ("fig15", fig15_rtt_distance, "RTT vs path distance", None),
        ("fig16", fig16_plt_sites, "PLT by website category", None),
        ("fig17", fig17_plt_images, "PLT vs image size", None),
        ("fig18", fig18_video_throughput, "video throughput by resolution", None),
        ("fig19", fig19_video_fluctuation, "5.7K throughput fluctuation", _describe_fig19),
        ("fig20", fig20_frame_delay, "4K telephony frame delay", _describe_fig20),
        ("fig21", fig21_power_breakdown, "power breakdown per app", None),
        ("fig22", fig22_energy_per_bit, "energy per bit, saturated", None),
        ("fig23", fig23_energy_timeline, "energy-management showcase", None),
        ("tab4", tab4_energy_models, "energy of the four power models", None),
        ("ablation-buffers", ablation_buffer_sizing, "wired buffer sizing vs TCP anomaly", None),
        ("ablation-sa", ablation_sa_mode, "NSA vs projected SA architecture", None),
        (
            "ablation-coexistence",
            ablation_coexistence,
            "4G/5G flows sharing a wireline path",
            None,
        ),
        (
            "remedy-comparison",
            remedy_comparison,
            "TCP-anomaly remedies: drop-tail vs CoDel/CAKE/PEP",
            _describe_remedy,
        ),
        (
            "remedy-cca-matrix",
            remedy_cca_matrix,
            "remedy × congestion-control goodput matrix",
            None,
        ),
        ("cpe-dsl", discussion_cpe_dsl, "5G fixed wireless vs DSL", None),
        ("event-mix", sec34_event_mix, "measurement-event mix along a walk", None),
        (
            "dense-survey",
            dense_survey,
            "full-campus grid survey on the densified 5G topology",
            None,
        ),
        (
            "world-survey",
            world_survey,
            "district survey + workload synthesis on a generated topology",
            None,
        ),
        ("appendix", appendix_tables, "appendix tables 5/6/7", None),
        ("edge", discussion_edge_computing, "mobile edge computing", None),
    ]
    return {
        name: ExperimentSpec(name=name, module=module, description=description, describe=describe)
        for name, module, description, describe in entries
    }


#: name -> spec, in paper order.
EXPERIMENTS: dict[str, ExperimentSpec] = _catalogue()


def resolve_names(names: Iterable[str], run_all: bool = False) -> list[str]:
    """Validate and dedupe experiment names, preserving first-seen order.

    With ``run_all`` the whole catalogue is returned (in catalogue order)
    and ``names`` is ignored.  Underscores normalize to the catalogue's
    dashes (``remedy_comparison`` == ``remedy-comparison``), matching how
    people type module names.

    Raises:
        UnknownExperimentError: if any name is not in the catalogue.
    """
    if run_all:
        return list(EXPERIMENTS)
    normalized = [n if n in EXPERIMENTS else n.replace("_", "-") for n in names]
    unknown = [n for n in normalized if n not in EXPERIMENTS]
    if unknown:
        raise UnknownExperimentError(unknown)
    return list(dict.fromkeys(normalized))
