"""Fig. 20: end-to-end frame delay of 4K video telephony.

Even over 5G the frame delay hovers near a second — the paper's
"stopwatch" finding — because processing (capture, splice, codec,
relay, render) outweighs network transmission by ~10x.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.video import (
    CAPTURE_SPLICE_RENDER_S,
    DECODE_S,
    ENCODE_S,
    RTMP_RELAY_S,
    run_video_session,
)
from repro.experiments.common import DEFAULT_SEED
from repro.scenario import Scenario, resolve_scenario

__all__ = ["Fig20Result", "run"]


@dataclass(frozen=True)
class Fig20Result:
    """Frame-delay series for both networks plus the delay decomposition."""

    nr_delays_s: tuple[float, ...]
    lte_delays_s: tuple[float, ...]

    @property
    def nr_mean_s(self) -> float:
        """Mean 5G frame delay."""
        return float(np.mean(self.nr_delays_s))

    @property
    def lte_mean_s(self) -> float:
        """Mean 4G frame delay."""
        return float(np.mean(self.lte_delays_s))

    @property
    def processing_s(self) -> float:
        """Fixed pipeline (non-network) latency per frame."""
        return ENCODE_S + DECODE_S + CAPTURE_SPLICE_RENDER_S + RTMP_RELAY_S

    @property
    def nr_network_s(self) -> float:
        """Mean network transmission share of the 5G frame delay."""
        return self.nr_mean_s - self.processing_s

    @property
    def processing_dominates(self) -> bool:
        """Processing should outweigh transmission by roughly 10x."""
        return self.processing_s > 5.0 * max(self.nr_network_s, 1e-9)


def run(
    seed: int = DEFAULT_SEED,
    duration_s: float = 30.0,
    scale: float | None = None,
    scenario: Scenario | str | None = None,
) -> Fig20Result:
    """Run 4K dynamic sessions over both networks and collect frame delays."""
    scn = resolve_scenario(scenario)
    if scale is None:
        scale = scn.workload.video_sim_scale
    nr = run_video_session(
        scn.radio.nr, "4K", dynamic=True, duration_s=duration_s, scale=scale, seed=seed
    )
    lte = run_video_session(
        scn.radio.lte, "4K", dynamic=True, duration_s=duration_s, scale=scale, seed=seed
    )
    nr_delays = nr.frame_delays_s()
    lte_delays = lte.frame_delays_s()
    if not nr_delays or not lte_delays:
        raise RuntimeError("no delivered frames; extend duration_s")
    return Fig20Result(nr_delays_s=tuple(nr_delays), lte_delays_s=tuple(lte_delays))
