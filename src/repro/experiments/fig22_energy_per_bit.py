"""Fig. 22: energy per bit under fully-saturated traffic.

5G moves bits at roughly a quarter of 4G's energy cost — *when the pipe
is full*.  Efficiency improves with transfer duration as the
promotion/tail overhead amortizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import ResultTable
from repro.energy.power_model import energy_per_bit
from repro.experiments.common import DEFAULT_SEED, record_kpi
from repro.scenario import Scenario, resolve_scenario

__all__ = ["Fig22Result", "TRANSFER_TIMES_S", "run"]

TRANSFER_TIMES_S: tuple[float, ...] = (5.0, 10.0, 20.0, 30.0, 50.0)


@dataclass(frozen=True)
class Fig22Result:
    """Energy per bit (J/bit) per (generation, transfer duration)."""

    efficiency: dict[tuple[int, float], float]

    def series(self, generation: int) -> list[float]:
        """Energy-per-bit values across transfer durations."""
        return [self.efficiency[(generation, t)] for t in TRANSFER_TIMES_S]

    def ratio_at(self, transfer_s: float) -> float:
        """5G/4G energy-per-bit ratio (paper: ~1/4)."""
        return self.efficiency[(5, transfer_s)] / self.efficiency[(4, transfer_s)]

    @property
    def efficiency_improves_with_duration(self) -> bool:
        """Whether energy per bit falls as transfers lengthen."""
        return all(
            a >= b
            for gen in (4, 5)
            for a, b in zip(self.series(gen), self.series(gen)[1:])
        )

    def table(self) -> ResultTable:
        """Render the efficiency sweep as a text table."""
        table = ResultTable(
            "Fig. 22 — energy per bit (nJ/bit)",
            ["duration (s)", "4G", "5G", "5G/4G"],
        )
        for t in TRANSFER_TIMES_S:
            e4 = self.efficiency[(4, t)] * 1e9
            e5 = self.efficiency[(5, t)] * 1e9
            table.add_row([f"{t:.0f}", f"{e4:.1f}", f"{e5:.1f}", f"{self.ratio_at(t):.2f}"])
        return table


def run(
    seed: int = DEFAULT_SEED, scenario: Scenario | str | None = None
) -> Fig22Result:
    """Compute saturated-transfer energy per bit for both RATs."""
    scn = resolve_scenario(scenario)
    generations = (scn.radio.lte.generation, scn.radio.nr.generation)
    efficiency = {
        (generation, t): energy_per_bit(generation, t)
        for generation in generations
        for t in TRANSFER_TIMES_S
    }
    result = Fig22Result(efficiency=efficiency)
    shortest = TRANSFER_TIMES_S[0]
    for generation in generations:
        record_kpi(
            f"fig22.energy_per_bit.{generation}g.t{shortest:.0f}_nj",
            efficiency[(generation, shortest)] * 1e9,
        )
    record_kpi(f"fig22.energy_ratio.t{shortest:.0f}_ratio", result.ratio_at(shortest))
    return result
