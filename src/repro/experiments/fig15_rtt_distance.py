"""Fig. 15: RTT versus geographical path length.

Both networks' RTTs climb with distance; the ~22 ms 5G advantage is a
constant offset from the edge, so its *relative* value shrinks as the
wireline path grows — the basis of the paper's argument that the legacy
wireline network will neutralize 5G's latency gains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import ResultTable
from repro.core.rng import RngFactory
from repro.experiments.common import DEFAULT_SEED
from repro.experiments.fig13_rtt_scatter import probe_rtt_s
from repro.net.servers import SPEEDTEST_SERVERS
from repro.scenario import Scenario, resolve_scenario

__all__ = ["Fig15Result", "run"]


@dataclass(frozen=True)
class Fig15Result:
    """Per-server mean RTTs ordered by distance."""

    distances_km: tuple[float, ...]
    lte_rtts_ms: tuple[float, ...]
    nr_rtts_ms: tuple[float, ...]

    @property
    def gaps_ms(self) -> tuple[float, ...]:
        """Per-server 4G-minus-5G RTT gap."""
        return tuple(l - n for l, n in zip(self.lte_rtts_ms, self.nr_rtts_ms))

    @property
    def relative_gaps(self) -> tuple[float, ...]:
        """The gap as a fraction of the 4G RTT, per server."""
        return tuple(g / l for g, l in zip(self.gaps_ms, self.lte_rtts_ms))

    def rtt_growth_factor(self, lo_km: float = 100.0, hi_km: float = 2500.0) -> float:
        """5G RTT ratio between the nearest server beyond ``hi_km`` and the
        first beyond ``lo_km`` (the paper quotes ~5x from 100 to 2500 km)."""
        lo_rtt = next(
            rtt for d, rtt in zip(self.distances_km, self.nr_rtts_ms) if d >= lo_km
        )
        hi_rtt = next(
            rtt for d, rtt in zip(self.distances_km, self.nr_rtts_ms) if d >= hi_km
        )
        return hi_rtt / lo_rtt

    def table(self) -> ResultTable:
        """Render the distance sweep as a text table."""
        table = ResultTable(
            "Fig. 15 — RTT vs path distance",
            ["distance (km)", "4G RTT (ms)", "5G RTT (ms)", "gap (ms)"],
        )
        for d, l4, l5 in zip(self.distances_km, self.lte_rtts_ms, self.nr_rtts_ms):
            table.add_row([f"{d:.0f}", f"{l4:.1f}", f"{l5:.1f}", f"{l4 - l5:.1f}"])
        return table


def run(
    seed: int = DEFAULT_SEED,
    probes_per_server: int = 30,
    scenario: Scenario | str | None = None,
) -> Fig15Result:
    """Probe every Tab. 6 server on both networks, ordered by distance."""
    scn = resolve_scenario(scenario)
    lte_gen, nr_gen = scn.radio.lte.generation, scn.radio.nr.generation
    rngf = RngFactory(seed)
    servers = sorted(SPEEDTEST_SERVERS, key=lambda s: s.distance_km)
    lte, nr = [], []
    for server in servers:
        rng = rngf.stream(f"fig15:{server.server_id}")
        lte.append(
            float(np.mean([probe_rtt_s(lte_gen, server.distance_km, rng) for _ in range(probes_per_server)])) * 1000
        )
        nr.append(
            float(np.mean([probe_rtt_s(nr_gen, server.distance_km, rng) for _ in range(probes_per_server)])) * 1000
        )
    return Fig15Result(
        distances_km=tuple(s.distance_km for s in servers),
        lte_rtts_ms=tuple(lte),
        nr_rtts_ms=tuple(nr),
    )
