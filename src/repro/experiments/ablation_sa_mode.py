"""Ablation: NSA today vs the projected SA architecture (Sec. 8).

Quantifies how much of the paper's two NSA pain points — hand-off latency
and energy tails — the standalone architecture recovers, and how much is
intrinsic to the 5G hardware (the part SA cannot fix).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import ResultTable
from repro.core.rng import default_rng
from repro.energy.drx import NR_NSA_DRX_CONFIG, NR_POWER, RadioEnergyModel
from repro.energy.power_model import SYSTEM_POWER_W
from repro.energy.traffic import web_browsing_trace
from repro.experiments.common import DEFAULT_SEED
from repro.scenario import Scenario, resolve_scenario
from repro.mobility.handoff import HandoffKind, HandoffProcedure
from repro.mobility.sa import NR_SA_DRX_CONFIG, draw_sa_handoff, sa_handoff_mean_latency_s

__all__ = ["SaAblationResult", "run"]


@dataclass(frozen=True)
class SaAblationResult:
    """NSA vs SA hand-off latency and web-session energy."""

    nsa_handoff_ms: float
    sa_handoff_ms: float
    lte_handoff_ms: float
    nsa_web_energy_j: float
    sa_web_energy_j: float
    oracle_floor_j: float

    @property
    def handoff_speedup(self) -> float:
        """NSA-to-SA hand-off latency ratio."""
        return self.nsa_handoff_ms / self.sa_handoff_ms

    @property
    def energy_saving(self) -> float:
        """Relative web-session energy saved by SA."""
        return 1.0 - self.sa_web_energy_j / self.nsa_web_energy_j

    @property
    def sa_closes_handoff_gap(self) -> bool:
        """SA 5G-5G hand-off should land near the 4G-4G level."""
        return self.sa_handoff_ms < 1.5 * self.lte_handoff_ms

    def table(self) -> ResultTable:
        """Render the comparison as a text table."""
        table = ResultTable(
            "Ablation — NSA vs projected SA",
            ["metric", "NSA", "SA", "reference"],
        )
        table.add_row(
            [
                "5G-5G hand-off (ms)",
                f"{self.nsa_handoff_ms:.1f}",
                f"{self.sa_handoff_ms:.1f}",
                f"4G-4G: {self.lte_handoff_ms:.1f}",
            ]
        )
        table.add_row(
            [
                "web session energy (J)",
                f"{self.nsa_web_energy_j:.1f}",
                f"{self.sa_web_energy_j:.1f}",
                f"hardware floor: {self.oracle_floor_j:.1f}",
            ]
        )
        return table


def run(
    seed: int = DEFAULT_SEED,
    samples: int = 200,
    scenario: Scenario | str | None = None,
) -> SaAblationResult:
    """Draw hand-off latencies and replay the web workload on both machines."""
    scn = resolve_scenario(scenario)
    rng = default_rng(seed)
    nsa_ms = float(
        np.mean(
            [
                HandoffProcedure.draw(HandoffKind.NR_TO_NR, rng).total_latency_s
                for _ in range(samples)
            ]
        )
        * 1000
    )
    sa_ms = float(np.mean([draw_sa_handoff(rng) for _ in range(samples)]) * 1000)
    lte_ms = float(
        np.mean(
            [
                HandoffProcedure.draw(HandoffKind.LTE_TO_LTE, rng).total_latency_s
                for _ in range(samples)
            ]
        )
        * 1000
    )

    trace = web_browsing_trace(rng=default_rng(seed))
    capacity = scn.energy.web.nr_bps
    nsa = RadioEnergyModel(NR_POWER, NR_NSA_DRX_CONFIG, capacity).replay(trace)
    sa = RadioEnergyModel(NR_POWER, NR_SA_DRX_CONFIG, capacity).replay(trace)
    # The hardware floor: the radio sleeping at its deepest for the whole
    # session — what no protocol change can go below.
    horizon = max(nsa.end_s, sa.end_s)
    floor = NR_POWER.drx_sleep_w * horizon

    def with_system(result) -> float:
        return result.total_energy_j + SYSTEM_POWER_W * result.end_s

    return SaAblationResult(
        nsa_handoff_ms=nsa_ms,
        sa_handoff_ms=sa_ms,
        lte_handoff_ms=lte_ms,
        nsa_web_energy_j=with_system(nsa),
        sa_web_energy_j=with_system(sa),
        oracle_floor_j=floor + SYSTEM_POWER_W * horizon,
    )


def expected_sa_handoff_ms() -> float:
    """Mean of the SA procedure's step budget (no randomness)."""
    return sa_handoff_mean_latency_s() * 1000
