"""Fig. 6: hand-off latency CDFs per kind.

The paper's headline: the NSA 5G-5G hand-off averages 108.40 ms — 3.6x
the 30.10 ms 4G-4G hand-off — because it must release NR, hand the LTE
anchor over, and re-add NR on the target (Appendix A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import ResultTable
from repro.core.stats import Cdf
from repro.experiments.common import (
    DEFAULT_SEED,
    record_kpi,
    record_kpi_samples,
)
from repro.experiments.ho_campaign import campaign
from repro.scenario import Scenario
from repro.mobility.handoff import HandoffKind

__all__ = ["Fig6Result", "run"]


@dataclass(frozen=True)
class Fig6Result:
    """Latency samples per hand-off kind."""

    latencies_ms: dict[str, tuple[float, ...]]

    def mean_ms(self, kind: str) -> float:
        """Mean latency for one hand-off kind."""
        samples = self.latencies_ms[kind]
        return sum(samples) / len(samples)

    def cdf(self, kind: str) -> Cdf:
        """The latency CDF for one hand-off kind."""
        return Cdf(self.latencies_ms[kind])

    def table(self) -> ResultTable:
        """Render the latency stats as a text table."""
        table = ResultTable(
            "Fig. 6 — hand-off latency",
            ["kind", "events", "mean (ms)", "p90 (ms)"],
        )
        for kind, samples in self.latencies_ms.items():
            cdf = Cdf(samples)
            table.add_row(
                [kind, len(samples), f"{cdf.mean:.1f}", f"{cdf.percentile(90):.1f}"]
            )
        return table


def run(
    seed: int = DEFAULT_SEED,
    duration_s: float | None = None,
    scenario: Scenario | str | None = None,
) -> Fig6Result:
    """Collect latency samples from the walk campaign."""
    data = campaign(seed, duration_s, scenario)
    latencies: dict[str, tuple[float, ...]] = {}
    for kind in HandoffKind.ALL:
        events = data.events_of_kind(kind)
        if events:
            latencies[kind] = tuple(e.latency_s * 1000 for e in events)
    if HandoffKind.NR_TO_NR not in latencies or HandoffKind.LTE_TO_LTE not in latencies:
        raise RuntimeError("campaign lacks 5G-5G or 4G-4G events; extend duration_s")
    for kind, samples in latencies.items():
        variant = kind.lower().replace("-", "_")
        record_kpi(f"fig6.ho_latency.{variant}.mean_ms", sum(samples) / len(samples))
        record_kpi_samples(f"fig6.ho_latency.{variant}.samples_ms", samples)
    return Fig6Result(latencies_ms=latencies)
