"""Tab. 3: in-network buffer estimation via the max-min delay method.

A saturating flow fills each segment's queue; the spread between the
loaded and unloaded probe RTTs, multiplied by the assumed capacity,
bounds the buffer.  As in the paper, estimates are expressed in 60-byte
packets at an assumed 1 Gbps, so absolute values are rough but the
4G-vs-5G *ratios* are the meaningful output.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import RadioProfile
from repro.core.results import ResultTable
from repro.core.rng import default_rng
from repro.analysis.buffer_est import estimate_buffer_packets
from repro.experiments.common import DEFAULT_SEED
from repro.net.path import PathConfig, build_cellular_path
from repro.qdisc import QDISC_NAMES, RemedySection
from repro.scenario import Scenario, resolve_scenario
from repro.net.sim import Simulator
from repro.transport.udp import UdpSender, UdpSink

__all__ = ["Tab3Result", "run"]

#: Queue disciplines enumerated by the occupancy axis (Tab. 3 extension).
QDISC_AXIS: tuple[str, ...] = QDISC_NAMES

#: Hop-1 (radio access) RTT spread between idle and loaded probes, from
#: the traceroute statistics of Sec. 4.4 (2.19 +- 0.36 ms on 5G vs
#: 2.6 +- 0.24 ms on 4G).  The RAN "buffer" the max-min method sees is
#: really this scheduling jitter; the wider 5G spread is what yields its
#: ~5x larger RAN estimate in Tab. 3.
_RAN_RTT_SPREAD_S = {5: 1.24e-3, 4: 0.225e-3}


@dataclass(frozen=True)
class Tab3Result:
    """Estimated buffers (60 B packets at 1 Gbps) per segment and network."""

    ran_packets: dict[str, int]
    wired_packets: dict[str, int]
    #: Peak 5G wired-queue backlog (packets) per queue discipline: what
    #: the max-min probe would see if the router ran each remedy.
    wired_occupancy_packets: dict[str, int]

    def whole_path_packets(self, network: str) -> int:
        """RAN plus wired buffer estimate for one network."""
        return self.ran_packets[network] + self.wired_packets[network]

    def ratio(self, segment: str) -> float:
        """5G/4G buffer ratio for ``segment`` in {'ran','wired','whole'}."""
        if segment == "ran":
            return self.ran_packets["5G"] / self.ran_packets["4G"]
        if segment == "wired":
            return self.wired_packets["5G"] / self.wired_packets["4G"]
        if segment == "whole":
            return self.whole_path_packets("5G") / self.whole_path_packets("4G")
        raise ValueError(f"unknown segment {segment!r}")

    def table(self) -> ResultTable:
        """Render Tab. 3 as a text table."""
        table = ResultTable(
            "Tab. 3 — estimated buffer sizes (60 B pkts @ 1 Gbps)",
            ["Buffer Size", "RAN", "Wired Network", "Whole Path"],
        )
        for network in ("4G", "5G"):
            table.add_row(
                [
                    network,
                    self.ran_packets[network],
                    self.wired_packets[network],
                    self.whole_path_packets(network),
                ]
            )
        return table

    def qdisc_table(self) -> ResultTable:
        """Peak 5G wired backlog under each queue discipline."""
        table = ResultTable(
            "Tab. 3 extension — peak wired backlog by queue discipline (5G)",
            ["qdisc", "peak backlog (pkts)"],
        )
        for name, occupancy in self.wired_occupancy_packets.items():
            table.add_row([name, occupancy])
        return table


def _measure(
    profile: RadioProfile,
    seed: int,
    scale: float,
    duration_s: float,
    server_distance_km: float = 30.0,
    wired_hops: int = 4,
    remedy: RemedySection = RemedySection(),
):
    """Saturate one path while sampling per-segment queue occupancy."""
    config = PathConfig(
        profile=profile,
        scale=scale,
        server_distance_km=server_distance_km,
        wired_hops=wired_hops,
        remedy=remedy,
    )
    sim = Simulator()
    rng = default_rng(seed)
    path = build_cellular_path(sim, config, rng)
    sender = UdpSender(sim, path, config.access_rate_bps() * scale * 1.1)
    UdpSink(path)

    max_occupancy = {"ran": 0, "wired": 0}

    def sample_queues() -> None:
        max_occupancy["ran"] = max(max_occupancy["ran"], path.access_link.queue.occupancy)
        max_occupancy["wired"] = max(max_occupancy["wired"], path.wired_link.queue.occupancy)
        if sim.now < duration_s:
            sim.schedule(0.005, sample_queues)

    sender.start()
    sample_queues()
    sim.run(until=duration_s)

    base = path.base_rtt_s
    # Wired segment: emergent — the max queue backlog observed under load.
    wired_queueing = max_occupancy["wired"] * 1500 * 8 / path.wired_link.rate_bps
    # RAN segment: the max-min spread of hop-1 probes (scheduling jitter).
    ran_spread = _RAN_RTT_SPREAD_S[profile.generation]
    return {
        "ran": estimate_buffer_packets([base, base + ran_spread]).buffer_packets,
        "wired": estimate_buffer_packets([base, base + wired_queueing]).buffer_packets,
        "wired_occupancy": max_occupancy["wired"],
    }


def run(
    seed: int = DEFAULT_SEED,
    duration_s: float = 10.0,
    scale: float | None = None,
    scenario: Scenario | str | None = None,
) -> Tab3Result:
    """Estimate RAN and wired buffers on both networks."""
    scn = resolve_scenario(scenario)
    if scale is None:
        scale = scn.workload.sim_scale
    ran: dict[str, int] = {}
    wired: dict[str, int] = {}
    for network, profile in (("4G", scn.radio.lte), ("5G", scn.radio.nr)):
        estimates = _measure(
            profile,
            seed,
            scale,
            duration_s,
            server_distance_km=scn.topology.server_distance_km,
            wired_hops=scn.topology.wired_hops,
        )
        ran[network] = estimates["ran"]
        wired[network] = estimates["wired"]
    # The qdisc axis: what the same saturation probe sees when the 5G
    # wired router runs each remedy.  The probe is non-responsive UDP,
    # so AQM disciplines expose their full (aqm_buffer_ratio-deep)
    # allocation — the max-min method measures *depth*, while the
    # standing delay TCP experiences is governed by the control law.
    occupancy: dict[str, int] = {}
    for name in QDISC_AXIS:
        estimates = _measure(
            scn.radio.nr,
            seed,
            scale,
            duration_s,
            server_distance_km=scn.topology.server_distance_km,
            wired_hops=scn.topology.wired_hops,
            remedy=RemedySection(qdisc=name),
        )
        occupancy[name] = estimates["wired_occupancy"]
    return Tab3Result(ran_packets=ran, wired_packets=wired, wired_occupancy_packets=occupancy)
