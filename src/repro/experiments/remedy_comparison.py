"""Remedy comparison: fixing the paper's TCP anomaly in simulation.

Sec. 4.2 diagnoses the anomaly — under-buffered wireline routers plus
bursty cross traffic collapse loss-based TCP to a fraction of the UDP
baseline — but the measurement study could only *speculate* about
fixes.  This experiment deploys them: the same fig. 8 bulk-transfer
workload runs over drop-tail (the measured deployment), CoDel,
FQ-CoDel, CAKE (with and without the closed-loop autorate controller)
and a split-connection PEP at the RAN edge, and compares goodput, tail
RTT and loss across the remedies.

Two results matter:

* every queue remedy and the PEP beat drop-tail on **both** goodput and
  p99 RTT — the anomaly is an operator-fixable deployment bug, not a
  property of 5G;
* drop-tail's apparently-low tail RTT is survivor bias (packets that
  would have reported high RTTs were dropped), so the AQM disciplines
  win the tail while carrying ~45% more traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import ResultTable
from repro.experiments.common import DEFAULT_SEED, path_config, record_kpi
from repro.qdisc import RemedySection
from repro.scenario import Scenario, resolve_scenario
from repro.transport.iperf import run_tcp

__all__ = [
    "HEADLINE_VARIANTS",
    "REMEDY_VARIANTS",
    "RemedyComparisonResult",
    "percentile_ms",
    "run",
]

#: The remedies under comparison, in presentation order.  ``droptail``
#: is the measured deployment; everything else is a candidate fix.
REMEDY_VARIANTS: dict[str, RemedySection] = {
    "droptail": RemedySection(),
    "codel": RemedySection(qdisc="codel"),
    "fq-codel": RemedySection(qdisc="fq-codel"),
    "cake": RemedySection(qdisc="cake"),
    "cake-autorate": RemedySection(qdisc="cake", autorate=True),
    "pep": RemedySection(pep=True),
}

#: Variants the paper's narrative requires to beat drop-tail on both
#: goodput and p99 RTT (the acceptance gate of the remedy subsystem).
HEADLINE_VARIANTS = ("codel", "cake", "pep")


def percentile_ms(samples: tuple[tuple[float, float], ...], quantile: float) -> float:
    """A deterministic RTT percentile (milliseconds) from (t, rtt_s) samples."""
    values = sorted(rtt for _, rtt in samples)
    if not values:
        return float("nan")
    index = min(len(values) - 1, int(quantile * len(values)))
    return values[index] * 1e3


@dataclass(frozen=True)
class RemedyComparisonResult:
    """Per-variant transport KPIs for the fig. 8 bulk-transfer workload."""

    algorithm: str
    baseline_bps: float
    goodput_bps: dict[str, float]
    p99_rtt_ms: dict[str, float]
    min_rtt_ms: dict[str, float]
    retransmissions: dict[str, int]

    def bufferbloat_ms(self, variant: str) -> float:
        """Queueing-induced tail inflation: p99 minus minimum RTT."""
        return self.p99_rtt_ms[variant] - self.min_rtt_ms[variant]

    def utilization(self, variant: str) -> float:
        """Goodput as a fraction of the UDP baseline."""
        return self.goodput_bps[variant] / self.baseline_bps

    @property
    def remedies_beat_droptail(self) -> bool:
        """CoDel, CAKE and PEP each win on goodput AND p99 RTT."""
        return all(
            self.goodput_bps[v] > self.goodput_bps["droptail"]
            and self.p99_rtt_ms[v] < self.p99_rtt_ms["droptail"]
            for v in HEADLINE_VARIANTS
        )

    def table(self) -> ResultTable:
        """Render the comparison as a text table."""
        table = ResultTable(
            f"Remedy comparison — {self.algorithm} bulk transfer over 5G",
            ["remedy", "goodput (Mbps)", "utilization", "p99 RTT (ms)", "bloat (ms)", "rexmit"],
        )
        for variant in self.goodput_bps:
            table.add_row(
                [
                    variant,
                    f"{self.goodput_bps[variant] / 1e6:.2f}",
                    f"{self.utilization(variant):.0%}",
                    f"{self.p99_rtt_ms[variant]:.2f}",
                    f"{self.bufferbloat_ms(variant):.2f}",
                    self.retransmissions[variant],
                ]
            )
        return table


def run(
    seed: int = DEFAULT_SEED,
    duration_s: float = 45.0,
    algorithm: str = "cubic",
    variants: tuple[str, ...] | None = None,
    scenario: Scenario | str | None = None,
) -> RemedyComparisonResult:
    """Run the fig. 8 workload under every remedy and compare KPIs.

    ``variants`` restricts the sweep (names from :data:`REMEDY_VARIANTS`);
    the default runs all six.  The scenario's own ``[remedy]`` section is
    overridden per variant — the sweep axis *is* the remedy.
    """
    scn = resolve_scenario(scenario)
    names = variants if variants is not None else tuple(REMEDY_VARIANTS)
    unknown = sorted(set(names) - set(REMEDY_VARIANTS))
    if unknown:
        raise ValueError(
            f"unknown remedy variant(s) {', '.join(unknown)};"
            f" valid: {', '.join(REMEDY_VARIANTS)}"
        )
    baseline = path_config(scn).access_rate_bps() * scn.workload.sim_scale
    goodput: dict[str, float] = {}
    p99: dict[str, float] = {}
    minimum: dict[str, float] = {}
    rexmit: dict[str, int] = {}
    for variant in names:
        config = path_config(scn, remedy=REMEDY_VARIANTS[variant])
        result = run_tcp(
            config, algorithm, duration_s=duration_s, seed=seed, baseline_bps=baseline
        )
        goodput[variant] = result.throughput_bps
        p99[variant] = percentile_ms(result.rtt_samples, 0.99)
        minimum[variant] = percentile_ms(result.rtt_samples, 0.0)
        rexmit[variant] = result.retransmissions
        key = variant.replace("-", "_")
        record_kpi(f"remedy.goodput.{key}_bps", goodput[variant])
        record_kpi(f"remedy.p99_rtt.{key}_ms", p99[variant])
        record_kpi(f"remedy.bloat.{key}_ms", p99[variant] - minimum[variant])
        record_kpi(f"remedy.rexmit.{key}_count", rexmit[variant])
    return RemedyComparisonResult(
        algorithm=algorithm,
        baseline_bps=baseline,
        goodput_bps=goodput,
        p99_rtt_ms=p99,
        min_rtt_ms=minimum,
        retransmissions=rexmit,
    )
