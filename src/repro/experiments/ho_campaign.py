"""The shared hand-off measurement campaign (Sec. 3.4 dataset).

Fig. 4, Fig. 5, Fig. 6 and Fig. 12 all analyze the same walk data; this
module runs (and caches) one campaign per (seed, duration, scenario).
"""

from __future__ import annotations

from functools import lru_cache

from repro.experiments.common import DEFAULT_SEED, testbed
from repro.mobility.handoff import HandoffCampaign, HandoffEngine
from repro.mobility.walker import RouteWalker
from repro.scenario import Scenario, resolve_scenario

__all__ = ["campaign"]

#: The paper's campaign was ~80 minutes; default shorter for tractability.
DEFAULT_DURATION_S = 1200.0


def campaign(
    seed: int = DEFAULT_SEED,
    duration_s: float | None = None,
    scenario: Scenario | str | None = None,
) -> HandoffCampaign:
    """Walk the campus collecting hand-off events and RSRQ traces.

    The scenario supplies the walk speed, measurement noise, hand-off
    configuration and (via the testbed) the radio deployment; ``sa_mode``
    scenarios execute 5G-5G hand-offs over the standalone Xn procedure.
    """
    scenario = resolve_scenario(scenario)
    if duration_s is None:
        duration_s = scenario.workload.ho_duration_s
    return _run_campaign(seed, float(duration_s), scenario)


@lru_cache(maxsize=4)
def _run_campaign(seed: int, duration_s: float, scenario: Scenario) -> HandoffCampaign:
    bed = testbed(seed, scenario)
    rngf = bed.rng_factory
    walker = RouteWalker(
        bed.world, rngf.stream("ho-walk"), speed_kmh=scenario.workload.walk_speed_kmh
    )
    engine = HandoffEngine(
        bed.nr,
        bed.lte,
        rngf.stream("ho-engine"),
        config=scenario.handoff,
        measurement_noise_db=scenario.workload.measurement_noise_db,
        sa_mode=scenario.radio.sa_mode,
    )
    return engine.run(walker.trajectory(duration_s, dt_s=0.108))
