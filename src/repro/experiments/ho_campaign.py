"""The shared hand-off measurement campaign (Sec. 3.4 dataset).

Fig. 4, Fig. 5, Fig. 6 and Fig. 12 all analyze the same walk data; this
module runs (and caches) one campaign per (seed, duration).
"""

from __future__ import annotations

from functools import lru_cache

from repro.experiments.common import DEFAULT_SEED, testbed
from repro.mobility.handoff import HandoffCampaign, HandoffEngine
from repro.mobility.walker import RouteWalker

__all__ = ["campaign"]

#: The paper's campaign was ~80 minutes; default shorter for tractability.
DEFAULT_DURATION_S = 1200.0


@lru_cache(maxsize=4)
def campaign(
    seed: int = DEFAULT_SEED, duration_s: float = DEFAULT_DURATION_S
) -> HandoffCampaign:
    """Walk the campus collecting hand-off events and RSRQ traces."""
    bed = testbed(seed)
    rngf = bed.rng_factory
    walker = RouteWalker(bed.campus, rngf.stream("ho-walk"), speed_kmh=6.0)
    engine = HandoffEngine(
        bed.nr, bed.lte, rngf.stream("ho-engine"), measurement_noise_db=2.5
    )
    return engine.run(walker.trajectory(duration_s, dt_s=0.108))
