"""The ``repro trace`` subcommand.

Usage::

    python -m repro trace summary fig6.trace.jsonl        # per-name aggregates
    python -m repro trace export fig6.trace.jsonl out.json  # Chrome trace_event
    python -m repro trace diff a.trace.jsonl b.trace.jsonl  # exit 1 on drift

Trace files come from ``repro run <name> --trace PATH``; ``summary`` and
``diff`` accept either the JSONL or the Chrome format.  ``diff`` compares
span counts/durations, instant counts and final counter values — for a
deterministic experiment two same-seed runs must diff clean, so it doubles
as a regression gate in CI.

Missing, empty or truncated trace files fail fast: a clear one-line
message on stderr and exit code 1, never a stack trace.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.trace.analysis import diff_traces, summary_table
from repro.trace.export import load_trace, write_chrome

__all__ = ["add_trace_arguments", "run_trace"]


def add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the trace sub-subcommands to a (sub)parser."""
    sub = parser.add_subparsers(dest="trace_command", required=True)
    summary = sub.add_parser("summary", help="aggregate a trace file per record name")
    summary.add_argument("trace_file", help="trace file (.jsonl or Chrome .json)")
    export = sub.add_parser(
        "export", help="convert a trace to Chrome trace_event JSON (Perfetto)"
    )
    export.add_argument("trace_file", help="input trace file")
    export.add_argument("output", help="output path for the trace_event JSON")
    diff = sub.add_parser("diff", help="compare two traces; exit 1 if they differ")
    diff.add_argument("trace_a", help="first trace file")
    diff.add_argument("trace_b", help="second trace file")


def _load(path: str):
    if not Path(path).exists():
        print(f"repro trace: no such file: {path}", file=sys.stderr)
        return None
    try:
        return load_trace(path)
    except ValueError as exc:
        print(f"repro trace: {path}: {exc}", file=sys.stderr)
        return None


def run_trace(args: argparse.Namespace) -> int:
    """Execute a trace subcommand; returns the process exit code."""
    if args.trace_command == "summary":
        tracer = _load(args.trace_file)
        if tracer is None:
            return 1
        print(summary_table(tracer).render())
        return 0
    if args.trace_command == "export":
        tracer = _load(args.trace_file)
        if tracer is None:
            return 1
        count = write_chrome(tracer, args.output)
        print(f"wrote {count} trace event(s) to {args.output}")
        return 0
    if args.trace_command == "diff":
        tracer_a = _load(args.trace_a)
        tracer_b = _load(args.trace_b)
        if tracer_a is None or tracer_b is None:
            return 1
        diff = diff_traces(tracer_a, tracer_b)
        print(diff.table().render())
        return 0 if diff.identical else 1
    raise AssertionError(f"unknown trace command {args.trace_command!r}")
