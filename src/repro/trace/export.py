"""Trace serialisation: JSONL, Chrome ``trace_event`` JSON, and loading.

Two on-disk formats:

* **JSONL** (``.jsonl``) — one sorted-key JSON object per line, preceded by
  a header line.  This is the canonical, diff-able format: it contains no
  wall-clock timestamps, PIDs or file paths, so a fixed experiment+seed
  produces byte-identical files.
* **Chrome trace_event** (``.json``) — the ``{"traceEvents": [...]}``
  format understood by Perfetto / ``chrome://tracing``.  Virtual seconds
  are mapped to microseconds; each top-level category (the part of a
  record name before the first ``.`` or ``:``) becomes its own named
  thread row so spans nest sensibly.

:func:`load_trace` sniffs either format back into an in-memory
:class:`~repro.trace.core.Tracer` so the query API works on files too.
"""

from __future__ import annotations

import json
from typing import Any

from repro.trace.core import CounterRecord, InstantRecord, SpanRecord, Tracer

__all__ = [
    "JSONL_SCHEMA_VERSION",
    "load_trace",
    "to_chrome",
    "to_jsonl_lines",
    "write_chrome",
    "write_jsonl",
]

JSONL_SCHEMA_VERSION = 1

#: Virtual seconds → trace_event microseconds.
_US_PER_S = 1e6


def _record_to_dict(record: Any) -> dict[str, Any]:
    if type(record) is SpanRecord:
        return {
            "kind": "span",
            "name": record.name,
            "begin_s": record.begin_s,
            "end_s": record.end_s,
            "args": dict(record.args),
        }
    if type(record) is InstantRecord:
        return {
            "kind": "instant",
            "name": record.name,
            "time_s": record.time_s,
            "args": dict(record.args),
        }
    if type(record) is CounterRecord:
        return {
            "kind": "counter",
            "name": record.name,
            "time_s": record.time_s,
            "value": record.value,
        }
    raise TypeError(f"not a trace record: {record!r}")


def to_jsonl_lines(tracer: Tracer, meta: dict[str, Any] | None = None) -> list[str]:
    """Serialise a trace as JSONL lines (header first, records in order)."""
    stats = tracer.stats()
    header: dict[str, Any] = {
        "kind": "header",
        "tool": "repro.trace",
        "schema_version": JSONL_SCHEMA_VERSION,
        "emitted": stats.emitted,
        "dropped": stats.dropped,
    }
    if meta:
        header["meta"] = meta
    lines = [json.dumps(header, sort_keys=True)]
    for record in tracer.records():
        lines.append(json.dumps(_record_to_dict(record), sort_keys=True))
    return lines


def write_jsonl(tracer: Tracer, path: str, meta: dict[str, Any] | None = None) -> int:
    """Write the JSONL form to ``path``; returns the number of records."""
    lines = to_jsonl_lines(tracer, meta)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines))
        fh.write("\n")
    return len(lines) - 1


def _category(name: str) -> str:
    """Top-level category of a record name (text before the first ``.``/``:``)."""
    for sep in (".", ":"):
        head, found, _ = name.partition(sep)
        if found:
            return head
    return name


def to_chrome(tracer: Tracer, meta: dict[str, Any] | None = None) -> dict[str, Any]:
    """Build a Chrome ``trace_event`` document from a trace.

    Spans become complete (``ph="X"``) events, instants ``ph="i"``, and
    counters ``ph="C"``.  Categories are laid out as named threads of one
    process, in order of first appearance, so Perfetto groups related spans
    on one row.
    """
    events: list[dict[str, Any]] = []
    tids: dict[str, int] = {}

    def tid_for(name: str) -> int:
        cat = _category(name)
        if cat not in tids:
            tids[cat] = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 1,
                    "tid": tids[cat],
                    "args": {"name": cat},
                }
            )
        return tids[cat]

    for record in tracer.records():
        if type(record) is SpanRecord:
            events.append(
                {
                    "ph": "X",
                    "name": record.name,
                    "cat": _category(record.name),
                    "pid": 1,
                    "tid": tid_for(record.name),
                    "ts": record.begin_s * _US_PER_S,
                    "dur": record.duration_s * _US_PER_S,
                    "args": dict(record.args),
                }
            )
        elif type(record) is InstantRecord:
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": record.name,
                    "cat": _category(record.name),
                    "pid": 1,
                    "tid": tid_for(record.name),
                    "ts": record.time_s * _US_PER_S,
                    "args": dict(record.args),
                }
            )
        elif type(record) is CounterRecord:
            events.append(
                {
                    "ph": "C",
                    "name": record.name,
                    "pid": 1,
                    "tid": tid_for(record.name),
                    "ts": record.time_s * _US_PER_S,
                    "args": {"value": record.value},
                }
            )
    document: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if meta:
        document["otherData"] = meta
    return document


def write_chrome(tracer: Tracer, path: str, meta: dict[str, Any] | None = None) -> int:
    """Write the Chrome trace_event form to ``path``; returns the event count."""
    document = to_chrome(tracer, meta)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    return len(document["traceEvents"])


def _load_jsonl(text: str) -> Tracer:
    try:
        records = [json.loads(line) for line in text.splitlines() if line.strip()]
    except json.JSONDecodeError as exc:
        raise ValueError(f"truncated or malformed trace JSONL: {exc}") from exc
    tracer = Tracer(capacity=max(len(records), 1))
    for obj in records:
        if not isinstance(obj, dict):
            raise ValueError(f"truncated or malformed trace record: {obj!r}")
        kind = obj.get("kind")
        try:
            if kind == "span":
                tracer.complete(obj["name"], obj["begin_s"], obj["end_s"], **obj.get("args", {}))
            elif kind == "instant":
                tracer.instant(obj["name"], obj["time_s"], **obj.get("args", {}))
            elif kind == "counter":
                tracer.counter(obj["name"], obj["time_s"], obj["value"])
            elif kind != "header":
                raise ValueError(f"unknown trace record kind: {kind!r}")
        except KeyError as exc:
            raise ValueError(
                f"truncated or malformed {kind} record: missing field {exc}"
            ) from exc
    return tracer


def _load_chrome(document: dict[str, Any]) -> Tracer:
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("not a trace_event document: missing traceEvents list")
    tracer = Tracer(capacity=max(len(events), 1))
    for event in events:
        phase = event.get("ph")
        try:
            if phase == "X":
                begin_s = event["ts"] / _US_PER_S
                tracer.complete(
                    event["name"],
                    begin_s,
                    begin_s + event.get("dur", 0.0) / _US_PER_S,
                    **event.get("args", {}),
                )
            elif phase == "i":
                tracer.instant(event["name"], event["ts"] / _US_PER_S, **event.get("args", {}))
            elif phase == "C":
                tracer.counter(event["name"], event["ts"] / _US_PER_S, event["args"]["value"])
            # Metadata ("M") and unknown phases carry no trace payload.
        except KeyError as exc:
            raise ValueError(
                f"truncated or malformed trace event: missing field {exc}"
            ) from exc
    return tracer


def load_trace(path: str) -> Tracer:
    """Load a JSONL or Chrome-format trace file into a queryable tracer.

    Raises:
        ValueError: on empty, truncated or malformed input — an empty
            trace means the producing run recorded nothing (or the file
            was clobbered), and every query on it would silently answer
            "no events", so it is rejected up front.
    """
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    if not stripped:
        raise ValueError("empty trace file")
    if stripped.startswith("{") and '"traceEvents"' in stripped[:4096]:
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"truncated or malformed trace JSON: {exc}") from exc
        return _load_chrome(document)
    return _load_jsonl(text)
