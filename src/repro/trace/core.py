"""Low-overhead deterministic tracing for the simulator stack.

A :class:`Tracer` records three kinds of typed events into a bounded ring
buffer:

* **spans** — named intervals on virtual time (``begin_s``/``end_s``),
  e.g. one handoff procedure or one radio-state dwell;
* **instants** — point events with attributes, e.g. an A3 trigger;
* **counters** — monotone or sampled series, e.g. cwnd or queue depth.

Timestamps are *virtual* seconds (simulation time), never wall clock, so a
trace is a pure function of the experiment and seed — running the same
experiment twice yields byte-identical exports.  Layers without a virtual
clock (link adaptation, HARQ) pass ``time_s=None`` and get a deterministic
per-series sample index instead.

The disabled path is as close to free as Python allows: instrumented code
holds a reference to the *current* tracer (looked up once, at component
construction) and either checks one ``enabled`` attribute or calls a no-op
method on the module-level :data:`NULL_TRACER`.  Hot loops branch once per
loop entry, not per event (see ``Simulator.run``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, NamedTuple

__all__ = [
    "CounterRecord",
    "InstantRecord",
    "NULL_TRACER",
    "NullTracer",
    "SpanHandle",
    "SpanRecord",
    "TraceStats",
    "Tracer",
    "current",
    "install",
    "tracing",
    "uninstall",
]

#: Default ring-buffer capacity (records).  Large enough for a full fig6
#: campaign; a bounded buffer keeps worst-case memory flat for long runs.
DEFAULT_CAPACITY = 1 << 20


@dataclass(frozen=True)
class SpanRecord:
    """A named interval ``[begin_s, end_s]`` on virtual time."""

    name: str
    begin_s: float
    end_s: float
    args: tuple[tuple[str, Any], ...] = ()

    @property
    def duration_s(self) -> float:
        return self.end_s - self.begin_s


@dataclass(frozen=True)
class InstantRecord:
    """A point event at ``time_s`` on virtual time."""

    name: str
    time_s: float
    args: tuple[tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class CounterRecord:
    """One sample of a named numeric series."""

    name: str
    time_s: float
    value: float


class TraceStats(NamedTuple):
    """Cumulative emission counts (independent of ring-buffer eviction)."""

    spans: int
    instants: int
    counter_samples: int
    emitted: int
    dropped: int


def _freeze_args(args: dict[str, Any]) -> tuple[tuple[str, Any], ...]:
    """Sort attributes so record equality and exports are order-independent."""
    return tuple(sorted(args.items()))


class SpanHandle:
    """An open span returned by :meth:`Tracer.begin`; close with :meth:`end`.

    Prefer the context-manager form (:meth:`Tracer.span`) — replint REP005
    flags ``begin`` calls whose handle is dropped or never ended.
    """

    __slots__ = ("_tracer", "name", "begin_s", "_args", "_closed")

    def __init__(self, tracer: "Tracer", name: str, begin_s: float, args: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.begin_s = begin_s
        self._args = args
        self._closed = False

    def end(self, end_s: float, **args: Any) -> None:
        """Close the span at virtual time ``end_s`` (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if args:
            merged = dict(self._args)
            merged.update(args)
        else:
            merged = self._args
        self._tracer.complete(self.name, self.begin_s, end_s, **merged)


class _SpanContext:
    """Context manager that reads a virtual clock on entry and exit."""

    __slots__ = ("_tracer", "_name", "_clock", "_args", "_begin_s")

    def __init__(self, tracer: "Tracer", name: str, clock, args: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._clock = clock
        self._args = args
        self._begin_s = 0.0

    def __enter__(self) -> "_SpanContext":
        self._begin_s = float(self._clock())
        return self

    def __exit__(self, *exc: Any) -> None:
        self._tracer.complete(self._name, self._begin_s, float(self._clock()), **self._args)


class Tracer:
    """Collects trace records into a bounded ring buffer.

    The buffer is a plain list used as a ring: O(1) append, O(1) overwrite
    once full, and the oldest records are evicted first.  All query methods
    return records in emission order.
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._ring: list[Any] = []
        self._head = 0  # next overwrite position once the ring is full
        self._spans_emitted = 0
        self._instants_emitted = 0
        self._counter_samples_emitted = 0
        self._counter_index: dict[str, int] = {}
        self._counter_totals: dict[str, float] = {}
        self._metrics_sink: Any = None
        self._metric_prefix = "trace"
        self._metric_names: dict[str, str] = {}

    def feed_metrics(self, registry: Any, prefix: str = "trace") -> None:
        """Mirror counter samples into a metric registry's quantile sketches.

        ``registry`` is duck-typed: anything whose ``quantile(name)``
        returns an object with ``observe(value)`` works — a
        :class:`repro.metrics.MetricRegistry`, the null registry, or a
        test double.  Unlike the bounded ring buffer, the sketches never
        evict, so long counter series keep their full distribution.
        Counter names are mapped to ``<prefix>.<name>`` with characters
        outside ``[a-z0-9_.]`` folded to ``_``.  Pass ``None`` to detach.
        """
        self._metrics_sink = registry
        self._metric_names.clear()
        if registry is not None:
            self._metric_prefix = prefix

    def _metric_name(self, name: str) -> str:
        cached = self._metric_names.get(name)
        if cached is None:
            from repro.metrics.core import fold_metric_name

            cached = fold_metric_name(name, prefix=self._metric_prefix)
            self._metric_names[name] = cached
        return cached

    # ------------------------------------------------------------------ emit
    def _append(self, record: Any) -> None:
        ring = self._ring
        if len(ring) < self.capacity:
            ring.append(record)
        else:
            ring[self._head] = record
            self._head = (self._head + 1) % self.capacity

    def complete(self, name: str, begin_s: float, end_s: float, **args: Any) -> None:
        """Record a finished span ``[begin_s, end_s]``."""
        self._spans_emitted += 1
        self._append(SpanRecord(name, begin_s, end_s, _freeze_args(args)))

    def begin(self, name: str, begin_s: float, **args: Any) -> SpanHandle:
        """Open a span; the caller must ``end()`` the returned handle."""
        return SpanHandle(self, name, begin_s, args)

    def span(self, name: str, clock, **args: Any) -> _SpanContext:
        """Span as a context manager; ``clock`` is a zero-arg virtual-time read.

        Example:
            >>> tracer = Tracer()
            >>> with tracer.span("work", lambda: 1.0):
            ...     pass
        """
        return _SpanContext(self, name, clock, args)

    def instant(self, name: str, time_s: float, **args: Any) -> None:
        """Record a point event."""
        self._instants_emitted += 1
        self._append(InstantRecord(name, time_s, _freeze_args(args)))

    def counter(self, name: str, time_s: float | None, value: float) -> None:
        """Sample a counter series.

        ``time_s=None`` stamps the sample with a per-series index — the
        deterministic choice for layers that have no virtual clock.
        """
        if time_s is None:
            index = self._counter_index.get(name, 0)
            self._counter_index[name] = index + 1
            time_s = float(index)
        self._counter_samples_emitted += 1
        self._append(CounterRecord(name, time_s, float(value)))
        sink = self._metrics_sink
        if sink is not None:
            sink.quantile(self._metric_name(name)).observe(float(value))

    def bump(self, name: str, time_s: float | None, delta: float = 1.0) -> None:
        """Increment a monotone counter by ``delta`` and sample the new total."""
        total = self._counter_totals.get(name, 0.0) + delta
        self._counter_totals[name] = total
        self.counter(name, time_s, total)

    # ----------------------------------------------------------------- query
    def records(self) -> list[Any]:
        """All retained records in emission order (oldest first)."""
        ring = self._ring
        if len(ring) < self.capacity:
            return list(ring)
        return ring[self._head :] + ring[: self._head]

    def spans(self, name: str | None = None, prefix: str | None = None) -> list[SpanRecord]:
        """Retained spans, optionally filtered by exact ``name`` or ``prefix``."""
        out = [r for r in self.records() if type(r) is SpanRecord]
        if name is not None:
            out = [r for r in out if r.name == name]
        if prefix is not None:
            out = [r for r in out if r.name.startswith(prefix)]
        return out

    def instants(self, name: str | None = None) -> list[InstantRecord]:
        """Retained instants, optionally filtered by exact ``name``."""
        out = [r for r in self.records() if type(r) is InstantRecord]
        if name is not None:
            out = [r for r in out if r.name == name]
        return out

    def counter_series(self, name: str) -> list[tuple[float, float]]:
        """``(time_s, value)`` samples of one counter, in emission order."""
        return [
            (r.time_s, r.value)
            for r in self.records()
            if type(r) is CounterRecord and r.name == name
        ]

    def counter_names(self) -> list[str]:
        """Sorted names of all retained counter series."""
        return sorted({r.name for r in self.records() if type(r) is CounterRecord})

    def span_names(self) -> list[str]:
        """Sorted names of all retained spans."""
        return sorted({r.name for r in self.records() if type(r) is SpanRecord})

    def stats(self) -> TraceStats:
        """Cumulative emission counts plus how many records were evicted."""
        emitted = self._spans_emitted + self._instants_emitted + self._counter_samples_emitted
        return TraceStats(
            spans=self._spans_emitted,
            instants=self._instants_emitted,
            counter_samples=self._counter_samples_emitted,
            emitted=emitted,
            dropped=emitted - len(self._ring),
        )

    def clear(self) -> None:
        """Drop all retained records and reset emission counts."""
        self._ring.clear()
        self._head = 0
        self._spans_emitted = 0
        self._instants_emitted = 0
        self._counter_samples_emitted = 0
        self._counter_index.clear()
        self._counter_totals.clear()


class NullTracer:
    """The disabled tracer: every method is a no-op.

    Instrumented components capture :func:`current` once at construction;
    when no tracer is installed they hold this singleton and every hook
    collapses to one attribute load (``enabled``) or one no-op call.
    """

    enabled = False

    __slots__ = ()

    def feed_metrics(self, registry: Any, prefix: str = "trace") -> None:
        pass

    def complete(self, name: str, begin_s: float, end_s: float, **args: Any) -> None:
        pass

    def begin(self, name: str, begin_s: float, **args: Any) -> "_NullSpanHandle":
        return _NULL_HANDLE

    def span(self, name: str, clock, **args: Any) -> "_NullSpanContext":
        return _NULL_CONTEXT

    def instant(self, name: str, time_s: float, **args: Any) -> None:
        pass

    def counter(self, name: str, time_s: float | None, value: float) -> None:
        pass

    def bump(self, name: str, time_s: float | None, delta: float = 1.0) -> None:
        pass

    def records(self) -> list[Any]:
        return []

    def spans(self, name: str | None = None, prefix: str | None = None) -> list[SpanRecord]:
        return []

    def instants(self, name: str | None = None) -> list[InstantRecord]:
        return []

    def counter_series(self, name: str) -> list[tuple[float, float]]:
        return []

    def counter_names(self) -> list[str]:
        return []

    def span_names(self) -> list[str]:
        return []

    def stats(self) -> TraceStats:
        return TraceStats(0, 0, 0, 0, 0)

    def clear(self) -> None:
        pass


class _NullSpanHandle:
    __slots__ = ()

    def end(self, end_s: float, **args: Any) -> None:
        pass


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


NULL_TRACER = NullTracer()
_NULL_HANDLE = _NullSpanHandle()
_NULL_CONTEXT = _NullSpanContext()

# Stack of installed tracers; the top is what `current()` returns.  A stack
# (rather than a single slot) lets tests nest `tracing()` blocks safely.
_installed: list[Any] = [NULL_TRACER]


def current() -> Tracer | NullTracer:
    """The active tracer (:data:`NULL_TRACER` when tracing is disabled)."""
    return _installed[-1]


def install(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the active tracer until :func:`uninstall`."""
    _installed.append(tracer)
    return tracer


def uninstall(tracer: Tracer | None = None) -> None:
    """Pop the active tracer (validating it is ``tracer`` when given)."""
    if len(_installed) == 1:
        raise RuntimeError("no tracer installed")
    if tracer is not None and _installed[-1] is not tracer:
        raise RuntimeError("uninstall out of order: a different tracer is active")
    _installed.pop()


@dataclass
class tracing:
    """Context manager installing a tracer for the duration of a block.

    Example:
        >>> with tracing() as tracer:
        ...     current() is tracer
        True
    """

    tracer: Tracer | None = None
    capacity: int = DEFAULT_CAPACITY
    _active: Tracer = field(init=False, repr=False)

    def __enter__(self) -> Tracer:
        self._active = self.tracer if self.tracer is not None else Tracer(self.capacity)
        return install(self._active)

    def __exit__(self, *exc: Any) -> None:
        uninstall(self._active)
