"""Deterministic tracing for the simulator stack (spans/instants/counters).

Quick start::

    from repro import trace

    with trace.tracing() as tracer:
        result = fig6.run(seed=7)
    handoffs = tracer.spans(prefix="handoff:")
    trace.write_chrome(tracer, "fig6.trace.json")

See :mod:`repro.trace.core` for the recording model and
:mod:`repro.trace.export` for the on-disk formats.
"""

from repro.trace.analysis import diff_traces, summarize, summary_dict, summary_table
from repro.trace.core import (
    NULL_TRACER,
    CounterRecord,
    InstantRecord,
    NullTracer,
    SpanRecord,
    TraceStats,
    Tracer,
    current,
    install,
    tracing,
    uninstall,
)
from repro.trace.export import (
    load_trace,
    to_chrome,
    to_jsonl_lines,
    write_chrome,
    write_jsonl,
)

__all__ = [
    "NULL_TRACER",
    "CounterRecord",
    "InstantRecord",
    "NullTracer",
    "SpanRecord",
    "TraceStats",
    "Tracer",
    "current",
    "diff_traces",
    "install",
    "load_trace",
    "summarize",
    "summary_dict",
    "summary_table",
    "to_chrome",
    "to_jsonl_lines",
    "tracing",
    "uninstall",
    "write_chrome",
    "write_jsonl",
]
