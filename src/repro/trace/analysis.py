"""Aggregation over traces: per-name summaries and trace-to-trace diffs.

These power ``repro trace summary`` / ``repro trace diff`` and the optional
``RunRecord.trace_summary`` payload.  Everything here works on the query
API only, so it applies equally to a live :class:`~repro.trace.core.Tracer`
and to one re-loaded from disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.results import ResultTable
from repro.trace.core import CounterRecord, InstantRecord, NullTracer, SpanRecord, Tracer

__all__ = ["TraceDiff", "diff_traces", "summarize", "summary_dict", "summary_table"]


def summary_dict(tracer: Tracer | NullTracer) -> dict[str, Any]:
    """JSON-able per-kind aggregate of a trace.

    Spans aggregate to ``{count, total_s}`` per name, counters to
    ``{samples, last}`` per name, instants to a count per name.
    """
    spans: dict[str, dict[str, Any]] = {}
    instants: dict[str, int] = {}
    counters: dict[str, dict[str, Any]] = {}
    for record in tracer.records():
        if type(record) is SpanRecord:
            agg = spans.setdefault(record.name, {"count": 0, "total_s": 0.0})
            agg["count"] += 1
            agg["total_s"] += record.duration_s
        elif type(record) is InstantRecord:
            instants[record.name] = instants.get(record.name, 0) + 1
        elif type(record) is CounterRecord:
            agg = counters.setdefault(record.name, {"samples": 0, "last": 0.0})
            agg["samples"] += 1
            agg["last"] = record.value
    stats = tracer.stats()
    return {
        "spans": {name: spans[name] for name in sorted(spans)},
        "instants": {name: instants[name] for name in sorted(instants)},
        "counters": {name: counters[name] for name in sorted(counters)},
        "emitted": stats.emitted,
        "dropped": stats.dropped,
    }


def summarize(tracer: Tracer | NullTracer) -> dict[str, int]:
    """Compact emission counts for :class:`~repro.runner.instrument.RunRecord`."""
    stats = tracer.stats()
    return {
        "spans": stats.spans,
        "instants": stats.instants,
        "counter_samples": stats.counter_samples,
        "dropped": stats.dropped,
    }


def summary_table(tracer: Tracer | NullTracer) -> ResultTable:
    """Human-readable rendering of :func:`summary_dict`."""
    summary = summary_dict(tracer)
    table = ResultTable("Trace summary", ["kind", "name", "count", "detail"])
    for name, agg in summary["spans"].items():
        table.add_row(["span", name, agg["count"], f"total {agg['total_s'] * 1e3:.3f} ms"])
    for name, count in summary["instants"].items():
        table.add_row(["instant", name, count, ""])
    for name, agg in summary["counters"].items():
        table.add_row(["counter", name, agg["samples"], f"last {agg['last']:g}"])
    table.add_row(["total", "(emitted)", summary["emitted"], f"dropped {summary['dropped']}"])
    return table


@dataclass(frozen=True)
class TraceDiff:
    """Differences between two traces, keyed by record name.

    Each entry maps a name to ``(value_a, value_b)``: span counts, span
    total durations (seconds), instant counts, or final counter values.
    """

    span_counts: dict[str, tuple[int, int]]
    span_totals_s: dict[str, tuple[float, float]]
    instant_counts: dict[str, tuple[int, int]]
    counter_finals: dict[str, tuple[float, float]]

    @property
    def identical(self) -> bool:
        return not (
            self.span_counts or self.span_totals_s or self.instant_counts or self.counter_finals
        )

    def table(self) -> ResultTable:
        """Render the diff (one row per differing name)."""
        table = ResultTable("Trace diff", ["kind", "name", "a", "b"])
        for name, (a, b) in sorted(self.span_counts.items()):
            table.add_row(["span count", name, a, b])
        for name, (a, b) in sorted(self.span_totals_s.items()):
            table.add_row(["span total (ms)", name, f"{a * 1e3:.3f}", f"{b * 1e3:.3f}"])
        for name, (a, b) in sorted(self.instant_counts.items()):
            table.add_row(["instant count", name, a, b])
        for name, (a, b) in sorted(self.counter_finals.items()):
            table.add_row(["counter final", name, f"{a:g}", f"{b:g}"])
        if self.identical:
            table.add_row(["(identical)", "", "", ""])
        return table


def _pairwise(
    a: dict[str, Any], b: dict[str, Any], default: Any
) -> dict[str, tuple[Any, Any]]:
    out = {}
    for name in sorted(set(a) | set(b)):
        va = a.get(name, default)
        vb = b.get(name, default)
        if va != vb:
            out[name] = (va, vb)
    return out


def diff_traces(a: Tracer | NullTracer, b: Tracer | NullTracer) -> TraceDiff:
    """Compare two traces of the same experiment (e.g. two seeds or commits)."""
    sa, sb = summary_dict(a), summary_dict(b)
    return TraceDiff(
        span_counts=_pairwise(
            {k: v["count"] for k, v in sa["spans"].items()},
            {k: v["count"] for k, v in sb["spans"].items()},
            0,
        ),
        span_totals_s=_pairwise(
            {k: v["total_s"] for k, v in sa["spans"].items()},
            {k: v["total_s"] for k, v in sb["spans"].items()},
            0.0,
        ),
        instant_counts=_pairwise(sa["instants"], sb["instants"], 0),
        counter_finals=_pairwise(
            {k: v["last"] for k, v in sa["counters"].items()},
            {k: v["last"] for k, v in sb["counters"].items()},
            0.0,
        ),
    )
