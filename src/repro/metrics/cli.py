"""The ``repro metrics`` subcommand.

Usage::

    python -m repro metrics show campaign.metrics.jsonl
    python -m repro metrics export campaign.metrics.jsonl out.prom
    python -m repro metrics diff a.metrics.jsonl b.metrics.jsonl --tolerance 0.02

Metrics files come from ``repro run ... --metrics PATH`` (the merged
campaign snapshot) or ``repro bench``.  ``diff`` compares the derived
summary scalars of every metric and exits 1 when any relative difference
exceeds the tolerance — with tolerance 0 it doubles as a determinism
gate, since same-seed campaigns must produce identical snapshots.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.results import ResultTable
from repro.metrics.export import (
    MetricDelta,
    diff_snapshots,
    load_snapshot,
    summary_table,
    write_jsonl,
    write_prometheus,
)

__all__ = ["add_metrics_arguments", "run_metrics"]


def add_metrics_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the metrics sub-subcommands to a (sub)parser."""
    sub = parser.add_subparsers(dest="metrics_command", required=True)
    show = sub.add_parser("show", help="render a metrics snapshot as a table")
    show.add_argument("metrics_file", help="metrics JSONL file")
    export = sub.add_parser(
        "export", help="convert a metrics snapshot (jsonl or Prometheus text)"
    )
    export.add_argument("metrics_file", help="input metrics JSONL file")
    export.add_argument("output", help="output path")
    export.add_argument(
        "--format",
        choices=("prom", "jsonl"),
        default="prom",
        help="output format (default: prom, the Prometheus text exposition)",
    )
    diff = sub.add_parser(
        "diff", help="compare two snapshots; exit 1 beyond --tolerance"
    )
    diff.add_argument("metrics_a", help="first metrics JSONL file")
    diff.add_argument("metrics_b", help="second metrics JSONL file")
    diff.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        metavar="REL",
        help="maximum tolerated relative difference per summary field "
        "(default: 0, exact)",
    )


def _load(path: str) -> dict | None:
    try:
        return load_snapshot(path)
    except FileNotFoundError:
        print(f"repro metrics: no such file: {path}", file=sys.stderr)
        return None
    except ValueError as exc:
        print(f"repro metrics: {path}: {exc}", file=sys.stderr)
        return None


def _diff_table(deltas: list[MetricDelta]) -> ResultTable:
    table = ResultTable("Metrics diff", ["metric", "field", "a", "b", "rel diff"])
    for delta in deltas:
        table.add_row(
            [
                delta.name,
                delta.field,
                "absent" if delta.value_a is None else f"{delta.value_a:g}",
                "absent" if delta.value_b is None else f"{delta.value_b:g}",
                "-" if delta.missing else f"{delta.relative:.2%}",
            ]
        )
    if not deltas:
        table.add_row(["(identical within tolerance)", "", "", "", ""])
    return table


def run_metrics(args: argparse.Namespace) -> int:
    """Execute a metrics subcommand; returns the process exit code."""
    if args.metrics_command == "show":
        snapshot = _load(args.metrics_file)
        if snapshot is None:
            return 1
        print(summary_table(snapshot).render())
        return 0
    if args.metrics_command == "export":
        snapshot = _load(args.metrics_file)
        if snapshot is None:
            return 1
        if args.format == "jsonl":
            count = write_jsonl(snapshot, args.output)
            print(f"wrote {count} metric(s) to {args.output}")
        else:
            count = write_prometheus(snapshot, args.output)
            print(f"wrote {count} exposition line(s) to {args.output}")
        return 0
    if args.metrics_command == "diff":
        snapshot_a = _load(args.metrics_a)
        snapshot_b = _load(args.metrics_b)
        if snapshot_a is None or snapshot_b is None:
            return 1
        deltas = diff_snapshots(snapshot_a, snapshot_b, tolerance=args.tolerance)
        print(_diff_table(deltas).render())
        return 1 if deltas else 0
    raise AssertionError(f"unknown metrics command {args.metrics_command!r}")
