"""Mergeable streaming sketches for the metric registry.

The paper's results are almost all distributions — RSRP histograms
(Tab. 2), hand-off latency CDFs (Fig. 6), energy-per-bit curves
(Fig. 22) — so the registry needs summaries that can be built one sample
at a time *and* combined across campaign workers without bias.  Three
sketches cover the space:

* :class:`Welford` — running mean/variance (numerically stable, and the
  pairwise state ``(count, mean, m2)`` combines exactly à la Chan et al.);
* :class:`ReservoirQuantile` — a bottom-k priority reservoir: every
  observation gets a deterministic hash priority and the k smallest
  priorities are retained, so a merge is "union, keep k smallest" —
  order-independent, duplicate-safe, and identical whether the stream was
  sketched by one worker or twelve;
* :class:`FixedHistogram` — exact integer counts over fixed bucket edges
  (the Tab. 2 shape), trivially mergeable by summing.

A plain :class:`P2Quantile` (the classic Jain & Chlamtac P² estimator) is
also provided for single-pass single-quantile estimation in O(1) memory;
it is *not* mergeable and therefore stays out of the registry — its role
is streaming estimation and cross-validation of the exact
:class:`repro.core.stats.Cdf` percentiles.

Determinism note: reservoir priorities hash ``(tag, index)``, never the
value or wall clock, so a fixed experiment + seed always retains the same
subsample, and two sketches with different tags never collide on
priorities in practice (64-bit keys).
"""

from __future__ import annotations

import hashlib
import heapq
from bisect import bisect_right
from collections.abc import Iterable, Sequence

__all__ = [
    "DEFAULT_RESERVOIR_K",
    "FixedHistogram",
    "P2Quantile",
    "ReservoirQuantile",
    "Welford",
    "combine_moments",
]

#: Default retained-sample budget of a :class:`ReservoirQuantile`.
DEFAULT_RESERVOIR_K = 512


class Welford:
    """Streaming mean/variance with exactly combinable state.

    State is the classic triple ``(count, mean, m2)``; population variance
    is ``m2 / count``.  :func:`combine_moments` folds several states in a
    canonical order so merged results are byte-reproducible.
    """

    __slots__ = ("count", "mean", "m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one sample into the running moments."""
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def variance(self) -> float:
        """Population variance (0 for fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self.m2 / self.count

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return self.variance**0.5

    def state(self) -> list[float]:
        """The mergeable state ``[count, mean, m2, min, max]``."""
        return [float(self.count), self.mean, self.m2, self.minimum, self.maximum]


def combine_moments(states: Iterable[Sequence[float]]) -> list[float]:
    """Fold Welford states pairwise, in the order given.

    Callers that need order-independent (byte-identical) results must sort
    ``states`` by a canonical key first — the registry sorts per-origin
    parts by origin tag before folding.
    """
    count = 0.0
    mean = 0.0
    m2 = 0.0
    minimum = float("inf")
    maximum = float("-inf")
    for state in states:
        b_count, b_mean, b_m2, b_min, b_max = state
        if b_count == 0:
            continue
        if count == 0:
            count, mean, m2 = b_count, b_mean, b_m2
        else:
            delta = b_mean - mean
            total = count + b_count
            mean = mean + delta * (b_count / total)
            m2 = m2 + b_m2 + delta * delta * (count * b_count / total)
            count = total
        minimum = min(minimum, b_min)
        maximum = max(maximum, b_max)
    return [count, mean, m2, minimum, maximum]


def _priority(tag: str, index: int) -> str:
    """Deterministic 64-bit hash priority for observation ``index`` of ``tag``."""
    digest = hashlib.blake2b(f"{tag}|{index}".encode(), digest_size=8)
    return digest.hexdigest()


class ReservoirQuantile:
    """Bottom-k priority reservoir: a mergeable streaming quantile sketch.

    Every observation is assigned a hash priority from ``(tag, index)``;
    the sketch retains the ``k`` observations with the smallest priorities.
    Because priorities are a pure function of the stream identity, the
    retained set — and therefore every quantile answer — is identical
    whether the stream was observed by one process or sketched in parts
    and merged.  Exact ``count``/``sum``/``min``/``max`` ride along so
    means stay exact even when the reservoir subsamples.
    """

    __slots__ = ("k", "tag", "count", "total", "minimum", "maximum", "_heap", "_sorted")

    def __init__(self, k: int = DEFAULT_RESERVOIR_K, tag: str = "") -> None:
        if k <= 0:
            raise ValueError(f"reservoir size must be positive, got {k}")
        self.k = k
        self.tag = tag
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        # Max-heap on priority (negated via tuple trick: store (neg_key, value)
        # is not possible for hex strings, so keep a max-heap by inverting the
        # comparison with a wrapper tuple of the complemented hex string).
        self._heap: list[tuple[str, float]] = []  # (inverted_key, value)
        self._sorted: list[float] | None = None

    @staticmethod
    def _invert(key: str) -> str:
        """Bitwise-complement a hex key so heapq's min-heap pops the max."""
        return format((1 << 64) - 1 - int(key, 16), "016x")

    def observe(self, value: float) -> None:
        """Fold one sample into the sketch."""
        value = float(value)
        key = _priority(self.tag, self.count)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self._sorted = None
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (self._invert(key), value))
        else:
            # Largest retained priority sits at the heap root (inverted order).
            largest_inverted = self._heap[0][0]
            if self._invert(key) > largest_inverted:
                heapq.heapreplace(self._heap, (self._invert(key), value))

    def items(self) -> list[list[object]]:
        """Retained ``[priority_hex, value]`` pairs, sorted by priority."""
        pairs = [(self._invert(inv), value) for inv, value in self._heap]
        return [[key, value] for key, value in sorted(pairs)]

    def values(self) -> list[float]:
        """Retained sample values, sorted ascending (cached)."""
        if self._sorted is None:
            self._sorted = sorted(value for _, value in self._heap)
        return self._sorted

    @property
    def mean(self) -> float:
        """Exact stream mean (not subsampled)."""
        if self.count == 0:
            raise ValueError("empty sample")
        return self.total / self.count

    def quantile(self, pct: float) -> float:
        """Value at percentile ``pct`` (0..100) over the retained sample.

        Linear interpolation, matching :meth:`repro.core.stats.Cdf.percentile`;
        exact while ``count <= k``, an unbiased subsample estimate beyond.
        """
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        values = self.values()
        if not values:
            raise ValueError("empty sample")
        if len(values) == 1:
            return values[0]
        position = (pct / 100.0) * (len(values) - 1)
        lower = int(position)
        upper = min(lower + 1, len(values) - 1)
        fraction = position - lower
        return values[lower] * (1.0 - fraction) + values[upper] * fraction


class FixedHistogram:
    """Exact integer counts over fixed half-open buckets ``[lo, hi)``.

    Out-of-range observations are tallied in ``below``/``above`` rather
    than dropped, so merged totals always reconcile with ``count``.
    """

    __slots__ = ("edges", "counts", "below", "above", "total")

    def __init__(self, edges: Sequence[float]) -> None:
        if len(edges) < 2:
            raise ValueError(f"histogram needs at least two edges, got {list(edges)}")
        ordered = [float(e) for e in edges]
        if any(a >= b for a, b in zip(ordered, ordered[1:])):
            raise ValueError(f"histogram edges must be strictly increasing: {ordered}")
        self.edges = tuple(ordered)
        self.counts = [0] * (len(ordered) - 1)
        self.below = 0
        self.above = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Fold one sample into its bucket."""
        value = float(value)
        self.total += value
        if value < self.edges[0]:
            self.below += 1
            return
        if value >= self.edges[-1]:
            self.above += 1
            return
        self.counts[bisect_right(self.edges, value) - 1] += 1

    @property
    def count(self) -> int:
        """Total number of observations, including out-of-range ones."""
        return sum(self.counts) + self.below + self.above


class P2Quantile:
    """The P² single-quantile estimator (Jain & Chlamtac, CACM 1985).

    Tracks one quantile of a stream in five markers and O(1) memory,
    without storing samples.  Exact for the first five observations, an
    estimate thereafter.  Not mergeable — use :class:`ReservoirQuantile`
    inside the registry; this class exists for streaming estimation and
    for cross-validating :class:`repro.core.stats.Cdf`.
    """

    __slots__ = ("q", "count", "_heights", "_positions", "_desired", "_increments")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def observe(self, value: float) -> None:
        """Fold one sample into the estimator."""
        value = float(value)
        self.count += 1
        if len(self._heights) < 5:
            self._heights.append(value)
            self._heights.sort()
            return
        heights = self._heights
        positions = self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                direction = 1.0 if delta > 0 else -1.0
                candidate = self._parabolic(i, direction)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, direction)
                positions[i] += direction

    def _parabolic(self, i: int, direction: float) -> float:
        h = self._heights
        n = self._positions
        return h[i] + direction / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + direction)
            * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - direction) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, direction: float) -> float:
        h = self._heights
        n = self._positions
        j = i + int(direction)
        return h[i] + direction * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """The current quantile estimate.

        Raises:
            ValueError: if no samples have been observed.
        """
        if self.count == 0:
            raise ValueError("empty sample")
        if len(self._heights) < 5:
            # Exact small-sample path: interpolate over the sorted buffer.
            values = sorted(self._heights)
            if len(values) == 1:
                return values[0]
            position = self.q * (len(values) - 1)
            lower = int(position)
            upper = min(lower + 1, len(values) - 1)
            fraction = position - lower
            return values[lower] * (1.0 - fraction) + values[upper] * fraction
        return self._heights[2]
