"""Metric snapshot serialisation: JSONL, Prometheus text format, diffing.

Two output formats:

* **JSONL** (``.jsonl``) — one sorted-key JSON object per line: a header,
  then one line per metric carrying both the mergeable state (per-origin
  parts, reservoir items) and the derived summary scalars.  Like trace
  JSONL it contains no wall-clock timestamps or PIDs, so a fixed
  experiment set + seed produces byte-identical files — the CI gate
  compares serial and parallel campaign exports with ``cmp``.
* **Prometheus text exposition** — counters/gauges map directly,
  welford means map to ``_mean``/``_stddev``/``_count`` gauges, quantile
  sketches to ``summary`` series and fixed histograms to cumulative
  ``histogram`` buckets.  Dots become underscores (Prometheus names
  cannot carry ``.``).

:func:`load_snapshot` reads the JSONL form back into a plain snapshot
dict, so ``repro metrics show|diff`` and :func:`diff_snapshots` work on
files exactly as on in-memory snapshots.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any

from repro.core.results import ResultTable
from repro.metrics.core import SNAPSHOT_SCHEMA_VERSION, merge_snapshots, summarize_entry

__all__ = [
    "JSONL_SCHEMA_VERSION",
    "MetricDelta",
    "diff_snapshots",
    "load_snapshot",
    "summary_table",
    "to_jsonl_lines",
    "to_prometheus_lines",
    "write_jsonl",
    "write_prometheus",
]

JSONL_SCHEMA_VERSION = 1


def to_jsonl_lines(snapshot: dict[str, Any], meta: dict[str, Any] | None = None) -> list[str]:
    """Serialise a snapshot as JSONL lines (header first, metrics sorted)."""
    metrics = snapshot.get("metrics", {})
    header: dict[str, Any] = {
        "kind": "header",
        "tool": "repro.metrics",
        "schema_version": JSONL_SCHEMA_VERSION,
        "snapshot_schema_version": snapshot.get("schema_version", SNAPSHOT_SCHEMA_VERSION),
        "metrics": len(metrics),
    }
    if meta:
        header["meta"] = meta
    lines = [json.dumps(header, sort_keys=True)]
    for name in sorted(metrics):
        entry = metrics[name]
        record = dict(entry)
        record["name"] = name
        record["summary"] = summarize_entry(entry)
        lines.append(json.dumps(record, sort_keys=True))
    return lines


def write_jsonl(
    snapshot: dict[str, Any], path: str, meta: dict[str, Any] | None = None
) -> int:
    """Write the JSONL form to ``path``; returns the number of metrics."""
    lines = to_jsonl_lines(snapshot, meta)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines))
        fh.write("\n")
    return len(lines) - 1


def load_snapshot(path: str) -> dict[str, Any]:
    """Load a metrics JSONL file back into a snapshot dict.

    Raises:
        ValueError: on empty, truncated or non-metrics input.
    """
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty metrics file")
    try:
        records = [json.loads(line) for line in lines]
    except json.JSONDecodeError as exc:
        raise ValueError(f"truncated or malformed metrics JSONL: {exc}") from exc
    header = records[0]
    if header.get("kind") != "header" or header.get("tool") != "repro.metrics":
        raise ValueError("not a repro.metrics JSONL file (missing header line)")
    metrics: dict[str, Any] = {}
    for record in records[1:]:
        if not isinstance(record, dict) or not {"name", "kind", "parts"} <= set(record):
            raise ValueError(f"truncated or malformed metrics record: {record!r}")
        name = record["name"]
        metrics[name] = {
            key: value for key, value in record.items() if key not in ("name", "summary")
        }
    snapshot = {
        "schema_version": header.get("snapshot_schema_version", SNAPSHOT_SCHEMA_VERSION),
        "metrics": metrics,
    }
    # Normalise through a self-merge so list/tuple shapes are canonical.
    return merge_snapshots([snapshot])


def _prom_name(name: str) -> str:
    return name.replace(".", "_")


def _prom_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def to_prometheus_lines(snapshot: dict[str, Any]) -> list[str]:
    """Serialise a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    metrics = snapshot.get("metrics", {})
    for name in sorted(metrics):
        entry = metrics[name]
        kind = entry["kind"]
        prom = _prom_name(name)
        summary = summarize_entry(entry)
        if kind == "counter":
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_prom_value(summary['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_prom_value(summary['value'])}")
        elif kind == "welford":
            lines.append(f"# TYPE {prom}_mean gauge")
            lines.append(f"{prom}_mean {_prom_value(summary['mean'])}")
            lines.append(f"# TYPE {prom}_stddev gauge")
            lines.append(f"{prom}_stddev {_prom_value(summary['std'])}")
            lines.append(f"# TYPE {prom}_count counter")
            lines.append(f"{prom}_count {_prom_value(summary['count'])}")
        elif kind == "quantile":
            lines.append(f"# TYPE {prom} summary")
            for pct, key in ((0.5, "p50"), (0.9, "p90"), (0.99, "p99")):
                lines.append(f'{prom}{{quantile="{pct}"}} {_prom_value(summary[key])}')
            total = summary["mean"] * summary["count"]
            lines.append(f"{prom}_sum {_prom_value(total)}")
            lines.append(f"{prom}_count {_prom_value(summary['count'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {prom} histogram")
            parts = [entry["parts"][origin] for origin in sorted(entry["parts"])]
            edges = entry["edges"]
            counts = [sum(p["counts"][i] for p in parts) for i in range(len(edges) - 1)]
            below = sum(p["below"] for p in parts)
            above = sum(p["above"] for p in parts)
            cumulative = below
            for edge, count in zip(edges[1:], counts):
                cumulative += count
                lines.append(f'{prom}_bucket{{le="{edge:g}"}} {cumulative}')
            lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative + above}')
            lines.append(f"{prom}_sum {_prom_value(sum(p['total'] for p in parts))}")
            lines.append(f"{prom}_count {cumulative + above}")
    return lines


def write_prometheus(snapshot: dict[str, Any], path: str) -> int:
    """Write the Prometheus text form to ``path``; returns the line count."""
    lines = to_prometheus_lines(snapshot)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines))
        fh.write("\n")
    return len(lines)


def summary_table(snapshot: dict[str, Any], title: str = "Metrics") -> ResultTable:
    """Human-readable rendering of a snapshot (one row per metric)."""
    table = ResultTable(title, ["metric", "kind", "count", "value", "detail"])
    metrics = snapshot.get("metrics", {})
    for name in sorted(metrics):
        entry = metrics[name]
        summary = summarize_entry(entry)
        kind = entry["kind"]
        if kind in ("counter", "gauge"):
            table.add_row([name, kind, "", f"{summary['value']:g}", ""])
        elif kind == "welford":
            table.add_row(
                [
                    name,
                    kind,
                    f"{summary['count']:g}",
                    f"{summary['mean']:g}",
                    f"std {summary['std']:g} range [{summary['min']:g}, {summary['max']:g}]",
                ]
            )
        elif kind == "quantile":
            table.add_row(
                [
                    name,
                    kind,
                    f"{summary['count']:g}",
                    f"{summary['p50']:g}",
                    f"p90 {summary['p90']:g} mean {summary['mean']:g}",
                ]
            )
        elif kind == "histogram":
            table.add_row(
                [name, kind, f"{summary['count']:g}", f"{summary['mean']:g}", "mean of samples"]
            )
    return table


@dataclass(frozen=True)
class MetricDelta:
    """One differing summary field between two snapshots."""

    name: str
    field: str
    value_a: float | None
    value_b: float | None
    relative: float

    @property
    def missing(self) -> bool:
        return self.value_a is None or self.value_b is None


def _relative(a: float, b: float) -> float:
    scale = max(abs(a), abs(b))
    if scale == 0.0:
        return 0.0
    return abs(a - b) / scale


def diff_snapshots(
    a: dict[str, Any], b: dict[str, Any], tolerance: float = 0.0
) -> list[MetricDelta]:
    """Summary-level differences between two snapshots.

    Returns one :class:`MetricDelta` per (metric, field) whose relative
    difference exceeds ``tolerance``; metrics present on one side only
    are reported with the absent side as ``None``.
    """
    metrics_a = a.get("metrics", {})
    metrics_b = b.get("metrics", {})
    deltas: list[MetricDelta] = []
    for name in sorted(set(metrics_a) | set(metrics_b)):
        entry_a = metrics_a.get(name)
        entry_b = metrics_b.get(name)
        if entry_a is None or entry_b is None:
            present = summarize_entry(entry_a or entry_b)
            field = next(iter(sorted(present)))
            value = present[field]
            deltas.append(
                MetricDelta(
                    name=name,
                    field=field,
                    value_a=value if entry_a is not None else None,
                    value_b=value if entry_b is not None else None,
                    relative=float("inf"),
                )
            )
            continue
        summary_a = summarize_entry(entry_a)
        summary_b = summarize_entry(entry_b)
        for field in sorted(set(summary_a) | set(summary_b)):
            va = summary_a.get(field)
            vb = summary_b.get(field)
            if va is None or vb is None:
                deltas.append(MetricDelta(name, field, va, vb, float("inf")))
                continue
            relative = _relative(va, vb)
            if relative > tolerance:
                deltas.append(MetricDelta(name, field, va, vb, relative))
    return deltas
