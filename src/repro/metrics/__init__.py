"""Mergeable KPI registry, streaming sketches and exporters.

The paper reports statistical aggregates — RSRP distributions, hand-off
latency CDFs, energy-per-bit curves — and this package is where the
reproduction records its own: experiments register headline KPIs under
stable dotted names, the campaign runner snapshots one registry per run,
and per-worker snapshots merge deterministically into a campaign-level
view (byte-identical serial vs parallel).  See :mod:`repro.metrics.core`
for the merge model, :mod:`repro.metrics.sketches` for the sketch
algebra, and :mod:`repro.metrics.export` for JSONL/Prometheus output.
"""

from repro.metrics.core import (
    MetricRegistry,
    NULL_REGISTRY,
    NullRegistry,
    collecting,
    current,
    fold_metric_name,
    install,
    merge_snapshots,
    summarize_entry,
    uninstall,
)
from repro.metrics.export import (
    diff_snapshots,
    load_snapshot,
    to_jsonl_lines,
    to_prometheus_lines,
    write_jsonl,
    write_prometheus,
)
from repro.metrics.sketches import (
    FixedHistogram,
    P2Quantile,
    ReservoirQuantile,
    Welford,
)

__all__ = [
    "FixedHistogram",
    "MetricRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "P2Quantile",
    "ReservoirQuantile",
    "Welford",
    "collecting",
    "current",
    "diff_snapshots",
    "fold_metric_name",
    "install",
    "load_snapshot",
    "merge_snapshots",
    "summarize_entry",
    "to_jsonl_lines",
    "to_prometheus_lines",
    "uninstall",
    "write_jsonl",
    "write_prometheus",
]
