"""The metric registry: named KPIs with deterministic merge semantics.

A :class:`MetricRegistry` collects five metric kinds under stable dotted
names (``fig6.ho_latency.5g_5g.mean_ms``):

* **counter** — monotone accumulator (``inc``);
* **gauge** — last-set scalar, the natural shape for headline KPIs;
* **welford** — streaming mean/variance (:class:`~repro.metrics.sketches.Welford`);
* **quantile** — mergeable bottom-k reservoir
  (:class:`~repro.metrics.sketches.ReservoirQuantile`);
* **histogram** — exact counts over fixed bucket edges.

Every registry carries an ``origin`` tag (the campaign runner uses
``"<experiment>:<seed>"``) and its :meth:`~MetricRegistry.snapshot` keeps
per-origin *parts* rather than pre-folded values.  That is what makes
:func:`merge_snapshots` order-independent down to the byte: a merge is a
set union of parts keyed by origin, and every query folds parts in sorted
origin order — so N per-worker registries from a parallel campaign merge
into exactly the snapshot a serial campaign produces, regardless of
completion order.  Duplicate origins must carry identical parts (the same
run observed twice); conflicting duplicates raise.

Experiments record through the module-level stack (mirroring
``repro.trace``): :func:`install` / :func:`uninstall` / :func:`current` /
:func:`collecting`.  When nothing is installed, :data:`NULL_REGISTRY`
absorbs all recording at the cost of one no-op call.

Metric names must match ``[a-z0-9_.]+`` — the REP006 lint rule further
requires a unit suffix from ``repro.core.units.UNIT_DIMENSIONS`` (or
``_count``/``_ratio``) on names registered from source code.
"""

from __future__ import annotations

import re
from typing import Any

from repro.metrics.sketches import (
    DEFAULT_RESERVOIR_K,
    FixedHistogram,
    ReservoirQuantile,
    Welford,
    combine_moments,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "SNAPSHOT_SCHEMA_VERSION",
    "collecting",
    "current",
    "fold_metric_name",
    "install",
    "merge_snapshots",
    "summarize_entry",
    "uninstall",
]

SNAPSHOT_SCHEMA_VERSION = 1

_NAME_RE = re.compile(r"^[a-z0-9_.]+$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r}: must match [a-z0-9_.]+ "
            "(lowercase dotted, unit-suffixed — see REP006)"
        )
    return name


def fold_metric_name(name: str, prefix: str = "") -> str:
    """Map an arbitrary label to a valid metric name.

    Characters outside ``[a-z0-9_.]`` fold to ``_`` after lowercasing, so
    user-facing labels ("wired-bottleneck", span names) become stable
    registry keys.  ``prefix`` is joined with a dot when given.
    """
    folded = "".join(
        ch if (ch.isascii() and (ch.islower() or ch.isdigit() or ch in "._")) else "_"
        for ch in name.lower()
    )
    return f"{prefix}.{folded}" if prefix else folded


class Counter:
    """A monotone accumulator."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, delta: float = 1.0) -> None:
        """Add ``delta`` (must be non-negative — counters only go up)."""
        if delta < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (delta={delta})")
        self.value += float(delta)


class Gauge:
    """A last-set scalar; ``seq`` counts sets so merges pick the last write."""

    __slots__ = ("name", "value", "seq")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.seq = 0

    def set(self, value: float) -> None:
        """Record the current value of the KPI."""
        self.value = float(value)
        self.seq += 1


class MetricRegistry:
    """One origin's worth of metrics; see the module docstring."""

    def __init__(self, origin: str = "") -> None:
        self.origin = origin
        self._metrics: dict[str, Any] = {}
        self._kinds: dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        """Sorted names of all registered metrics."""
        return sorted(self._metrics)

    def get(self, name: str) -> Any:
        """The live metric object registered under ``name`` (KeyError if absent)."""
        return self._metrics[name]

    def _register(self, name: str, kind: str, factory) -> Any:
        existing = self._kinds.get(name)
        if existing is not None:
            if existing != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {existing}, not {kind}"
                )
            return self._metrics[name]
        _check_name(name)
        metric = factory()
        self._metrics[name] = metric
        self._kinds[name] = kind
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._register(name, "counter", lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._register(name, "gauge", lambda: Gauge(name))

    def welford(self, name: str) -> Welford:
        """Get or create the mean/variance accumulator ``name``."""
        return self._register(name, "welford", Welford)

    def quantile(self, name: str, k: int = DEFAULT_RESERVOIR_K) -> ReservoirQuantile:
        """Get or create the reservoir quantile sketch ``name``.

        The sketch's priority tag is ``"<origin>|<name>"`` so each series
        draws an independent, reproducible retention pattern.
        """
        return self._register(
            name, "quantile", lambda: ReservoirQuantile(k=k, tag=f"{self.origin}|{name}")
        )

    def histogram(self, name: str, edges) -> FixedHistogram:
        """Get or create the fixed-bucket histogram ``name``."""
        metric = self._register(name, "histogram", lambda: FixedHistogram(edges))
        if tuple(float(e) for e in edges) != metric.edges:
            raise ValueError(
                f"histogram {name!r} already registered with edges {list(metric.edges)}"
            )
        return metric

    # ------------------------------------------------------------- snapshot
    def snapshot(self) -> dict[str, Any]:
        """JSON-able, mergeable state of every metric (sorted by name).

        Metrics that were registered but never observed are omitted: an
        empty sketch carries no information and would drag non-finite
        min/max sentinels into the export.
        """
        metrics: dict[str, Any] = {}
        for name in self.names():
            entry = self._entry(name)
            if entry is not None:
                metrics[name] = entry
        return {"schema_version": SNAPSHOT_SCHEMA_VERSION, "metrics": metrics}

    def _entry(self, name: str) -> dict[str, Any] | None:
        metric = self._metrics[name]
        kind = self._kinds[name]
        origin = self.origin
        if kind == "counter":
            return {"kind": kind, "parts": {origin: metric.value}}
        if kind == "gauge":
            if metric.seq == 0:
                return None
            return {"kind": kind, "parts": {origin: [metric.seq, metric.value]}}
        if kind == "welford":
            if metric.count == 0:
                return None
            return {"kind": kind, "parts": {origin: metric.state()}}
        if kind == "quantile":
            if metric.count == 0:
                return None
            return {
                "kind": kind,
                "k": metric.k,
                "parts": {
                    origin: [metric.count, metric.total, metric.minimum, metric.maximum]
                },
                "items": metric.items(),
            }
        if kind == "histogram":
            return {
                "kind": kind,
                "edges": list(metric.edges),
                "parts": {
                    origin: {
                        "counts": list(metric.counts),
                        "below": metric.below,
                        "above": metric.above,
                        "total": metric.total,
                    }
                },
            }
        raise AssertionError(f"unknown metric kind {kind!r}")


def merge_snapshots(snapshots) -> dict[str, Any]:
    """Merge registry snapshots into one campaign-level snapshot.

    Order-independent and associative: parts are unioned by origin,
    reservoir items are unioned then truncated to the k smallest
    priorities, and all output collections are sorted.  Merging the same
    origin twice is a no-op when the parts agree and an error when they
    conflict (two different runs claiming one origin).

    Raises:
        ValueError: on kind/shape mismatches or conflicting duplicate
            origins.
    """
    merged: dict[str, dict[str, Any]] = {}
    for snapshot in snapshots:
        if snapshot is None:
            continue
        for name, entry in snapshot.get("metrics", {}).items():
            target = merged.get(name)
            if target is None:
                merged[name] = _copy_entry(entry)
                continue
            _merge_entry(name, target, entry)
    for name, entry in merged.items():
        entry["parts"] = {origin: entry["parts"][origin] for origin in sorted(entry["parts"])}
        if entry["kind"] == "quantile":
            entry["items"] = sorted(
                (list(item) for item in {(k, v) for k, v in entry["items"]}),
            )[: entry["k"]]
    return {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "metrics": {name: merged[name] for name in sorted(merged)},
    }


def _copy_entry(entry: dict[str, Any]) -> dict[str, Any]:
    copy = {key: value for key, value in entry.items() if key not in ("parts", "items")}
    copy["parts"] = dict(entry["parts"])
    if entry["kind"] == "quantile":
        copy["items"] = [tuple(item) for item in entry["items"]]
    return copy


def _merge_entry(name: str, target: dict[str, Any], entry: dict[str, Any]) -> None:
    if target["kind"] != entry["kind"]:
        raise ValueError(
            f"metric {name!r}: cannot merge kind {entry['kind']} into {target['kind']}"
        )
    kind = entry["kind"]
    if kind == "quantile" and target["k"] != entry["k"]:
        raise ValueError(f"metric {name!r}: reservoir sizes differ ({target['k']} vs {entry['k']})")
    if kind == "histogram" and target["edges"] != entry["edges"]:
        raise ValueError(f"metric {name!r}: histogram edges differ")
    for origin, part in entry["parts"].items():
        existing = target["parts"].get(origin)
        if existing is None:
            target["parts"][origin] = part
        elif existing != part:
            raise ValueError(
                f"metric {name!r}: conflicting parts for origin {origin!r}"
            )
    if kind == "quantile":
        target["items"].extend(tuple(item) for item in entry["items"])


def summarize_entry(entry: dict[str, Any]) -> dict[str, float]:
    """Representative scalars of one snapshot entry.

    Parts fold in sorted-origin order, so the same snapshot always
    summarizes to the same floats.  Gauges resolve to the part with the
    lexicographically greatest origin (KPI gauges are namespaced per
    experiment, so cross-origin conflicts indicate a naming bug rather
    than a meaningful "last write").
    """
    kind = entry["kind"]
    parts = [entry["parts"][origin] for origin in sorted(entry["parts"])]
    if kind == "counter":
        return {"value": float(sum(parts))}
    if kind == "gauge":
        return {"value": float(parts[-1][1])}
    if kind == "welford":
        count, mean, m2, minimum, maximum = combine_moments(parts)
        variance = m2 / count if count >= 2 else 0.0
        return {
            "count": count,
            "mean": mean,
            "std": variance**0.5,
            "min": minimum,
            "max": maximum,
        }
    if kind == "quantile":
        count = sum(int(part[0]) for part in parts)
        total = sum(part[1] for part in parts)
        minimum = min(part[2] for part in parts)
        maximum = max(part[3] for part in parts)
        values = sorted(value for _, value in entry["items"])
        return {
            "count": float(count),
            "mean": total / count,
            "p50": _interpolate(values, 50.0),
            "p90": _interpolate(values, 90.0),
            "p99": _interpolate(values, 99.0),
            "min": minimum,
            "max": maximum,
        }
    if kind == "histogram":
        count = sum(sum(p["counts"]) + p["below"] + p["above"] for p in parts)
        total = sum(p["total"] for p in parts)
        return {"count": float(count), "mean": total / count if count else 0.0}
    raise ValueError(f"unknown metric kind {kind!r}")


def _interpolate(values: list[float], pct: float) -> float:
    if not values:
        raise ValueError("empty sample")
    if len(values) == 1:
        return values[0]
    position = (pct / 100.0) * (len(values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(values) - 1)
    fraction = position - lower
    return values[lower] * (1.0 - fraction) + values[upper] * fraction


class _NullMetric:
    """Absorbs recording when no registry is installed."""

    __slots__ = ()

    def inc(self, delta: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """The disabled registry: every accessor returns a no-op metric."""

    origin = ""

    __slots__ = ()

    def __len__(self) -> int:
        return 0

    def names(self) -> list[str]:
        return []

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def welford(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def quantile(self, name: str, k: int = DEFAULT_RESERVOIR_K) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, edges) -> _NullMetric:
        return _NULL_METRIC

    def snapshot(self) -> dict[str, Any]:
        return {"schema_version": SNAPSHOT_SCHEMA_VERSION, "metrics": {}}


NULL_REGISTRY = NullRegistry()

# Stack of installed registries; the top is what `current()` returns.
_installed: list[Any] = [NULL_REGISTRY]


def current() -> MetricRegistry | NullRegistry:
    """The active registry (:data:`NULL_REGISTRY` when none is installed)."""
    return _installed[-1]


def install(registry: MetricRegistry) -> MetricRegistry:
    """Make ``registry`` the active recording target until :func:`uninstall`."""
    _installed.append(registry)
    return registry


def uninstall(registry: MetricRegistry | None = None) -> None:
    """Pop the active registry (validating it is ``registry`` when given)."""
    if len(_installed) == 1:
        raise RuntimeError("no metric registry installed")
    if registry is not None and _installed[-1] is not registry:
        raise RuntimeError("uninstall out of order: a different registry is active")
    _installed.pop()


class collecting:
    """Context manager installing a registry for the duration of a block.

    Example:
        >>> with collecting(origin="test") as registry:
        ...     current() is registry
        True
    """

    def __init__(self, registry: MetricRegistry | None = None, origin: str = "") -> None:
        self._registry = registry if registry is not None else MetricRegistry(origin=origin)

    def __enter__(self) -> MetricRegistry:
        return install(self._registry)

    def __exit__(self, *exc: Any) -> None:
        uninstall(self._registry)
