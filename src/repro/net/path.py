"""End-to-end path construction: UE - RAN - core - wireline - server.

The path model encodes the paper's delay breakdown (Sec. 4.4):

* the radio hop contributes ~1.1 ms each way on 5G vs ~1.3 ms on 4G —
  a negligible difference (Fig. 14, hop 1);
* the gNB-to-core segment is where 5G wins: the flattened core and
  dedicated 25 Gbps fronthaul/backhaul cut ~10 ms each way vs the 4G EPC
  path (Fig. 14, hop 2);
* the wireline Internet dominates: per-hop router latency plus fiber
  propagation grows with geographical distance and swamps 5G's edge
  advantage at long range (Fig. 15);
* router buffers in the wireline segment are the loss bottleneck
  (Tab. 3): the 5G-era paths have only ~2.5x the buffer of 4G paths
  against a 5x capacity jump.

Rates can be scaled down uniformly (``scale``) to keep packet-level
simulation tractable; buffers scale along so queueing dynamics
(buffer/BDP ratios, loss patterns, utilization) are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import RadioProfile
from repro.core.rng import derive
from repro.net.link import CrossTraffic, DelayProcess, Link
from repro.net.packet import Packet
from repro.net.sim import Simulator
from repro.qdisc import AutorateController, CakeQueue, RemedySection, make_qdisc
from repro.radio.phy import TRANSPORT_EFFICIENCY, max_phy_bit_rate

__all__ = [
    "PathConfig",
    "NetworkPath",
    "build_cellular_path",
    "build_split_paths",
    "segment_delays_s",
]

#: One-way radio-access latency (Sec. 4.4: RTT 2.19 ms on 5G, 2.6 ms on 4G).
_RAN_DELAY_S = {5: 0.0011, 4: 0.0013}

#: One-way RAN-to-core latency: 5G's flat architecture + 25 Gbps fiber
#: vs the legacy 4G EPC detour (Fig. 14 hop-2 reduction of ~20 ms RTT).
_CORE_DELAY_S = {5: 0.0010, 4: 0.0110}

#: Wireline router hop latency (processing + queueing headroom), one way.
_WIRED_HOP_DELAY_S = 0.0015

#: Effective fiber propagation including route stretch, s/km one way.
_FIBER_S_PER_KM = 8.0e-6

#: Wireline bottleneck capacity of the provisioned core path.
_WIRED_RATE_BPS = 1.1e9

#: Router buffers along the path, in 1500 B packets at scale 1.0 (Tab. 3:
#: the 5G path holds ~2.5x the 4G path's buffer while carrying 5x the
#: capacity — the structural mismatch behind the TCP anomaly).
_WIRED_BUFFER_PKTS = {5: 500, 4: 200}
_RAN_BUFFER_PKTS = {5: 2000, 4: 1200}

#: Radio scheduling stalls: the TDD frame structure, HARQ round trips and
#: scheduler queueing delay the access link in bursts of a few
#: milliseconds, inflating RTT samples independent of congestion — the
#: cellular property that defeats delay-based congestion control.
_STALL_MEAN_INTERVAL_S = 0.050
_STALL_MIN_S = 0.002
_STALL_MAX_S = 0.010

#: Background load on the shared wireline segment.  The measured paths
#: cross the public Internet, so the bottleneck router sees heavy bursty
#: aggregates unrelated to the probe flow.
_CROSS_BURST_FRACTION = 0.98
_CROSS_MEAN_ON_S = 0.012
_CROSS_MEAN_OFF_S = 0.108


@dataclass(frozen=True)
class PathConfig:
    """Parameters of one end-to-end measurement path."""

    profile: RadioProfile
    direction: str = "dl"
    time_of_day: str = "day"
    server_distance_km: float = 30.0
    wired_hops: int = 4
    scale: float = 1.0
    with_cross_traffic: bool = True
    with_scheduling_stalls: bool = True
    rwnd_bytes: int = 25 * 1024 * 1024  # paper sets a 25 MB receive buffer
    mss_bytes: int = 1448
    remedy: RemedySection = RemedySection()

    def __post_init__(self) -> None:
        if self.direction not in ("dl", "ul"):
            raise ValueError(f"direction must be 'dl' or 'ul', got {self.direction!r}")
        if self.time_of_day not in ("day", "night"):
            raise ValueError(f"time_of_day must be 'day'/'night', got {self.time_of_day!r}")
        if not 0.0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        if self.wired_hops < 1:
            raise ValueError(f"need at least one wired hop, got {self.wired_hops}")

    def access_rate_bps(self) -> float:
        """UDP-visible radio capacity for this direction and time of day.

        When scheduling stalls are enabled the serializer rate is raised to
        compensate for the stalled airtime, so the *delivered* capacity
        stays at the calibrated UDP baseline.
        """
        phy = max_phy_bit_rate(self.profile, self.direction)
        rate = phy * TRANSPORT_EFFICIENCY * self._mean_prb_fraction()
        if self.with_scheduling_stalls:
            stall_mean = (_STALL_MIN_S + _STALL_MAX_S) / 2.0
            duty = stall_mean / (_STALL_MEAN_INTERVAL_S + stall_mean)
            rate /= 1.0 - duty
        return rate

    def _mean_prb_fraction(self) -> float:
        from repro.radio.phy import PrbAllocator

        # The mean PRB share is deterministic: no generator needed (the
        # old seed-0 generator here silently froze nothing — but it read
        # as a randomness source and masked real seeding bugs).
        allocator = PrbAllocator(self.profile)
        return allocator.mean_fraction(self.time_of_day)


class NetworkPath:
    """A built path: data links one way, ACK links the other.

    ``forward`` carries the measured flow (direction per config);
    ``reverse`` carries acknowledgements.
    """

    def __init__(
        self,
        sim: Simulator,
        config: PathConfig,
        forward: list[Link],
        reverse: list[Link],
        access_link: Link,
        wired_link: Link,
    ) -> None:
        self.sim = sim
        self.config = config
        self.forward = forward
        self.reverse = reverse
        self.access_link = access_link
        self.wired_link = wired_link
        #: Closed-loop shaper controller, when the remedy arms one.
        self.autorate: AutorateController | None = None
        self._forward_sink = None
        self._reverse_sink = None
        # Chain the links; the last link of each direction feeds the sink.
        for upstream, downstream in zip(forward, forward[1:]):
            upstream.connect(downstream.send)
        for upstream, downstream in zip(reverse, reverse[1:]):
            upstream.connect(downstream.send)
        forward[-1].connect(self._deliver_forward)
        reverse[-1].connect(self._deliver_reverse)

    def on_forward_delivery(self, sink) -> None:
        """Register the receiver-side packet handler."""
        self._forward_sink = sink

    def on_reverse_delivery(self, sink) -> None:
        """Register the sender-side (ACK) packet handler."""
        self._reverse_sink = sink

    def send_forward(self, packet: Packet) -> None:
        """Inject a packet at the data-direction head."""
        self.forward[0].send(packet)

    def send_reverse(self, packet: Packet) -> None:
        """Inject a packet at the ACK-direction head."""
        self.reverse[0].send(packet)

    def _deliver_forward(self, packet: Packet) -> None:
        if self._forward_sink is not None:
            self._forward_sink(packet)

    def _deliver_reverse(self, packet: Packet) -> None:
        if self._reverse_sink is not None:
            self._reverse_sink(packet)

    @property
    def bottleneck_rate_bps(self) -> float:
        """Nominal (cross-traffic-free) bottleneck of the data direction."""
        return min(link.rate_bps for link in self.forward)

    @property
    def base_rtt_s(self) -> float:
        """Propagation + per-hop RTT with empty queues."""
        return sum(l.delay_s for l in self.forward) + sum(l.delay_s for l in self.reverse)

    def total_forward_drops(self) -> int:
        """Drops accumulated across the data-direction queues."""
        return sum(link.queue.drops for link in self.forward)

    def schedule_access_outage(self, start_s: float, duration_s: float) -> None:
        """Pause the radio link for a hand-off gap (Sec. 4.3)."""
        if duration_s < 0:
            raise ValueError(f"outage duration must be >= 0, got {duration_s}")
        self.sim.schedule_at(start_s, self.access_link.pause)
        self.sim.schedule_at(start_s + duration_s, self.access_link.resume)

    def hop_rtts_s(self, rng: np.random.Generator, jitter_s: float = 0.0003) -> list[float]:
        """Per-hop probe RTTs as traceroute would report them (Fig. 14).

        Hop ``i``'s RTT is twice the cumulative one-way delay through the
        first ``i`` forward links, plus per-probe jitter.
        """
        rtts = []
        cumulative = 0.0
        for link in self.forward:
            cumulative += link.delay_s + 60 * 8 / link.rate_bps
            rtts.append(2.0 * cumulative + abs(float(rng.normal(0.0, jitter_s))))
        return rtts


def segment_delays_s(
    generation: int, server_distance_km: float, wired_hops: int = 6
) -> list[float]:
    """One-way delay of each hop along the path, RAN first (Fig. 14 model).

    The RAN and core hops use the per-generation constants; the fiber
    propagation to the server is spread across the wired hops, each of
    which also adds its router latency.
    """
    if wired_hops < 1:
        raise ValueError(f"need at least one wired hop, got {wired_hops}")
    if server_distance_km < 0:
        raise ValueError(f"distance must be >= 0, got {server_distance_km}")
    fiber_per_hop = _FIBER_S_PER_KM * server_distance_km / wired_hops
    delays = [_RAN_DELAY_S[generation], _CORE_DELAY_S[generation]]
    delays.extend(_WIRED_HOP_DELAY_S + fiber_per_hop for _ in range(wired_hops))
    return delays


class _StallProcess:
    """Periodically pauses a link to emulate radio scheduling stalls.

    Self-terminates after ``horizon_s`` so that ``Simulator.run()`` without
    an explicit end time still drains (no experiment runs that long).
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        rng: np.random.Generator,
        horizon_s: float = 3600.0,
    ) -> None:
        self._sim = sim
        self._link = link
        self._rng = rng
        self._horizon_s = horizon_s
        self._schedule_next()

    def _schedule_next(self) -> None:
        if self._sim.now >= self._horizon_s:
            return
        gap = float(self._rng.exponential(_STALL_MEAN_INTERVAL_S))
        self._sim.schedule(gap, self._stall)

    def _stall(self) -> None:
        duration = float(self._rng.uniform(_STALL_MIN_S, _STALL_MAX_S))
        self._link.pause()
        self._sim.schedule(duration, self._unstall)

    def _unstall(self) -> None:
        self._link.resume()
        self._schedule_next()


def build_cellular_path(
    sim: Simulator,
    config: PathConfig,
    rng: np.random.Generator,
) -> NetworkPath:
    """Construct the full UE-to-server path for one measurement flow.

    The data direction runs: wired hops (server side) -> core segment ->
    radio access -> UE for downlink, and the mirror image for uplink.
    Acknowledgements flow the other way over lightly-loaded links.

    ``rng`` drives cross-traffic bursts and radio scheduling stalls; it
    is required (no hidden seed-0 fallback) so every path built in a
    campaign inherits the campaign seed — thread one in from
    :func:`repro.core.rng.default_rng` or an ``RngFactory`` stream.
    """
    generation = config.profile.generation
    scale = config.scale

    access_rate = config.access_rate_bps() * scale
    wired_rate = _WIRED_RATE_BPS * scale
    ack_rate = max(access_rate, wired_rate)

    wired_delay = (
        _WIRED_HOP_DELAY_S * config.wired_hops
        + _FIBER_S_PER_KM * config.server_distance_km
    )
    cross = (
        CrossTraffic(
            rng,
            burst_fraction=_CROSS_BURST_FRACTION,
            mean_on_s=_CROSS_MEAN_ON_S,
            mean_off_s=_CROSS_MEAN_OFF_S,
        )
        if config.with_cross_traffic
        else None
    )

    remedy = config.remedy
    wired_buffer = max(8, int(_WIRED_BUFFER_PKTS[generation] * scale))
    ran_buffer = max(8, int(_RAN_BUFFER_PKTS[generation] * scale))
    if remedy.wired_buffer_ratio != 1.0:
        # Same arithmetic as the historical ablation hack (cap += extra)
        # so the drop-tail buffer-sizing golden KPIs carry over exactly.
        wired_buffer += int(wired_buffer * (remedy.wired_buffer_ratio - 1.0))

    wired_qdisc = (
        make_qdisc(remedy, wired_buffer, wired_rate)
        if remedy.apply_to in ("wired", "both")
        else None
    )
    access_qdisc = (
        make_qdisc(remedy, ran_buffer, access_rate)
        if remedy.apply_to in ("access", "both")
        else None
    )

    wired = Link(
        sim,
        wired_rate,
        wired_delay,
        queue_capacity_packets=wired_buffer,
        name="wired-bottleneck",
        cross_traffic=cross,
        qdisc=wired_qdisc,
    )
    core = Link(
        sim,
        wired_rate * 4,
        _CORE_DELAY_S[generation],
        queue_capacity_packets=wired_buffer * 4,
        name="core",
    )
    access = Link(
        sim,
        access_rate,
        _RAN_DELAY_S[generation],
        queue_capacity_packets=ran_buffer,
        name="radio-access",
        delay_process=DelayProcess(derive(rng))
        if config.with_scheduling_stalls
        else None,
        qdisc=access_qdisc,
    )

    if config.with_scheduling_stalls:
        _StallProcess(sim, access, derive(rng))

    if config.direction == "dl":
        forward = [wired, core, access]
    else:
        forward = [access, core, wired]

    reverse = [
        Link(sim, ack_rate, link.delay_s, queue_capacity_packets=100_000, name=f"ack-{link.name}")
        for link in reversed(forward)
    ]
    path = NetworkPath(sim, config, forward, reverse, access_link=access, wired_link=wired)
    path.autorate = _arm_autorate(sim, remedy, wired, access)
    return path


def _arm_autorate(
    sim: Simulator, remedy: RemedySection, wired: Link, access: Link
) -> AutorateController | None:
    """Attach the closed-loop controller to the shaped bottleneck, if any."""
    if not remedy.autorate:
        return None
    for link in (wired, access):
        if isinstance(link.qdisc, CakeQueue):
            return AutorateController(
                sim,
                link,
                link.qdisc,
                target_s=remedy.target_ms / 1e3,
                interval_s=remedy.autorate_interval_ms / 1e3,
                floor_ratio=remedy.autorate_floor_ratio,
            )
    return None


def build_split_paths(
    sim: Simulator,
    config: PathConfig,
    rng: np.random.Generator,
) -> tuple[NetworkPath, NetworkPath]:
    """The two halves of a split-connection path: (WAN side, RAN side).

    A performance-enhancing proxy at the RAN edge terminates the UE's
    TCP connection and runs its own on the wireline segment, so the
    anomaly-prone wired bottleneck and the stall-prone radio link are
    congestion-controlled independently.  Both halves reuse the exact
    link parameters of :func:`build_cellular_path` and draw RNG streams
    in the same order, and each half is oriented in the data direction
    (``dl``: WAN carries server->proxy, RAN carries proxy->UE).

    The remedy's qdisc settings still apply to the WAN bottleneck, so a
    PEP can be combined with AQM.
    """
    generation = config.profile.generation
    scale = config.scale

    access_rate = config.access_rate_bps() * scale
    wired_rate = _WIRED_RATE_BPS * scale
    ack_rate = max(access_rate, wired_rate)

    wired_delay = (
        _WIRED_HOP_DELAY_S * config.wired_hops
        + _FIBER_S_PER_KM * config.server_distance_km
    )
    cross = (
        CrossTraffic(
            rng,
            burst_fraction=_CROSS_BURST_FRACTION,
            mean_on_s=_CROSS_MEAN_ON_S,
            mean_off_s=_CROSS_MEAN_OFF_S,
        )
        if config.with_cross_traffic
        else None
    )

    remedy = config.remedy
    wired_buffer = max(8, int(_WIRED_BUFFER_PKTS[generation] * scale))
    ran_buffer = max(8, int(_RAN_BUFFER_PKTS[generation] * scale))
    if remedy.wired_buffer_ratio != 1.0:
        wired_buffer += int(wired_buffer * (remedy.wired_buffer_ratio - 1.0))

    wired_qdisc = (
        make_qdisc(remedy, wired_buffer, wired_rate)
        if remedy.apply_to in ("wired", "both")
        else None
    )
    access_qdisc = (
        make_qdisc(remedy, ran_buffer, access_rate)
        if remedy.apply_to in ("access", "both")
        else None
    )

    wired = Link(
        sim,
        wired_rate,
        wired_delay,
        queue_capacity_packets=wired_buffer,
        name="wired-bottleneck",
        cross_traffic=cross,
        qdisc=wired_qdisc,
    )
    core = Link(
        sim,
        wired_rate * 4,
        _CORE_DELAY_S[generation],
        queue_capacity_packets=wired_buffer * 4,
        name="core",
    )
    access = Link(
        sim,
        access_rate,
        _RAN_DELAY_S[generation],
        queue_capacity_packets=ran_buffer,
        name="radio-access",
        delay_process=DelayProcess(derive(rng))
        if config.with_scheduling_stalls
        else None,
        qdisc=access_qdisc,
    )

    if config.with_scheduling_stalls:
        _StallProcess(sim, access, derive(rng))

    if config.direction == "dl":
        wan_forward = [wired, core]
    else:
        wan_forward = [core, wired]
    ran_forward = [access]

    def _acks(forward: list[Link]) -> list[Link]:
        return [
            Link(
                sim,
                ack_rate,
                link.delay_s,
                queue_capacity_packets=100_000,
                name=f"ack-{link.name}",
            )
            for link in reversed(forward)
        ]

    wan_path = NetworkPath(
        sim, config, wan_forward, _acks(wan_forward), access_link=core, wired_link=wired
    )
    ran_path = NetworkPath(
        sim, config, ran_forward, _acks(ran_forward), access_link=access, wired_link=access
    )
    wan_path.autorate = _arm_autorate(sim, remedy, wired, access)
    return wan_path, ran_path
