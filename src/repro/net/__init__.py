"""Packet-level network simulation: event loop, links, paths, servers."""

from repro.net.link import CrossTraffic, DropTailQueue, Link
from repro.net.packet import ACK, DATA, PROBE, Packet
from repro.net.path import NetworkPath, PathConfig, build_cellular_path
from repro.net.servers import CAMPUS_GEO, SPEEDTEST_SERVERS, SpeedtestServer
from repro.net.sim import Event, Simulator

__all__ = [
    "ACK",
    "CAMPUS_GEO",
    "CrossTraffic",
    "DATA",
    "DropTailQueue",
    "Event",
    "Link",
    "NetworkPath",
    "PROBE",
    "Packet",
    "PathConfig",
    "SPEEDTEST_SERVERS",
    "Simulator",
    "SpeedtestServer",
    "build_cellular_path",
]
