"""A minimal discrete-event simulator.

Every network and transport component schedules callbacks on one shared
:class:`Simulator`.  The design favours raw event throughput — packet-level
TCP at hundreds of megabits produces millions of events per simulated
minute — so events are plain heap entries with a cancellation flag rather
than process objects.

Each simulator keeps lightweight event counters (scheduled / executed /
cancelled), and the module aggregates the same counters across every
instance in the process so campaign instrumentation
(:mod:`repro.runner.instrument`) can report how much simulation work an
experiment performed without wrapping individual simulators.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from typing import Any, NamedTuple

from repro.audit import core as audit
from repro.trace import core as trace

__all__ = ["Event", "SimCounters", "Simulator", "global_counters"]

#: Scheduling slightly in the past happens when callers compute an absolute
#: timestamp as ``now + dt`` and float rounding pushes the reconstructed
#: delay a few ULPs negative.  Delays within this tolerance are clamped to
#: "fire immediately" instead of crashing mid-simulation.
PAST_TOLERANCE_S = 1e-9


class SimCounters(NamedTuple):
    """A snapshot of event counters (per simulator or process-wide)."""

    scheduled: int
    executed: int
    cancelled: int


# Process-wide totals across all Simulator instances, for instrumentation.
_total_scheduled = 0
_total_executed = 0
_total_cancelled = 0


def global_counters() -> SimCounters:
    """Snapshot of event counters summed over every simulator in the process."""
    return SimCounters(_total_scheduled, _total_executed, _total_cancelled)


class Event:
    """A scheduled callback; cancel with :meth:`cancel`."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "sim")

    def __init__(
        self, time: float, seq: int, callback: Callable[..., None], args: tuple[Any, ...]
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.sim: "Simulator | None" = None

    def cancel(self) -> None:
        """Prevent the callback from firing (O(1); removal is lazy)."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        if sim is not None:
            global _total_cancelled
            sim._pending -= 1
            sim.events_cancelled += 1
            _total_cancelled += 1

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class Simulator:
    """Event loop with virtual time.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(1.5, fired.append, "hello")
        >>> sim.run()
        >>> (sim.now, fired)
        (1.5, ['hello'])
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[Event] = []
        self._seq = 0
        self._pending = 0
        self.events_scheduled = 0
        self.events_executed = 0
        self.events_cancelled = 0
        # Captured once at construction: with no tracer installed this is the
        # module-level null tracer and run() takes the untraced loop.
        self.tracer = trace.current()
        self.auditor = audit.current()

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        global _total_scheduled
        self._seq += 1
        event = Event(self.now + delay, self._seq, callback, args)
        event.sim = self
        heapq.heappush(self._heap, event)
        self._pending += 1
        self.events_scheduled += 1
        _total_scheduled += 1
        return event

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation time ``time``.

        ``time`` a few ULPs before ``now`` (|delay| <= ``PAST_TOLERANCE_S``)
        is treated as "now": float rounding in ``time - now`` must not crash
        a simulation that computed the timestamp from ``now`` itself.
        """
        delay = time - self.now
        if -PAST_TOLERANCE_S <= delay < 0.0:
            delay = 0.0
        return self.schedule(delay, callback, *args)

    def run(self, until: float | None = None) -> None:
        """Run events in order until the heap drains or ``until`` is reached.

        With ``until`` set, simulation time always advances exactly to
        ``until`` even if the heap drains earlier.

        The loop is duplicated rather than branching per event: tracing and
        auditing are decided once per ``run()`` call, so with both disabled
        the hot path is identical to the uninstrumented loop.
        """
        if self.auditor.enabled:
            self._run_audited(until)
            return
        if self.tracer.enabled:
            self._run_traced(until)
            return
        global _total_executed
        heap = self._heap
        while heap:
            event = heap[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(heap)
            if event.cancelled:
                continue
            # Detach so a late cancel() on a fired event cannot skew counters.
            event.sim = None
            self._pending -= 1
            self.events_executed += 1
            _total_executed += 1
            self.now = event.time
            event.callback(*event.args)
        if until is not None and self.now < until:
            self.now = until

    def _run_traced(self, until: float | None) -> None:
        """The ``run`` loop with dispatch spans and a queue-depth counter."""
        global _total_executed
        heap = self._heap
        tracer = self.tracer
        while heap:
            event = heap[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(heap)
            if event.cancelled:
                continue
            event.sim = None
            self._pending -= 1
            self.events_executed += 1
            _total_executed += 1
            self.now = event.time
            callback = event.callback
            callback(*event.args)
            # __qualname__ keeps the label deterministic; repr() of a bound
            # method or partial would embed a memory address.
            label = getattr(callback, "__qualname__", None) or type(callback).__name__
            tracer.complete("sim.dispatch", event.time, self.now, callback=label)
            tracer.counter("sim.queue_depth", self.now, float(self._pending))
        if until is not None and self.now < until:
            self.now = until

    def _run_audited(self, until: float | None) -> None:
        """The ``run`` loop with a virtual-time monotonicity probe.

        ``schedule()`` rejects negative delays, so a dispatch time behind
        ``now`` can only come from a future bookkeeping regression (heap
        corruption, a mutated ``Event.time``); the probe turns that from
        silent causality violation into a flagged audit event.  Tracing,
        when also active, emits the same records as :meth:`_run_traced`.
        """
        global _total_executed
        heap = self._heap
        tracer = self.tracer
        auditor = self.auditor
        traced = tracer.enabled
        now = self.now  # local mirror: one compare per event, no attr load
        while heap:
            event = heap[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(heap)
            if event.cancelled:
                continue
            event.sim = None
            self._pending -= 1
            self.events_executed += 1
            _total_executed += 1
            etime = event.time
            if etime < now:
                auditor.flag(
                    "audit.sim.time_regression_s",
                    etime,
                    regression_s=now - etime,
                )
            now = etime
            self.now = etime
            callback = event.callback
            callback(*event.args)
            if traced:
                label = getattr(callback, "__qualname__", None) or type(callback).__name__
                tracer.complete("sim.dispatch", event.time, self.now, callback=label)
                tracer.counter("sim.queue_depth", self.now, float(self._pending))
        if until is not None and self.now < until:
            self.now = until

    def counters(self) -> SimCounters:
        """Snapshot of this simulator's event counters."""
        return SimCounters(self.events_scheduled, self.events_executed, self.events_cancelled)

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._pending
