"""A minimal discrete-event simulator.

Every network and transport component schedules callbacks on one shared
:class:`Simulator`.  The design favours raw event throughput — packet-level
TCP at hundreds of megabits produces millions of events per simulated
minute — so events are plain heap entries with a cancellation flag rather
than process objects.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = ["Event", "Simulator"]


class Event:
    """A scheduled callback; cancel with :meth:`cancel`."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self, time: float, seq: int, callback: Callable[..., None], args: tuple[Any, ...]
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (O(1); removal is lazy)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class Simulator:
    """Event loop with virtual time.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(1.5, fired.append, "hello")
        >>> sim.run()
        >>> (sim.now, fired)
        (1.5, ['hello'])
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[Event] = []
        self._seq = 0

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        event = Event(self.now + delay, self._seq, callback, args)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation time ``time``."""
        return self.schedule(time - self.now, callback, *args)

    def run(self, until: float | None = None) -> None:
        """Run events in order until the heap drains or ``until`` is reached.

        With ``until`` set, simulation time always advances exactly to
        ``until`` even if the heap drains earlier.
        """
        heap = self._heap
        while heap:
            event = heap[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback(*event.args)
        if until is not None and self.now < until:
            self.now = until

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)
