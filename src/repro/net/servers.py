"""The 20 nationwide SPEEDTEST servers of the end-to-end delay study.

Data reproduces the paper's Tab. 6 (Appendix C): server name, city,
coordinates and great-circle distance from the measurement campus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.points import GeoPoint, haversine_km

__all__ = ["SpeedtestServer", "SPEEDTEST_SERVERS", "CAMPUS_GEO"]

#: The measurement campus (Beijing).
CAMPUS_GEO = GeoPoint(39.96, 116.35)


@dataclass(frozen=True)
class SpeedtestServer:
    """One remote probing target (Tab. 6)."""

    server_id: int
    name: str
    city: str
    location: GeoPoint
    distance_km: float

    def recomputed_distance_km(self) -> float:
        """Haversine distance from the campus (sanity check vs Tab. 6)."""
        return haversine_km(CAMPUS_GEO, self.location)


SPEEDTEST_SERVERS: tuple[SpeedtestServer, ...] = (
    SpeedtestServer(5145, "Beijing Unicom", "Beijing", GeoPoint(39.9289, 116.3883), 1.67),
    SpeedtestServer(27154, "China Unicom 5G", "Tianjin", GeoPoint(39.1422, 117.1767), 111.65),
    SpeedtestServer(5039, "China Unicom Jinan Branch", "Jinan", GeoPoint(36.6683, 116.9972), 366.42),
    SpeedtestServer(25728, "China Mobile Liaoning Branch Dalian", "Dalian", GeoPoint(38.9128, 121.4989), 462.77),
    SpeedtestServer(27100, "Shandong CMCC 5G", "Qingdao", GeoPoint(36.1748, 120.4284), 553.80),
    SpeedtestServer(5396, "China Telecom Jiangsu 5G", "Suzhou", GeoPoint(31.3566, 120.4682), 638.00),
    SpeedtestServer(16375, "China Mobile Jilin", "Changchun", GeoPoint(43.7914, 125.4784), 859.32),
    SpeedtestServer(5724, "China Unicom", "Hefei", GeoPoint(31.8639, 117.2808), 900.06),
    SpeedtestServer(5485, "China Unicom Hubei Branch", "Wuhan", GeoPoint(30.5801, 114.2734), 1056.52),
    SpeedtestServer(4690, "China Unicom Lanzhou Branch Co.Ltd", "Lanzhou", GeoPoint(36.0564, 103.7922), 1183.99),
    SpeedtestServer(6715, "China Mobile Zhejiang 5G", "Ningbo", GeoPoint(29.8573, 121.6323), 1213.23),
    SpeedtestServer(4870, "Changsha Hunan Unicom Server1", "Changsha", GeoPoint(28.1792, 113.1136), 1341.73),
    SpeedtestServer(5530, "CCN", "Chongqing", GeoPoint(29.5628, 106.5528), 1459.16),
    SpeedtestServer(4884, "China Unicom Fujian", "Fuzhou", GeoPoint(26.0614, 119.3061), 1563.93),
    SpeedtestServer(16398, "China Mobile Guizhou", "Guiyang", GeoPoint(26.6639, 106.6779), 1730.12),
    SpeedtestServer(26678, "Guangzhou Unicom 5G", "Guangzhou", GeoPoint(23.1167, 113.25), 1890.52),
    SpeedtestServer(5674, "GX Unicom", "Nanning", GeoPoint(22.8167, 108.3167), 2048.98),
    SpeedtestServer(16503, "China Mobile Hainan", "Haikou", GeoPoint(19.9111, 110.3301), 2285.12),
    SpeedtestServer(27575, "Xinjiang Telecom Cloud", "Urumqi", GeoPoint(43.801, 87.6005), 2404.00),
    SpeedtestServer(17245, "China Mobile Group Xinjiang", "Kashi", GeoPoint(39.4694, 76.0739), 3426.37),
)
