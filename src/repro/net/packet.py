"""Packets exchanged over the simulated network."""

from __future__ import annotations

import itertools
from typing import Any

__all__ = ["Packet", "DATA", "ACK", "PROBE"]

DATA = "data"
ACK = "ack"
PROBE = "probe"

_ids = itertools.count(1)


class Packet:
    """One network packet.

    Attributes:
        packet_id: Globally unique id (useful for tracing loss patterns).
        flow_id: Owning flow.
        kind: ``"data"``, ``"ack"`` or ``"probe"``.
        size_bytes: Wire size including headers.
        seq: Transport sequence number (byte offset of first payload byte).
        created_at: Simulation time the packet entered the network.
        meta: Free-form per-protocol fields (ack numbers, timestamps...).
    """

    __slots__ = ("packet_id", "flow_id", "kind", "size_bytes", "seq", "created_at", "meta")

    def __init__(
        self,
        flow_id: int,
        kind: str,
        size_bytes: int,
        seq: int = 0,
        created_at: float = 0.0,
        meta: dict[str, Any] | None = None,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {size_bytes}")
        self.packet_id = next(_ids)
        self.flow_id = flow_id
        self.kind = kind
        self.size_bytes = size_bytes
        self.seq = seq
        self.created_at = created_at
        self.meta = meta if meta is not None else {}

    def __repr__(self) -> str:
        return (
            f"Packet(id={self.packet_id}, flow={self.flow_id}, kind={self.kind}, "
            f"seq={self.seq}, size={self.size_bytes})"
        )
