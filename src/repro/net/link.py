"""Links with DropTail buffers, and bursty cross-traffic modulation.

A :class:`Link` models one forwarding hop: a finite DropTail queue feeding
a serializer of some rate, followed by a propagation delay.  Queue
overflow is the only loss mechanism in the wired network — exactly the
bottleneck the paper identifies (Sec. 4.2): core-Internet router buffers
sized for 4G-era flows overflow in bursts under 5G-scale workloads.

Cross traffic is modelled as an ON/OFF modulation of the link's available
rate rather than as individual packets, which keeps event counts
manageable while preserving the bursty-overflow dynamics that produce the
paper's Fig. 11 loss pattern.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from typing import TYPE_CHECKING

import numpy as np

from repro.audit.core import current as _current_auditor
from repro.metrics.core import fold_metric_name
from repro.net.packet import Packet
from repro.net.sim import Simulator
from repro.trace.core import current as _current_tracer

if TYPE_CHECKING:
    from repro.qdisc.base import Qdisc

__all__ = ["DropTailQueue", "Link", "CrossTraffic", "DelayProcess"]


class DropTailQueue:
    """A finite FIFO of packets; arrivals beyond capacity are dropped.

    Counts both packets and bytes.  ``capacity_bytes`` switches on a
    byte cap *in addition to* the packet cap — real router buffers are
    sized in bytes, and the AQM remedies (``repro.qdisc``) reason in
    bytes, so the baseline they are compared against tracks them too.
    """

    def __init__(self, capacity_packets: int, capacity_bytes: int | None = None) -> None:
        if capacity_packets < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity_packets}")
        if capacity_bytes is not None and capacity_bytes < 1:
            raise ValueError(f"byte capacity must be >= 1, got {capacity_bytes}")
        self.capacity_packets = capacity_packets
        self.capacity_bytes = capacity_bytes
        self._queue: deque[Packet] = deque()
        self._bytes = 0
        self.drops = 0
        self.enqueued = 0
        self.dequeued = 0
        self.enqueued_bytes = 0
        self.dequeued_bytes = 0

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, packet: Packet) -> bool:
        """Enqueue; returns False (and counts a drop) when full."""
        if len(self._queue) >= self.capacity_packets or (
            self.capacity_bytes is not None
            and self._bytes + packet.size_bytes > self.capacity_bytes
        ):
            self.drops += 1
            return False
        self._queue.append(packet)
        self._bytes += packet.size_bytes
        self.enqueued += 1
        self.enqueued_bytes += packet.size_bytes
        return True

    def pop(self) -> Packet | None:
        """Dequeue the head packet, or None when empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size_bytes
        self.dequeued += 1
        self.dequeued_bytes += packet.size_bytes
        return packet

    @property
    def occupancy(self) -> int:
        """Packets currently queued."""
        return len(self._queue)

    @property
    def occupancy_bytes(self) -> int:
        """Bytes currently queued."""
        return self._bytes


class CrossTraffic:
    """ON/OFF background load stealing capacity from a link.

    During ON bursts the background occupies ``burst_fraction`` of the
    link; OFF periods leave the link free.  Durations are exponentially
    distributed.  The long-run mean load is
    ``burst_fraction * on_s / (on_s + off_s)``.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        burst_fraction: float = 0.85,
        mean_on_s: float = 0.012,
        mean_off_s: float = 0.012,
    ) -> None:
        if not 0.0 < burst_fraction < 1.0:
            raise ValueError(f"burst_fraction must be in (0, 1), got {burst_fraction}")
        if mean_on_s <= 0 or mean_off_s <= 0:
            raise ValueError("burst durations must be positive")
        self._rng = rng
        self.burst_fraction = burst_fraction
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        self._on = False
        self._phase_ends_at = 0.0

    def load_at(self, now: float) -> float:
        """Fraction of the link consumed by cross traffic at ``now``.

        Time must be queried monotonically (as the simulator does).
        """
        while now >= self._phase_ends_at:
            self._on = not self._on
            mean = self.mean_on_s if self._on else self.mean_off_s
            self._phase_ends_at += float(self._rng.exponential(mean))
        return self.burst_fraction if self._on else 0.0

    @property
    def mean_load(self) -> float:
        """Long-run average load fraction."""
        return self.burst_fraction * self.mean_on_s / (self.mean_on_s + self.mean_off_s)


class DelayProcess:
    """Slowly-varying extra latency on a link.

    Cellular access delay wanders over tens-of-milliseconds timescales
    (scheduling grants, HARQ round trips, DRX alignment) independent of
    congestion.  The wandering floor makes any minimum-tracking RTT
    estimator (Vegas's baseRTT, Veno's backlog estimate) systematically
    optimistic, which is the classic reason delay-based congestion
    control underperforms on cellular links.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        max_extra_s: float = 0.008,
        redraw_interval_s: float = 0.3,
    ) -> None:
        if max_extra_s < 0 or redraw_interval_s <= 0:
            raise ValueError("invalid delay-process parameters")
        self._rng = rng
        self.max_extra_s = max_extra_s
        self.redraw_interval_s = redraw_interval_s
        self._current = float(rng.uniform(0.0, max_extra_s))
        self._redraw_at = redraw_interval_s

    def extra_delay_s(self, now: float) -> float:
        """Extra one-way delay at time ``now`` (monotonic queries)."""
        while now >= self._redraw_at:
            self._current = float(self._rng.uniform(0.0, self.max_extra_s))
            self._redraw_at += self.redraw_interval_s
        return self._current


class Link:
    """One hop: DropTail queue -> serializer -> propagation delay.

    Args:
        sim: Shared simulator.
        rate_bps: Serialization rate.
        delay_s: One-way propagation delay.
        queue_capacity_packets: Router buffer at the link entrance.
        name: Label for diagnostics.
        cross_traffic: Optional background-load modulation.
        qdisc: Optional queue discipline replacing the DropTail buffer
            (see :mod:`repro.qdisc`).  ``None`` keeps the seed's exact
            DropTail event schedule.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        delay_s: float,
        queue_capacity_packets: int = 1000,
        name: str = "link",
        cross_traffic: CrossTraffic | None = None,
        delay_process: "DelayProcess | None" = None,
        qdisc: "Qdisc | None" = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if delay_s < 0:
            raise ValueError(f"propagation delay must be >= 0, got {delay_s}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.qdisc = qdisc
        if qdisc is not None:
            # Alias so capacity/drops/occupancy readers see one buffer.
            self.queue = qdisc
            qdisc.on_drop = self._record_drop
        else:
            self.queue = DropTailQueue(queue_capacity_packets)
        self.name = name
        self.cross_traffic = cross_traffic
        self.sink: Callable[[Packet], None] | None = None
        self.delay_process = delay_process
        self.delivered = 0
        self.delivered_bytes = 0
        self.dropped_packets: list[int] = []
        self._busy = False
        self._paused = False
        self._wake_pending = False
        self._last_delivery_at = 0.0
        self._in_transit = 0
        self._in_transit_bytes = 0
        # Like Simulator: with no tracer installed this is the null
        # tracer and the depth counters compile down to one bool check.
        self._tracer = _current_tracer()
        self._auditor = _current_auditor()
        self._audit_idle_name = ""
        if self._auditor.enabled:
            self._register_audit()

    def _register_audit(self) -> None:
        """Register this hop's conservation ledgers with the active auditor.

        Each watch is a closure re-evaluated at audit checkpoints; a
        nonzero residual means a packet or byte was created or destroyed
        outside the enqueue/dequeue/drop bookkeeping.
        """
        auditor = self._auditor
        n = fold_metric_name(self.name)
        self._audit_idle_name = f"audit.link.{n}.idle_occupancy_pkts"
        queue = self.queue
        if self.qdisc is not None:
            qdisc = self.qdisc
            stats = qdisc.stats
            auditor.watch(
                f"audit.link.{n}.queue_residual_pkts",
                lambda: stats.enqueued - stats.dequeued - stats.aqm_drops - qdisc.occupancy,
            )
            auditor.watch(
                f"audit.link.{n}.queue_residual_bytes",
                lambda: stats.enqueued_bytes
                - stats.dequeued_bytes
                - stats.aqm_dropped_bytes
                - qdisc.occupancy_bytes,
            )
            auditor.watch(
                f"audit.link.{n}.occupancy_residual_pkts",
                lambda: qdisc.occupancy_residual()[0],
            )
            auditor.watch(
                f"audit.link.{n}.occupancy_residual_bytes",
                lambda: qdisc.occupancy_residual()[1],
            )
            auditor.watch(
                f"audit.link.{n}.sojourn_bounds_s",
                lambda: max(0.0, -stats.last_sojourn_s),
            )
        else:
            auditor.watch(
                f"audit.link.{n}.queue_residual_pkts",
                lambda: queue.enqueued - queue.dequeued - queue.occupancy,
            )
            auditor.watch(
                f"audit.link.{n}.queue_residual_bytes",
                lambda: queue.enqueued_bytes - queue.dequeued_bytes - queue.occupancy_bytes,
            )
        capacity = getattr(queue, "capacity_packets", None)
        if capacity is not None:
            auditor.watch(
                f"audit.link.{n}.occupancy_bounds_pkts",
                lambda: max(0, -queue.occupancy) + max(0, queue.occupancy - capacity),
            )
        auditor.watch(
            f"audit.link.{n}.transit_residual_pkts",
            lambda: self._dequeued_total() - self.delivered - self._in_transit,
        )
        auditor.watch(
            f"audit.link.{n}.transit_residual_bytes",
            lambda: self._dequeued_total_bytes() - self.delivered_bytes - self._in_transit_bytes,
        )

    def _dequeued_total(self) -> int:
        return self.qdisc.stats.dequeued if self.qdisc is not None else self.queue.dequeued

    def _dequeued_total_bytes(self) -> int:
        return (
            self.qdisc.stats.dequeued_bytes
            if self.qdisc is not None
            else self.queue.dequeued_bytes
        )

    def connect(self, sink: Callable[[Packet], None]) -> None:
        """Set where serialized packets get delivered."""
        self.sink = sink

    def send(self, packet: Packet) -> None:
        """Offer a packet to this hop; drops silently on overflow."""
        if self.sink is None:
            raise RuntimeError(f"link {self.name!r} has no sink connected")
        if self.qdisc is not None:
            accepted = self.qdisc.enqueue(packet, self.sim.now)
        else:
            accepted = self.queue.push(packet)
        if not accepted:
            self.dropped_packets.append(packet.packet_id)
            return
        if self._tracer.enabled:
            self._tracer.counter(
                f"link.{self.name}.depth_pkts", self.sim.now, float(self.queue.occupancy)
            )
            self._tracer.counter(
                f"link.{self.name}.depth_bytes", self.sim.now, float(self.queue.occupancy_bytes)
            )
        if not self._busy and not self._paused:
            self._transmit_next()

    def _record_drop(self, packet: Packet) -> None:
        """Qdisc callback: an already-queued packet was AQM-dropped."""
        self.dropped_packets.append(packet.packet_id)

    def pause(self) -> None:
        """Stop serving the queue (hand-off outage); packets keep queueing."""
        self._paused = True

    def resume(self) -> None:
        """Resume service after a pause."""
        if not self._paused:
            return
        self._paused = False
        if not self._busy:
            self._transmit_next()

    def current_rate_bps(self) -> float:
        """Rate available to foreground traffic right now."""
        rate = self.rate_bps
        if self.cross_traffic is not None:
            rate *= 1.0 - self.cross_traffic.load_at(self.sim.now)
        return rate

    def _transmit_next(self) -> None:
        if self.qdisc is not None:
            packet = self.qdisc.dequeue(self.sim.now)
            if packet is None:
                self._busy = False
                # Shaped qdiscs may hold packets back; wake up when the
                # next one becomes eligible instead of going idle.
                self._schedule_wake()
                # Inline occupancy test: links go idle ~100k times per run,
                # so the helper (and its kwargs) run only on violation.
                if (
                    self._auditor.enabled
                    and not self._wake_pending
                    and self.queue.occupancy
                ):
                    self._audit_idle_probe()
                return
            self.qdisc.stats.dequeued += 1
            self.qdisc.stats.dequeued_bytes += packet.size_bytes
        else:
            packet = self.queue.pop()
            if packet is None:
                self._busy = False
                # pop() returning None already proves the deque is empty,
                # so the only book that can drift here is the byte counter;
                # an int attribute load keeps the ~100k-per-run idle path
                # free of property-call overhead.
                if self._auditor.enabled and self.queue._bytes:
                    self._audit_idle_probe()
                return
        self._in_transit += 1
        self._in_transit_bytes += packet.size_bytes
        self._busy = True
        rate = max(self.current_rate_bps(), 1.0)
        serialization = packet.size_bytes * 8 / rate
        self.sim.schedule(serialization, self._serialized, packet)

    def _serialized(self, packet: Packet) -> None:
        delay = self.delay_s
        if self.delay_process is not None:
            delay += self.delay_process.extra_delay_s(self.sim.now)
        # FIFO discipline: a falling delay process must not reorder.
        arrival = max(self.sim.now + delay, self._last_delivery_at + 1e-9)
        self._last_delivery_at = arrival
        self.sim.schedule_at(arrival, self._deliver, packet)
        if self._paused:
            self._busy = False
        else:
            self._transmit_next()

    def _schedule_wake(self) -> None:
        assert self.qdisc is not None
        ready_s = self.qdisc.next_ready_s(self.sim.now)
        if ready_s is None or self._wake_pending:
            return
        self._wake_pending = True
        self.sim.schedule_at(max(ready_s, self.sim.now), self._wake)

    def _wake(self) -> None:
        self._wake_pending = False
        if not self._busy and not self._paused:
            self._transmit_next()

    def _audit_idle_probe(self) -> None:
        """Going idle must mean an empty book: dequeue() said "no packet"
        with no shaped hold-back pending, so a nonzero occupancy book is
        an accounting leak (the structure is empty, the counter is not).
        Callers inline the occupancy test, so reaching here *is* the
        violation."""
        self._auditor.flag(
            self._audit_idle_name,
            self.sim.now,
            occupancy=self.queue.occupancy,
            occupancy_bytes=self.queue.occupancy_bytes,
            link=self.name,
        )

    def _deliver(self, packet: Packet) -> None:
        self.delivered += 1
        self.delivered_bytes += packet.size_bytes
        self._in_transit -= 1
        self._in_transit_bytes -= packet.size_bytes
        assert self.sink is not None
        self.sink(packet)
