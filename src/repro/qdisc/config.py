"""The ``[remedy]`` scenario section: which fix (if any) to deploy.

This module is imported by both :mod:`repro.scenario.core` (as a section
of :class:`~repro.scenario.core.Scenario`) and :mod:`repro.net.path`
(to build the configured qdisc), so it deliberately imports nothing from
either — only the standard library.

All numeric fields carry unit suffixes (enforced project-wide by
replint REP011): milliseconds for control-law times, bytes for quanta
and buffers, dimensionless ``_ratio``/``_count`` otherwise.  The
zero-argument construction means "no remedy" — plain drop-tail, which
keeps the default ``paper-nsa`` scenario byte-identical to the
pre-remedy tree.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RemedySection", "QDISC_NAMES", "REMEDY_APPLY_TO"]

#: Queue disciplines the factory knows how to build.
QDISC_NAMES = ("droptail", "codel", "fq-codel", "cake")

#: Which link(s) of the cellular path the qdisc replaces the buffer on.
REMEDY_APPLY_TO = ("wired", "access", "both")

_PEP_CC_NAMES = ("reno", "cubic", "vegas", "veno", "bbr")


@dataclass(frozen=True)
class RemedySection:
    """Remediation knobs for the paper's TCP anomaly (Sec. 4.2).

    ``qdisc`` selects the buffer discipline at the bottleneck;
    ``autorate`` arms the wanctl-style closed-loop shaper controller
    (requires ``qdisc = "cake"``); ``pep`` splits the TCP connection at
    the RAN edge instead of (or in addition to) fixing the queue.
    """

    qdisc: str = "droptail"
    apply_to: str = "wired"
    # Tuned below the RFC 8289 defaults (5 ms / 100 ms): the anomaly's
    # queueing episodes are short bursts, so the control law must react
    # within one burst tail to beat drop-tail on p99 RTT as well as
    # goodput (see experiments/remedy_comparison.py).
    target_ms: float = 3.0
    interval_ms: float = 50.0
    quantum_bytes: int = 1514
    flows_count: int = 1024
    hosts_count: int = 16
    shaper_ratio: float = 0.95
    aqm_buffer_ratio: float = 8.0
    wired_buffer_ratio: float = 1.0
    autorate: bool = False
    # Long enough to average over the cross-traffic ON/OFF cycle
    # (mean ~120 ms); shorter ticks see every burst and over-steer.
    autorate_interval_ms: float = 500.0
    autorate_floor_ratio: float = 0.5
    pep: bool = False
    pep_wan_cc: str = "cubic"
    pep_ran_cc: str = "bbr"
    pep_buffer_bytes: int = 4_194_304

    def __post_init__(self) -> None:
        if self.qdisc not in QDISC_NAMES:
            raise ValueError(f"unknown qdisc {self.qdisc!r} (valid: {', '.join(QDISC_NAMES)})")
        if self.apply_to not in REMEDY_APPLY_TO:
            raise ValueError(
                f"remedy.apply_to must be one of {', '.join(REMEDY_APPLY_TO)},"
                f" got {self.apply_to!r}"
            )
        if self.target_ms <= 0 or self.interval_ms <= 0:
            raise ValueError("remedy target_ms and interval_ms must be positive")
        if self.quantum_bytes < 1 or self.flows_count < 1 or self.hosts_count < 1:
            raise ValueError("remedy quantum_bytes/flows_count/hosts_count must be >= 1")
        if not 0.0 < self.shaper_ratio <= 1.0:
            raise ValueError(f"remedy.shaper_ratio out of (0, 1]: {self.shaper_ratio}")
        if self.aqm_buffer_ratio <= 0:
            raise ValueError(f"remedy.aqm_buffer_ratio must be > 0, got {self.aqm_buffer_ratio}")
        if self.wired_buffer_ratio <= 0:
            raise ValueError(
                f"remedy.wired_buffer_ratio must be > 0, got {self.wired_buffer_ratio}"
            )
        if self.autorate and self.qdisc != "cake":
            raise ValueError("remedy.autorate requires qdisc = 'cake' (it retunes the shaper)")
        if self.autorate_interval_ms <= 0:
            raise ValueError("remedy.autorate_interval_ms must be positive")
        if not 0.0 < self.autorate_floor_ratio <= 1.0:
            raise ValueError(
                f"remedy.autorate_floor_ratio out of (0, 1]: {self.autorate_floor_ratio}"
            )
        for field_name in ("pep_wan_cc", "pep_ran_cc"):
            cc = getattr(self, field_name)
            if cc not in _PEP_CC_NAMES:
                raise ValueError(
                    f"remedy.{field_name} must be one of {', '.join(_PEP_CC_NAMES)}, got {cc!r}"
                )
        if self.pep_buffer_bytes < 65536:
            raise ValueError(
                f"remedy.pep_buffer_bytes must be >= 65536, got {self.pep_buffer_bytes}"
            )

    @property
    def is_noop(self) -> bool:
        """True when this section changes nothing (pure drop-tail path)."""
        return (
            self.qdisc == "droptail"
            and not self.autorate
            and not self.pep
            and self.wired_buffer_ratio == 1.0
        )
