"""Simplified CAKE: a virtual-time shaper over host/flow-isolated CoDel queues.

The real CAKE qdisc (Linux ``sch_cake``) bundles a deficit-mode shaper,
set-associative flow hashing with host isolation ("triple isolate"), and
per-flow CoDel.  This model keeps the three pieces that matter for the
paper's anomaly and drops the rest (diffserv tins, GSO peeling, ack
filtering):

* **shaper** — packets leave no faster than ``shaper_rate_bps``.  Run
  slightly *below* the bottleneck rate, this moves the standing queue
  out of the dumb drop-tail buffer and into CAKE, where the control law
  can see it.  The shaper is a virtual clock: after releasing a packet
  the earliest next release is ``size_bytes * 8 / shaper_rate_bps``
  later, and :meth:`next_ready_s` tells the link when to wake up —
  no polling, no RNG, byte-identical everywhere.
* **triple isolate** — fairness is enforced at two levels: deficit
  round robin over *hosts*, then over each host's *flows*, so one
  many-flow host cannot monopolise the bottleneck.
* **per-flow CoDel** — each flow queue runs the RFC 8289 control law
  via :class:`repro.qdisc.codel.CoDelQueue`.

``shaper_rate_bps`` is a plain mutable attribute: the autorate
controller (``qdisc/autorate.py``) retunes it in flight.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.qdisc.base import Qdisc
from repro.qdisc.codel import DEFAULT_INTERVAL_S, DEFAULT_TARGET_S, CoDelQueue
from repro.qdisc.fq_codel import flow_hash

if TYPE_CHECKING:
    from repro.net.packet import Packet

__all__ = ["CakeQueue"]


class _CakeFlow:
    __slots__ = ("codel", "deficit_bytes", "active")

    def __init__(self, capacity_packets: int, target_s: float, interval_s: float) -> None:
        self.codel = CoDelQueue(
            capacity_packets=capacity_packets, target_s=target_s, interval_s=interval_s
        )
        self.deficit_bytes = 0
        self.active = False


class _CakeHost:
    """One host bucket: a DRR ring of that host's flows plus its own deficit."""

    __slots__ = ("flows", "ring", "deficit_bytes", "active")

    def __init__(self) -> None:
        self.flows: dict[int, _CakeFlow] = {}
        self.ring: deque[int] = deque()
        self.deficit_bytes = 0
        self.active = False


class CakeQueue(Qdisc):
    """Shaped, host-and-flow-isolated, CoDel-managed queue."""

    name = "cake"

    def __init__(
        self,
        shaper_rate_bps: float,
        capacity_packets: int = 1000,
        target_s: float = DEFAULT_TARGET_S,
        interval_s: float = DEFAULT_INTERVAL_S,
        flows_count: int = 1024,
        hosts_count: int = 16,
        quantum_bytes: int = 1514,
    ) -> None:
        if shaper_rate_bps <= 0:
            raise ValueError(f"shaper rate must be positive, got {shaper_rate_bps}")
        if flows_count < 1 or hosts_count < 1:
            raise ValueError("flows_count and hosts_count must be >= 1")
        super().__init__()
        self.shaper_rate_bps = shaper_rate_bps
        self.capacity_packets = capacity_packets
        self.flows_count = flows_count
        self.hosts_count = hosts_count
        self.quantum_bytes = quantum_bytes
        self._target_s = target_s
        self._interval_s = interval_s
        self._hosts: dict[int, _CakeHost] = {}
        self._host_ring: deque[int] = deque()
        self._pkts = 0
        self._bytes = 0
        # Virtual clock of the deficit-mode shaper: earliest next release.
        self._time_next_packet_s = 0.0

    # -- classification --------------------------------------------------

    def _classify(self, packet: Packet) -> tuple[int, int]:
        """(host bucket, flow bucket) — "triple isolate" on flow identity.

        Packets may carry an explicit ``meta["host_id"]``; flows without
        one fall back to their flow id, i.e. one host per flow.
        """
        host_id = packet.meta.get("host_id", packet.flow_id)
        return flow_hash(host_id, self.hosts_count), flow_hash(packet.flow_id, self.flows_count)

    # -- queue mechanics -------------------------------------------------

    def enqueue(self, packet: Packet, now_s: float) -> bool:
        if self._pkts >= self.capacity_packets:
            self.stats.drops += 1
            return False
        host_bucket, flow_bucket = self._classify(packet)
        host = self._hosts.get(host_bucket)
        if host is None:
            host = _CakeHost()
            self._hosts[host_bucket] = host
        flow = host.flows.get(flow_bucket)
        if flow is None:
            flow = _CakeFlow(self.capacity_packets, self._target_s, self._interval_s)
            flow.codel.on_drop = self._forward_drop
            host.flows[flow_bucket] = flow
        if not flow.codel.enqueue(packet, now_s):
            self.stats.drops += 1
            return False
        self._pkts += 1
        self._bytes += packet.size_bytes
        self.stats.enqueued += 1
        self.stats.enqueued_bytes += packet.size_bytes
        if not flow.active:
            flow.active = True
            flow.deficit_bytes = self.quantum_bytes
            host.ring.append(flow_bucket)
        if not host.active:
            host.active = True
            host.deficit_bytes = self.quantum_bytes
            self._host_ring.append(host_bucket)
        return True

    def dequeue(self, now_s: float) -> Packet | None:
        if now_s < self._time_next_packet_s:
            return None  # shaped: not yet eligible; see next_ready_s()
        while self._host_ring:
            host_bucket = self._host_ring[0]
            host = self._hosts[host_bucket]
            if host.deficit_bytes <= 0:
                host.deficit_bytes += self.quantum_bytes
                self._host_ring.rotate(-1)
                continue
            packet = self._dequeue_from_host(host, now_s)
            if packet is None:
                self._host_ring.popleft()
                host.active = False
                continue
            host.deficit_bytes -= packet.size_bytes
            self._pkts -= 1
            self._bytes -= packet.size_bytes
            # Advance the shaper's virtual clock by this packet's
            # serialization time at the shaped rate.
            base = self._time_next_packet_s if self._time_next_packet_s > now_s else now_s
            self._time_next_packet_s = base + packet.size_bytes * 8 / self.shaper_rate_bps
            return packet
        return None

    def _dequeue_from_host(self, host: _CakeHost, now_s: float) -> Packet | None:
        while host.ring:
            flow_bucket = host.ring[0]
            flow = host.flows[flow_bucket]
            if flow.deficit_bytes <= 0:
                flow.deficit_bytes += self.quantum_bytes
                host.ring.rotate(-1)
                continue
            before = flow.codel.occupancy
            before_aqm_bytes = flow.codel.stats.aqm_dropped_bytes
            packet = flow.codel.dequeue(now_s)
            dropped = before - flow.codel.occupancy - (1 if packet is not None else 0)
            if dropped:
                self._pkts -= dropped
                self._bytes = sum(
                    f.codel.occupancy_bytes for h in self._hosts.values() for f in h.flows.values()
                )
                if packet is not None:
                    # The recompute excluded the just-popped packet, but
                    # dequeue() subtracts it from the total on return —
                    # add it back so that subtraction lands on zero.
                    self._bytes += packet.size_bytes
                self.stats.aqm_drops += dropped
                self.stats.aqm_dropped_bytes += (
                    flow.codel.stats.aqm_dropped_bytes - before_aqm_bytes
                )
            if packet is None:
                host.ring.popleft()
                flow.active = False
                continue
            flow.deficit_bytes -= packet.size_bytes
            self.stats.note_sojourn(flow.codel.stats.last_sojourn_s)
            return packet
        return None

    def _recount(self) -> tuple[int, int]:
        pkts = 0
        size_bytes = 0
        for host in self._hosts.values():
            for flow in host.flows.values():
                flow_pkts, flow_bytes = flow.codel._recount()
                pkts += flow_pkts
                size_bytes += flow_bytes
        return pkts, size_bytes

    def next_ready_s(self, now_s: float) -> float | None:
        if self._pkts and now_s < self._time_next_packet_s:
            return self._time_next_packet_s
        return None

    @property
    def occupancy(self) -> int:
        return self._pkts

    @property
    def occupancy_bytes(self) -> int:
        return self._bytes
