"""wanctl-style closed-loop shaper controller for the CAKE qdisc.

Autorate daemons for cable/LTE uplinks (sqm-autorate, cake-autorate,
wanctl) all share one control structure: sample the *delay added by
queueing* each interval, classify it into a small load state, and steer
the shaper rate between a floor and a ceiling —

* ``GREEN`` — no queueing delay to speak of: probe upward toward the
  ceiling (the link may have capacity the shaper is wasting);
* ``YELLOW`` — delay near the AQM target: hold the current rate;
* ``SOFT_RED`` — delay well above target: back off gently;
* ``RED`` — delay runaway (or the cellular link collapsed under us):
  cut hard toward the floor so the standing queue drains.

Here the delta-RTT signal is the qdisc's own *mean* sojourn time since
the previous tick (:meth:`QdiscStats.take_mean_sojourn_s`), which on
virtual time is exactly the queueing delay — no wall clock, no RNG, so
serial and parallel campaigns stay byte-identical.  The mean (not the
peak) is deliberate: the anomaly's cross traffic arrives in short
exponential bursts, so the per-interval peak is almost always above any
sane threshold and a peak-driven controller ratchets straight to the
floor.  The mean tracks the *standing* queue the shaper can actually
fix, exactly the statistic real autorate daemons smooth their OWD
samples toward.  The controller
self-terminates after ``horizon_s`` like the path's stall process, so
``Simulator.run()`` without an explicit end time still drains.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING

from repro.qdisc.cake import CakeQueue
from repro.trace import core as _trace

if TYPE_CHECKING:
    from repro.net.link import Link
    from repro.net.sim import Simulator

__all__ = ["ShaperState", "AutorateController"]


class ShaperState(Enum):
    """Load classification of the bottleneck, greenest first."""

    GREEN = "green"
    YELLOW = "yellow"
    SOFT_RED = "soft_red"
    RED = "red"


#: Multiplicative rate steps per state (GREEN probes up, RED cuts hard).
#: Tuned gentle: on a burst-dominated bottleneck every excursion costs
#: goodput for as long as recovery takes, so cuts are shallow and the
#: GREEN probe climbs back within a couple of ticks.
_STEP = {
    ShaperState.GREEN: 1.1,
    ShaperState.YELLOW: 1.0,
    ShaperState.SOFT_RED: 0.95,
    ShaperState.RED: 0.85,
}


class AutorateController:
    """Retunes a :class:`CakeQueue` shaper from its own sojourn signal.

    Args:
        sim: Shared simulator.
        link: The bottleneck hop (used for diagnostics naming only).
        cake: The shaped qdisc whose ``shaper_rate_bps`` is steered.
        target_s: Delay setpoint; state thresholds are multiples of it.
        interval_s: Control-loop tick period.
        floor_ratio: Lowest allowed rate as a fraction of the ceiling.
        horizon_s: Stop ticking after this virtual time.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        cake: CakeQueue,
        target_s: float,
        interval_s: float = 0.5,
        floor_ratio: float = 0.5,
        horizon_s: float = 3600.0,
    ) -> None:
        if target_s <= 0 or interval_s <= 0:
            raise ValueError("autorate target/interval must be positive")
        if not 0.0 < floor_ratio <= 1.0:
            raise ValueError(f"autorate floor_ratio out of (0, 1]: {floor_ratio}")
        self._sim = sim
        self._link = link
        self._cake = cake
        self.target_s = target_s
        self.interval_s = interval_s
        self.ceiling_bps = cake.shaper_rate_bps
        self.floor_bps = floor_ratio * self.ceiling_bps
        self._horizon_s = horizon_s
        self.state = ShaperState.GREEN
        self._state_entered_s = sim.now
        #: Virtual seconds spent in each state (closed out on retune()).
        self.dwell_s: dict[ShaperState, float] = {s: 0.0 for s in ShaperState}
        self.transitions = 0
        self.ticks = 0
        self._tracer = _trace.current()
        sim.schedule(self.interval_s, self._tick)

    # -- the control loop ------------------------------------------------

    def classify(self, mean_sojourn_s: float) -> ShaperState:
        """Map one interval's mean queueing delay to a load state."""
        if mean_sojourn_s <= self.target_s:
            return ShaperState.GREEN
        if mean_sojourn_s <= 2.0 * self.target_s:
            return ShaperState.YELLOW
        if mean_sojourn_s <= 4.0 * self.target_s:
            return ShaperState.SOFT_RED
        return ShaperState.RED

    def _tick(self) -> None:
        now = self._sim.now
        self.ticks += 1
        mean = self._cake.stats.take_mean_sojourn_s()
        new_state = self.classify(mean)
        if new_state is not self.state:
            self._close_dwell(now)
            if self._tracer.enabled:
                self._tracer.instant(
                    f"qdisc.autorate.{new_state.value}",
                    now,
                    mean_sojourn_ms=mean * 1e3,
                )
            self.state = new_state
            self.transitions += 1
        rate = self._cake.shaper_rate_bps * _STEP[self.state]
        rate = min(self.ceiling_bps, max(self.floor_bps, rate))
        self._cake.shaper_rate_bps = rate
        if self._tracer.enabled:
            self._tracer.counter("qdisc.autorate.rate_bps", now, rate)
        if now < self._horizon_s:
            self._sim.schedule(self.interval_s, self._tick)
        else:
            self._close_dwell(now)

    def _close_dwell(self, now_s: float) -> None:
        elapsed = now_s - self._state_entered_s
        self.dwell_s[self.state] += elapsed
        if self._tracer.enabled and elapsed > 0.0:
            self._tracer.complete(
                f"qdisc.autorate.dwell.{self.state.value}", self._state_entered_s, now_s
            )
        self._state_entered_s = now_s

    def finish(self, now_s: float) -> None:
        """Close out the open dwell interval (call at campaign end)."""
        self._close_dwell(now_s)
