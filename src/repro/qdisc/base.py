"""The queue-discipline contract every :class:`repro.net.link.Link` buffer obeys.

The seed network had exactly one buffer type — the DropTail FIFO whose
under-provisioning *is* the paper's TCP anomaly (Sec. 4.2).  This module
extracts its implicit interface into an explicit protocol so remedies
(CoDel, FQ-CoDel, CAKE) plug into the same link machinery:

* ``enqueue(packet, now_s)`` — offer a packet; ``False`` means the
  arriving packet was tail-dropped (the caller records the loss).
* ``dequeue(now_s)`` — hand the serializer the next packet, or ``None``.
  AQM disciplines may drop queued packets *inside* this call (CoDel's
  head drops); those losses surface through the ``on_drop`` callback,
  never through the return value.
* ``next_ready_s(now_s)`` — for shaped disciplines (CAKE), the virtual
  time at which a withheld packet becomes eligible; the link schedules a
  wake-up instead of busy-polling.  Work-conserving queues return
  ``None``.

Both packet and byte occupancy are first-class: AQM control laws reason
in sojourn time and bytes, while the paper's buffer estimates (Tab. 3)
are quoted in packets.

Everything here runs on virtual time fed in by the caller and draws no
randomness, so serial and parallel campaigns stay byte-identical.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    # Type-only: a runtime import would cycle through repro.net/__init__
    # back into this package (net.path builds qdiscs).
    from repro.net.packet import Packet

__all__ = ["QdiscStats", "Qdisc"]


class QdiscStats:
    """Shared counters and sojourn tracking for queue disciplines.

    ``peak_sojourn_s`` is resettable (:meth:`take_peak_sojourn_s`) so a
    closed-loop controller can watch per-interval queueing delay without
    the qdisc holding an unbounded sample list.
    """

    __slots__ = (
        "drops",
        "aqm_drops",
        "enqueued",
        "dequeued",
        "enqueued_bytes",
        "dequeued_bytes",
        "aqm_dropped_bytes",
        "last_sojourn_s",
        "_peak_sojourn_s",
        "_sojourn_sum_s",
        "_sojourn_count",
    )

    def __init__(self) -> None:
        self.drops = 0  # arrivals rejected at the tail
        self.aqm_drops = 0  # queued packets dropped by the control law
        self.enqueued = 0
        self.dequeued = 0
        self.enqueued_bytes = 0
        self.dequeued_bytes = 0
        self.aqm_dropped_bytes = 0
        self.last_sojourn_s = 0.0
        self._peak_sojourn_s = 0.0
        self._sojourn_sum_s = 0.0
        self._sojourn_count = 0

    def note_sojourn(self, sojourn_s: float) -> None:
        """Record one dequeued packet's time in queue."""
        self.last_sojourn_s = sojourn_s
        if sojourn_s > self._peak_sojourn_s:
            self._peak_sojourn_s = sojourn_s
        self._sojourn_sum_s += sojourn_s
        self._sojourn_count += 1

    def take_peak_sojourn_s(self) -> float:
        """Peak sojourn since the previous call; resets the peak."""
        peak = self._peak_sojourn_s
        self._peak_sojourn_s = 0.0
        return peak

    def take_mean_sojourn_s(self) -> float:
        """Mean sojourn since the previous call; resets the accumulator.

        An idle interval (no dequeues) reads as zero queueing delay —
        the right answer for a controller probing for headroom.
        """
        if self._sojourn_count == 0:
            return 0.0
        mean = self._sojourn_sum_s / self._sojourn_count
        self._sojourn_sum_s = 0.0
        self._sojourn_count = 0
        return mean


class Qdisc(ABC):
    """Base class for queue disciplines (see the module docstring).

    Subclasses implement :meth:`enqueue` and :meth:`dequeue` and keep
    ``occupancy``/``occupancy_bytes`` coherent.  ``on_drop`` is invoked
    for every packet discarded *after* it was accepted (AQM head drops,
    overload reclaims); tail rejections are signalled by ``enqueue``
    returning ``False``.
    """

    #: Name under which the factory registers the discipline.
    name: str = "abstract"

    def __init__(self) -> None:
        self.stats = QdiscStats()
        self.on_drop: Callable[[Packet], None] | None = None

    # -- the contract ---------------------------------------------------

    @abstractmethod
    def enqueue(self, packet: Packet, now_s: float) -> bool:
        """Offer ``packet`` at virtual time ``now_s``; False = tail drop."""

    @abstractmethod
    def dequeue(self, now_s: float) -> Packet | None:
        """Next packet to serialize, or ``None`` (empty or shaped-idle)."""

    @property
    @abstractmethod
    def occupancy(self) -> int:
        """Packets currently queued."""

    @property
    @abstractmethod
    def occupancy_bytes(self) -> int:
        """Bytes currently queued."""

    def next_ready_s(self, now_s: float) -> float | None:
        """When a withheld packet becomes eligible (shaped qdiscs only)."""
        return None

    # -- shared bookkeeping ---------------------------------------------

    @property
    def drops(self) -> int:
        """Total losses: tail rejections plus control-law drops."""
        return self.stats.drops + self.stats.aqm_drops

    @property
    def enqueued(self) -> int:
        """Packets accepted into the queue since construction."""
        return self.stats.enqueued

    def occupancy_residual(self) -> tuple[int, int]:
        """Book-vs-recount drift as ``(packets, bytes)``; zero when sound.

        Walks the live queue structure (:meth:`_recount`) and subtracts
        the recount from the incrementally maintained ``occupancy`` /
        ``occupancy_bytes`` books.  O(queued packets) — call it from
        audit checkpoints, not per-packet hot paths.
        """
        pkts, size_bytes = self._recount()
        return self.occupancy - pkts, self.occupancy_bytes - size_bytes

    def _recount(self) -> tuple[int, int]:
        """Ground-truth ``(packets, bytes)`` from the live queue structure."""
        raise NotImplementedError(f"{type(self).__name__} does not support recount")

    def _discard(self, packet: Packet) -> None:
        """Count an in-queue drop and notify the owner."""
        self.stats.aqm_drops += 1
        self.stats.aqm_dropped_bytes += packet.size_bytes
        if self.on_drop is not None:
            self.on_drop(packet)

    def _forward_drop(self, packet: Packet) -> None:
        """Relay a child qdisc's drop to this qdisc's owner, uncounted.

        Composite disciplines (FQ-CoDel, CAKE) account for sub-queue
        drops themselves via occupancy deltas; this hook only keeps the
        owner's callback informed.
        """
        if self.on_drop is not None:
            self.on_drop(packet)

    def __len__(self) -> int:
        return self.occupancy
