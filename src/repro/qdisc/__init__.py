"""repro.qdisc — queue disciplines and remedies for the paper's TCP anomaly.

The paper (Sec. 4.2) shows drop-tail buffers far below the 5G
bandwidth-delay product collapsing TCP; this subsystem supplies the
remedies the measurement study could only speculate about: AQM at the
bottleneck (:class:`CoDelQueue`, :class:`FqCodelQueue`,
:class:`CakeQueue`), a closed-loop shaper controller
(:class:`AutorateController`), and a split-connection performance
enhancing proxy (:mod:`repro.qdisc.pep`).  Scenario wiring lives in the
``[remedy]`` section (:class:`RemedySection`).
"""

from __future__ import annotations

from repro.qdisc.base import Qdisc, QdiscStats
from repro.qdisc.codel import CoDelQueue
from repro.qdisc.config import QDISC_NAMES, REMEDY_APPLY_TO, RemedySection
from repro.qdisc.fq_codel import FqCodelQueue, flow_hash
from repro.qdisc.cake import CakeQueue
from repro.qdisc.autorate import AutorateController, ShaperState

__all__ = [
    "Qdisc",
    "QdiscStats",
    "CoDelQueue",
    "FqCodelQueue",
    "CakeQueue",
    "AutorateController",
    "ShaperState",
    "RemedySection",
    "QDISC_NAMES",
    "REMEDY_APPLY_TO",
    "flow_hash",
    "make_qdisc",
]


def make_qdisc(remedy: RemedySection, capacity_packets: int, link_rate_bps: float) -> Qdisc | None:
    """Build the configured discipline, or ``None`` for plain drop-tail.

    ``None`` (not a DropTail-flavoured Qdisc) keeps the default path's
    event schedule byte-identical to the pre-remedy tree: the link only
    takes the qdisc code path when a remedy is actually configured.
    """
    target_s = remedy.target_ms / 1e3
    interval_s = remedy.interval_ms / 1e3
    if remedy.qdisc == "droptail":
        return None
    # AQM makes deep buffers safe (the control law caps the standing
    # queue), so every AQM discipline gets ``aqm_buffer_ratio`` times the
    # drop-tail allocation: the paper's under-buffered routers overflow
    # in bursts no control law can pre-empt at 1x depth.
    capacity_packets = max(8, int(capacity_packets * remedy.aqm_buffer_ratio))
    if remedy.qdisc == "codel":
        return CoDelQueue(
            capacity_packets=capacity_packets, target_s=target_s, interval_s=interval_s
        )
    if remedy.qdisc == "fq-codel":
        return FqCodelQueue(
            capacity_packets=capacity_packets,
            target_s=target_s,
            interval_s=interval_s,
            flows_count=remedy.flows_count,
            quantum_bytes=remedy.quantum_bytes,
        )
    if remedy.qdisc == "cake":
        return CakeQueue(
            shaper_rate_bps=remedy.shaper_ratio * link_rate_bps,
            capacity_packets=capacity_packets,
            target_s=target_s,
            interval_s=interval_s,
            flows_count=remedy.flows_count,
            hosts_count=remedy.hosts_count,
            quantum_bytes=remedy.quantum_bytes,
        )
    raise ValueError(f"unknown qdisc {remedy.qdisc!r}")
