"""FQ-CoDel — per-flow deficit round robin with CoDel on every queue.

RFC 8290's two ideas, reproduced on virtual time:

* **flow isolation** — packets hash (deterministically — no salted
  ``hash()``) into one of ``flows_count`` sub-queues scheduled by
  deficit round robin with a ``quantum_bytes`` per turn, so one bulk
  flow filling the under-buffered bottleneck cannot starve an ACK
  stream or a latency probe;
* **sparse-flow credit** — a queue that newly becomes active joins the
  priority ``new`` list and is served ahead of the backlogged ``old``
  list until it exhausts its first quantum, giving thin flows (the
  paper's RTT probes, handshakes) near-zero queueing delay.

Each sub-queue runs the same CoDel control law as
:class:`repro.qdisc.codel.CoDelQueue`, via composition.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.qdisc.base import Qdisc
from repro.qdisc.codel import DEFAULT_INTERVAL_S, DEFAULT_TARGET_S, CoDelQueue

if TYPE_CHECKING:
    from repro.net.packet import Packet

__all__ = ["FqCodelQueue", "flow_hash"]

#: Knuth's multiplicative constant: a deterministic, well-mixing stand-in
#: for the kernel's (randomly keyed) Jenkins hash.
_HASH_MULTIPLIER = 2654435761


def flow_hash(flow_id: int, buckets: int) -> int:
    """Deterministic flow-to-bucket hash (identical across processes)."""
    return ((flow_id * _HASH_MULTIPLIER) & 0xFFFFFFFF) % buckets


class _Flow:
    """One sub-queue: a CoDel'd FIFO plus its DRR deficit."""

    __slots__ = ("codel", "deficit_bytes", "active")

    def __init__(self, capacity_packets: int, target_s: float, interval_s: float) -> None:
        self.codel = CoDelQueue(
            capacity_packets=capacity_packets, target_s=target_s, interval_s=interval_s
        )
        self.deficit_bytes = 0
        self.active = False


class FqCodelQueue(Qdisc):
    """DRR scheduler over CoDel sub-queues with sparse-flow priority."""

    name = "fq-codel"

    def __init__(
        self,
        capacity_packets: int = 1000,
        target_s: float = DEFAULT_TARGET_S,
        interval_s: float = DEFAULT_INTERVAL_S,
        flows_count: int = 1024,
        quantum_bytes: int = 1514,
    ) -> None:
        if flows_count < 1:
            raise ValueError(f"flows_count must be >= 1, got {flows_count}")
        if quantum_bytes < 1:
            raise ValueError(f"quantum_bytes must be >= 1, got {quantum_bytes}")
        super().__init__()
        self.capacity_packets = capacity_packets
        self.flows_count = flows_count
        self.quantum_bytes = quantum_bytes
        self._flows: dict[int, _Flow] = {}
        self._new_flows: deque[int] = deque()
        self._old_flows: deque[int] = deque()
        self._target_s = target_s
        self._interval_s = interval_s
        self._pkts = 0
        self._bytes = 0

    def _flow_for(self, packet: Packet) -> tuple[int, _Flow]:
        bucket = flow_hash(packet.flow_id, self.flows_count)
        flow = self._flows.get(bucket)
        if flow is None:
            # Per-flow cap: the shared packet budget, so one flow alone
            # behaves exactly like a plain CoDel queue of the same size.
            flow = _Flow(self.capacity_packets, self._target_s, self._interval_s)
            flow.codel.on_drop = self._forward_drop
            self._flows[bucket] = flow
        return bucket, flow

    def enqueue(self, packet: Packet, now_s: float) -> bool:
        if self._pkts >= self.capacity_packets:
            self.stats.drops += 1
            return False
        bucket, flow = self._flow_for(packet)
        if not flow.codel.enqueue(packet, now_s):
            self.stats.drops += 1
            return False
        self._pkts += 1
        self._bytes += packet.size_bytes
        self.stats.enqueued += 1
        self.stats.enqueued_bytes += packet.size_bytes
        if not flow.active:
            # Sparse-flow credit: newly-active flows are served first.
            flow.active = True
            flow.deficit_bytes = self.quantum_bytes
            self._new_flows.append(bucket)
        return True

    def dequeue(self, now_s: float) -> Packet | None:
        while self._new_flows or self._old_flows:
            from_new = bool(self._new_flows)
            queue = self._new_flows if from_new else self._old_flows
            bucket = queue[0]
            flow = self._flows[bucket]
            if flow.deficit_bytes <= 0:
                flow.deficit_bytes += self.quantum_bytes
                queue.popleft()
                self._old_flows.append(bucket)
                continue
            before = flow.codel.occupancy
            before_aqm_bytes = flow.codel.stats.aqm_dropped_bytes
            packet = flow.codel.dequeue(now_s)
            # Surface the sub-queue's control-law drops at this level.
            dropped = before - flow.codel.occupancy - (1 if packet is not None else 0)
            if dropped:
                self._account_aqm_drops(
                    flow, dropped, flow.codel.stats.aqm_dropped_bytes - before_aqm_bytes
                )
            if packet is None:
                # Queue drained: a new flow that empties within its first
                # quantum stays "sparse" — it re-enters via new_flows on
                # its next packet (RFC 8290 Sec. 4.2's list handling).
                queue.popleft()
                flow.active = False
                continue
            flow.deficit_bytes -= packet.size_bytes
            self._pkts -= 1
            if not dropped:
                # With drops the recompute below already excluded this
                # packet (the sub-queue popped it first); subtracting it
                # again here would drift the byte count negative.
                self._bytes -= packet.size_bytes
            self.stats.note_sojourn(flow.codel.stats.last_sojourn_s)
            return packet
        return None

    def _account_aqm_drops(self, flow: _Flow, dropped: int, dropped_bytes: int) -> None:
        self._pkts -= dropped
        # Sub-queue byte occupancy is authoritative; recompute the total.
        self._bytes = sum(f.codel.occupancy_bytes for f in self._flows.values())
        self.stats.aqm_drops += dropped
        self.stats.aqm_dropped_bytes += dropped_bytes

    def _recount(self) -> tuple[int, int]:
        pkts = 0
        size_bytes = 0
        for flow in self._flows.values():
            flow_pkts, flow_bytes = flow.codel._recount()
            pkts += flow_pkts
            size_bytes += flow_bytes
        return pkts, size_bytes

    @property
    def occupancy(self) -> int:
        return self._pkts

    @property
    def occupancy_bytes(self) -> int:
        return self._bytes
