"""Split-connection TCP performance-enhancing proxy at the RAN edge.

The StanfordSNR 5G testbed (and pepsal before it) shows the classic
escape hatch from the paper's TCP anomaly: terminate the end-to-end
connection at the cellular edge and run *two* TCP connections — one
over the wireline segment, one over the radio segment — each with a
congestion controller matched to its own path.  The wireline half sees
a short-RTT path whose drop-tail buffer is now a sane fraction of the
BDP (so AIMD recovers quickly), and the radio half's stalls and delay
wander never trigger wireline backoff.

Mechanics, mapped onto the existing transport machinery:

* :class:`PepIngress` is a plain :class:`TcpReceiver` on the origin
  side that reports in-order progress to the relay;
* :class:`PepEgressSender` is a :class:`TcpSender` whose "application
  data" is whatever the ingress has reassembled so far (``_has_data``
  is bounded by the relay buffer), with its own CCA;
* :class:`PepRelay` couples the two with a finite relay buffer and
  *backpressure*: when the buffer fills, the origin sender's advertised
  receive window shrinks — exactly how a real split proxy stops the
  server from overrunning it — and reopens as the egress side drains.

Everything is event-driven off existing ACK deliveries: the relay adds
no timers, no RNG, and no wall-clock reads, so PEP runs are as
deterministic as single-connection ones.
"""

from __future__ import annotations

from repro.audit import core as audit
from repro.net.packet import Packet
from repro.net.path import NetworkPath
from repro.net.sim import Simulator
from repro.transport.base import CongestionControl, TcpReceiver, TcpSender

__all__ = ["PepIngress", "PepEgressSender", "PepRelay"]


class PepIngress(TcpReceiver):
    """Origin-side receiver that tells the relay when bytes become relayable."""

    def __init__(self, sim: Simulator, path: NetworkPath, flow_id: int, relay: "PepRelay") -> None:
        self._relay = relay
        super().__init__(sim, path, flow_id)

    def _on_data(self, packet: Packet) -> None:
        before = self.rcv_next
        super()._on_data(packet)
        if self.rcv_next > before:
            self._relay._on_ingress_progress()


class PepEgressSender(TcpSender):
    """Edge-side sender clocked by relay occupancy instead of an app."""

    def __init__(
        self,
        sim: Simulator,
        path: NetworkPath,
        cc: CongestionControl,
        flow_id: int,
        relay: "PepRelay",
    ) -> None:
        self._relay = relay
        super().__init__(sim, path, cc, flow_id, transfer_bytes=None)

    def _has_data(self) -> bool:
        # Only full segments: bytes the ingress has not reassembled yet
        # must never be invented on the egress side.
        return self.next_seq + self.mss <= self._relay.available_bytes

    def _on_ack(self, packet: Packet) -> None:
        before = self.cum_ack
        super()._on_ack(packet)
        if self.cum_ack > before:
            self._relay._on_egress_progress()


class PepRelay:
    """The proxy: origin connection || relay buffer || egress connection.

    Args:
        sim: Shared simulator.
        origin_path: Path the origin sender transmits over (WAN side for
            downlink, RAN side for uplink).
        egress_path: Path the proxy retransmits over.
        origin_cc: Congestion controller for the origin connection.
        egress_cc: Congestion controller for the proxy's connection.
        buffer_bytes: Relay buffer bound enforced via backpressure.
        flow_id: Flow id shared by both halves (they live on disjoint
            paths, so there is no ambiguity).
        transfer_bytes: Optional fixed transfer size for the origin.
    """

    def __init__(
        self,
        sim: Simulator,
        origin_path: NetworkPath,
        egress_path: NetworkPath,
        origin_cc: CongestionControl,
        egress_cc: CongestionControl,
        buffer_bytes: int,
        flow_id: int = 1,
        transfer_bytes: int | None = None,
    ) -> None:
        if buffer_bytes < origin_cc.mss:
            raise ValueError(f"relay buffer must hold at least one MSS, got {buffer_bytes}")
        self.sim = sim
        self.buffer_bytes = buffer_bytes
        self._config_rwnd_bytes = origin_path.config.rwnd_bytes
        self._auditor = audit.current()
        self.ingress = PepIngress(sim, origin_path, flow_id, relay=self)
        self.origin = TcpSender(sim, origin_path, origin_cc, flow_id, transfer_bytes=transfer_bytes)
        self.egress = PepEgressSender(sim, egress_path, egress_cc, flow_id, relay=self)
        self.terminus = TcpReceiver(sim, egress_path, flow_id)
        self._update_backpressure()

    # -- relay state -----------------------------------------------------

    @property
    def available_bytes(self) -> int:
        """In-order bytes the ingress has reassembled (egress high-water)."""
        return self.ingress.rcv_next

    @property
    def backlog_bytes(self) -> int:
        """Bytes held at the proxy: reassembled but not yet egress-acked."""
        return self.ingress.rcv_next - self.egress.cum_ack

    def start(self) -> None:
        """Begin the origin transfer (the egress side self-clocks)."""
        self.origin.start()

    # -- coupling --------------------------------------------------------

    def _on_ingress_progress(self) -> None:
        self._update_backpressure()
        self.egress._try_send()

    def _on_egress_progress(self) -> None:
        self._update_backpressure()
        # Reopened window: the origin may have gone idle with nothing in
        # flight, in which case no ACK will ever kick it — kick it here.
        self.origin._try_send()

    def _update_backpressure(self) -> None:
        headroom = self.buffer_bytes - self.backlog_bytes
        self.origin.rwnd_bytes = min(self._config_rwnd_bytes, max(headroom, 0))
        if self._auditor.enabled:
            self._audit_backpressure()

    def _audit_backpressure(self) -> None:
        """Bounds probes on the relay's backpressure coupling (read-only).

        The advertised window must stay inside [0, configured rwnd], and
        the backlog inside [0, buffer + configured rwnd] — the origin may
        legitimately overshoot the buffer by at most the window it was
        advertised *before* the buffer filled.
        """
        auditor = self._auditor
        now = self.sim.now
        rwnd = self.origin.rwnd_bytes
        backlog = self.backlog_bytes
        auditor.probe(
            "audit.pep.rwnd_bounds_bytes",
            0 <= rwnd <= self._config_rwnd_bytes,
            now,
            rwnd=rwnd,
            config_rwnd=self._config_rwnd_bytes,
        )
        auditor.probe(
            "audit.pep.backlog_bounds_bytes",
            0 <= backlog <= self.buffer_bytes + self._config_rwnd_bytes,
            now,
            backlog=backlog,
            buffer=self.buffer_bytes,
        )
