"""CoDel — the Controlled Delay AQM (RFC 8289) on virtual time.

CoDel attacks exactly the pathology the paper measures: a standing queue
in an under-buffered (or, on the RAN side, *over*-buffered) router that
either bloats delay or bursts drops.  Instead of reacting to queue
*length* it tracks each packet's *sojourn time* and, once the minimum
sojourn stays above ``target_s`` for a full ``interval_s``, begins
dropping at the head on the deterministic control-law schedule
``drop_next = t + interval / sqrt(count)``.

Head drops matter here: the surviving packet behind a drop carries the
congestion signal to the sender a full queue earlier than a tail drop
would, which is why a CoDel'd bottleneck turns the paper's burst losses
into isolated, promptly-repaired fast retransmits.

The implementation is RNG-free and keeps byte occupancy incrementally,
so it satisfies the :class:`repro.qdisc.base.Qdisc` determinism
contract as-is.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.qdisc.base import Qdisc

if TYPE_CHECKING:
    from repro.net.packet import Packet

__all__ = ["CoDelQueue"]

#: RFC 8289 recommended setpoint: 5 ms standing delay, 100 ms window.
DEFAULT_TARGET_S = 0.005
DEFAULT_INTERVAL_S = 0.100


class CoDelQueue(Qdisc):
    """A CoDel-managed FIFO with packet and (optional) byte caps."""

    name = "codel"

    #: Test-only fault hook: when set to N > 0 (class or instance), every
    #: Nth dequeue silently loses its head packet — no stats, no byte
    #: book-keeping beyond the raw removal — so the audit ledgers have a
    #: real accounting bug to catch.  Never set outside tests/CI demos.
    _fault_leak_every = 0

    def __init__(
        self,
        capacity_packets: int = 1000,
        target_s: float = DEFAULT_TARGET_S,
        interval_s: float = DEFAULT_INTERVAL_S,
        capacity_bytes: int | None = None,
        mtu_bytes: int = 1514,
    ) -> None:
        if capacity_packets < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity_packets}")
        if target_s <= 0 or interval_s <= 0:
            raise ValueError("CoDel target/interval must be positive")
        super().__init__()
        self.capacity_packets = capacity_packets
        self.capacity_bytes = capacity_bytes
        self.target_s = target_s
        self.interval_s = interval_s
        self.mtu_bytes = mtu_bytes
        self._queue: deque[tuple[Packet, float]] = deque()
        self._bytes = 0
        self._fault_tick = 0
        # Control-law state (RFC 8289 pseudocode names).
        self._first_above_time_s = 0.0
        self._drop_next_s = 0.0
        self._count = 0
        self._lastcount = 0
        self._dropping = False

    # -- queue mechanics -------------------------------------------------

    def enqueue(self, packet: Packet, now_s: float) -> bool:
        if len(self._queue) >= self.capacity_packets or (
            self.capacity_bytes is not None
            and self._bytes + packet.size_bytes > self.capacity_bytes
        ):
            self.stats.drops += 1
            return False
        self._queue.append((packet, now_s))
        self._bytes += packet.size_bytes
        self.stats.enqueued += 1
        self.stats.enqueued_bytes += packet.size_bytes
        return True

    def _pop_head(self, now_s: float) -> Packet | None:
        """Raw head removal plus sojourn bookkeeping (no control law)."""
        if not self._queue:
            return None
        packet, enqueued_at_s = self._queue.popleft()
        self._bytes -= packet.size_bytes
        self.stats.note_sojourn(now_s - enqueued_at_s)
        return packet

    @property
    def occupancy(self) -> int:
        return len(self._queue)

    @property
    def occupancy_bytes(self) -> int:
        return self._bytes

    # -- the control law -------------------------------------------------

    def _should_drop(self, now_s: float) -> bool:
        """RFC 8289 ``ok_to_drop``: has the minimum sojourn stayed above
        target for a full interval?  Called after sojourn bookkeeping."""
        if self.stats.last_sojourn_s < self.target_s or self._bytes <= self.mtu_bytes:
            # Below target (or queue too small to matter): reset the clock.
            self._first_above_time_s = 0.0
            return False
        if self._first_above_time_s == 0.0:
            self._first_above_time_s = now_s + self.interval_s
            return False
        return now_s >= self._first_above_time_s

    def _recount(self) -> tuple[int, int]:
        return len(self._queue), sum(p.size_bytes for p, _ in self._queue)

    def dequeue(self, now_s: float) -> Packet | None:
        if self._fault_leak_every > 0 and self._queue:
            self._fault_tick += 1
            if self._fault_tick % self._fault_leak_every == 0:
                # Injected accounting bug (see _fault_leak_every): the
                # head packet vanishes without touching any counter.
                lost, _ = self._queue.popleft()
                self._bytes -= lost.size_bytes
                if not self._queue:
                    self._dropping = False
                    return None
        packet = self._pop_head(now_s)
        if packet is None:
            self._dropping = False
            return None
        ok_to_drop = self._should_drop(now_s)

        if self._dropping:
            if not ok_to_drop:
                self._dropping = False
            else:
                while now_s >= self._drop_next_s and self._dropping:
                    self._discard(packet)
                    self._count += 1
                    packet = self._pop_head(now_s)
                    if packet is None:
                        self._dropping = False
                        return None
                    if not self._should_drop(now_s):
                        self._dropping = False
                    else:
                        self._drop_next_s = self._control_law(self._drop_next_s)
        elif ok_to_drop:
            self._discard(packet)
            self._count += 1
            packet = self._pop_head(now_s)
            if packet is None:
                self._dropping = False
                return None
            self._dropping = True
            # Re-entering drop state soon after leaving it: resume from a
            # higher count so the drop rate ramps instead of restarting.
            delta = self._count - self._lastcount
            if delta > 1 and now_s - self._drop_next_s < 16.0 * self.interval_s:
                self._count = delta
            else:
                self._count = 1
            self._lastcount = self._count
            self._drop_next_s = self._control_law(now_s)
        return packet

    def _control_law(self, t_s: float) -> float:
        return t_s + self.interval_s / (self._count**0.5)
