"""Traffic-trace generators for the energy study (Sec. 6.3).

Three real-world workload shapes, mirroring the Wireshark captures the
paper replays: short bursty web browsing, frame-paced UHD video telephony
and saturated bulk file transfer.
"""

from __future__ import annotations

import numpy as np

from repro.core.units import MB
from repro.energy.drx import Transfer

__all__ = ["web_browsing_trace", "video_telephony_trace", "file_transfer_trace"]


def web_browsing_trace(
    num_pages: int = 10,
    think_time_s: float = 10.0,
    page_bytes: int = int(2.5 * MB),
    *,
    rng: np.random.Generator,
) -> list[Transfer]:
    """Short web loads separated by think time (the Fig. 23 showcase).

    Each page is one burst; with the default 10 s spacing the radio never
    returns to RRC_IDLE between loads (both tails exceed the gap), so the
    trace exercises the DRX and tail states that dominate 5G's
    web-browsing energy.

    ``rng`` (which jitters the page sizes) is required: the old seed-0
    fallback silently produced the *same* page sequence for every
    repetition, biasing confidence intervals built across runs.
    """
    if num_pages < 1:
        raise ValueError(f"need at least one page, got {num_pages}")
    transfers = []
    t = 0.0
    for _ in range(num_pages):
        size = int(page_bytes * float(rng.uniform(0.6, 1.4)))
        transfers.append(Transfer(start_s=t, size_bytes=size))
        t += think_time_s
    return transfers


def video_telephony_trace(
    duration_s: float = 60.0,
    rate_bps: float = 45e6,
    chunk_s: float = 1.0,
) -> list[Transfer]:
    """Frame-by-frame UHD telephony: a sustained rate-capped stream.

    Modelled as 1-second chunks at the codec rate; the rate hint caps the
    realized transfer rate, so a congested RAT (4G carrying a 45 Mbps 4K
    stream) takes longer to move the same bytes — exactly why the paper's
    LTE video energy exceeds NR's (Tab. 4).
    """
    if duration_s <= 0 or rate_bps <= 0 or chunk_s <= 0:
        raise ValueError("duration, rate and chunk must be positive")
    transfers = []
    t = 0.0
    chunk_bytes = int(rate_bps * chunk_s / 8)
    while t < duration_s:
        transfers.append(Transfer(start_s=t, size_bytes=chunk_bytes, rate_hint_bps=rate_bps))
        t += chunk_s
    return transfers


def file_transfer_trace(
    num_files: int = 10,
    file_bytes: int = int(300 * MB),
    gap_s: float = 0.0,
) -> list[Transfer]:
    """Saturated bulk downloads, back-to-back by default: the radio runs
    flat-out for the whole batch (the state machine serializes transfers
    that are requested before their predecessor finishes)."""
    if num_files < 1:
        raise ValueError(f"need at least one file, got {num_files}")
    transfers = []
    t = 0.0
    for _ in range(num_files):
        transfers.append(Transfer(start_s=t, size_bytes=file_bytes))
        t += gap_s
    return transfers
