"""Trace-driven energy simulation of the four power-management models
(Tab. 4): LTE, NR NSA, NR Oracle and heuristic dynamic 4G/5G switching.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.energy.drx import (
    LTE_DRX_CONFIG,
    LTE_POWER,
    NR_NSA_DRX_CONFIG,
    NR_POWER,
    EnergyResult,
    RadioEnergyModel,
    TimelineSegment,
    Transfer,
)
from repro.audit.core import current as _current_auditor
from repro.trace.core import current as _current_tracer

__all__ = [
    "WorkloadCapacities",
    "WEB_CAPACITIES",
    "VIDEO_CAPACITIES",
    "FILE_CAPACITIES",
    "simulate_lte",
    "simulate_nr_nsa",
    "simulate_nr_oracle",
    "simulate_dynamic_switch",
    "MODEL_RUNNERS",
    "DYNAMIC_SWITCH_THRESHOLD_BPS",
]

#: The dynamic-switch heuristic: traffic denser than 4G capacity goes 5G.
DYNAMIC_SWITCH_THRESHOLD_BPS = 100e6


def _trace_segments(model_name: str, result: EnergyResult) -> EnergyResult:
    """Emit one radio-state span per timeline segment (no-op when untraced)."""
    tracer = _current_tracer()
    if tracer.enabled:
        for seg in result.segments:
            tracer.complete(
                f"energy.{seg.state}",
                seg.start_s,
                seg.end_s,
                model=model_name,
                power_w=seg.power_w,
            )
    return _audit_segments(model_name, result)


def _audit_segments(model_name: str, result: EnergyResult) -> EnergyResult:
    """Energy-ledger checks over one model's timeline (read-only).

    The timeline must be gap-free (every simulated second is priced in
    exactly one radio state), total dwell must equal the timeline span,
    and the per-state energy decomposition must re-sum to the total —
    residuals beyond float accumulation noise mean a state was dropped
    or double-billed.
    """
    auditor = _current_auditor()
    if not auditor.enabled or not result.segments:
        return result
    segments = result.segments
    end_s = segments[-1].end_s
    max_gap = 0.0
    for prev, seg in zip(segments, segments[1:]):
        gap = abs(seg.start_s - prev.end_s)
        if gap > max_gap:
            max_gap = gap
    auditor.probe(
        "audit.energy.segment_gap_s",
        max_gap <= 1e-9,
        end_s,
        model=model_name,
        max_gap_s=max_gap,
    )
    span = end_s - segments[0].start_s
    dwell = sum(seg.duration_s for seg in segments)
    auditor.observe(
        "audit.energy.dwell_residual_s",
        span - dwell,
        time_s=end_s,
        tol=1e-6 * max(1.0, span),
        model=model_name,
    )
    total = result.total_energy_j
    by_state = sum(result.energy_by_state().values())
    auditor.observe(
        "audit.energy.state_residual_j",
        by_state - total,
        time_s=end_s,
        tol=1e-9 * max(1.0, abs(total)),
        model=model_name,
    )
    return result


@dataclass(frozen=True)
class WorkloadCapacities:
    """Effective link capacity each RAT delivers for one workload."""

    lte_bps: float
    nr_bps: float

    def __post_init__(self) -> None:
        if self.lte_bps <= 0 or self.nr_bps <= 0:
            raise ValueError("capacities must be positive")


#: Downlink page loads: both RATs deliver their daytime DL goodput.
WEB_CAPACITIES = WorkloadCapacities(lte_bps=125e6, nr_bps=880e6)

#: Uplink UHD telephony: the 45 Mbps stream saturates the congested 4G
#: uplink (effective goodput ~16 Mbps, cf. Fig. 18's dynamic-scene 4G
#: numbers), while 5G's 130 Mbps uplink carries it in real time.
VIDEO_CAPACITIES = WorkloadCapacities(lte_bps=16e6, nr_bps=130e6)

#: Saturated downloads: full daytime DL goodput.
FILE_CAPACITIES = WorkloadCapacities(lte_bps=125e6, nr_bps=880e6)


def simulate_lte(trace: Sequence[Transfer], capacities: WorkloadCapacities) -> EnergyResult:
    """All traffic over the 4G module."""
    model = RadioEnergyModel(LTE_POWER, LTE_DRX_CONFIG, capacities.lte_bps)
    return _trace_segments("LTE", model.replay(trace))


def simulate_nr_nsa(trace: Sequence[Transfer], capacities: WorkloadCapacities) -> EnergyResult:
    """All traffic over the 5G NSA module (current deployments)."""
    model = RadioEnergyModel(NR_POWER, NR_NSA_DRX_CONFIG, capacities.nr_bps)
    return _trace_segments("NR NSA", model.replay(trace))


def simulate_nr_oracle(
    trace: Sequence[Transfer], capacities: WorkloadCapacities
) -> EnergyResult:
    """Oracle sleep scheduling: perfect, zero-cost sleep/awake transitions.

    Whenever no data moves the radio drops straight to its deepest
    connected-mode sleep — but it still pays that sleep power, because the
    draw is intrinsic to the always-listening 5G RF hardware.  That is why
    even an oracle only trims 11-16% off NR NSA (Sec. 6.3): the protocol
    is not the bottleneck, the hardware is."""
    if not trace:
        raise ValueError("empty trace")
    result = EnergyResult()
    clock = 0.0
    for transfer in sorted(trace, key=lambda t: t.start_s):
        start = max(transfer.start_s, clock)
        if start > clock:
            result.segments.append(
                TimelineSegment(clock, start, "sleep", NR_POWER.drx_sleep_w)
            )
            clock = start
        rate = capacities.nr_bps
        if transfer.rate_hint_bps is not None:
            rate = min(rate, transfer.rate_hint_bps)
        duration = transfer.size_bytes * 8 / rate
        result.segments.append(
            TimelineSegment(clock, clock + duration, "active", NR_POWER.active_w(rate))
        )
        clock += duration
    return _trace_segments("NR Oracle", result)


def simulate_dynamic_switch(
    trace: Sequence[Transfer], capacities: WorkloadCapacities
) -> EnergyResult:
    """Heuristic mode selection (Sec. 6.3): route each transfer to 5G only
    when its instantaneous intensity approaches what the 4G link can
    deliver for this workload (nominally the 100 Mbps capacity, less if
    the workload congests 4G below that).

    Intensity is the transfer's source rate if capped, else the rate the
    4G link would need to keep up with the arrival process.
    """
    if not trace:
        raise ValueError("empty trace")
    lte_model = RadioEnergyModel(LTE_POWER, LTE_DRX_CONFIG, capacities.lte_bps)
    nr_model = RadioEnergyModel(NR_POWER, NR_NSA_DRX_CONFIG, capacities.nr_bps)

    result = EnergyResult()
    clock = 0.0
    connected_until = -1.0
    current: RadioEnergyModel | None = None

    threshold = min(DYNAMIC_SWITCH_THRESHOLD_BPS, 0.8 * capacities.lte_bps)
    for transfer in sorted(trace, key=lambda t: t.start_s):
        intensity = _intensity_bps(transfer, capacities)
        model = nr_model if intensity >= threshold else lte_model
        start = max(transfer.start_s, clock)
        if start > clock:
            # Gaps are priced on the cheap 4G module once the burst ends
            # (the heuristic drops back below threshold between bursts),
            # unless a high-rate stream merely paused within its
            # inactivity window.
            if current is nr_model and start - clock <= nr_model.drx.inactivity_s:
                result.segments.append(
                    TimelineSegment(clock, start, "inactivity", nr_model.power.drx_on_w)
                )
                clock = start
            else:
                clock = lte_model._fill_gap(result, clock, start, connected_until)
                if current is nr_model:
                    current = lte_model
        if model is not current or clock > connected_until:
            # Mode switch or cold start: pay the target RAT's promotion.
            result.segments.append(
                TimelineSegment(
                    clock,
                    clock + model.drx.promotion_s,
                    "promotion",
                    model.power.promotion_w,
                )
            )
            clock += model.drx.promotion_s
            current = model
        rate = model.capacity_bps
        if transfer.rate_hint_bps is not None:
            rate = min(rate, transfer.rate_hint_bps)
        duration = transfer.size_bytes * 8 / rate
        result.segments.append(
            TimelineSegment(clock, clock + duration, "active", model.power.active_w(rate))
        )
        clock += duration
        # Tail pricing: once traffic intensity drops, the heuristic rolls
        # back to the 4G module, so lulls and tails cost LTE prices — the
        # main saving over NR NSA for bursty traffic.  While a high-rate
        # stream keeps arriving (the gap never exceeds the inactivity
        # window), the radio stays on NR without re-promotion.
        connected_until = clock + lte_model.drx.tail_s

    result.segments.append(
        TimelineSegment(
            clock,
            connected_until,
            "tail-drx",
            lte_model.power.drx_average_w(lte_model.drx),
        )
    )
    return _trace_segments("Dyn. switch", result)


def _intensity_bps(transfer: Transfer, capacities: WorkloadCapacities) -> float:
    """Instantaneous traffic intensity the UE measures for the heuristic.

    Rate-capped streams declare their rate; for elastic transfers the UE
    sees the burst's bits spread over a one-second measurement window,
    capped by what 5G could deliver.
    """
    if transfer.rate_hint_bps is not None:
        return transfer.rate_hint_bps
    return min(transfer.size_bytes * 8 / 1.0, capacities.nr_bps)


MODEL_RUNNERS: dict[str, Callable[[Sequence[Transfer], WorkloadCapacities], EnergyResult]] = {
    "LTE": simulate_lte,
    "NR NSA": simulate_nr_nsa,
    "NR Oracle": simulate_nr_oracle,
    "Dyn. switch": simulate_dynamic_switch,
}
