"""pwrStrip: the fine-grained power sampler (Sec. 2).

The paper's custom tool reads battery status from the Android kernel at
100 ms granularity.  This module samples an :class:`EnergyResult`
timeline the same way, optionally adding the non-radio device components,
producing the Fig. 23 style traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rng import default_rng
from repro.energy.drx import EnergyResult
from repro.energy.power_model import SCREEN_POWER_W, SYSTEM_POWER_W

__all__ = ["PowerSample", "sample_timeline"]

SAMPLE_INTERVAL_S = 0.1


@dataclass(frozen=True)
class PowerSample:
    """One 100 ms battery reading."""

    time_s: float
    power_w: float


def sample_timeline(
    result: EnergyResult,
    include_device: bool = False,
    noise_w: float = 0.0,
    seed: int = 0,
    interval_s: float = SAMPLE_INTERVAL_S,
) -> list[PowerSample]:
    """Sample a radio energy timeline at pwrStrip granularity.

    Args:
        result: Replayed energy timeline.
        include_device: Add the system + screen baseline the battery also
            sees.
        noise_w: Gaussian measurement noise (battery fuel-gauge jitter).
        seed: Noise seed.
        interval_s: Sampling interval (100 ms in the paper's tool).
    """
    if interval_s <= 0:
        raise ValueError(f"interval must be positive, got {interval_s}")
    rng = default_rng(seed)
    baseline = SYSTEM_POWER_W + SCREEN_POWER_W if include_device else 0.0
    samples = []
    t = 0.0
    end = result.end_s
    while t < end:
        power = result.power_at(t) + baseline
        if noise_w > 0:
            power = max(0.0, power + float(rng.normal(0.0, noise_w)))
        samples.append(PowerSample(time_s=t, power_w=power))
        t += interval_s
    return samples
