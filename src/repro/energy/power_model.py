"""Whole-phone component power model (Sec. 6.1, Fig. 21/22).

Breaks the smartphone's draw into the four components the paper isolates
with pwrStrip: Android system, screen, application compute, and the
radio module.  Radio powers come from :mod:`repro.energy.drx`; this
module adds the device-side constants and the four daily applications.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.drx import LTE_POWER, NR_POWER, RadioPowerProfile

__all__ = [
    "SYSTEM_POWER_W",
    "SCREEN_POWER_W",
    "AppProfile",
    "APP_CATALOG",
    "PowerBreakdown",
    "app_power_breakdown",
    "energy_per_bit",
]

#: Android system draw with the screen off and radios killed.
SYSTEM_POWER_W = 0.45

#: Screen at maximum brightness (AMOLED, mixed content).
SCREEN_POWER_W = 1.10


@dataclass(frozen=True)
class AppProfile:
    """One of the four daily applications measured in Fig. 21."""

    name: str
    compute_w: float
    mean_rate_bps: dict[int, float]  # generation -> sustained traffic rate
    duty_cycle: float  # fraction of time the radio is actively transferring

    def radio_power_w(self, generation: int) -> float:
        """Average radio draw while using the app on ``generation``."""
        radio = _radio_profile(generation)
        active = radio.active_w(self.mean_rate_bps[generation])
        # Idle slices of the session sit in connected-mode DRX.
        from repro.energy.drx import LTE_DRX_CONFIG, NR_NSA_DRX_CONFIG

        drx_cfg = NR_NSA_DRX_CONFIG if generation == 5 else LTE_DRX_CONFIG
        drx = radio.drx_average_w(drx_cfg)
        return self.duty_cycle * active + (1 - self.duty_cycle) * drx


def _radio_profile(generation: int) -> RadioPowerProfile:
    if generation == 5:
        return NR_POWER
    if generation == 4:
        return LTE_POWER
    raise ValueError(f"unknown generation {generation}")


#: Fig. 21's applications.  Traffic intensity rises left to right; the
#: download saturates whichever link it runs on.
APP_CATALOG: tuple[AppProfile, ...] = (
    AppProfile("browser", 0.55, {4: 20e6, 5: 60e6}, duty_cycle=0.35),
    AppProfile("player", 0.90, {4: 15e6, 5: 25e6}, duty_cycle=0.55),
    AppProfile("game", 1.40, {4: 8e6, 5: 12e6}, duty_cycle=0.85),
    AppProfile("download", 0.40, {4: 125e6, 5: 880e6}, duty_cycle=1.00),
)


@dataclass(frozen=True)
class PowerBreakdown:
    """Component split of the phone's draw for one app + RAT (Fig. 21)."""

    app: str
    generation: int
    system_w: float
    screen_w: float
    app_w: float
    radio_w: float

    @property
    def total_w(self) -> float:
        """Whole-phone draw: system + screen + app + radio."""
        return self.system_w + self.screen_w + self.app_w + self.radio_w

    @property
    def radio_fraction(self) -> float:
        """Radio module's share of the total draw."""
        return self.radio_w / self.total_w


def app_power_breakdown(app: AppProfile, generation: int) -> PowerBreakdown:
    """The Fig. 21 component bar for ``app`` on 4G or 5G."""
    return PowerBreakdown(
        app=app.name,
        generation=generation,
        system_w=SYSTEM_POWER_W,
        screen_w=SCREEN_POWER_W,
        app_w=app.compute_w,
        radio_w=app.radio_power_w(generation),
    )


def energy_per_bit(
    generation: int,
    transfer_s: float,
    include_device: bool = True,
) -> float:
    """Whole-device energy per delivered bit for a saturated download
    lasting ``transfer_s`` seconds (Fig. 22), in joules per bit.

    Shorter transfers amortize the promotion/tail overhead over fewer
    bits, which is why efficiency improves with duration; and 5G's 7x
    rate increase dwarfs its ~2.5x power increase, making it ~4x more
    efficient per bit once the pipe is actually full.
    """
    if transfer_s <= 0:
        raise ValueError(f"transfer time must be positive, got {transfer_s}")
    from repro.energy.drx import (
        LTE_DRX_CONFIG,
        NR_NSA_DRX_CONFIG,
        RadioEnergyModel,
        Transfer,
    )

    radio = _radio_profile(generation)
    if generation == 5:
        drx, capacity = NR_NSA_DRX_CONFIG, 880e6
    else:
        drx, capacity = LTE_DRX_CONFIG, 125e6
    size = int(capacity * transfer_s / 8)
    model = RadioEnergyModel(radio, drx, capacity)
    result = model.replay([Transfer(start_s=0.0, size_bytes=size)])
    energy = result.total_energy_j
    if include_device:
        energy += (SYSTEM_POWER_W + SCREEN_POWER_W) * result.end_s
    return energy / (size * 8)
