"""RRC/DRX power state machine of the 5G NSA UE (Appendix B, Tab. 7).

The radio walks RRC_IDLE -> promotion -> RRC_CONNECTED (continuous or
C-DRX) -> tail -> RRC_IDLE.  Under NSA the NR leg must be reached through
the LTE state machine, and — the paper's key energy finding — releasing it
rolls back through an extra LTE tail, which compounds the already-doubled
5G tail (Fig. 23, t4 vs t5).

The machine is trace-driven: feed it transfer records, get an energy
timeline; this mirrors the paper's methodology, whose Tab. 4 numbers also
come from replaying Wireshark traces through simulated state machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

__all__ = [
    "DrxConfig",
    "RadioPowerProfile",
    "Transfer",
    "TimelineSegment",
    "EnergyResult",
    "RadioEnergyModel",
    "LTE_DRX_CONFIG",
    "NR_NSA_DRX_CONFIG",
    "LTE_POWER",
    "NR_POWER",
]


@dataclass(frozen=True)
class DrxConfig:
    """Timer configuration of one RAT's RRC/DRX machine (Tab. 7)."""

    paging_cycle_s: float = 1.280  # T_idle
    on_duration_s: float = 0.010  # T_on
    promotion_s: float = 0.623  # T_LTE_pro (NR: includes T_4r_5r reach-through)
    inactivity_s: float = 0.100  # T_inac
    long_drx_cycle_s: float = 0.320  # T_long
    tail_s: float = 10.720  # T_tail

    def __post_init__(self) -> None:
        if self.on_duration_s > self.long_drx_cycle_s:
            raise ValueError("DRX on-duration cannot exceed the cycle")
        if min(
            self.paging_cycle_s,
            self.on_duration_s,
            self.promotion_s,
            self.inactivity_s,
            self.long_drx_cycle_s,
        ) <= 0:
            raise ValueError("all DRX timers must be positive")
        if self.tail_s < 0:
            raise ValueError("tail must be >= 0")


#: LTE timers straight from Tab. 7.
LTE_DRX_CONFIG = DrxConfig(
    promotion_s=0.623,
    inactivity_s=0.080,
    tail_s=10.720,
)

#: NR NSA: promotion must traverse the LTE machine first
#: (T_LTE_pro + T_4r_5r reach NR readiness; T_NR_pro completes it), and the
#: tail is doubled because the NR release re-activates an LTE tail.
NR_NSA_DRX_CONFIG = DrxConfig(
    promotion_s=1.681,
    inactivity_s=0.100,
    tail_s=21.440,
)


@dataclass(frozen=True)
class RadioPowerProfile:
    """Power draw (watts) of the radio module per state."""

    name: str
    idle_sleep_w: float
    idle_paging_w: float
    promotion_w: float
    active_base_w: float
    active_per_gbps_w: float
    drx_sleep_w: float
    drx_on_w: float

    def active_w(self, rate_bps: float) -> float:
        """Draw while transferring at ``rate_bps``."""
        return self.active_base_w + self.active_per_gbps_w * rate_bps / 1e9

    def drx_average_w(self, config: DrxConfig) -> float:
        """Duty-cycled draw inside connected-mode DRX."""
        duty = config.on_duration_s / config.long_drx_cycle_s
        return duty * self.drx_on_w + (1 - duty) * self.drx_sleep_w

    def idle_average_w(self, config: DrxConfig) -> float:
        """Duty-cycled draw in RRC_IDLE paging DRX."""
        duty = config.on_duration_s / config.paging_cycle_s
        return duty * self.idle_paging_w + (1 - duty) * self.idle_sleep_w


#: Calibrated module powers.  The 5G modem+RF draws 2-3x its 4G
#: counterpart in every state (Sec. 6.1): wideband converters, 4x4 MIMO
#: and the non-integrated modem-SoC interface.
LTE_POWER = RadioPowerProfile(
    name="4G LTE",
    idle_sleep_w=0.010,
    idle_paging_w=0.450,
    promotion_w=1.300,
    active_base_w=0.81,
    active_per_gbps_w=4.77,
    drx_sleep_w=0.280,
    drx_on_w=1.000,
)

NR_POWER = RadioPowerProfile(
    name="5G NR",
    idle_sleep_w=0.015,
    idle_paging_w=0.700,
    promotion_w=2.600,
    active_base_w=1.72,
    active_per_gbps_w=4.07,
    drx_sleep_w=0.550,
    drx_on_w=1.600,
)


@dataclass(frozen=True)
class Transfer:
    """One data transfer in a traffic trace.

    Attributes:
        start_s: Earliest time the data is ready to move.
        size_bytes: Volume to move.
        rate_hint_bps: Source rate cap (e.g. a 45 Mbps video stream); the
            realized rate is ``min(rate_hint, link capacity)``.
    """

    start_s: float
    size_bytes: int
    rate_hint_bps: float | None = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"transfer size must be positive, got {self.size_bytes}")
        if self.start_s < 0:
            raise ValueError(f"start time must be >= 0, got {self.start_s}")


@dataclass(frozen=True)
class TimelineSegment:
    """One constant-power stretch of the energy timeline."""

    start_s: float
    end_s: float
    state: str
    power_w: float

    @property
    def duration_s(self) -> float:
        """Segment length in seconds."""
        return self.end_s - self.start_s

    @property
    def energy_j(self) -> float:
        """Energy spent in this segment."""
        return self.power_w * self.duration_s


@dataclass
class EnergyResult:
    """Energy accounting for one trace replay."""

    segments: list[TimelineSegment] = field(default_factory=list)

    @property
    def total_energy_j(self) -> float:
        """Total energy across all segments."""
        return sum(seg.energy_j for seg in self.segments)

    @property
    def completion_s(self) -> float:
        """When the last transfer finished (excludes trailing tail/idle)."""
        actives = [s.end_s for s in self.segments if s.state == "active"]
        return max(actives) if actives else 0.0

    @property
    def end_s(self) -> float:
        """End time of the last segment."""
        return self.segments[-1].end_s if self.segments else 0.0

    def energy_by_state(self) -> dict[str, float]:
        """Energy totals grouped by state name."""
        out: dict[str, float] = {}
        for seg in self.segments:
            out[seg.state] = out.get(seg.state, 0.0) + seg.energy_j
        return out

    def power_at(self, t: float) -> float:
        """Instantaneous power draw at time ``t`` (pwrStrip sampling)."""
        for seg in self.segments:
            if seg.start_s <= t < seg.end_s:
                return seg.power_w
        return self.segments[-1].power_w if self.segments else 0.0


class RadioEnergyModel:
    """Replays a traffic trace through one RAT's RRC/DRX machine."""

    def __init__(
        self,
        power: RadioPowerProfile,
        drx: DrxConfig,
        capacity_bps: float,
    ) -> None:
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bps}")
        self.power = power
        self.drx = drx
        self.capacity_bps = capacity_bps

    def replay(self, transfers: Sequence[Transfer]) -> EnergyResult:
        """Walk the state machine over ``transfers`` (sorted by start)."""
        if not transfers:
            raise ValueError("empty trace")
        trace = sorted(transfers, key=lambda t: t.start_s)
        result = EnergyResult()
        clock = 0.0
        connected_until = -1.0  # end of current tail window

        for transfer in trace:
            start = max(transfer.start_s, clock)
            if start > clock:
                clock = self._fill_gap(result, clock, start, connected_until)
            if clock > connected_until:
                # Radio is idle: pay the promotion before data can flow.
                result.segments.append(
                    TimelineSegment(
                        clock,
                        clock + self.drx.promotion_s,
                        "promotion",
                        self.power.promotion_w,
                    )
                )
                clock += self.drx.promotion_s
            rate = self.capacity_bps
            if transfer.rate_hint_bps is not None:
                rate = min(rate, transfer.rate_hint_bps)
            duration = transfer.size_bytes * 8 / rate
            result.segments.append(
                TimelineSegment(
                    clock, clock + duration, "active", self.power.active_w(rate)
                )
            )
            clock += duration
            connected_until = clock + self.drx.tail_s

        # Trailing tail, then back to idle (one paging cycle for reference).
        clock = self._fill_gap(result, clock, connected_until, connected_until)
        result.segments.append(
            TimelineSegment(
                clock,
                clock + self.drx.paging_cycle_s,
                "idle",
                self.power.idle_average_w(self.drx),
            )
        )
        return result

    def _fill_gap(
        self, result: EnergyResult, t0: float, t1: float, connected_until: float
    ) -> float:
        """Account for the idle/DRX period between activity bursts."""
        if t1 <= t0:
            return t0
        clock = t0
        if connected_until > clock:
            drx_end = min(connected_until, t1)
            if drx_end - clock <= self.drx.inactivity_s:
                # Short think time: the radio never leaves continuous mode.
                state, power = "inactivity", self.power.drx_on_w
            else:
                state, power = "tail-drx", self.power.drx_average_w(self.drx)
            result.segments.append(TimelineSegment(clock, drx_end, state, power))
            clock = drx_end
        if t1 > clock:
            result.segments.append(
                TimelineSegment(clock, t1, "idle", self.power.idle_average_w(self.drx))
            )
            clock = t1
        return clock
