"""`(seed, TopologySection) -> WorldModel`: the one RNG seam of the package.

This module is the only place in :mod:`repro.topology` allowed to mint
randomness (replint REP013): it derives one named stream from the campaign
seed and hands independent child generators — via :func:`repro.core.rng.derive`
— to the road, stock and site generators in a fixed order.  Everything
downstream draws exclusively from its injected generator, so the same
``(seed, section)`` pair reproduces the world byte-identically in any
process (golden-file enforced by ``tests/test_topology.py``).

``generator="paper-campus"`` bypasses the procedural path entirely and
returns the hand-crafted replica from :func:`repro.geometry.campus.build_campus`
— seed-independent, byte-identical to the pre-refactor map.
"""

from __future__ import annotations

from repro.core.rng import RngFactory, derive
from repro.geometry.campus import build_campus
from repro.geometry.points import Point
from repro.geometry.world import WorldModel
from repro.scenario.core import TopologySection
from repro.topology.roads import grid_road_plan, interior_line_positions
from repro.topology.sites import place_enb_sites, place_gnb_sites
from repro.topology.stock import building_stock

__all__ = ["generate_world"]


def generate_world(seed: int, topology: TopologySection) -> WorldModel:
    """Build the world a scenario's topology section describes.

    Args:
        seed: Campaign seed; ignored by the ``paper-campus`` generator
            (the replica is fixed) and the sole entropy source otherwise.
        topology: The scenario's topology section.

    Returns:
        A :class:`~repro.geometry.world.WorldModel` ready for the testbed.
    """
    if topology.generator == "paper-campus":
        return build_campus(extra_gnb_sites=topology.extra_gnb_sites)
    if topology.extra_gnb_sites:
        raise ValueError(
            "extra_gnb_sites densifies the hand-crafted campus only; "
            f"size the {topology.generator!r} generator with gnb_site_count instead"
        )
    root = RngFactory(seed).stream(f"topology.{topology.generator}")
    roads_rng = derive(root)
    stock_rng = derive(root)
    gnb_rng = derive(root)
    enb_rng = derive(root)

    xs_m = interior_line_positions(
        topology.width_m, topology.road_pitch_m, topology.road_jitter_ratio, roads_rng
    )
    ys_m = interior_line_positions(
        topology.height_m, topology.road_pitch_m, topology.road_jitter_ratio, roads_rng
    )
    roads = grid_road_plan(topology.width_m, topology.height_m, xs_m, ys_m)
    buildings = building_stock(
        topology.width_m, topology.height_m, xs_m, ys_m, topology.density_class, stock_rng
    )
    gnb_sites = place_gnb_sites(
        topology.site_policy,
        topology.width_m,
        topology.height_m,
        roads,
        topology.gnb_site_count,
        gnb_rng,
    )
    enb_sites = place_enb_sites(
        gnb_sites,
        topology.enb_site_count,
        roads,
        topology.width_m,
        topology.height_m,
        enb_rng,
    )
    center = Point(topology.width_m / 2.0, topology.height_m / 2.0)
    landmarks = {"center": center}
    if topology.site_policy == "hotspot-infill":
        landmarks["hotspot"] = center
    return WorldModel(
        width_m=topology.width_m,
        height_m=topology.height_m,
        roads=roads,
        buildings=buildings,
        gnb_sites=gnb_sites,
        enb_sites=enb_sites,
        landmarks=landmarks,
    )
