"""Seeded building-stock generation by density class.

Each city block (the rectangle between adjacent road lines) is filled
independently: a density class sets the fill probability, the chance of a
twin-building courtyard split, sidewalk margins, the roof-height range and
the wall construction mix.  Footprints are inset within distinct blocks,
so the no-overlap property holds by construction; the margin keeps road
samples outdoors exactly like the hand-crafted campus does.

All randomness comes from the injected generator (replint REP013).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.buildings import Building, BuildingMap

__all__ = ["DensityClass", "DENSITY_CLASSES", "building_stock"]

#: Smallest inner footprint side worth building, meters.
_MIN_FOOTPRINT_M = 18.0

#: Smallest inner block height for a courtyard twin split, meters.
_MIN_TWIN_SPAN_M = 60.0


@dataclass(frozen=True)
class DensityClass:
    """Block-filling parameters of one settlement density.

    Attributes:
        name: Class name as used by ``TopologySection.density_class``.
        fill_ratio: Probability a block holds any building at all.
        twin_ratio: Probability a tall-enough block splits into two
            buildings around a courtyard.
        margin_m: Sidewalk margin between road line and footprint.
        min_height_m, max_height_m: Roof-height range.
        wall_classes: Construction classes drawn uniformly per building.
    """

    name: str
    fill_ratio: float
    twin_ratio: float
    margin_m: float
    min_height_m: float
    max_height_m: float
    wall_classes: tuple[str, ...]


#: The three density classes of ROADMAP item 4, rural -> urban canyon.
DENSITY_CLASSES: dict[str, DensityClass] = {
    "rural": DensityClass(
        name="rural",
        fill_ratio=0.35,
        twin_ratio=0.0,
        margin_m=14.0,
        min_height_m=4.0,
        max_height_m=9.0,
        wall_classes=("timber", "brick"),
    ),
    "suburban": DensityClass(
        name="suburban",
        fill_ratio=0.8,
        twin_ratio=0.35,
        margin_m=10.0,
        min_height_m=6.0,
        max_height_m=15.0,
        wall_classes=("brick", "concrete"),
    ),
    "urban-canyon": DensityClass(
        name="urban-canyon",
        fill_ratio=1.0,
        twin_ratio=0.6,
        margin_m=8.0,
        min_height_m=18.0,
        max_height_m=60.0,
        wall_classes=("concrete", "glass"),
    ),
}


def building_stock(
    width_m: float,
    height_m: float,
    xs_m: tuple[float, ...],
    ys_m: tuple[float, ...],
    density_class: str,
    rng: np.random.Generator,
) -> BuildingMap:
    """Fill the blocks of a road plan with buildings.

    Blocks are visited west-to-east, south-to-north, and every decision
    (fill, twin split, height, wall class) draws from ``rng`` in that
    fixed order, so a ``(seed, section)`` pair reproduces the stock
    byte-identically.
    """
    try:
        density = DENSITY_CLASSES[density_class]
    except KeyError:
        raise ValueError(
            f"unknown density class {density_class!r};"
            f" expected one of {tuple(DENSITY_CLASSES)}"
        ) from None
    x_nodes = (0.0, *xs_m, width_m)
    y_nodes = (0.0, *ys_m, height_m)
    buildings: list[Building] = []
    for xi, (x0, x1) in enumerate(zip(x_nodes, x_nodes[1:])):
        for yi, (y0, y1) in enumerate(zip(y_nodes, y_nodes[1:])):
            inner_x0 = x0 + density.margin_m
            inner_x1 = x1 - density.margin_m
            inner_y0 = y0 + density.margin_m
            inner_y1 = y1 - density.margin_m
            if (
                inner_x1 - inner_x0 < _MIN_FOOTPRINT_M
                or inner_y1 - inner_y0 < _MIN_FOOTPRINT_M
            ):
                continue
            if float(rng.random()) >= density.fill_ratio:
                continue
            label = f"G{xi}-{yi}"
            twin = (
                inner_y1 - inner_y0 >= _MIN_TWIN_SPAN_M
                and float(rng.random()) < density.twin_ratio
            )
            if twin:
                mid = (inner_y0 + inner_y1) / 2.0
                spans = (
                    (f"{label}a", inner_y0, mid - density.margin_m / 2.0),
                    (f"{label}b", mid + density.margin_m / 2.0, inner_y1),
                )
            else:
                spans = ((label, inner_y0, inner_y1),)
            for name, span_y0, span_y1 in spans:
                buildings.append(
                    Building(
                        inner_x0,
                        span_y0,
                        inner_x1,
                        span_y1,
                        name=name,
                        height_m=float(rng.uniform(density.min_height_m, density.max_height_m)),
                        wall_loss_class=density.wall_classes[
                            int(rng.integers(len(density.wall_classes)))
                        ],
                    )
                )
    return BuildingMap(buildings)
