"""Seeded site-placement policies for generated worlds.

Three gNB policies (matching ``TopologySection.site_policy``):

* ``hex-grid`` — the classic cellular-planning layout: a hexagonal
  lattice sized to the site count, with a small placement jitter
  (rooftop sites need not fall on roads).
* ``road-following`` — street-level deployments: sites sampled along the
  road network, length-weighted, with a minimum-separation rejection
  pass (the paper's campus looks like this).
* ``hotspot-infill`` — capacity-driven densification: sites cluster
  around the central hotspot landmark with a Gaussian radial profile
  (stadium / flash-crowd deployments).

The 4G layer mirrors the measured campus: the first eNBs are co-sited
NSA anchors on the gNB masts, the remainder street-level micro infill.

All randomness comes from the injected generator (replint REP013).
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.points import Point, Segment
from repro.geometry.world import SectorSpec, SiteSpec

__all__ = [
    "hex_grid_positions",
    "road_following_positions",
    "hotspot_infill_positions",
    "place_gnb_sites",
    "place_enb_sites",
]

#: Keep generated sites this far inside the extent, meters.
_EDGE_MARGIN_M = 10.0

#: First NR PCI of generated gNB layers (clear of the LTE range at 200).
_NR_PCI_BASE = 60

#: First LTE PCI of generated eNB layers.
_LTE_PCI_BASE = 200

#: Rejection attempts per road-following site before taking the best draw.
_PLACEMENT_ATTEMPTS = 8


def _clamp(value_m: float, extent_m: float) -> float:
    return min(max(value_m, _EDGE_MARGIN_M), extent_m - _EDGE_MARGIN_M)


def hex_grid_positions(
    width_m: float,
    height_m: float,
    site_count: int,
    rng: np.random.Generator,
) -> tuple[Point, ...]:
    """A hexagonal lattice of ``site_count`` positions with small jitter."""
    cols = max(1, math.ceil(math.sqrt(site_count * width_m / height_m)))
    rows = max(1, math.ceil(site_count / cols))
    dx_m = width_m / cols
    dy_m = height_m / rows
    jitter_m = 0.05 * min(dx_m, dy_m)
    positions: list[Point] = []
    for r in range(rows):
        shift = 0.25 if r % 2 else -0.25
        for c in range(cols):
            if len(positions) >= site_count:
                break
            x_m = (c + 0.5 + shift) * dx_m + float(rng.uniform(-jitter_m, jitter_m))
            y_m = (r + 0.5) * dy_m + float(rng.uniform(-jitter_m, jitter_m))
            positions.append(Point(_clamp(x_m, width_m), _clamp(y_m, height_m)))
    return tuple(positions)


def _point_along_roads(
    roads: tuple[Segment, ...],
    cumulative_m: np.ndarray,
    rng: np.random.Generator,
) -> Point:
    total_m = float(cumulative_m[-1])
    offset_m = float(rng.random()) * total_m
    index = int(np.searchsorted(cumulative_m, offset_m, side="right"))
    index = min(index, len(roads) - 1)
    segment = roads[index]
    fraction = float(rng.random())
    return segment.interpolate(fraction)


def road_following_positions(
    roads: tuple[Segment, ...],
    site_count: int,
    min_separation_m: float,
    rng: np.random.Generator,
) -> tuple[Point, ...]:
    """Length-weighted positions along the roads, separation-rejected.

    Each site draws up to a fixed number of candidates and accepts the
    first one at least ``min_separation_m`` from every placed site; when
    all candidates fail, the most isolated candidate wins (the generator
    must terminate for any count).
    """
    if not roads:
        raise ValueError("road-following placement needs a non-empty road network")
    lengths_m = np.array([seg.length for seg in roads])
    cumulative_m = np.cumsum(lengths_m)
    positions: list[Point] = []
    for _ in range(site_count):
        best: Point | None = None
        best_clearance_m = -1.0
        for _attempt in range(_PLACEMENT_ATTEMPTS):
            candidate = _point_along_roads(roads, cumulative_m, rng)
            clearance_m = min(
                (candidate.distance_to(p) for p in positions), default=math.inf
            )
            if clearance_m >= min_separation_m:
                best = candidate
                break
            if clearance_m > best_clearance_m:
                best = candidate
                best_clearance_m = clearance_m
        assert best is not None
        positions.append(best)
    return tuple(positions)


def hotspot_infill_positions(
    width_m: float,
    height_m: float,
    site_count: int,
    rng: np.random.Generator,
) -> tuple[Point, ...]:
    """Sites clustered around the central hotspot, densest at the core."""
    center = Point(width_m / 2.0, height_m / 2.0)
    sigma_m = min(width_m, height_m) / 6.0
    positions: list[Point] = [center]
    while len(positions) < site_count:
        radius_m = abs(float(rng.normal(0.0, sigma_m))) + 0.15 * sigma_m
        angle = float(rng.uniform(0.0, 2.0 * math.pi))
        x_m = center.x + radius_m * math.sin(angle)
        y_m = center.y + radius_m * math.cos(angle)
        positions.append(Point(_clamp(x_m, width_m), _clamp(y_m, height_m)))
    return tuple(positions[:site_count])


def place_gnb_sites(
    site_policy: str,
    width_m: float,
    height_m: float,
    roads: tuple[Segment, ...],
    site_count: int,
    rng: np.random.Generator,
) -> tuple[SiteSpec, ...]:
    """Generate the 5G layer: macro sites with three sectors each.

    Sector boresights are 120 degrees apart with a per-site random
    rotation; NR PCIs run sequentially from the measured campus's range.
    """
    if site_policy == "hex-grid":
        positions = hex_grid_positions(width_m, height_m, site_count, rng)
    elif site_policy == "road-following":
        separation_m = 0.5 * math.sqrt(width_m * height_m / site_count)
        positions = road_following_positions(roads, site_count, separation_m, rng)
    elif site_policy == "hotspot-infill":
        positions = hotspot_infill_positions(width_m, height_m, site_count, rng)
    else:
        raise ValueError(f"unknown site policy {site_policy!r}")
    sites: list[SiteSpec] = []
    pci = _NR_PCI_BASE
    for i, position in enumerate(positions):
        rotation_deg = float(rng.uniform(0.0, 120.0))
        sectors = tuple(
            SectorSpec(pci + k, (rotation_deg + 120.0 * k) % 360.0) for k in range(3)
        )
        pci += 3
        sites.append(SiteSpec(f"gnb-{i + 1}", position, sectors))
    return tuple(sites)


def place_enb_sites(
    gnb_sites: tuple[SiteSpec, ...],
    site_count: int,
    roads: tuple[Segment, ...],
    width_m: float,
    height_m: float,
    rng: np.random.Generator,
) -> tuple[SiteSpec, ...]:
    """Generate the 4G layer: co-sited NSA anchors plus micro infill.

    The first ``min(site_count, len(gnb_sites))`` eNBs share the gNB
    masts (three macro sectors — the anchors every NSA attach rides on);
    any remainder are street-level two-sector micros placed along the
    roads like the campus's seven 4G-only infill sites.
    """
    sites: list[SiteSpec] = []
    pci = _LTE_PCI_BASE
    anchor_count = min(site_count, len(gnb_sites))
    for i in range(anchor_count):
        rotation_deg = float(rng.uniform(0.0, 120.0))
        sectors = tuple(
            SectorSpec(pci + k, (rotation_deg + 120.0 * k) % 360.0) for k in range(3)
        )
        pci += 3
        sites.append(SiteSpec(f"enb-{i + 1}", gnb_sites[i].position, sectors))
    infill_count = site_count - anchor_count
    if infill_count > 0:
        separation_m = 0.4 * math.sqrt(width_m * height_m / max(infill_count, 1))
        positions = road_following_positions(roads, infill_count, separation_m, rng)
        for j, position in enumerate(positions):
            rotation_deg = float(rng.uniform(0.0, 180.0))
            sectors = tuple(
                SectorSpec(pci + k, (rotation_deg + 180.0 * k) % 360.0) for k in range(2)
            )
            pci += 2
            sites.append(
                SiteSpec(
                    f"enb-{anchor_count + j + 1}",
                    position,
                    sectors,
                    power_class="micro",
                )
            )
    return tuple(sites)
