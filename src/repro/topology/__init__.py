"""Seeded procedural topologies and generative workloads (ROADMAP item 4).

``generate_world(seed, scenario.topology)`` is the package's front door:
it turns a topology section into a :class:`~repro.geometry.world.WorldModel`
— either the hand-crafted ``paper-campus`` replica or a procedural
district (roads by :mod:`~repro.topology.roads`, building stock by
:mod:`~repro.topology.stock`, radio sites by :mod:`~repro.topology.sites`).
:func:`~repro.topology.workload.synthesize_workload` populates a world
with per-user traffic/mobility mixes.

Determinism contract: :mod:`~repro.topology.generate` is the only module
here that may mint RNGs (from the campaign seed, via ``core.rng``); every
other generator draws from an injected ``numpy`` generator.  replint
REP013 enforces both halves.
"""

from repro.topology.generate import generate_world
from repro.topology.roads import grid_road_plan, interior_line_positions
from repro.topology.sites import (
    hex_grid_positions,
    hotspot_infill_positions,
    place_enb_sites,
    place_gnb_sites,
    road_following_positions,
)
from repro.topology.stock import DENSITY_CLASSES, DensityClass, building_stock
from repro.topology.workload import (
    SynthesizedWorkload,
    UserWorkload,
    synthesize_workload,
    walker_for_user,
)

__all__ = [
    "DENSITY_CLASSES",
    "DensityClass",
    "SynthesizedWorkload",
    "UserWorkload",
    "building_stock",
    "generate_world",
    "grid_road_plan",
    "hex_grid_positions",
    "hotspot_infill_positions",
    "interior_line_positions",
    "place_enb_sites",
    "place_gnb_sites",
    "road_following_positions",
    "synthesize_workload",
    "walker_for_user",
]
