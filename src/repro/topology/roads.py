"""Seeded road-network generation: grid and jittered-grid block plans.

Generated networks differ from the hand-crafted campus in one structural
way: segments are *split at every intersection*, so crossing roads share
endpoint nodes exactly.  That makes the
:class:`~repro.geometry.world.RoadGraph` junction adjacency dense (walkers
can turn at every crossing) and the connectivity property trivially
checkable.  The paper campus keeps its historical full-span avenues for
byte-compatibility.

All randomness comes from the injected generator; these functions never
construct RNGs themselves (replint REP013).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.points import Point, Segment

__all__ = ["interior_line_positions", "grid_road_plan"]


def interior_line_positions(
    extent_m: float,
    pitch_m: float,
    jitter_ratio: float,
    rng: np.random.Generator,
) -> tuple[float, ...]:
    """Positions of interior road lines across one axis of the extent.

    Lines sit at an even step approximating ``pitch_m``, each displaced by
    a uniform jitter of up to ``jitter_ratio / 2`` of the step, so the
    monotonic ordering (and a >= half-step clearance between neighbours)
    is preserved for any ``jitter_ratio <= 0.4``.
    """
    if extent_m <= 0.0:
        raise ValueError(f"extent must be positive, got {extent_m}")
    if pitch_m <= 0.0:
        raise ValueError(f"pitch must be positive, got {pitch_m}")
    count = max(1, round(extent_m / pitch_m) - 1)
    step_m = extent_m / (count + 1)
    positions: list[float] = []
    for i in range(count):
        base_m = (i + 1) * step_m
        offset_m = float(rng.uniform(-0.5, 0.5)) * jitter_ratio * step_m
        positions.append(base_m + offset_m)
    return tuple(positions)


def grid_road_plan(
    width_m: float,
    height_m: float,
    xs_m: tuple[float, ...],
    ys_m: tuple[float, ...],
) -> tuple[Segment, ...]:
    """Split-segment grid over the given interior line positions.

    Vertical roads run border to border at each ``xs_m`` position, split
    at every ``ys_m`` crossing (and vice versa), so each intersection is a
    shared endpoint node.  Purely deterministic given the line positions.
    """
    roads: list[Segment] = []
    y_nodes = (0.0, *ys_m, height_m)
    x_nodes = (0.0, *xs_m, width_m)
    for x in xs_m:
        for y0, y1 in zip(y_nodes, y_nodes[1:]):
            roads.append(Segment(Point(x, y0), Point(x, y1)))
    for y in ys_m:
        for x0, x1 in zip(x_nodes, x_nodes[1:]):
            roads.append(Segment(Point(x0, y), Point(x1, y)))
    return tuple(roads)
