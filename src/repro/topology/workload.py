"""Seeded per-user workload synthesis over a generated world.

The paper measured one walking user; city-scale campaigns need a
population.  :func:`synthesize_workload` draws, per user: a home road
(length-weighted over the world's road graph, so busy avenues attract
users), a walking speed inside the campaign's 3-10 km/h envelope, an
application mix (a Dirichlet draw concentrated on the scenario's
web/video/file ratios) and an offered load scaled by the scenario's
``offered_load_ratio``.  :func:`walker_for_user` turns a user into a
:class:`~repro.mobility.walker.RouteWalker` over the same world.

All randomness comes from the injected generator (replint REP013);
callers derive it from the campaign seed via :func:`repro.core.rng.derive`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.world import WorldModel
from repro.mobility.walker import MAX_SPEED_KMH, MIN_SPEED_KMH, RouteWalker
from repro.scenario.core import WorkloadSection

__all__ = [
    "UserWorkload",
    "SynthesizedWorkload",
    "synthesize_workload",
    "walker_for_user",
]

#: Nominal offered load per application class at mix weight 1.0, Mbit/s
#: (web browsing, adaptive video, bulk file transfer — Sec. 5's workloads).
WEB_OFFERED_MBPS = 2.0
VIDEO_OFFERED_MBPS = 8.0
FILE_OFFERED_MBPS = 25.0

#: Dirichlet concentration around the scenario's app-mix ratios; higher
#: values keep per-user mixes closer to the population mix.
_MIX_CONCENTRATION = 24.0

#: Floor keeping Dirichlet parameters strictly positive when a ratio is 0.
_MIX_ALPHA_FLOOR = 1e-3


@dataclass(frozen=True)
class UserWorkload:
    """One synthesized user: where they walk and what they pull.

    Attributes:
        user_id: Stable index within the synthesized population.
        home_road_index: Index into ``world.roads`` of the user's home
            segment (length-weighted draw).
        walk_speed_kmh: Walking speed, inside the campaign envelope.
        web_ratio, video_ratio, file_ratio: Per-user application mix
            (sums to 1).
        offered_load_mbps: Mean downlink demand when active.
    """

    user_id: int
    home_road_index: int
    walk_speed_kmh: float
    web_ratio: float
    video_ratio: float
    file_ratio: float
    offered_load_mbps: float


@dataclass(frozen=True)
class SynthesizedWorkload:
    """The full synthesized population of one scenario."""

    users: tuple[UserWorkload, ...]

    @property
    def total_offered_load_mbps(self) -> float:
        """Aggregate downlink demand of the population."""
        return sum(user.offered_load_mbps for user in self.users)

    @property
    def mean_walk_speed_kmh(self) -> float:
        """Population mean walking speed."""
        return sum(user.walk_speed_kmh for user in self.users) / len(self.users)

    def app_mix(self) -> dict[str, float]:
        """Population-level application mix (averaged over users)."""
        n = len(self.users)
        return {
            "web": sum(u.web_ratio for u in self.users) / n,
            "video": sum(u.video_ratio for u in self.users) / n,
            "file": sum(u.file_ratio for u in self.users) / n,
        }


def synthesize_workload(
    world: WorldModel,
    workload: WorkloadSection,
    rng: np.random.Generator,
) -> SynthesizedWorkload:
    """Draw ``workload.user_count`` users over ``world``.

    Every user consumes a fixed number of draws in a fixed order, so the
    population is byte-reproducible from the injected generator's state.
    """
    if not world.roads:
        raise ValueError("cannot synthesize a workload over a world with no roads")
    lengths_m = np.array([seg.length for seg in world.roads])
    weights = lengths_m / lengths_m.sum()
    mix_weights = np.array(
        [workload.web_mix_ratio, workload.video_mix_ratio, workload.file_mix_ratio]
    )
    alpha = mix_weights / mix_weights.sum() * _MIX_CONCENTRATION + _MIX_ALPHA_FLOOR
    nominal_mbps = np.array([WEB_OFFERED_MBPS, VIDEO_OFFERED_MBPS, FILE_OFFERED_MBPS])
    users: list[UserWorkload] = []
    for user_id in range(workload.user_count):
        home_road_index = int(rng.choice(len(world.roads), p=weights))
        speed_kmh = float(
            np.clip(
                workload.walk_speed_kmh * float(rng.uniform(0.8, 1.2)),
                MIN_SPEED_KMH,
                MAX_SPEED_KMH,
            )
        )
        mix = rng.dirichlet(alpha)
        demand_scale = float(rng.uniform(0.7, 1.3))
        offered_mbps = (
            workload.offered_load_ratio * demand_scale * float(mix @ nominal_mbps)
        )
        users.append(
            UserWorkload(
                user_id=user_id,
                home_road_index=home_road_index,
                walk_speed_kmh=speed_kmh,
                web_ratio=float(mix[0]),
                video_ratio=float(mix[1]),
                file_ratio=float(mix[2]),
                offered_load_mbps=offered_mbps,
            )
        )
    return SynthesizedWorkload(users=tuple(users))


def walker_for_user(
    world: WorldModel,
    user: UserWorkload,
    rng: np.random.Generator,
) -> RouteWalker:
    """A route walker moving at the user's synthesized speed."""
    return RouteWalker(world, rng, speed_kmh=user.walk_speed_kmh)
