"""On-disk result cache for experiment runs.

Layout::

    .repro_cache/
      <source-hash>/                 one directory per code version
        fig7--seed=7.pkl             pickled {"result": ..., "record": ...}
        fig7--seed=7--scn=51f3490f674ab1b6.pkl   run under a named scenario
        tab1--seed=7--a1b2c3d4.pkl   entries with extra (kwargs) key material

The cache key is (experiment name, seed, source hash[, scenario digest]
[, extra]).  Scenario digests come from
:func:`repro.scenario.scenario_digest`, so runs of the same experiment
under different deployments never collide.  The
source hash digests every ``*.py`` file of the installed ``repro``
package, so any code change — an experiment tweak, a simulator fix —
silently invalidates all previous entries; stale directories from older
versions can be deleted wholesale (``rm -rf .repro_cache``) at any time.

Entries are pickles because experiment results are rich dataclasses
carrying numpy arrays; they are trusted local artifacts written by the
runner itself, not an interchange format (use ``--json`` for that).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.metrics import core as metrics
from repro.runner.instrument import RunRecord

__all__ = ["DEFAULT_CACHE_DIR", "CacheEntry", "ResultCache", "source_hash"]

#: Default cache location; override per call with ``ResultCache(root=...)``,
#: via the CLI's ``--cache-dir``, or with the ``REPRO_CACHE_DIR`` env var.
DEFAULT_CACHE_DIR = Path(".repro_cache")

_ENTRY_SUFFIX = ".pkl"

# source_hash() walks and digests ~180 files; memoize per package path.
_source_hash_memo: dict[str, str] = {}


def source_hash(package_dir: Path | None = None) -> str:
    """A 16-hex-digit digest of the ``repro`` package's source tree.

    Hashes file *contents* (not mtimes), so reinstalling identical code
    keeps the cache warm while any real edit invalidates it.
    """
    if package_dir is None:
        import repro

        package_dir = Path(repro.__file__).resolve().parent
    key = str(package_dir)
    cached = _source_hash_memo.get(key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(package_dir.rglob("*.py")):
        digest.update(str(path.relative_to(package_dir)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    result = digest.hexdigest()[:16]
    _source_hash_memo[key] = result
    return result


@dataclass(frozen=True)
class CacheEntry:
    """A deserialized cache hit."""

    result: Any
    record: RunRecord


def default_cache_dir() -> Path:
    """The cache root honouring the ``REPRO_CACHE_DIR`` environment variable."""
    override = os.environ.get("REPRO_CACHE_DIR")
    return Path(override) if override else DEFAULT_CACHE_DIR


class ResultCache:
    """Pickle-backed store of experiment results + their run records."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def _entry_path(
        self, name: str, seed: int, extra: str = "", scenario_digest: str = ""
    ) -> Path:
        stem = f"{name}--seed={seed}"
        if scenario_digest:
            stem += f"--scn={scenario_digest}"
        if extra:
            stem += f"--{hashlib.sha256(extra.encode()).hexdigest()[:8]}"
        return self.root / source_hash() / (stem + _ENTRY_SUFFIX)

    def load(
        self, name: str, seed: int, extra: str = "", scenario_digest: str = ""
    ) -> CacheEntry | None:
        """Return the cached entry, or None on miss or corruption.

        A corrupt entry (interrupted write, version skew) is deleted and
        treated as a miss rather than failing the campaign.
        """
        path = self._entry_path(name, seed, extra, scenario_digest)
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
            return CacheEntry(
                result=payload["result"], record=payload["record"].as_cached()
            )
        except FileNotFoundError:
            return None
        except Exception as exc:
            warnings.warn(
                f"dropping corrupt cache entry {path}: {type(exc).__name__}: {exc}",
                stacklevel=2,
            )
            metrics.current().counter("cache.corrupt_dropped_count").inc()
            path.unlink(missing_ok=True)
            return None

    def store(
        self,
        name: str,
        seed: int,
        result: Any,
        record: RunRecord,
        extra: str = "",
        scenario_digest: str = "",
    ) -> Path:
        """Persist ``result`` + ``record``; atomic against readers."""
        path = self._entry_path(name, seed, extra, scenario_digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(
                    {"result": result, "record": record},
                    handle,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            tmp.replace(path)
        finally:
            # An unpicklable result must not leave a stray .tmp.<pid>
            # behind; after the successful rename this is a no-op.
            tmp.unlink(missing_ok=True)
        return path

    def clear(self) -> int:
        """Delete every entry (all code versions); returns entries removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.rglob(f"*{_ENTRY_SUFFIX}"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
