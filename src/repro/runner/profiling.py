"""Campaign profiling: cProfile collection behind an install stack.

``repro run --profile PATH`` installs a :class:`ProfileCollector`; while
one is active, :func:`repro.runner.instrument.instrumented_call` wraps
each experiment in its own ``cProfile.Profile``, attaches the run's top-N
hot functions to the :class:`~repro.runner.instrument.RunRecord`
(``profile_top``), and feeds the raw profile back here so the CLI can
dump one combined ``pstats`` file for the whole campaign.

Profiling forces a serial, cache-bypassing campaign (like ``--trace``):
cProfile state is per-process and a cache hit would profile nothing.
The install stack mirrors ``repro.trace`` so nesting in tests is safe.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Any

from repro.core.results import ResultTable

__all__ = [
    "DEFAULT_TOP_N",
    "ProfileCollector",
    "active",
    "install",
    "profiled_call",
    "top_functions",
    "uninstall",
]

DEFAULT_TOP_N = 15


def _format_location(func: tuple[str, int, str]) -> str:
    filename, line, name = func
    if filename == "~":  # builtins have no file
        return name
    short = "/".join(filename.split("/")[-2:])
    return f"{short}:{line}({name})"


def top_functions(stats: pstats.Stats, n: int = DEFAULT_TOP_N) -> list[dict[str, Any]]:
    """The ``n`` hottest functions by cumulative time, as plain dicts.

    Rows are JSON-able and picklable so they can ride inside a
    :class:`~repro.runner.instrument.RunRecord`.
    """
    rows: list[dict[str, Any]] = []
    for func, (cc, nc, tottime, cumtime, _callers) in stats.stats.items():
        rows.append(
            {
                "function": _format_location(func),
                "ncalls": int(nc),
                "tottime_s": float(tottime),
                "cumtime_s": float(cumtime),
            }
        )
    rows.sort(key=lambda row: (-row["cumtime_s"], row["function"]))
    return rows[:n]


class ProfileCollector:
    """Accumulates per-run profiles into one campaign-level ``pstats`` view."""

    def __init__(self, top_n: int = DEFAULT_TOP_N) -> None:
        self.top_n = top_n
        self.runs = 0
        self._stats: pstats.Stats | None = None

    def record(self, experiment: str, profile: cProfile.Profile) -> list[dict[str, Any]]:
        """Fold one run's profile in; returns its own top-N rows."""
        run_stats = pstats.Stats(profile)
        if self._stats is None:
            self._stats = run_stats
        else:
            self._stats.add(profile)
        self.runs += 1
        return top_functions(run_stats, self.top_n)

    @property
    def empty(self) -> bool:
        return self._stats is None

    def dump(self, path: str) -> None:
        """Write the combined profile as a binary ``pstats`` dump.

        Load it later with ``pstats.Stats(path)`` or
        ``python -m pstats PATH``.

        Raises:
            RuntimeError: if no runs were profiled.
        """
        if self._stats is None:
            raise RuntimeError("no profiled runs to dump")
        self._stats.dump_stats(path)

    def top_table(self) -> ResultTable:
        """The combined campaign top-N as a renderable table."""
        table = ResultTable(
            f"Profile — top {self.top_n} by cumulative time ({self.runs} run(s))",
            ["function", "calls", "tottime (s)", "cumtime (s)"],
        )
        if self._stats is None:
            table.add_row(["(no profiled runs)", "", "", ""])
            return table
        for row in top_functions(self._stats, self.top_n):
            table.add_row(
                [
                    row["function"],
                    row["ncalls"],
                    f"{row['tottime_s']:.3f}",
                    f"{row['cumtime_s']:.3f}",
                ]
            )
        return table


# Stack of installed collectors; the top is what `active()` returns.
_installed: list[ProfileCollector] = []


def active() -> ProfileCollector | None:
    """The collector profiled runs should report to, if any."""
    return _installed[-1] if _installed else None


def install(collector: ProfileCollector) -> ProfileCollector:
    """Make ``collector`` the active profiling sink until :func:`uninstall`."""
    _installed.append(collector)
    return collector


def uninstall(collector: ProfileCollector | None = None) -> None:
    """Pop the active collector (validating it is ``collector`` when given)."""
    if not _installed:
        raise RuntimeError("no profile collector installed")
    if collector is not None and _installed[-1] is not collector:
        raise RuntimeError("uninstall out of order: a different collector is active")
    _installed.pop()


def profiled_call(experiment: str, collector: ProfileCollector, fn):
    """Run ``fn`` under its own profiler; returns ``(result, top_rows)``."""
    profile = cProfile.Profile()
    profile.enable()
    try:
        result = fn()
    finally:
        profile.disable()
    return result, collector.record(experiment, profile)
