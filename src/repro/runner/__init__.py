"""Campaign runner: cached, parallel execution of the experiment catalogue.

The paper's measurement campaign ran for seven months; reproducing all of
its ~33 tables and figures is itself a campaign.  This package treats that
campaign as a first-class subsystem:

* :mod:`repro.runner.cache` — an on-disk result cache under
  ``.repro_cache/``, keyed by (experiment, seed, source hash) so results
  survive across processes and invalidate automatically on code change.
* :mod:`repro.runner.instrument` — per-run provenance: wall time,
  simulator event counters, RNG streams drawn, peak RSS.
* :mod:`repro.runner.worker` — the picklable per-experiment entry point
  executed inside pool workers.
* :mod:`repro.runner.campaign` — the orchestrator fanning experiments out
  across a :class:`concurrent.futures.ProcessPoolExecutor`.
* :mod:`repro.runner.sweep` — scenario sweeps: the same experiment set
  run under every point of a parameter grid, with per-point metrics.
* :mod:`repro.runner.profiling` — cProfile collection for
  ``repro run --profile`` (per-run top-N plus a combined pstats dump).
* :mod:`repro.runner.bench` — ``repro bench``: BENCH_<date>.json
  trajectory points and the wall-time/KPI regression gate.
"""

from repro.runner.bench import bench_payload, compare_payloads
from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache, source_hash
from repro.runner.campaign import (
    CampaignOutcome,
    campaign_timings,
    merged_metrics,
    run_campaign,
)
from repro.runner.instrument import RunRecord, instrumented_call, streams_by_worker
from repro.runner.profiling import ProfileCollector
from repro.runner.sweep import SweepPoint, run_sweep
from repro.runner.worker import ExperimentFailure, execute_experiment, scan_stalls

__all__ = [
    "DEFAULT_CACHE_DIR",
    "CampaignOutcome",
    "ExperimentFailure",
    "ProfileCollector",
    "ResultCache",
    "RunRecord",
    "SweepPoint",
    "bench_payload",
    "campaign_timings",
    "compare_payloads",
    "execute_experiment",
    "instrumented_call",
    "merged_metrics",
    "run_campaign",
    "run_sweep",
    "scan_stalls",
    "source_hash",
    "streams_by_worker",
]
