"""Per-run instrumentation records.

Every campaign-runner execution carries a :class:`RunRecord` describing
what the run cost: wall time, how many discrete-event-simulator events it
scheduled/executed/cancelled (from the process-wide counters in
:mod:`repro.net.sim`), how many named RNG streams it drew
(:func:`repro.core.rng.streams_drawn`) and the process peak RSS.  Records
are plain picklable dataclasses so they travel back from pool workers and
into the on-disk cache unchanged.

RNG stream counts are strictly **per-process**: each record's figure is a
delta of its own worker's counter (which resets on fork), tagged with the
worker PID.  Summing deltas across records from different workers as if
they shared one counter is only valid per PID — use
:func:`streams_by_worker` to aggregate a parallel campaign correctly.
"""

from __future__ import annotations

import dataclasses
import os
import sys
import time
import traceback as traceback_module
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import Any, TypeVar

from repro.audit import core as audit
from repro.audit.export import dump_basename, write_jsonl
from repro.core import rng
from repro.metrics import core as metrics
from repro.net import sim
from repro.runner import profiling
from repro.trace import core as trace
from repro.trace.analysis import summarize

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

__all__ = ["RunRecord", "instrumented_call", "peak_rss_kib", "streams_by_worker"]

T = TypeVar("T")


def peak_rss_kib() -> int:
    """Process peak resident set size in KiB (0 where unavailable).

    ``ru_maxrss`` is a process-lifetime high-water mark, so within one
    worker it is monotone across runs; treat it as "heap never exceeded
    this while the run finished", not as the run's own allocation.
    :func:`instrumented_call` samples it before and after a run so a
    record can also report how much the ceiling *grew* during the run
    (``rss_growth_kib``) — the only per-run figure ``ru_maxrss`` supports.
    """
    if resource is None:
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # macOS reports bytes, Linux reports KiB
        peak //= 1024
    return int(peak)


@dataclass(frozen=True)
class RunRecord:
    """Provenance for one experiment execution.

    ``peak_rss_kib`` is the process-lifetime high-water mark at the end of
    the run (monotone within a worker); ``rss_growth_kib`` is how much that
    mark grew *during* the run — 0 when the run fit inside memory the
    worker had already touched.  ``trace_summary`` carries the tracer's
    emission-count delta when the run executed under an installed tracer,
    else ``None``.  ``metrics`` is the run's KPI-registry snapshot
    (:meth:`repro.metrics.MetricRegistry.snapshot`) when the experiment
    registered any metrics; snapshots are mergeable across runs and
    workers (see :func:`repro.metrics.merge_snapshots`).  ``profile_top``
    carries the run's hottest functions when a
    :class:`~repro.runner.profiling.ProfileCollector` was installed.
    ``scenario_digest`` identifies the :class:`repro.scenario.Scenario`
    the run executed under (empty for pre-scenario records).
    ``failure_traceback`` carries the full formatted traceback when the
    run raised (empty for successful runs) and ``audit_dump_path`` the
    flight-recorder dump written for a failed or violating run, so
    parallel-campaign failures are debuggable post-hoc.  The heartbeat
    pair are this worker's ``time.monotonic()`` stamps around the run
    (0.0 outside heartbeat-tracked campaigns) — the stall watchdog reads
    the same stamps from disk while the run is still in flight.
    """

    experiment: str
    seed: int
    cached: bool
    wall_time_s: float
    events_scheduled: int
    events_executed: int
    events_cancelled: int
    rng_streams_drawn: int
    peak_rss_kib: int
    worker_pid: int
    rss_growth_kib: int = 0
    scenario_digest: str = ""
    trace_summary: dict[str, int] | None = None
    metrics: dict[str, Any] | None = None
    profile_top: list[dict[str, Any]] | None = None
    failure_traceback: str = ""
    audit_dump_path: str = ""
    heartbeat_started_s: float = 0.0
    heartbeat_finished_s: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict form for JSON export."""
        return dataclasses.asdict(self)

    def as_cached(self) -> "RunRecord":
        """A copy marked as served from the cache."""
        return dataclasses.replace(self, cached=True)


def streams_by_worker(records: Iterable[RunRecord]) -> dict[int, int]:
    """Total RNG streams drawn per worker process across ``records``.

    Cached records are excluded: a cache hit replays a figure measured by
    whichever process originally ran the experiment, so attributing it to
    the serving worker would double-count streams that were never drawn
    in this campaign.
    """
    totals: dict[int, int] = {}
    for record in records:
        if record.cached:
            continue
        totals[record.worker_pid] = (
            totals.get(record.worker_pid, 0) + record.rng_streams_drawn
        )
    return dict(sorted(totals.items()))


def _audit_dump(auditor: audit.Auditor, experiment: str, seed: int, directory: str) -> str:
    """Write the flight recorder under ``directory``; returns the path."""
    path = os.path.join(directory, dump_basename(experiment, seed))
    write_jsonl(auditor, path, meta={"experiment": experiment, "seed": seed})
    return path


def instrumented_call(
    experiment: str, seed: int, fn: Callable[[], T], scenario_digest: str = ""
) -> tuple[T, RunRecord]:
    """Run ``fn`` and capture a :class:`RunRecord` around it.

    Simulator/RNG figures are deltas of the process-wide counters, so the
    record reflects exactly the work done between entry and exit — including
    any simulators the experiment created internally.

    Unless ``REPRO_NO_AUDIT=1``, the run executes under a per-run
    :class:`repro.audit.Auditor`: components register conservation
    ledgers at construction, residuals are asserted at the run-end
    checkpoint, and ``audit.*`` KPIs are exported into the run's metric
    registry.  A probe violation raises :class:`repro.audit.AuditError`
    (the run *fails*); when the run raises — for any reason — the flight
    recorder is dumped under ``$REPRO_AUDIT_DIR`` (if set) and a failure
    :class:`RunRecord` plus the dump path are attached to the exception
    for post-hoc debugging.  ``$REPRO_AUDIT_DUMP`` dumps every run,
    violating or not (the determinism gate in CI).
    """
    sim_before = sim.global_counters()
    rng_before = rng.streams_drawn()
    rss_before = peak_rss_kib()
    tracer = trace.current()
    trace_before = summarize(tracer) if tracer.enabled else None
    auditor = audit.install(audit.Auditor()) if audit.audits_enabled() else None
    registry = metrics.install(metrics.MetricRegistry(origin=f"{experiment}:{seed}"))
    collector = profiling.active()
    started = time.perf_counter()

    def make_record(
        wall: float, failure_traceback: str = "", audit_dump_path: str = ""
    ) -> RunRecord:
        sim_after = sim.global_counters()
        rss_after = peak_rss_kib()
        trace_summary = None
        if trace_before is not None:
            trace_after = summarize(tracer)
            trace_summary = {
                key: trace_after[key] - trace_before[key] for key in trace_after
            }
        snapshot = registry.snapshot()
        return RunRecord(
            experiment=experiment,
            seed=seed,
            cached=False,
            wall_time_s=wall,
            events_scheduled=sim_after.scheduled - sim_before.scheduled,
            events_executed=sim_after.executed - sim_before.executed,
            events_cancelled=sim_after.cancelled - sim_before.cancelled,
            rng_streams_drawn=rng.streams_drawn() - rng_before,
            peak_rss_kib=rss_after,
            worker_pid=os.getpid(),
            rss_growth_kib=max(rss_after - rss_before, 0),
            scenario_digest=scenario_digest,
            trace_summary=trace_summary,
            metrics=snapshot if snapshot["metrics"] else None,
            profile_top=profile_top,
            failure_traceback=failure_traceback,
            audit_dump_path=audit_dump_path,
        )

    try:
        if collector is not None:
            result, profile_top = profiling.profiled_call(experiment, collector, fn)
        else:
            result = fn()
            profile_top = None
    except Exception as exc:
        profile_top = None
        if auditor is not None:
            auditor.note(
                "audit.run.exception_count", 0.0, experiment=experiment,
                error=type(exc).__name__,
            )
            dump_dir = os.environ.get("REPRO_AUDIT_DIR", "")
            dump_path = (
                _audit_dump(auditor, experiment, seed, dump_dir) if dump_dir else ""
            )
            # Best-effort attach for post-hoc debugging; an exception type
            # with __slots__ simply travels without the extras.
            try:
                exc.audit_dump_path = dump_path
                exc.run_record = make_record(
                    time.perf_counter() - started,
                    failure_traceback=traceback_module.format_exc(),
                    audit_dump_path=dump_path,
                )
            except Exception:
                pass
        raise
    finally:
        wall = time.perf_counter() - started
        metrics.uninstall(registry)
        if auditor is not None:
            audit.uninstall(auditor)
    if auditor is not None:
        auditor.checkpoint("run-end")
        dump_dir = os.environ.get("REPRO_AUDIT_DUMP", "")
        dump_path = _audit_dump(auditor, experiment, seed, dump_dir) if dump_dir else ""
        if auditor.violation_count:
            if not dump_path:
                fail_dir = os.environ.get("REPRO_AUDIT_DIR", "")
                if fail_dir:
                    dump_path = _audit_dump(auditor, experiment, seed, fail_dir)
            try:
                auditor.assert_clean(f"{experiment} seed {seed}", dump_path)
            except audit.AuditError as error:
                try:
                    error.audit_dump_path = dump_path
                    error.run_record = make_record(
                        wall,
                        failure_traceback=traceback_module.format_exc(),
                        audit_dump_path=dump_path,
                    )
                except Exception:
                    pass
                raise
        auditor.export_kpis(registry)
    record = make_record(wall)
    return result, record
