"""Per-run instrumentation records.

Every campaign-runner execution carries a :class:`RunRecord` describing
what the run cost: wall time, how many discrete-event-simulator events it
scheduled/executed/cancelled (from the process-wide counters in
:mod:`repro.net.sim`), how many named RNG streams it drew
(:func:`repro.core.rng.streams_drawn`) and the process peak RSS.  Records
are plain picklable dataclasses so they travel back from pool workers and
into the on-disk cache unchanged.
"""

from __future__ import annotations

import dataclasses
import os
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro.core import rng
from repro.net import sim

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

__all__ = ["RunRecord", "instrumented_call", "peak_rss_kib"]

T = TypeVar("T")


def peak_rss_kib() -> int:
    """Process peak resident set size in KiB (0 where unavailable).

    ``ru_maxrss`` is a process-lifetime high-water mark, so within one
    worker it is monotone across runs; treat it as "heap never exceeded
    this while the run finished", not as the run's own allocation.
    """
    if resource is None:
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # macOS reports bytes, Linux reports KiB
        peak //= 1024
    return int(peak)


@dataclass(frozen=True)
class RunRecord:
    """Provenance for one experiment execution."""

    experiment: str
    seed: int
    cached: bool
    wall_time_s: float
    events_scheduled: int
    events_executed: int
    events_cancelled: int
    rng_streams_drawn: int
    peak_rss_kib: int
    worker_pid: int

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict form for JSON export."""
        return dataclasses.asdict(self)

    def as_cached(self) -> "RunRecord":
        """A copy marked as served from the cache."""
        return dataclasses.replace(self, cached=True)


def instrumented_call(
    experiment: str, seed: int, fn: Callable[[], T]
) -> tuple[T, RunRecord]:
    """Run ``fn`` and capture a :class:`RunRecord` around it.

    Simulator/RNG figures are deltas of the process-wide counters, so the
    record reflects exactly the work done between entry and exit — including
    any simulators the experiment created internally.
    """
    sim_before = sim.global_counters()
    rng_before = rng.streams_drawn()
    started = time.perf_counter()
    result = fn()
    wall = time.perf_counter() - started
    sim_after = sim.global_counters()
    record = RunRecord(
        experiment=experiment,
        seed=seed,
        cached=False,
        wall_time_s=wall,
        events_scheduled=sim_after.scheduled - sim_before.scheduled,
        events_executed=sim_after.executed - sim_before.executed,
        events_cancelled=sim_after.cancelled - sim_before.cancelled,
        rng_streams_drawn=rng.streams_drawn() - rng_before,
        peak_rss_kib=peak_rss_kib(),
        worker_pid=os.getpid(),
    )
    return result, record
