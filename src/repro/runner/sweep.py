"""Scenario sweeps: one campaign per point of a parameter grid.

A sweep takes a base scenario plus one or more axes (``radio.sa_mode``
over ``true,false``, ``topology.extra_gnb_sites`` over ``0,4``...),
cartesian-expands them into concrete :class:`~repro.scenario.Scenario`
points, and runs the same experiment set under each point through
:func:`repro.runner.campaign.run_campaign`.  Every point keeps its own
merged KPI snapshot, so sweep output is a list of (overrides, digest,
metrics) rows ready for comparison or JSON export.

Points run sequentially; parallelism applies *within* each point's
campaign.  That keeps the cache coordination simple (each point has a
distinct scenario digest, so entries never collide) and the per-point
metrics identical between serial and parallel execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence
from typing import Any

from repro.experiments.common import DEFAULT_SEED
from repro.runner.cache import ResultCache
from repro.runner.campaign import CampaignOutcome, merged_metrics, run_campaign
from repro.scenario import Scenario, expand_sweep, scenario_digest

__all__ = ["SweepPoint", "run_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point of a sweep: its scenario and campaign outcomes."""

    index: int
    overrides: dict[str, Any]
    scenario: Scenario
    outcomes: list[CampaignOutcome]

    @property
    def digest(self) -> str:
        """The point's scenario digest (its cache identity)."""
        return scenario_digest(self.scenario)

    def metrics(self) -> dict[str, Any]:
        """The point's merged KPI snapshot across its experiments."""
        return merged_metrics(self.outcomes)

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict summary (overrides + digest + metrics) for export."""
        return {
            "index": self.index,
            "overrides": dict(self.overrides),
            "scenario": self.scenario.name,
            "scenario_digest": self.digest,
            "metrics": self.metrics(),
        }


def run_sweep(
    names: Iterable[str],
    base: Scenario,
    axes: Sequence[tuple[str, tuple[Any, ...]]],
    seed: int = DEFAULT_SEED,
    parallel: int = 1,
    cache: ResultCache | None = None,
    run_all: bool = False,
    point_progress: Callable[[SweepPoint], None] | None = None,
) -> list[SweepPoint]:
    """Run ``names`` under every point of the sweep grid, in grid order.

    Args:
        names: experiment names (see :func:`repro.runner.campaign.run_campaign`).
        base: scenario the axes override; with no axes the sweep is the
            single base point.
        axes: ``(dotted_key, values)`` pairs from
            :func:`repro.scenario.parse_sweep_args`; the grid is their
            cartesian product, last axis fastest.
        seed: campaign seed, shared by every point.
        parallel: worker processes per point's campaign.
        cache: shared on-disk cache; points are disambiguated by digest.
        run_all: sweep the whole catalogue.
        point_progress: called with each completed :class:`SweepPoint`.

    Raises:
        ScenarioOverrideError: if an axis names an unknown scenario field.
        UnknownExperimentError / ExperimentFailure: as for campaigns.
    """
    points: list[SweepPoint] = []
    for index, (overrides, scenario) in enumerate(expand_sweep(base, axes)):
        outcomes = run_campaign(
            names,
            seed=seed,
            parallel=parallel,
            cache=cache,
            run_all=run_all,
            scenario=scenario,
        )
        point = SweepPoint(
            index=index, overrides=overrides, scenario=scenario, outcomes=outcomes
        )
        points.append(point)
        if point_progress is not None:
            point_progress(point)
    return points
