"""The per-experiment execution entry point for campaign workers.

Everything here must stay picklable/top-level: these functions cross the
``ProcessPoolExecutor`` boundary.  A worker loads from the shared on-disk
cache, runs the experiment under instrumentation on a miss, stores the
fresh result, and ships (result, record) back to the coordinator.

When ``$REPRO_AUDIT_DIR`` is set, workers also maintain a *heartbeat
file* (``hb-<pid>.json``) around each run: start stamp when the run
begins, finish stamp when it ends.  The coordinator's stall watchdog
(:func:`scan_stalls`, surfaced via ``repro audit stalls`` and the
parallel campaign loop) reads those files to tell a slow campaign from a
hung worker.  Stamps are ``time.monotonic()`` — they order events within
one machine boot, never leave the machine, and are kept out of every
deterministic artifact.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
import traceback
from typing import Any

from repro.experiments import common
from repro.experiments.registry import EXPERIMENTS
from repro.runner.cache import ResultCache
from repro.runner.instrument import RunRecord, instrumented_call
from repro.scenario import Scenario, resolve_scenario, scenario_digest

__all__ = ["ExperimentFailure", "execute_experiment", "scan_stalls", "warm_worker"]

#: Environment variable naming the heartbeat/flight-recorder directory.
AUDIT_DIR_ENV = "REPRO_AUDIT_DIR"


class ExperimentFailure(RuntimeError):
    """An experiment raised inside a worker; carries the remote traceback.

    ``record`` is the failure :class:`RunRecord` the instrumentation
    attached (None when the failure predates instrumentation, e.g. a
    cache error), and ``audit_dump_path`` the flight-recorder dump
    written for the failed run ("" when auditing was off or no dump
    directory was configured).
    """

    def __init__(
        self,
        name: str,
        remote_traceback: str,
        record: RunRecord | None = None,
        audit_dump_path: str = "",
    ) -> None:
        super().__init__(name, remote_traceback)
        self.name = name
        self.remote_traceback = remote_traceback
        self.record = record
        self.audit_dump_path = audit_dump_path

    def __str__(self) -> str:
        text = f"experiment {self.name!r} failed in worker:\n{self.remote_traceback}"
        if self.audit_dump_path:
            text += f"\nflight recorder: {self.audit_dump_path}"
        return text

    def __reduce__(self):
        # Default BaseException pickling replays __init__ with the
        # original two positional args, dropping record/dump path; keep
        # all four so failures stay debuggable across the pool boundary.
        return (
            type(self),
            (self.name, self.remote_traceback, self.record, self.audit_dump_path),
        )


def _heartbeat_path(directory: str) -> str:
    return os.path.join(directory, f"hb-{os.getpid()}.json")


def _write_heartbeat(directory: str, payload: dict[str, Any]) -> None:
    try:
        os.makedirs(directory, exist_ok=True)
        with open(_heartbeat_path(directory), "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
    except OSError:
        pass  # heartbeats are advisory; never fail the run over them


def scan_stalls(
    directory: str, now_mono_s: float, stall_timeout_s: float
) -> list[dict[str, Any]]:
    """Heartbeat files whose run started > ``stall_timeout_s`` ago and
    never finished, as ``{pid, experiment, seed, busy_s}`` dicts.

    Pure over the directory contents and the caller-supplied clock, so
    the watchdog logic is unit-testable without sleeping.
    """
    stalls: list[dict[str, Any]] = []
    try:
        entries = sorted(os.listdir(directory))
    except OSError:
        return stalls
    for entry in entries:
        if not (entry.startswith("hb-") and entry.endswith(".json")):
            continue
        try:
            with open(os.path.join(directory, entry), encoding="utf-8") as fh:
                beat = json.load(fh)
        except (OSError, ValueError):
            continue  # mid-write or stale garbage: not evidence of a stall
        if beat.get("finished_mono_s", 0.0):
            continue
        busy_s = now_mono_s - beat.get("started_mono_s", now_mono_s)
        if busy_s > stall_timeout_s:
            stalls.append(
                {
                    "pid": beat.get("pid", 0),
                    "experiment": beat.get("experiment", "?"),
                    "seed": beat.get("seed", -1),
                    "busy_s": busy_s,
                }
            )
    return stalls


def warm_worker(seed: int, scenario: Scenario | None = None) -> None:
    """Pool initializer: build the testbed once so every task hits its cache."""
    common.warm(seed, scenario)


def execute_experiment(
    name: str,
    seed: int,
    cache_root: str | None = None,
    scenario: Scenario | None = None,
) -> tuple[Any, RunRecord]:
    """Run one catalogue experiment, going through the cache when given.

    ``scenario`` must already be a resolved :class:`Scenario` (or None for
    the default): workers receive it pickled from the coordinator, which
    did the preset/path resolution once up front.

    Raises:
        ExperimentFailure: if the experiment itself raised; the original
            traceback travels along as a string (remote tracebacks do not
            survive pickling), together with the failure record and
            flight-recorder dump path when instrumentation attached them.
    """
    spec = EXPERIMENTS[name]
    scenario = resolve_scenario(scenario)
    digest = scenario_digest(scenario)
    cache = ResultCache(cache_root) if cache_root is not None else None
    if cache is not None:
        hit = cache.load(name, seed, scenario_digest=digest)
        if hit is not None:
            return hit.result, hit.record
    heartbeat_dir = os.environ.get(AUDIT_DIR_ENV, "")
    started_mono_s = time.monotonic()
    if heartbeat_dir:
        _write_heartbeat(
            heartbeat_dir,
            {
                "pid": os.getpid(),
                "experiment": name,
                "seed": seed,
                "started_mono_s": started_mono_s,
                "finished_mono_s": 0.0,
            },
        )
    try:
        result, record = instrumented_call(
            name, seed, lambda: spec.run(seed, scenario), scenario_digest=digest
        )
    except Exception as exc:
        raise ExperimentFailure(
            name,
            traceback.format_exc(),
            record=getattr(exc, "run_record", None),
            audit_dump_path=getattr(exc, "audit_dump_path", "")
            or getattr(exc, "dump_path", ""),
        ) from exc
    finally:
        if heartbeat_dir:
            _write_heartbeat(
                heartbeat_dir,
                {
                    "pid": os.getpid(),
                    "experiment": name,
                    "seed": seed,
                    "started_mono_s": started_mono_s,
                    "finished_mono_s": time.monotonic(),
                },
            )
    if heartbeat_dir:
        record = dataclasses.replace(
            record,
            heartbeat_started_s=started_mono_s,
            heartbeat_finished_s=time.monotonic(),
        )
    if cache is not None:
        cache.store(name, seed, result, record, scenario_digest=digest)
    return result, record
