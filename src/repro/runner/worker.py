"""The per-experiment execution entry point for campaign workers.

Everything here must stay picklable/top-level: these functions cross the
``ProcessPoolExecutor`` boundary.  A worker loads from the shared on-disk
cache, runs the experiment under instrumentation on a miss, stores the
fresh result, and ships (result, record) back to the coordinator.
"""

from __future__ import annotations

import traceback
from typing import Any

from repro.experiments import common
from repro.experiments.registry import EXPERIMENTS
from repro.runner.cache import ResultCache
from repro.runner.instrument import RunRecord, instrumented_call
from repro.scenario import Scenario, resolve_scenario, scenario_digest

__all__ = ["ExperimentFailure", "execute_experiment", "warm_worker"]


class ExperimentFailure(RuntimeError):
    """An experiment raised inside a worker; carries the remote traceback."""

    def __init__(self, name: str, remote_traceback: str) -> None:
        super().__init__(name, remote_traceback)
        self.name = name
        self.remote_traceback = remote_traceback

    def __str__(self) -> str:
        return f"experiment {self.name!r} failed in worker:\n{self.remote_traceback}"


def warm_worker(seed: int, scenario: Scenario | None = None) -> None:
    """Pool initializer: build the testbed once so every task hits its cache."""
    common.warm(seed, scenario)


def execute_experiment(
    name: str,
    seed: int,
    cache_root: str | None = None,
    scenario: Scenario | None = None,
) -> tuple[Any, RunRecord]:
    """Run one catalogue experiment, going through the cache when given.

    ``scenario`` must already be a resolved :class:`Scenario` (or None for
    the default): workers receive it pickled from the coordinator, which
    did the preset/path resolution once up front.

    Raises:
        ExperimentFailure: if the experiment itself raised; the original
            traceback travels along as a string (remote tracebacks do not
            survive pickling).
    """
    spec = EXPERIMENTS[name]
    scenario = resolve_scenario(scenario)
    digest = scenario_digest(scenario)
    cache = ResultCache(cache_root) if cache_root is not None else None
    if cache is not None:
        hit = cache.load(name, seed, scenario_digest=digest)
        if hit is not None:
            return hit.result, hit.record
    try:
        result, record = instrumented_call(
            name, seed, lambda: spec.run(seed, scenario), scenario_digest=digest
        )
    except Exception as exc:
        raise ExperimentFailure(name, traceback.format_exc()) from exc
    if cache is not None:
        cache.store(name, seed, result, record, scenario_digest=digest)
    return result, record
