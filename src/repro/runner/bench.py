"""``repro bench``: headless benchmark trajectory points and the perf gate.

Runs catalogue experiments uncached under instrumentation and writes one
``BENCH_<date>.json`` *trajectory point*: per-experiment wall time (raw
and machine-normalised), RSS growth, simulator event counts and every
registered KPI value.  Against a committed baseline
(``benchmarks/bench-baseline.json``) it exits non-zero when

* normalised wall time regresses beyond ``--max-wall-regression``
  (default +20%), or
* any KPI drifts beyond ``--max-kpi-regression`` (default 10% relative),
  or an experiment/KPI disappears.

Sub-``--min-wall-s`` experiments (default 0.1 s raw wall on both sides)
are exempt from the *wall* gate only: a 3 ms experiment jitters far more
than 20% run to run, so gating it on time is pure noise — its KPIs, which
are deterministic, stay gated exactly.

Wall times are normalised by a calibration loop (a fixed pure-Python
workload timed at bench time), so a baseline recorded on one machine
remains comparable on another: what is gated is "simulated work per unit
of interpreter speed", not raw seconds.  KPI values are deterministic
functions of (experiment, seed, source), so their gate is exact up to
the tolerance.

This is the ROADMAP's "fast as the hardware allows" story made
checkable: every perf PR is judged against recorded numbers, and the
``BENCH_*.json`` series is the repo's performance trajectory.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from typing import Any

from repro.core.results import ResultTable
from repro.experiments.common import DEFAULT_SEED
from repro.metrics.core import summarize_entry
from repro.runner.campaign import run_campaign
from repro.runner.cache import source_hash

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_BASELINE_PATH",
    "QUICK_EXPERIMENTS",
    "Regression",
    "add_bench_arguments",
    "bench_payload",
    "calibrate",
    "compare_payloads",
    "extract_kpis",
    "run_bench",
]

BENCH_SCHEMA_VERSION = 1

#: The committed baseline the CI gate compares against.
DEFAULT_BASELINE_PATH = "benchmarks/bench-baseline.json"

#: The quick catalogue slice: enough to cover coverage, latency, power,
#: energy and transport-remedy KPIs.  Everything but `remedy-comparison`
#: is sub-second (the shared testbed build dominates); the remedy run
#: simulates six 45 s bulk transfers and holds the gate on the
#: subsystem's headline KPIs (`remedy.goodput.*`, `remedy.p99_rtt.*`).
QUICK_EXPERIMENTS: tuple[str, ...] = (
    "tab1",
    "fig3",
    "fig13",
    "fig15",
    "fig21",
    "fig22",
    "tab4",
    "dense-survey",
    "world-survey",
    "remedy-comparison",
)

#: Iterations of the calibration workload (a fixed pure-Python loop).
_CALIBRATION_N = 1_000_000


def calibrate(repeats: int = 3) -> float:
    """Seconds the reference workload takes on this machine (best of N).

    Dividing experiment wall times by this figure yields a
    machine-portable "work units" number, making committed baselines
    meaningful across laptops and CI runners.
    """
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        acc = 0
        for i in range(_CALIBRATION_N):
            acc += i * i
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return best


def extract_kpis(snapshot: dict[str, Any] | None) -> dict[str, float]:
    """Flatten a run's metric snapshot into gateable scalars.

    Counters and gauges contribute their value under the metric name;
    statistical metrics contribute each summary field as
    ``<name>/<field>``.  Everything here is a deterministic function of
    (experiment, seed, source), so exact comparison is meaningful.
    """
    if snapshot is None:
        return {}
    kpis: dict[str, float] = {}
    for name, entry in snapshot.get("metrics", {}).items():
        summary = summarize_entry(entry)
        if entry["kind"] in ("counter", "gauge"):
            kpis[name] = summary["value"]
        else:
            for field, value in summary.items():
                kpis[f"{name}/{field}"] = value
    return dict(sorted(kpis.items()))


def bench_payload(
    names: list[str],
    seed: int = DEFAULT_SEED,
    run_all: bool = False,
    date: str | None = None,
) -> dict[str, Any]:
    """Run ``names`` uncached and build one trajectory point."""
    calibration_s = calibrate()
    outcomes = run_campaign(names, seed=seed, parallel=1, cache=None, run_all=run_all)
    experiments: dict[str, Any] = {}
    for outcome in outcomes:
        record = outcome.record
        experiments[outcome.name] = {
            "wall_time_s": record.wall_time_s,
            "wall_time_norm": record.wall_time_s / calibration_s,
            "rss_growth_kib": record.rss_growth_kib,
            "events_executed": record.events_executed,
            "kpis": extract_kpis(record.metrics),
        }
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "tool": "repro.bench",
        "date": date if date is not None else time.strftime("%Y-%m-%d"),
        "seed": seed,
        "source_hash": source_hash(),
        "calibration_s": calibration_s,
        "experiments": experiments,
    }


@dataclass(frozen=True)
class Regression:
    """One gate violation found by :func:`compare_payloads`."""

    experiment: str
    field: str
    new: float | None
    baseline: float | None
    limit: str

    def row(self) -> list[Any]:
        fmt = lambda v: "absent" if v is None else f"{v:g}"  # noqa: E731
        return [self.experiment, self.field, fmt(self.baseline), fmt(self.new), self.limit]


def compare_payloads(
    new: dict[str, Any],
    baseline: dict[str, Any],
    max_wall_regression: float = 0.20,
    max_kpi_regression: float = 0.10,
    min_wall_s: float = 0.10,
) -> list[Regression]:
    """Gate a fresh trajectory point against a baseline.

    Only regressions are reported: faster runs and brand-new
    experiments/KPIs pass silently (they become gated once the baseline
    is refreshed with ``--write-baseline``).  The wall-time check is
    skipped when both sides ran in under ``min_wall_s`` raw seconds —
    sub-100 ms timings are timer-noise dominated and would flake the
    gate; KPI checks still apply (they are deterministic).
    """
    regressions: list[Regression] = []
    for name, base_exp in baseline.get("experiments", {}).items():
        new_exp = new.get("experiments", {}).get(name)
        if new_exp is None:
            regressions.append(
                Regression(name, "wall_time_norm", None, base_exp["wall_time_norm"],
                           "experiment missing from new point")
            )
            continue
        base_wall = base_exp["wall_time_norm"]
        new_wall = new_exp["wall_time_norm"]
        noise_floor = (
            base_exp.get("wall_time_s", float("inf")) < min_wall_s
            and new_exp.get("wall_time_s", float("inf")) < min_wall_s
        )
        if (
            not noise_floor
            and base_wall > 0
            and new_wall > base_wall * (1.0 + max_wall_regression)
        ):
            regressions.append(
                Regression(name, "wall_time_norm", new_wall, base_wall,
                           f"> +{max_wall_regression:.0%} wall time")
            )
        base_kpis = base_exp.get("kpis", {})
        new_kpis = new_exp.get("kpis", {})
        for kpi, base_value in base_kpis.items():
            new_value = new_kpis.get(kpi)
            if new_value is None:
                regressions.append(
                    Regression(name, kpi, None, base_value, "KPI missing from new point")
                )
                continue
            scale = max(abs(base_value), abs(new_value))
            if scale > 0 and abs(new_value - base_value) / scale > max_kpi_regression:
                regressions.append(
                    Regression(name, kpi, new_value, base_value,
                               f"> {max_kpi_regression:.0%} KPI drift")
                )
    return regressions


def _regressions_table(regressions: list[Regression]) -> ResultTable:
    table = ResultTable(
        "Bench gate", ["experiment", "field", "baseline", "new", "limit"]
    )
    for regression in regressions:
        table.add_row(regression.row())
    if not regressions:
        table.add_row(["(no regressions)", "", "", "", ""])
    return table


def _bench_table(payload: dict[str, Any]) -> ResultTable:
    table = ResultTable(
        f"Bench point {payload['date']} (calibration {payload['calibration_s'] * 1e3:.1f} ms)",
        ["experiment", "wall (s)", "wall (norm)", "RSS growth (MiB)", "KPIs"],
    )
    for name, exp in payload["experiments"].items():
        table.add_row(
            [
                name,
                f"{exp['wall_time_s']:.2f}",
                f"{exp['wall_time_norm']:.1f}",
                f"{exp['rss_growth_kib'] / 1024:.0f}",
                len(exp["kpis"]),
            ]
        )
    return table


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the bench options to a (sub)parser."""
    parser.add_argument("names", nargs="*", default=[],
                        help="experiment names (default: the --quick set)")
    parser.add_argument("--all", dest="run_all", action="store_true",
                        help="bench the whole catalogue")
    parser.add_argument("--quick", action="store_true",
                        help=f"bench the quick set: {', '.join(QUICK_EXPERIMENTS)}")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="trajectory point path (default: BENCH_<date>.json)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE_PATH, metavar="PATH",
                        help=f"baseline to gate against (default: {DEFAULT_BASELINE_PATH})")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the fresh point to --baseline instead of gating")
    parser.add_argument("--compare", default=None, metavar="PATH",
                        help="gate an existing trajectory point instead of running")
    parser.add_argument("--max-wall-regression", type=float, default=0.20, metavar="FRAC",
                        help="tolerated normalised wall-time growth (default: 0.20)")
    parser.add_argument("--max-kpi-regression", type=float, default=0.10, metavar="FRAC",
                        help="tolerated relative KPI drift (default: 0.10)")
    parser.add_argument("--min-wall-s", type=float, default=0.10, metavar="SECONDS",
                        help="skip the wall-time gate for experiments faster than "
                             "this on both sides — timer noise, not perf "
                             "(default: 0.10)")
    parser.set_defaults(bench_command=True)


def _load_payload(path: str) -> dict[str, Any] | None:
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        return None
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed bench file {path}: {exc}") from exc
    if not isinstance(payload, dict) or "experiments" not in payload:
        raise ValueError(f"not a bench payload: {path}")
    return payload


def run_bench(args: argparse.Namespace) -> int:
    """Execute the bench command; returns the process exit code."""
    if args.compare is not None:
        payload = _load_payload(args.compare)
        if payload is None:
            print(f"repro bench: no such file: {args.compare}", file=sys.stderr)
            return 2
    else:
        names = list(args.names)
        if not names and not args.run_all:
            names = list(QUICK_EXPERIMENTS)
            args.quick = True
        elif args.quick:
            names = list(dict.fromkeys(list(QUICK_EXPERIMENTS) + names))
        payload = bench_payload(names, seed=args.seed, run_all=args.run_all)
        out = args.out if args.out is not None else f"BENCH_{payload['date']}.json"
        if args.write_baseline:
            out = args.baseline
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(_bench_table(payload).render())
        print(f"wrote {out}")
        if args.write_baseline:
            return 0

    baseline = _load_payload(args.baseline)
    if baseline is None:
        print(
            f"no baseline at {args.baseline}; run `repro bench --write-baseline` "
            "to record one",
            file=sys.stderr,
        )
        return 0
    regressions = compare_payloads(
        payload,
        baseline,
        max_wall_regression=args.max_wall_regression,
        max_kpi_regression=args.max_kpi_regression,
        min_wall_s=args.min_wall_s,
    )
    print(_regressions_table(regressions).render())
    return 1 if regressions else 0
