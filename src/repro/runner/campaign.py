"""The campaign orchestrator: fan experiments out, collect provenance.

Serial runs execute in-process (streaming results as they finish, exactly
like the original CLI loop); parallel runs fan the cache misses out over a
``ProcessPoolExecutor`` whose workers pre-build the shared testbed in
their initializer.  Either way every outcome carries a
:class:`repro.runner.instrument.RunRecord`, and results come back in the
caller's request order regardless of completion order.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence
from typing import Any

from repro.experiments.common import DEFAULT_SEED
from repro.experiments.registry import resolve_names
from repro.metrics.core import merge_snapshots
from repro.runner.cache import ResultCache
from repro.runner.instrument import RunRecord
from repro.runner.worker import AUDIT_DIR_ENV, execute_experiment, scan_stalls, warm_worker
from repro.scenario import Scenario, resolve_scenario, scenario_digest

__all__ = ["CampaignOutcome", "campaign_timings", "merged_metrics", "run_campaign"]

#: How often the parallel wait loop wakes to scan worker heartbeats.
_WATCHDOG_POLL_S = 5.0


@dataclass(frozen=True)
class CampaignOutcome:
    """One experiment's result plus its run provenance."""

    name: str
    result: Any
    record: RunRecord


def run_campaign(
    names: Iterable[str],
    seed: int = DEFAULT_SEED,
    parallel: int = 1,
    cache: ResultCache | None = None,
    run_all: bool = False,
    progress: Callable[[CampaignOutcome], None] | None = None,
    scenario: Scenario | str | None = None,
    stall_timeout_s: float | None = None,
) -> list[CampaignOutcome]:
    """Run a set of catalogue experiments and return outcomes in request order.

    Args:
        names: experiment names; validated and deduped (first occurrence
            wins) so ``run fig7 fig7`` runs — and exports — fig7 once.
        seed: campaign seed forwarded to every experiment.
        parallel: worker processes; ``<= 1`` runs serially in-process.
        cache: on-disk result cache, or None to bypass caching entirely.
        run_all: run the whole catalogue (``names`` is then ignored).
        progress: called with each outcome as it completes (completion
            order, not request order).
        scenario: deployment to run under — anything
            :func:`repro.scenario.resolve_scenario` accepts.  Resolved
            once here; workers receive the concrete value.
        stall_timeout_s: parallel campaigns only — a run busy longer
            than this (per the worker heartbeats under
            ``$REPRO_AUDIT_DIR``) is reported on stderr as a suspected
            hang.  None (or no heartbeat directory) disables the
            watchdog.  Advisory: nothing is killed.

    Raises:
        UnknownExperimentError: for names outside the catalogue.
        ExperimentFailure: if any experiment raised.
    """
    ordered = resolve_names(names, run_all=run_all)
    if not ordered:
        return []
    scenario = resolve_scenario(scenario)
    digest = scenario_digest(scenario)
    cache_root = str(cache.root) if cache is not None else None

    outcomes: dict[str, CampaignOutcome] = {}

    def record_outcome(name: str, result: Any, record: RunRecord) -> None:
        outcome = CampaignOutcome(name=name, result=result, record=record)
        outcomes[name] = outcome
        if progress is not None:
            progress(outcome)

    if parallel <= 1:
        for name in ordered:
            record_outcome(name, *execute_experiment(name, seed, cache_root, scenario))
        return [outcomes[name] for name in ordered]

    # Serve warm cache entries from the coordinator; only misses need workers.
    misses = list(ordered)
    if cache is not None:
        misses = []
        for name in ordered:
            hit = cache.load(name, seed, scenario_digest=digest)
            if hit is None:
                misses.append(name)
            else:
                record_outcome(name, hit.result, hit.record)

    if misses:
        with ProcessPoolExecutor(
            max_workers=min(parallel, len(misses)),
            initializer=warm_worker,
            initargs=(seed, scenario),
        ) as pool:
            futures = {
                pool.submit(execute_experiment, name, seed, cache_root, scenario): name
                for name in misses
            }
            pending = set(futures)
            heartbeat_dir = os.environ.get(AUDIT_DIR_ENV, "")
            watchdog = stall_timeout_s is not None and bool(heartbeat_dir)
            reported: set[int] = set()
            while pending:
                done, pending = wait(
                    pending,
                    timeout=_WATCHDOG_POLL_S if watchdog else None,
                    return_when=FIRST_COMPLETED,
                )
                if watchdog and not done:
                    for stall in scan_stalls(
                        heartbeat_dir, time.monotonic(), stall_timeout_s
                    ):
                        if stall["pid"] in reported:
                            continue
                        reported.add(stall["pid"])
                        print(
                            f"warning: worker pid {stall['pid']} busy "
                            f"{stall['busy_s']:.0f}s on {stall['experiment']!r} "
                            f"(seed {stall['seed']}) — possible hang; see "
                            f"`repro audit stalls {heartbeat_dir}`",
                            file=sys.stderr,
                        )
                for future in done:
                    result, record = future.result()
                    record_outcome(futures[future], result, record)

    return [outcomes[name] for name in ordered]


def campaign_timings(outcomes: Sequence[CampaignOutcome]) -> list[RunRecord]:
    """The run records of ``outcomes``, slowest first."""
    return sorted(
        (o.record for o in outcomes), key=lambda r: r.wall_time_s, reverse=True
    )


def merged_metrics(outcomes: Sequence[CampaignOutcome]) -> dict[str, Any]:
    """The campaign-level KPI snapshot: every run's registry, merged.

    Each run records into its own per-origin registry (serial runs and
    pool workers alike), so the campaign view is *always* a merge of
    per-run snapshots — which is what makes serial and parallel campaigns
    over the same experiment set byte-identical on export.
    """
    return merge_snapshots(o.record.metrics for o in outcomes)
