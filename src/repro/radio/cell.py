"""Cells, base stations and the campus radio network.

A :class:`Cell` is one sector of a site bound to a radio profile and a
propagation environment; a :class:`RadioNetwork` is all co-channel cells of
one RAT, and answers the questions the measurement campaign asks at every
sampled location: who is the best server, what RSRP/RSRQ/SINR does it give,
and what bit-rate does link adaptation deliver there.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.config import RadioProfile
from repro.geometry.world import SiteSpec, WorldModel
from repro.geometry.points import Point
from repro.radio import batch
from repro.radio.antenna import SectorAntenna
from repro.radio.phy import TRANSPORT_EFFICIENCY, phy_bit_rate, phy_bit_rate_array
from repro.radio.propagation import Environment
from repro.radio.signal import (
    MIN_SERVICE_RSRP_DBM,
    SignalSample,
    _RE_PER_PRB,
    combine_signal,
    rsrp_dbm,
)

__all__ = ["Cell", "RadioNetwork"]


@dataclass(frozen=True)
class Cell:
    """One sector of a base-station site.

    ``tx_power_dbm`` defaults to the profile's power but can differ per
    cell (macro vs micro sites).
    """

    pci: int
    site_name: str
    position: Point
    antenna: SectorAntenna
    profile: RadioProfile
    tx_power_dbm: float | None = None

    @property
    def effective_tx_power_dbm(self) -> float:
        """The cell's transmit power (per-cell override or profile)."""
        if self.tx_power_dbm is not None:
            return self.tx_power_dbm
        return self.profile.tx_power_dbm

    def rsrp_at(self, location: Point, environment: Environment) -> float:
        """RSRP (dBm) this cell delivers at ``location``."""
        direction = self.position.bearing_to(location)
        gain = self.antenna.gain_dbi(direction)
        loss = environment.path_loss_db(self.position, location, self.profile.carrier_mhz)
        return rsrp_dbm(
            tx_power_dbm=self.effective_tx_power_dbm,
            num_prb=self.profile.num_prb,
            antenna_gain_dbi=gain,
            path_loss_db=loss,
        )

    def distance_to(self, location: Point) -> float:
        """Distance from the cell mast to ``location``."""
        return self.position.distance_to(location)


class RadioNetwork:
    """All co-channel cells of one radio access technology.

    Args:
        cells: The sector list.
        profile: Shared radio profile.
        environment: Propagation environment.
        interference_activity: Fraction of resource elements on which
            neighbouring cells actually transmit.  Reuse-1 networks are not
            fully loaded in practice; the measured campus network was
            nearly idle (the paper's UE received almost every PRB), so
            neighbour cells radiate little beyond reference signals.
        interference_floor_dbm: Residual per-RE impairment floor (see
            :func:`repro.radio.signal.combine_signal`).  Defaults are
            calibrated so link adaptation spans its full MCS range across
            the serving area, reproducing the Fig. 2(b) rate contour and
            the Fig. 3 indoor/outdoor gap: -105 dBm (NR), -112 dBm (LTE).
    """

    _DEFAULT_FLOOR_DBM = {4: -112.0, 5: -105.0}

    def __init__(
        self,
        cells: Iterable[Cell],
        profile: RadioProfile,
        environment: Environment,
        interference_activity: float = 0.01,
        interference_floor_dbm: float | None = None,
    ) -> None:
        self.cells: tuple[Cell, ...] = tuple(cells)
        if not self.cells:
            raise ValueError("a radio network needs at least one cell")
        if not 0.0 <= interference_activity <= 1.0:
            raise ValueError(
                f"interference_activity must be in [0, 1], got {interference_activity}"
            )
        self.profile = profile
        self.environment = environment
        self.interference_activity = interference_activity
        if interference_floor_dbm is None:
            interference_floor_dbm = self._DEFAULT_FLOOR_DBM[profile.generation]
        self.interference_floor_dbm = interference_floor_dbm
        self._by_pci = {cell.pci: cell for cell in self.cells}
        if len(self._by_pci) != len(self.cells):
            raise ValueError("duplicate PCIs in cell list")
        self._pcis = tuple(cell.pci for cell in self.cells)
        self._pci_index = {pci: i for i, pci in enumerate(self._pcis)}

    #: Micro (street small cell) EIRP deltas vs the profile's macro values.
    MICRO_TX_BACKOFF_DB = 12.0
    MICRO_GAIN_DBI = 6.0

    @classmethod
    def from_sites(
        cls,
        sites: Sequence[SiteSpec],
        profile: RadioProfile,
        environment: Environment,
        max_gain_dbi: float = 17.0,
        **kwargs: float,
    ) -> "RadioNetwork":
        """Build a network from campus site specs.

        Micro sites transmit ``MICRO_TX_BACKOFF_DB`` below the profile's
        macro power through a small ``MICRO_GAIN_DBI`` antenna.
        """
        cells = []
        for site in sites:
            micro = site.power_class == "micro"
            gain = cls.MICRO_GAIN_DBI if micro else max_gain_dbi
            tx = profile.tx_power_dbm - (cls.MICRO_TX_BACKOFF_DB if micro else 0.0)
            for sector in site.sectors:
                cells.append(
                    Cell(
                        pci=sector.pci,
                        site_name=site.name,
                        position=site.position,
                        antenna=SectorAntenna(
                            azimuth_deg=sector.azimuth_deg, max_gain_dbi=gain
                        ),
                        profile=profile,
                        tx_power_dbm=tx,
                    )
                )
        return cls(cells, profile, environment, **kwargs)

    @classmethod
    def from_world(
        cls,
        world: WorldModel,
        profile: RadioProfile,
        environment: Environment,
        **kwargs: float,
    ) -> "RadioNetwork":
        """Build the world's 4G or 5G network according to the profile.

        gNB sectors default to a 24 dBi massive-MIMO beamformed panel, eNB
        sectors to a conventional 15 dBi passive antenna.
        """
        sites = world.gnb_sites if profile.generation == 5 else world.enb_sites
        kwargs.setdefault("max_gain_dbi", 24.0 if profile.generation == 5 else 15.0)
        return cls.from_sites(sites, profile, environment, **kwargs)

    @classmethod
    def from_campus(
        cls,
        campus: WorldModel,
        profile: RadioProfile,
        environment: Environment,
        **kwargs: float,
    ) -> "RadioNetwork":
        """Back-compat alias of :meth:`from_world`."""
        return cls.from_world(campus, profile, environment, **kwargs)

    def cell(self, pci: int) -> Cell:
        """Look a cell up by PCI."""
        try:
            return self._by_pci[pci]
        except KeyError:
            raise KeyError(f"no cell with PCI {pci}") from None

    def rsrp_matrix_at(self, points: Sequence[Point]) -> np.ndarray:
        """RSRP of every cell at every point: an (N, C) matrix in dBm.

        Columns follow ``self.cells`` order (``pcis`` names them).  This
        is the batched core every other query builds on; the per-UE
        methods are N=1 views of it.
        """
        x, y = batch.points_to_arrays(points)
        loss = batch.path_loss_matrix_db(
            self.environment,
            [cell.position for cell in self.cells],
            self.profile.carrier_mhz,
            x,
            y,
        )
        gain = batch.sector_gain_matrix(self.cells, x, y)
        per_re_tx = np.array(
            [
                cell.effective_tx_power_dbm
                - 10.0 * math.log10(cell.profile.num_prb * _RE_PER_PRB)
                for cell in self.cells
            ],
            dtype=np.float64,
        )
        return (per_re_tx[np.newaxis, :] + gain) - loss

    @property
    def pcis(self) -> tuple[int, ...]:
        """PCIs in ``cells`` (= RSRP-matrix column) order."""
        return self._pcis

    def _sample_arrays(
        self, points: Sequence[Point], serving_pci: int | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(serving column, RSRP, RSRQ, SINR) arrays for ``points``."""
        rsrp_matrix = self.rsrp_matrix_at(points)
        if serving_pci is None:
            serving_index = np.argmax(rsrp_matrix, axis=1)
        else:
            if serving_pci not in self._pci_index:
                raise KeyError(f"no cell with PCI {serving_pci}")
            serving_index = np.full(len(rsrp_matrix), self._pci_index[serving_pci])
        rsrp, rsrq, sinr = batch.combine_matrix(
            rsrp_matrix,
            serving_index,
            subcarrier_khz=self.profile.subcarrier_khz,
            interference_floor_dbm=self.interference_floor_dbm,
            interference_activity=self.interference_activity,
        )
        return serving_index, rsrp, rsrq, sinr

    def samples_at(
        self, points: Sequence[Point], serving_pci: int | None = None
    ) -> list[SignalSample]:
        """Batched :meth:`sample_at` over many points at once."""
        _, rsrp, rsrq, sinr = self._sample_arrays(points, serving_pci)
        return [
            SignalSample(rsrp_dbm=rsrp_dbm, rsrq_db=rsrq_db, sinr_db=sinr_db)
            for rsrp_dbm, rsrq_db, sinr_db in zip(
                rsrp.tolist(), rsrq.tolist(), sinr.tolist()
            )
        ]

    def bit_rates_at(
        self,
        points: Sequence[Point],
        direction: str = "dl",
        prb_fraction: float = 1.0,
        serving_pci: int | None = None,
        include_transport_overhead: bool = False,
    ) -> np.ndarray:
        """Batched :meth:`bit_rate_at`: deliverable bit-rates in bits/s."""
        _, rsrp, _, sinr = self._sample_arrays(points, serving_pci)
        rates = phy_bit_rate_array(
            self.profile, sinr, direction=direction, prb_fraction=prb_fraction
        )
        rates = np.where(rsrp >= MIN_SERVICE_RSRP_DBM, rates, 0.0)
        if include_transport_overhead:
            rates = rates * TRANSPORT_EFFICIENCY
        return rates

    def rsrp_map_at(self, location: Point) -> dict[int, float]:
        """RSRP of every cell at ``location``, keyed by PCI."""
        row = self.rsrp_matrix_at((location,))[0]
        return dict(zip(self._pcis, row.tolist()))

    def best_cell_at(self, location: Point) -> tuple[Cell, float]:
        """The strongest cell at ``location`` and its RSRP."""
        rsrps = self.rsrp_map_at(location)
        best_pci = max(rsrps, key=lambda pci: rsrps[pci])
        return self._by_pci[best_pci], rsrps[best_pci]

    def sample_at(self, location: Point, serving_pci: int | None = None) -> SignalSample:
        """Joint RSRP/RSRQ/SINR observation at ``location``.

        Args:
            location: Sampling point.
            serving_pci: Lock onto this cell (the frequency-lock experiment
                of Sec. 3.2); default is the strongest cell.
        """
        return self.sample_from_rsrps(self.rsrp_map_at(location), serving_pci)

    def sample_from_rsrps(
        self, rsrps: dict[int, float], serving_pci: int | None = None
    ) -> SignalSample:
        """Like :meth:`sample_at` but reusing a precomputed RSRP map.

        The hand-off engine evaluates every candidate serving cell at every
        report; recomputing path loss per candidate would be quadratic.
        """
        rsrps = dict(rsrps)
        if serving_pci is None:
            serving_pci = max(rsrps, key=lambda pci: rsrps[pci])
        elif serving_pci not in rsrps:
            raise KeyError(f"no cell with PCI {serving_pci}")
        serving = rsrps.pop(serving_pci)
        return combine_signal(
            serving_rsrp_dbm=serving,
            interferer_rsrps_dbm=list(rsrps.values()),
            subcarrier_khz=self.profile.subcarrier_khz,
            interference_floor_dbm=self.interference_floor_dbm,
            interference_activity=self.interference_activity,
        )

    def bit_rate_at(
        self,
        location: Point,
        direction: str = "dl",
        prb_fraction: float = 1.0,
        serving_pci: int | None = None,
        include_transport_overhead: bool = False,
    ) -> float:
        """Deliverable bit-rate (bits/s) at ``location``.

        With ``include_transport_overhead`` the rate is scaled down to UDP
        goodput the way iperf would observe it.
        """
        sample = self.sample_at(location, serving_pci=serving_pci)
        return self.bit_rate_from_sample(
            sample,
            direction=direction,
            prb_fraction=prb_fraction,
            include_transport_overhead=include_transport_overhead,
        )

    def bit_rate_from_sample(
        self,
        sample: SignalSample,
        direction: str = "dl",
        prb_fraction: float = 1.0,
        include_transport_overhead: bool = False,
    ) -> float:
        """Bit-rate from an already-computed :class:`SignalSample`.

        Lets survey code evaluate the RSRP map once per point and derive
        serving choice, signal quality and bit-rate from the same map.
        """
        if not sample.in_service:
            return 0.0
        rate = phy_bit_rate(
            self.profile, sample.sinr_db, direction=direction, prb_fraction=prb_fraction
        )
        if include_transport_overhead:
            rate *= TRANSPORT_EFFICIENCY
        return rate

