"""Link adaptation: SINR -> CQI -> MCS -> spectral efficiency.

Uses the 3GPP 256-QAM CQI table (TS 36.213 Tab. 7.2.3-2 / TS 38.214
Tab. 5.2.2.1-3) with an attenuated-Shannon mapping from SINR to achievable
efficiency.  The paper routinely observes MCS index 27 (256-QAM, code rate
0.925) near the gNB, which is the top entry of this table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core import vecmath as vm
from repro.trace import core as trace

__all__ = [
    "CQI_TABLE",
    "MAX_SPECTRAL_EFFICIENCY",
    "LinkAdaptation",
    "cqi_from_sinr",
    "cqi_from_sinr_array",
    "spectral_efficiency_from_sinr",
    "spectral_efficiency_from_sinr_array",
]


@dataclass(frozen=True)
class CqiEntry:
    """One row of the CQI table."""

    cqi: int
    modulation: str
    modulation_order: int
    code_rate: float
    efficiency: float  # bits per resource element


#: 3GPP 256-QAM CQI table, CQI 1..15.
CQI_TABLE: tuple[CqiEntry, ...] = (
    CqiEntry(1, "QPSK", 2, 0.0762, 0.1523),
    CqiEntry(2, "QPSK", 2, 0.1885, 0.3770),
    CqiEntry(3, "QPSK", 2, 0.4385, 0.8770),
    CqiEntry(4, "16QAM", 4, 0.3691, 1.4766),
    CqiEntry(5, "16QAM", 4, 0.4785, 1.9141),
    CqiEntry(6, "16QAM", 4, 0.6016, 2.4063),
    CqiEntry(7, "64QAM", 6, 0.4551, 2.7305),
    CqiEntry(8, "64QAM", 6, 0.5537, 3.3223),
    CqiEntry(9, "64QAM", 6, 0.6504, 3.9023),
    CqiEntry(10, "64QAM", 6, 0.7539, 4.5234),
    CqiEntry(11, "64QAM", 6, 0.8525, 5.1152),
    CqiEntry(12, "256QAM", 8, 0.6943, 5.5547),
    CqiEntry(13, "256QAM", 8, 0.7783, 6.2266),
    CqiEntry(14, "256QAM", 8, 0.8643, 6.9141),
    CqiEntry(15, "256QAM", 8, 0.9258, 7.4063),
)

MAX_SPECTRAL_EFFICIENCY = CQI_TABLE[-1].efficiency

#: Implementation-loss factor of the attenuated Shannon bound.
_SHANNON_ATTENUATION = 0.75

#: Below this SINR the link cannot sustain even CQI 1.
MIN_DECODABLE_SINR_DB = -6.5

#: Table efficiencies as an ascending float64 vector, for batched lookups.
_EFFICIENCIES = np.array([entry.efficiency for entry in CQI_TABLE], dtype=np.float64)


def _achievable_efficiency(sinr_db: float) -> float:
    """Attenuated Shannon efficiency in bits per resource element."""
    sinr_linear = 10.0 ** (sinr_db / 10.0)
    return _SHANNON_ATTENUATION * math.log2(1.0 + sinr_linear)


def cqi_from_sinr(sinr_db: float) -> int:
    """Largest CQI whose efficiency is achievable at ``sinr_db`` (0 = none)."""
    if sinr_db < MIN_DECODABLE_SINR_DB:
        return 0
    achievable = _achievable_efficiency(sinr_db)
    best = 0
    for entry in CQI_TABLE:
        if entry.efficiency <= achievable:
            best = entry.cqi
    return best


def spectral_efficiency_from_sinr(sinr_db: float) -> float:
    """Scheduled spectral efficiency (bits per RE) at ``sinr_db``.

    Returns 0.0 when the SINR is below the decodable floor — the condition
    the paper describes as "communication service cannot be triggered".
    """
    cqi = cqi_from_sinr(sinr_db)
    if cqi == 0:
        return 0.0
    return CQI_TABLE[cqi - 1].efficiency


def cqi_from_sinr_array(sinr_db: np.ndarray) -> np.ndarray:
    """Vectorized :func:`cqi_from_sinr` over an SINR array (int64).

    ``searchsorted(..., side="right")`` counts the table entries whose
    efficiency is ``<=`` the achievable one — exactly the scalar linear
    scan, table-edge values included.
    """
    sinr_db = vm.as_float_array(sinr_db)
    sinr_linear = vm.exp10(sinr_db / 10.0)
    achievable = _SHANNON_ATTENUATION * vm.log2(1.0 + sinr_linear)
    cqi = np.searchsorted(_EFFICIENCIES, achievable, side="right")
    return np.where(sinr_db < MIN_DECODABLE_SINR_DB, 0, cqi).astype(np.int64)


def spectral_efficiency_from_sinr_array(sinr_db: np.ndarray) -> np.ndarray:
    """Vectorized :func:`spectral_efficiency_from_sinr` (bits per RE)."""
    cqi = cqi_from_sinr_array(sinr_db)
    padded = np.concatenate(([0.0], _EFFICIENCIES))
    return padded[cqi]


@dataclass(frozen=True)
class LinkAdaptation:
    """The full link-adaptation decision for one channel state."""

    sinr_db: float
    cqi: int
    mcs_index: int
    modulation: str
    code_rate: float
    efficiency: float

    @classmethod
    def for_sinr(cls, sinr_db: float) -> "LinkAdaptation":
        """Adapt to ``sinr_db``; CQI 0 maps to an unusable link."""
        cqi = cqi_from_sinr(sinr_db)
        tracer = trace.current()
        if cqi == 0:
            tracer.counter("radio.mcs", None, -1.0)
            return cls(
                sinr_db=sinr_db,
                cqi=0,
                mcs_index=-1,
                modulation="none",
                code_rate=0.0,
                efficiency=0.0,
            )
        entry = CQI_TABLE[cqi - 1]
        # The 28-entry MCS table spans the 15 CQI levels roughly linearly;
        # CQI 15 corresponds to the MCS 27 the paper observes near the cell.
        mcs = min(27, round(entry.cqi * 27 / 15))
        tracer.counter("radio.mcs", None, float(mcs))
        return cls(
            sinr_db=sinr_db,
            cqi=cqi,
            mcs_index=mcs,
            modulation=entry.modulation,
            code_rate=entry.code_rate,
            efficiency=entry.efficiency,
        )

    @property
    def usable(self) -> bool:
        """Whether any MCS decodes at this SINR."""
        return self.cqi > 0
