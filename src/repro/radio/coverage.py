"""Coverage surveying: the blanket road survey, single-cell contours,
coverage radius and the indoor/outdoor gap (Sec. 3.1-3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.stats import histogram_counts
from repro.geometry.world import WorldModel
from repro.geometry.points import Point
from repro.radio import batch
from repro.radio.cell import Cell, RadioNetwork
from repro.radio.phy import phy_bit_rate_array
from repro.radio.signal import MIN_SERVICE_RSRP_DBM

__all__ = [
    "RSRP_BIN_EDGES",
    "SurveyPoint",
    "road_survey",
    "rsrp_distribution",
    "coverage_hole_fraction",
    "cell_grid_survey",
    "coverage_radius_m",
    "indoor_outdoor_gap",
]

#: Tab. 2 RSRP bins, ascending edges (dBm).
RSRP_BIN_EDGES: tuple[float, ...] = (-140.0, -105.0, -90.0, -80.0, -70.0, -60.0, -40.0)


@dataclass(frozen=True)
class SurveyPoint:
    """One sampled location of a survey."""

    location: Point
    pci: int
    rsrp_dbm: float
    rsrq_db: float
    sinr_db: float
    bit_rate_bps: float
    indoor: bool

    @property
    def in_service(self) -> bool:
        """Whether service can be initiated here (RSRP >= -105 dBm)."""
        return self.rsrp_dbm >= MIN_SERVICE_RSRP_DBM


def _survey_at(
    network: RadioNetwork, location: Point, serving_pci: int | None = None
) -> SurveyPoint:
    """Measure the best (or locked) cell at one location.

    The RSRP map is computed once and every derived quantity (serving
    choice, signal quality, bit-rate) reuses it; ``best_cell_at`` /
    ``sample_at`` / ``bit_rate_at`` would each rebuild the per-cell
    path-loss map from scratch.
    """
    rsrps = network.rsrp_map_at(location)
    if serving_pci is None:
        serving_pci = max(rsrps, key=lambda pci: rsrps[pci])
    sample = network.sample_from_rsrps(rsrps, serving_pci=serving_pci)
    rate = network.bit_rate_from_sample(sample)
    return SurveyPoint(
        location=location,
        pci=serving_pci,
        rsrp_dbm=sample.rsrp_dbm,
        rsrq_db=sample.rsrq_db,
        sinr_db=sample.sinr_db,
        bit_rate_bps=rate,
        indoor=network.environment.is_indoor(location),
    )


def road_locations(
    world: WorldModel, num_points: int, rng: np.random.Generator
) -> list[Point]:
    """Draw ``num_points`` random outdoor sampling locations on the roads.

    Roads are chosen with probability proportional to length, matching a
    walking survey at constant speed.
    """
    if num_points <= 0:
        raise ValueError(f"num_points must be positive, got {num_points}")
    lengths = np.array([seg.length for seg in world.roads])
    weights = lengths / lengths.sum()
    choices = rng.choice(len(world.roads), size=num_points, p=weights)
    fractions = rng.random(num_points)
    return [world.roads[i].interpolate(f) for i, f in zip(choices, fractions)]


def road_survey(
    network: RadioNetwork,
    world: WorldModel,
    num_points: int,
    rng: np.random.Generator,
) -> list[SurveyPoint]:
    """The blanket road survey of Sec. 3.1 for one network."""
    return survey_at_locations(network, road_locations(world, num_points, rng))


def survey_at_locations(
    network: RadioNetwork,
    locations: Sequence[Point],
    serving_pci: int | None = None,
) -> list[SurveyPoint]:
    """Survey fixed locations through the batched radio core.

    One (N, C) RSRP matrix drives serving choice, signal quality and
    bit-rate for every point — the batched twin of :func:`_survey_at`,
    bit-identical to surveying each location on its own.
    """
    if not locations:
        return []
    rsrp_matrix = network.rsrp_matrix_at(locations)
    pcis = network.pcis
    if serving_pci is None:
        serving_index = np.argmax(rsrp_matrix, axis=1)
    else:
        network.cell(serving_pci)  # KeyError parity with the scalar path
        serving_index = np.full(len(rsrp_matrix), pcis.index(serving_pci))
    rsrp, rsrq, sinr = batch.combine_matrix(
        rsrp_matrix,
        serving_index,
        subcarrier_khz=network.profile.subcarrier_khz,
        interference_floor_dbm=network.interference_floor_dbm,
        interference_activity=network.interference_activity,
    )
    rates = phy_bit_rate_array(network.profile, sinr)
    rates = np.where(rsrp >= MIN_SERVICE_RSRP_DBM, rates, 0.0)
    x, y = batch.points_to_arrays(locations)
    indoor = network.environment.buildings.contains_mask(x, y)
    return [
        SurveyPoint(
            location=loc,
            pci=pcis[col],
            rsrp_dbm=rsrp_dbm,
            rsrq_db=rsrq_db,
            sinr_db=sinr_db,
            bit_rate_bps=rate_bps,
            indoor=bool(inside),
        )
        for loc, col, rsrp_dbm, rsrq_db, sinr_db, rate_bps, inside in zip(
            locations,
            serving_index.tolist(),
            rsrp.tolist(),
            rsrq.tolist(),
            sinr.tolist(),
            rates.tolist(),
            indoor,
        )
    ]


def rsrp_distribution(
    points: Sequence[SurveyPoint],
) -> list[tuple[tuple[float, float], int, float]]:
    """Tab. 2: counts and fractions per RSRP bin (ascending bins)."""
    return histogram_counts((p.rsrp_dbm for p in points), RSRP_BIN_EDGES)


def coverage_hole_fraction(points: Sequence[SurveyPoint]) -> float:
    """Fraction of locations below the service threshold (coverage holes)."""
    if not points:
        raise ValueError("empty survey")
    holes = sum(1 for p in points if not p.in_service)
    return holes / len(points)


def cell_grid_survey(
    network: RadioNetwork,
    pci: int,
    grid_spacing_m: float = 20.0,
    radius_m: float = 260.0,
) -> list[SurveyPoint]:
    """Grid survey around one locked cell, the Fig. 2(b) contour input.

    Samples a square grid centred on the cell, skipping points outside
    ``radius_m``.
    """
    if grid_spacing_m <= 0:
        raise ValueError(f"grid_spacing_m must be positive, got {grid_spacing_m}")
    cell = network.cell(pci)
    locations: list[Point] = []
    steps = int(radius_m // grid_spacing_m)
    for ix in range(-steps, steps + 1):
        for iy in range(-steps, steps + 1):
            loc = cell.position.offset(ix * grid_spacing_m, iy * grid_spacing_m)
            if cell.position.distance_to(loc) > radius_m:
                continue
            locations.append(loc)
    return survey_at_locations(network, locations, serving_pci=pci)


def coverage_radius_m(
    network: RadioNetwork,
    pci: int,
    step_m: float = 5.0,
    max_range_m: float = 1200.0,
) -> float:
    """Distance along the sector boresight at which service is lost.

    Uses the deterministic (shadowing- and building-free) path loss so the
    answer is the clean line-of-sight radius the paper walks in Sec. 3.2
    (~230 m for a gNB, ~520 m for an eNB).
    """
    from repro.radio.propagation import uma_los_path_loss_db
    from repro.radio.signal import rsrp_dbm as compute_rsrp

    cell = network.cell(pci)
    env = network.environment
    distance = step_m
    while distance <= max_range_m:
        loss = uma_los_path_loss_db(
            distance, cell.profile.carrier_mhz, env.los_exponent
        ) + env.clutter_db(distance, cell.profile.carrier_mhz)
        rsrp = compute_rsrp(
            tx_power_dbm=cell.profile.tx_power_dbm,
            num_prb=cell.profile.num_prb,
            antenna_gain_dbi=cell.antenna.max_gain_dbi,
            path_loss_db=loss,
        )
        if rsrp < MIN_SERVICE_RSRP_DBM:
            return distance - step_m
        distance += step_m
    return max_range_m


@dataclass(frozen=True)
class IndoorOutdoorGap:
    """Paired indoor/outdoor bit-rate comparison (Fig. 3)."""

    outdoor_rates_bps: tuple[float, ...]
    indoor_rates_bps: tuple[float, ...]

    @property
    def mean_outdoor_bps(self) -> float:
        """Mean outdoor bit-rate across the pairs."""
        return float(np.mean(self.outdoor_rates_bps))

    @property
    def mean_indoor_bps(self) -> float:
        """Mean indoor bit-rate across the pairs."""
        return float(np.mean(self.indoor_rates_bps))

    @property
    def drop_fraction(self) -> float:
        """Relative bit-rate drop when moving indoors."""
        if self.mean_outdoor_bps == 0:
            return 0.0
        return 1.0 - self.mean_indoor_bps / self.mean_outdoor_bps


def indoor_outdoor_gap(
    network: RadioNetwork,
    world: WorldModel,
    pci: int,
    num_pairs: int,
    rng: np.random.Generator,
    min_distance_m: float = 90.0,
    max_distance_m: float = 170.0,
    locked: bool = True,
) -> IndoorOutdoorGap:
    """Measure immediately-adjacent indoor and outdoor spots near one cell.

    For each pair we pick a cell-facing wall roughly 100 m from the base
    station (the paper samples spots ~100 m from cell 72, locations
    F/G/H/I), take a point just outside the wall and one just inside it,
    and compare bit-rates — the Fig. 3 methodology.

    Args:
        locked: Measure with the UE frequency-locked to ``pci`` (how the
            paper measured the NSA 5G cell).  With ``locked=False`` the UE
            attaches to the best server at each spot, which is how an
            unlocked 4G UE behaves.
    """
    if num_pairs <= 0:
        raise ValueError(f"num_pairs must be positive, got {num_pairs}")
    cell = network.cell(pci)
    candidates = _wall_pair_candidates(network, cell, min_distance_m, max_distance_m)
    if not candidates:
        raise ValueError(
            f"no serviceable in-FoV building walls within "
            f"{min_distance_m}-{max_distance_m} m of PCI {pci}"
        )
    # All randomness is drawn up front so the two batched measurement
    # calls below consume no generator state — same draw sequence as
    # measuring each pair in turn.
    outdoor_spots: list[Point] = []
    indoor_spots: list[Point] = []
    for _ in range(num_pairs):
        outdoor, indoor = candidates[int(rng.integers(len(candidates)))]
        jitter = float(rng.uniform(-3.0, 3.0))
        if abs(outdoor.x - indoor.x) > abs(outdoor.y - indoor.y):
            outdoor, indoor = outdoor.offset(0.0, jitter), indoor.offset(0.0, jitter)
        else:
            outdoor, indoor = outdoor.offset(jitter, 0.0), indoor.offset(jitter, 0.0)
        outdoor_spots.append(outdoor)
        indoor_spots.append(indoor)
    serving = pci if locked else None
    outdoor_rates = network.bit_rates_at(outdoor_spots, serving_pci=serving)
    indoor_rates = network.bit_rates_at(indoor_spots, serving_pci=serving)
    return IndoorOutdoorGap(
        tuple(outdoor_rates.tolist()), tuple(indoor_rates.tolist())
    )


def _wall_pair_candidates(
    network: RadioNetwork, cell: Cell, min_distance_m: float, max_distance_m: float
) -> list[tuple[Point, Point]]:
    """(outdoor, indoor) point pairs on cell-facing walls.

    Like the paper's spot choice near locations F/G/H/I, candidate walls
    must face the sector (inside its field of view) and the outdoor spot
    must have line of sight and be in service — adjacent spots straddling
    one exterior wall.
    """
    geometric: list[tuple[Point, Point]] = []
    for building in network.environment.buildings:
        mid_x = (building.x_min + building.x_max) / 2.0
        mid_y = (building.y_min + building.y_max) / 2.0
        # Wall midpoints on the face toward the cell (one or two faces).
        walls: list[tuple[Point, Point]] = []
        if cell.position.x < building.x_min:
            walls.append((Point(building.x_min - 2.0, mid_y), Point(building.x_min + 2.0, mid_y)))
        elif cell.position.x > building.x_max:
            walls.append((Point(building.x_max + 2.0, mid_y), Point(building.x_max - 2.0, mid_y)))
        if cell.position.y < building.y_min:
            walls.append((Point(mid_x, building.y_min - 2.0), Point(mid_x, building.y_min + 2.0)))
        elif cell.position.y > building.y_max:
            walls.append((Point(mid_x, building.y_max + 2.0), Point(mid_x, building.y_max - 2.0)))
        for outdoor, indoor in walls:
            if not min_distance_m <= cell.position.distance_to(outdoor) <= max_distance_m:
                continue
            bearing = cell.position.bearing_to(outdoor)
            if not cell.antenna.in_field_of_view(bearing, margin_db=6.0):
                continue
            if not network.environment.buildings.has_line_of_sight(cell.position, outdoor):
                continue
            geometric.append((outdoor, indoor))
    if not geometric:
        return []
    # Radio filters, batched over all surviving walls: the outdoor spot
    # must be in service on the locked cell, and the locked cell's site
    # must be the best server on both sides of the wall — spots in
    # another site's footprint would measure interference, not
    # penetration.
    outdoor_matrix = network.rsrp_matrix_at([outdoor for outdoor, _ in geometric])
    indoor_matrix = network.rsrp_matrix_at([indoor for _, indoor in geometric])
    locked_column = network.pcis.index(cell.pci)
    in_service = outdoor_matrix[:, locked_column] >= MIN_SERVICE_RSRP_DBM
    best_out = np.argmax(outdoor_matrix, axis=1)
    best_in = np.argmax(indoor_matrix, axis=1)
    pairs: list[tuple[Point, Point]] = []
    for k, (outdoor, indoor) in enumerate(geometric):
        if not in_service[k]:
            continue
        if network.cells[best_out[k]].position != cell.position:
            continue
        if network.cells[best_in[k]].position != cell.position:
            continue
        pairs.append((outdoor, indoor))
    return pairs
