"""The struct-of-arrays radio core: all point×cell pairs at once.

Every survey, coverage map and hand-off campaign asks the same question
— "what does every cell deliver at every sampled location?" — and the
scalar API answers it one Python object at a time, which profiling shows
is dominated by per-pair Liang-Barsky wall tests and ``math`` calls.
This module evaluates the full (N points × C cells) matrix in numpy:
UMa LoS/NLoS path loss, grid-quantized shadowing, clutter loss, wall
crossings (via the vectorized segment-rectangle intersection in
:mod:`repro.geometry.buildings`) and the RSRQ/SINR combiner.

Bit-identity with the scalar path is a hard requirement — the default
scenario's results are golden-file pinned — so every transcendental goes
through :mod:`repro.core.vecmath` (elementwise libm) and every formula
replicates the scalar operation order exactly, including the sequential
left-to-right interference summation of ``combine_signal`` and the
first-match/first-max tie-breaking of the dict-based API.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.core import vecmath as vm
from repro.geometry.points import Point
from repro.radio.antenna import SectorAntenna
from repro.radio.propagation import _MIN_DISTANCE_M, _SHADOW_GRID_M, Environment
from repro.radio.signal import _RE_PER_PRB, noise_per_re_dbm

__all__ = [
    "combine_matrix",
    "path_loss_matrix_db",
    "points_to_arrays",
    "rsrq_matrix",
    "sector_gain_matrix",
]


def points_to_arrays(points: Sequence[Point]) -> tuple[np.ndarray, np.ndarray]:
    """Split a point sequence into x/y float64 arrays."""
    x = np.array([p.x for p in points], dtype=np.float64)
    y = np.array([p.y for p in points], dtype=np.float64)
    return x, y


def _unique_shadow_cells(
    x: np.ndarray, y: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deduplicated shadow-grid indices plus the scatter-back inverse."""
    gx = vm.shadow_grid_index(x, _SHADOW_GRID_M)
    gy = vm.shadow_grid_index(y, _SHADOW_GRID_M)
    # Grid indices are small campus-scale integers, so pairing them into
    # one 64-bit code is collision-free and much faster than a 2-D unique.
    codes = gx * (np.int64(1) << 32) + gy
    _, first, inverse = np.unique(codes, return_index=True, return_inverse=True)
    return gx[first], gy[first], inverse


def path_loss_matrix_db(
    environment: Environment,
    tx_points: Sequence[Point],
    carrier_mhz: float,
    x: np.ndarray,
    y: np.ndarray,
) -> np.ndarray:
    """Total path loss (dB) for every receiver×transmitter pair.

    The (N, C) batched twin of :meth:`Environment.path_loss_db`:
    calibrated UMa LoS/NLoS selection by wall crossings (minus the
    receiver's own building, which is charged as penetration instead),
    clutter loss, one wall of penetration for indoor receivers, and the
    deterministic grid-quantized shadowing field.
    """
    buildings = environment.buildings
    tx_x, tx_y = points_to_arrays(tx_points)
    x = vm.as_float_array(x)
    y = vm.as_float_array(y)
    n, c = len(x), len(tx_x)

    # Co-sited sectors share a mast, so every geometry term — the wall
    # crossings that dominate dense surveys especially — is evaluated
    # once per distinct transmitter position and fanned out to the sector
    # columns.  Each lane runs the exact IEEE ops the full (N, C)
    # evaluation would, so the fan-out is bit-identical.
    position_index: dict[tuple[float, float], int] = {}
    col_to_site = np.empty(c, dtype=np.int64)
    for col, tx in enumerate(tx_points):
        key = (tx.x, tx.y)
        if key not in position_index:
            position_index[key] = len(position_index)
        col_to_site[col] = position_index[key]
    site_x = np.array([key[0] for key in position_index], dtype=np.float64)
    site_y = np.array([key[1] for key in position_index], dtype=np.float64)

    site_row_x = site_x[np.newaxis, :]
    site_row_y = site_y[np.newaxis, :]
    rx_col_x = x[:, np.newaxis]
    rx_col_y = y[:, np.newaxis]

    site_distance = vm.hypot(site_row_x - rx_col_x, site_row_y - rx_col_y)
    site_crossings = buildings.wall_crossings_counts(
        site_row_x, site_row_y, rx_col_x, rx_col_y
    )

    # Indoor receivers: subtract the own building's crossings from the
    # LOS test and charge one wall of penetration unless the transmitter
    # shares the building — exactly Environment.breakdown's accounting.
    own_index = buildings.building_indices(x, y)
    site_inside_own = np.zeros((n, len(site_x)), dtype=bool)
    for i, building in enumerate(buildings):
        rows = own_index == i
        if not rows.any():
            continue
        site_crossings[rows] -= building.wall_crossings_counts(
            site_row_x, site_row_y, x[rows][:, np.newaxis], y[rows][:, np.newaxis]
        )
        site_inside_own[rows] = building.contains_mask(site_x, site_y)

    distance = site_distance[:, col_to_site]
    crossings = site_crossings[:, col_to_site]
    tx_inside_own = site_inside_own[:, col_to_site]

    los = crossings == 0
    f_ghz = carrier_mhz / 1000.0
    frequency_term = 20.0 * math.log10(f_ghz)
    d = np.maximum(distance, _MIN_DISTANCE_M)
    log10_d = vm.log10(d)
    los_base = (28.0 + (10.0 * environment.los_exponent) * log10_d) + frequency_term
    nlos_raw = (28.0 + (10.0 * environment.nlos_exponent) * log10_d) + frequency_term
    base = np.where(los, los_base, np.maximum(nlos_raw, los_base))
    clutter_per_m = environment.clutter_coeff * (f_ghz**environment.clutter_exponent)
    base = base + clutter_per_m * np.maximum(distance, 0.0)

    indoor_walls = (own_index >= 0)[:, np.newaxis] & ~tx_inside_own
    per_wall = 4.5 + 1.0 * f_ghz**2
    penetration = per_wall * indoor_walls

    sigma = np.where(los, environment.los_sigma_db, environment.nlos_sigma_db)
    grid_x, grid_y, inverse = _unique_shadow_cells(x, y)
    shadow = np.empty((n, c), dtype=np.float64)
    # Co-sited sectors share every shadow key (same mast, same carrier),
    # so draw once per distinct site and fan the column out.
    site_columns: dict[tuple[int, int], list[int]] = {}
    for col, tx in enumerate(tx_points):
        site_columns.setdefault((round(tx.x), round(tx.y)), []).append(col)
    for columns in site_columns.values():
        unique_normals = environment.shadow_standard_normals(
            tx_points[columns[0]], carrier_mhz, grid_x, grid_y
        )
        column = unique_normals[inverse]
        for col in columns:
            shadow[:, col] = column

    return (base + penetration) + sigma * shadow


def sector_gain_matrix(cells: Sequence, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Antenna gain (dBi) from every cell toward every point, (N, C)."""
    x = vm.as_float_array(x)
    y = vm.as_float_array(y)
    columns = []
    for cell in cells:
        antenna = cell.antenna
        if isinstance(antenna, SectorAntenna):
            bearing = vm.bearing_deg(x - cell.position.x, y - cell.position.y)
            off = vm.angle_difference_deg(bearing, antenna.azimuth_deg)
            attenuation = np.minimum(
                12.0 * vm.powf(off / antenna.beamwidth_deg, 2.0),
                antenna.front_to_back_db,
            )
            columns.append(antenna.max_gain_dbi - attenuation)
        else:
            columns.append(np.full(len(x), antenna.gain_dbi(0.0)))
    return np.stack(columns, axis=1)


def _interference_sums(mw: np.ndarray, serving_index: np.ndarray) -> np.ndarray:
    """Per-row sum of non-serving powers, accumulated in cell order.

    ``combine_signal`` sums interferers with Python's left-to-right
    ``sum()`` over the PCI-ordered dict (serving popped out); floating-
    point addition is not associative, so the batched sum walks the cell
    axis in the same order, contributing exact ``+0.0`` on the serving
    lane (which never changes a positive partial sum).
    """
    n, c = mw.shape
    full = np.zeros(n, dtype=np.float64)
    for j in range(c):
        full = full + np.where(serving_index == j, 0.0, mw[:, j])
    return full


def combine_matrix(
    rsrp_matrix: np.ndarray,
    serving_index: np.ndarray,
    subcarrier_khz: float,
    noise_figure_db: float = 7.0,
    interference_floor_dbm: float | None = None,
    interference_activity: float = 1.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched :func:`repro.radio.signal.combine_signal`.

    Args:
        rsrp_matrix: (N, C) per-cell RSRP in dBm.
        serving_index: (N,) column index of each row's serving cell.

    Returns:
        ``(serving_rsrp_dbm, rsrq_db, sinr_db)`` arrays of length N.
    """
    if not 0.0 <= interference_activity <= 1.0:
        raise ValueError(
            f"interference_activity must be in [0, 1], got {interference_activity}"
        )
    mw = vm.exp10(rsrp_matrix / 10.0)
    rows = np.arange(len(mw))
    signal_mw = mw[rows, serving_index]
    full_interference_mw = _interference_sums(mw, serving_index)
    active_interference_mw = interference_activity * full_interference_mw
    floor_mw = 0.0
    if interference_floor_dbm is not None:
        floor_mw = 10.0 ** (interference_floor_dbm / 10.0)
        active_interference_mw = active_interference_mw + floor_mw
    noise_mw = 10.0 ** (noise_per_re_dbm(subcarrier_khz, noise_figure_db) / 10.0)

    sinr_linear = signal_mw / (active_interference_mw + noise_mw)
    rssi_prb_mw = _RE_PER_PRB * (((signal_mw + full_interference_mw) + floor_mw) + noise_mw)
    rsrq_linear = signal_mw / rssi_prb_mw
    positive = rsrq_linear > 0
    rsrq_db = np.where(
        positive,
        10.0 * vm.log10(np.where(positive, rsrq_linear, 1.0)),
        -np.inf,
    )
    sinr_db = 10.0 * vm.log10(sinr_linear)
    serving_rsrp = rsrp_matrix[rows, serving_index]
    return serving_rsrp, rsrq_db, sinr_db


def rsrq_matrix(
    rsrp_matrix: np.ndarray,
    subcarrier_khz: float,
    noise_figure_db: float = 7.0,
    interference_floor_dbm: float | None = None,
) -> np.ndarray:
    """RSRQ (dB) for *every* candidate serving choice, (N, C).

    The hand-off engine evaluates each neighbour as a hypothetical
    serving cell at every report; this computes the whole candidate
    matrix at once.  RSRQ is activity-independent (full-load RSSI), so
    only the floor and noise parameters matter.
    """
    mw = vm.exp10(rsrp_matrix / 10.0)
    n, c = mw.shape
    floor_mw = (
        10.0 ** (interference_floor_dbm / 10.0)
        if interference_floor_dbm is not None
        else 0.0
    )
    noise_mw = 10.0 ** (noise_per_re_dbm(subcarrier_khz, noise_figure_db) / 10.0)
    out = np.empty((n, c), dtype=np.float64)
    for j in range(c):
        signal_mw = mw[:, j]
        full = np.zeros(n, dtype=np.float64)
        for i in range(c):
            if i != j:
                full = full + mw[:, i]
        rssi_prb_mw = _RE_PER_PRB * (((signal_mw + full) + floor_mw) + noise_mw)
        rsrq_linear = signal_mw / rssi_prb_mw
        positive = rsrq_linear > 0
        out[:, j] = np.where(
            positive,
            10.0 * vm.log10(np.where(positive, rsrq_linear, 1.0)),
            -np.inf,
        )
    return out
