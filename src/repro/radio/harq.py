"""HARQ/ARQ retransmission model for the radio access network.

Sec. 4.2 rules the RAN out as the source of the TCP anomaly: the MAC layer
retransmits failed transport blocks (threshold 32 per the PDSCH
configuration), every loss the authors observe recovers within 4 attempts
on 4G and 2 on 5G (Fig. 10), so no loss leaks above the RLC layer.  This
module reproduces that argument quantitatively.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.trace import core as trace

__all__ = ["HarqProcess", "HarqStats", "RETRANSMISSION_THRESHOLD"]

#: Maximum retransmissions before the MAC gives up, identified from the
#: PDSCH configuration messages (Sec. 4.2).
RETRANSMISSION_THRESHOLD = 32


@dataclass(frozen=True)
class HarqStats:
    """Aggregate outcome of a HARQ simulation run."""

    transport_blocks: int
    retransmission_counts: dict[int, int]
    residual_losses: int

    @property
    def block_error_rate(self) -> float:
        """Fraction of blocks needing at least one retransmission."""
        retransmitted = sum(
            count for attempts, count in self.retransmission_counts.items() if attempts > 0
        )
        return retransmitted / self.transport_blocks if self.transport_blocks else 0.0

    @property
    def max_retransmissions(self) -> int:
        """Deepest retransmission chain observed."""
        observed = [k for k, v in self.retransmission_counts.items() if v > 0]
        return max(observed) if observed else 0

    def retransmission_rate(self, attempts: int) -> float:
        """Fraction of blocks that needed exactly ``attempts`` retransmissions."""
        if self.transport_blocks == 0:
            return 0.0
        return self.retransmission_counts.get(attempts, 0) / self.transport_blocks


class HarqProcess:
    """Simulates chase-combining HARQ over a block-fading link.

    Each retransmission benefits from soft combining, so the per-attempt
    error probability decays geometrically: attempt ``k`` fails with
    probability ``initial_bler * combining_gain**k``.

    The paper's links show first-attempt BLER around 10% — the operating
    point link adaptation targets — with 5G's wider-band channel estimation
    and faster feedback giving it a stronger combining gain, which is why
    its retransmission chains are shorter (Fig. 10).
    """

    def __init__(
        self,
        initial_bler: float,
        combining_gain: float,
        rng: np.random.Generator,
        threshold: int = RETRANSMISSION_THRESHOLD,
    ) -> None:
        if not 0.0 <= initial_bler < 1.0:
            raise ValueError(f"initial_bler must be in [0, 1), got {initial_bler}")
        if not 0.0 < combining_gain < 1.0:
            raise ValueError(f"combining_gain must be in (0, 1), got {combining_gain}")
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.initial_bler = initial_bler
        self.combining_gain = combining_gain
        self.threshold = threshold
        self._rng = rng
        self._tracer = trace.current()

    @classmethod
    def for_generation(
        cls, generation: int, rng: np.random.Generator, initial_bler: float = 0.10
    ) -> "HarqProcess":
        """Default processes: 5G combines harder than 4G."""
        gain = 0.02 if generation == 5 else 0.12
        return cls(initial_bler=initial_bler, combining_gain=gain, rng=rng)

    def transmit_block(self) -> int:
        """Send one transport block; return the retransmissions needed.

        Returns:
            The number of retransmissions (0 = first attempt succeeded), or
            ``threshold`` if the block was abandoned (residual loss).
        """
        p = self.initial_bler
        for attempt in range(self.threshold):
            if self._rng.random() >= p:
                return attempt
            p *= self.combining_gain
        return self.threshold

    def run(self, transport_blocks: int) -> HarqStats:
        """Transmit ``transport_blocks`` blocks and aggregate statistics."""
        if transport_blocks <= 0:
            raise ValueError(f"transport_blocks must be positive, got {transport_blocks}")
        counts: Counter[int] = Counter()
        residual = 0
        tracer = self._tracer
        traced = tracer.enabled  # one branch per block on the hot path
        for _ in range(transport_blocks):
            attempts = self.transmit_block()
            if traced:
                # HARQ has no virtual clock; samples are indexed per block.
                tracer.counter("harq.retx", None, float(attempts))
                if attempts:
                    tracer.bump("harq.nack", None, float(attempts))
            if attempts >= self.threshold:
                residual += 1
            else:
                counts[attempts] += 1
        return HarqStats(
            transport_blocks=transport_blocks,
            retransmission_counts=dict(counts),
            residual_losses=residual,
        )

    def abandonment_probability(self) -> float:
        """Analytic probability a block exhausts all retransmissions.

        For a 50%-loss link without combining this is 0.5**32 ≈ 2.3e-10,
        the figure the paper quotes to dismiss RAN loss.
        """
        p = self.initial_bler
        prob = 1.0
        for _ in range(self.threshold):
            prob *= p
            p *= self.combining_gain
        return prob
