"""Sectorized base-station antenna patterns.

The paper notes that gNBs use fan-shaped sector antennas with a narrow
field of view, which leaves locations outside any sector boresight
uncovered (locations B/C in Fig. 2(b)).  We implement the standard 3GPP
parabolic sector pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SectorAntenna", "OmniAntenna"]


def _angle_difference_deg(a: float, b: float) -> float:
    """Smallest signed angular difference ``a - b`` folded into [-180, 180)."""
    return (a - b + 180.0) % 360.0 - 180.0


@dataclass(frozen=True)
class SectorAntenna:
    """3GPP horizontal sector pattern: ``-min(12 (phi/phi_3dB)^2, A_m)``.

    Attributes:
        azimuth_deg: Boresight direction (0 = north, clockwise).
        max_gain_dbi: Peak gain on boresight.
        beamwidth_deg: 3 dB beamwidth (65 degrees is the 3GPP default).
        front_to_back_db: Maximum attenuation off boresight.
    """

    azimuth_deg: float
    max_gain_dbi: float = 17.0
    beamwidth_deg: float = 65.0
    front_to_back_db: float = 30.0

    def __post_init__(self) -> None:
        if self.beamwidth_deg <= 0:
            raise ValueError(f"beamwidth must be positive, got {self.beamwidth_deg}")
        if self.front_to_back_db < 0:
            raise ValueError(
                f"front-to-back ratio must be >= 0, got {self.front_to_back_db}"
            )

    def gain_dbi(self, direction_deg: float) -> float:
        """Gain toward ``direction_deg`` (same convention as the azimuth)."""
        off = _angle_difference_deg(direction_deg, self.azimuth_deg)
        attenuation = min(12.0 * (off / self.beamwidth_deg) ** 2, self.front_to_back_db)
        return self.max_gain_dbi - attenuation

    def in_field_of_view(self, direction_deg: float, margin_db: float = 10.0) -> bool:
        """True if the direction is within ``margin_db`` of peak gain."""
        return self.gain_dbi(direction_deg) >= self.max_gain_dbi - margin_db


@dataclass(frozen=True)
class OmniAntenna:
    """An idealized omnidirectional antenna (used by UEs and small cells)."""

    max_gain_dbi: float = 0.0

    def gain_dbi(self, direction_deg: float) -> float:
        """Gain toward ``direction_deg`` (uniform for omni)."""
        return self.max_gain_dbi

    def in_field_of_view(self, direction_deg: float, margin_db: float = 10.0) -> bool:
        """Always true: an omni antenna has no FoV edge."""
        return True
