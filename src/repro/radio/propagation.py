"""Radio propagation models.

Implements 3GPP TR 38.901-style urban-macro (UMa) path loss with log-normal
shadowing and frequency-dependent wall penetration.  These are the physical
mechanisms behind three of the paper's coverage findings:

* 5G's 3.5 GHz carrier attenuates faster than 4G's 1.84 GHz, so the same
  deployment density leaves more coverage holes (Tab. 2);
* a single gNB's usable radius is ~230 m vs ~520 m for an eNB (Sec. 3.2);
* brick/concrete walls cost roughly 50% of the 5G bit-rate indoors but only
  ~20% for 4G (Fig. 3).

Shadowing is drawn deterministically from the sampling location so repeated
surveys of the same spot observe the same large-scale fade, as in reality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.rng import RngFactory
from repro.geometry.buildings import BuildingMap
from repro.geometry.points import Point

__all__ = [
    "free_space_path_loss_db",
    "uma_los_path_loss_db",
    "uma_nlos_path_loss_db",
    "wall_penetration_loss_db",
    "clutter_loss_db",
    "Environment",
]

#: Shadowing standard deviations (TR 38.901 UMa).
LOS_SHADOW_SIGMA_DB = 4.0
NLOS_SHADOW_SIGMA_DB = 6.5

#: Spatial granularity of shadowing: points within the same grid cell see the
#: same fade, giving short-range spatial correlation.
_SHADOW_GRID_M = 10.0

_MIN_DISTANCE_M = 1.0

#: Dense-urban clutter attenuation (trees, street furniture, people, partial
#: blockage) in dB per meter, as a power law of the carrier frequency in GHz.
#: Together with the path-loss exponents below it is calibrated so the
#: deterministic LoS service radius matches the paper's walks in Sec. 3.2
#: (~230 m at 3.5 GHz, ~520 m at 1.84 GHz) while the blanket road survey
#: reproduces Tab. 1/Tab. 2 (mean RSRP ~ -84 dBm, 5G holes >> 4G holes).
_CLUTTER_COEFF = 0.008
_CLUTTER_EXPONENT = 2.2

#: Path-loss exponents of the calibrated dense-urban model.  TR 38.901 UMa
#: uses 2.2 (LOS) / 3.9 (NLOS); a campus canyon with trees and human
#: activity sits between those extremes on both link classes.
_LOS_EXPONENT = 2.8
_NLOS_EXPONENT = 3.4


def clutter_loss_db(
    distance_m: float,
    carrier_mhz: float,
    coeff: float = _CLUTTER_COEFF,
    exponent: float = _CLUTTER_EXPONENT,
) -> float:
    """Distance-proportional dense-urban clutter loss in dB."""
    f_ghz = carrier_mhz / 1000.0
    return coeff * (f_ghz**exponent) * max(distance_m, 0.0)


def free_space_path_loss_db(distance_m: float, carrier_mhz: float) -> float:
    """Free-space path loss (Friis) in dB."""
    d = max(distance_m, _MIN_DISTANCE_M)
    return 32.45 + 20.0 * math.log10(d / 1000.0) + 20.0 * math.log10(carrier_mhz)


def uma_los_path_loss_db(
    distance_m: float, carrier_mhz: float, exponent: float = _LOS_EXPONENT
) -> float:
    """Line-of-sight path loss of the calibrated dense-urban model.

    Same functional form as TR 38.901 UMa LOS but with a configurable
    exponent (see module calibration note).
    """
    d = max(distance_m, _MIN_DISTANCE_M)
    f_ghz = carrier_mhz / 1000.0
    return 28.0 + 10.0 * exponent * math.log10(d) + 20.0 * math.log10(f_ghz)


def uma_nlos_path_loss_db(
    distance_m: float,
    carrier_mhz: float,
    exponent: float = _NLOS_EXPONENT,
    los_exponent: float = _LOS_EXPONENT,
) -> float:
    """Non-line-of-sight path loss of the calibrated dense-urban model.

    NLOS loss is lower-bounded by the LOS loss at the same distance.
    """
    d = max(distance_m, _MIN_DISTANCE_M)
    f_ghz = carrier_mhz / 1000.0
    nlos = 28.0 + 10.0 * exponent * math.log10(d) + 20.0 * math.log10(f_ghz)
    return max(nlos, uma_los_path_loss_db(d, carrier_mhz, los_exponent))


def wall_penetration_loss_db(carrier_mhz: float, walls: int = 1) -> float:
    """Penetration loss through ``walls`` exterior brick/concrete walls.

    Loss per wall grows with frequency (cf. channel-sounding studies such as
    Koppel et al. 2017 cited by the paper): ~8 dB at 1.84 GHz and ~17 dB at
    3.5 GHz, which yields the measured ~20% (4G) vs ~50% (5G) indoor bit-rate
    drop when pushed through the CQI/MCS chain.
    """
    if walls < 0:
        raise ValueError(f"wall count must be >= 0, got {walls}")
    f_ghz = carrier_mhz / 1000.0
    per_wall = 4.5 + 1.0 * f_ghz**2
    return per_wall * walls


@dataclass(frozen=True)
class PathLossBreakdown:
    """Component-wise path loss for one link, useful for diagnosis."""

    distance_m: float
    line_of_sight: bool
    base_db: float
    penetration_db: float
    shadowing_db: float

    @property
    def total_db(self) -> float:
        """Sum of base, penetration and shadowing losses."""
        return self.base_db + self.penetration_db + self.shadowing_db


class Environment:
    """A propagation environment: buildings plus deterministic shadowing.

    Args:
        buildings: Building map used for LOS tests and penetration loss
            (``None`` means an empty map).
        rng: Factory seeding the shadowing field.  Required — there is
            no hidden seed-0 fallback, so the shadowing realisation
            always inherits the campaign seed (REP010).
        los_sigma_db: Shadowing std-dev on LOS links.
        nlos_sigma_db: Shadowing std-dev on NLOS links.
    """

    def __init__(
        self,
        buildings: BuildingMap | None,
        rng: RngFactory,
        los_sigma_db: float = LOS_SHADOW_SIGMA_DB,
        nlos_sigma_db: float = NLOS_SHADOW_SIGMA_DB,
        los_exponent: float = _LOS_EXPONENT,
        nlos_exponent: float = _NLOS_EXPONENT,
        clutter_coeff: float = _CLUTTER_COEFF,
        clutter_exponent: float = _CLUTTER_EXPONENT,
    ) -> None:
        self.buildings = buildings if buildings is not None else BuildingMap(())
        self._rng = rng
        self.los_sigma_db = los_sigma_db
        self.nlos_sigma_db = nlos_sigma_db
        self.los_exponent = los_exponent
        self.nlos_exponent = nlos_exponent
        self.clutter_coeff = clutter_coeff
        self.clutter_exponent = clutter_exponent
        self._shadow_cache: dict[str, float] = {}

    def breakdown(self, tx: Point, rx: Point, carrier_mhz: float) -> PathLossBreakdown:
        """Full path-loss decomposition between ``tx`` and ``rx``.

        Intermediate buildings turn the link NLOS (their blockage is what
        the steeper NLOS slope models); explicit wall-penetration loss is
        only charged for the walls of the building the receiver itself is
        inside, to avoid double counting.
        """
        distance = tx.distance_to(rx)
        crossings = self.buildings.wall_crossings(tx, rx)
        rx_own_building = self.buildings.building_at(rx)
        if rx_own_building is not None:
            # The receiver's own wall is charged as penetration loss below;
            # it must not also flip the link to the NLOS class.
            crossings -= rx_own_building.wall_crossings(tx, rx)
        los = crossings == 0
        if los:
            base = uma_los_path_loss_db(distance, carrier_mhz, self.los_exponent)
            sigma = self.los_sigma_db
        else:
            base = uma_nlos_path_loss_db(
                distance, carrier_mhz, self.nlos_exponent, self.los_exponent
            )
            sigma = self.nlos_sigma_db
        base += self.clutter_db(distance, carrier_mhz)
        indoor_walls = 0
        if rx_own_building is not None and not rx_own_building.contains(tx):
            indoor_walls = 1
        penetration = wall_penetration_loss_db(carrier_mhz, indoor_walls)
        shadowing = sigma * self._shadow_standard_normal(tx, rx, carrier_mhz)
        return PathLossBreakdown(
            distance_m=distance,
            line_of_sight=los,
            base_db=base,
            penetration_db=penetration,
            shadowing_db=shadowing,
        )

    def clutter_db(self, distance_m: float, carrier_mhz: float) -> float:
        """Clutter loss under this environment's calibration."""
        return clutter_loss_db(
            distance_m, carrier_mhz, self.clutter_coeff, self.clutter_exponent
        )

    def path_loss_db(self, tx: Point, rx: Point, carrier_mhz: float) -> float:
        """Total path loss between ``tx`` and ``rx`` at ``carrier_mhz``."""
        return self.breakdown(tx, rx, carrier_mhz).total_db

    def is_indoor(self, p: Point) -> bool:
        """Whether ``p`` lies inside a building."""
        return self.buildings.is_indoor(p)

    def _shadow_standard_normal(self, tx: Point, rx: Point, carrier_mhz: float) -> float:
        """Deterministic N(0, 1) draw keyed by the link's shadow-grid cells."""
        key = (
            f"shadow:{round(tx.x)}:{round(tx.y)}:"
            f"{int(rx.x // _SHADOW_GRID_M)}:{int(rx.y // _SHADOW_GRID_M)}:"
            f"{round(carrier_mhz)}"
        )
        cached = self._shadow_cache.get(key)
        if cached is None:
            gen: np.random.Generator = self._rng.stream(key)
            cached = float(gen.standard_normal())
            self._shadow_cache[key] = cached
        return cached

    def shadow_standard_normals(
        self,
        tx: Point,
        carrier_mhz: float,
        grid_x: np.ndarray,
        grid_y: np.ndarray,
    ) -> np.ndarray:
        """Array form of :meth:`_shadow_standard_normal` over grid indices.

        ``grid_x``/``grid_y`` are *shadow-grid* indices (``int(x // 10)``)
        rather than coordinates; the batched radio core deduplicates the
        receiver grid cells before calling, so each unique fade is keyed,
        drawn and cached exactly once — shared with the scalar path, in
        any evaluation order (each key seeds its own RNG stream).
        """
        prefix = f"shadow:{round(tx.x)}:{round(tx.y)}:"
        suffix = f":{round(carrier_mhz)}"
        out = np.empty(len(grid_x), dtype=np.float64)
        cache = self._shadow_cache
        for i, (gx, gy) in enumerate(zip(grid_x.tolist(), grid_y.tolist())):
            key = f"{prefix}{gx}:{gy}{suffix}"
            cached = cache.get(key)
            if cached is None:
                cached = float(self._rng.stream(key).standard_normal())
                cache[key] = cached
            out[i] = cached
        return out
