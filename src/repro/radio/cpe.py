"""5G CPE (customer-premises equipment) and the DSL-replacement study.

Sec. 8 asks: can a 5G fixed-wireless gateway replace DSL for home access?
The paper measures ~650 Mbps to a window-mounted HUAWEI CPE Pro and divides
a 3-sector gNB's capacity across a 50-house neighbourhood to land on
~39 Mbps per house — above the 24 Mbps average US DSL rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import RadioProfile
from repro.radio.linkadapt import spectral_efficiency_from_sinr
from repro.radio.phy import TRANSPORT_EFFICIENCY, max_phy_bit_rate, phy_bit_rate
from repro.radio.propagation import (
    clutter_loss_db,
    uma_los_path_loss_db,
    wall_penetration_loss_db,
)
from repro.radio.signal import combine_signal, rsrp_dbm

__all__ = ["CpeLink", "DslComparison", "dsl_replacement_study", "US_DSL_MEAN_BPS"]

#: Average US DSL downlink the paper compares against (Sec. 8).
US_DSL_MEAN_BPS = 24e6

#: A window-mounted CPE antenna outperforms a phone: directional panel gain
#: and no body loss.
CPE_ANTENNA_GAIN_DBI = 9.0


@dataclass(frozen=True)
class CpeLink:
    """A fixed 5G link from a gNB sector to a window-mounted CPE."""

    profile: RadioProfile
    distance_m: float
    window_mounted: bool = True
    gnb_gain_dbi: float = 24.0
    interference_floor_dbm: float = -105.0

    def __post_init__(self) -> None:
        if self.distance_m <= 0:
            raise ValueError(f"distance must be positive, got {self.distance_m}")

    def sinr_db(self) -> float:
        """Link SINR: LoS path through (at most) the mounting window."""
        loss = uma_los_path_loss_db(self.distance_m, self.profile.carrier_mhz)
        loss += clutter_loss_db(self.distance_m, self.profile.carrier_mhz)
        if not self.window_mounted:
            # Deep-indoor placement pays the full wall penalty.
            loss += wall_penetration_loss_db(self.profile.carrier_mhz, walls=1)
        rsrp = rsrp_dbm(
            tx_power_dbm=self.profile.tx_power_dbm,
            num_prb=self.profile.num_prb,
            antenna_gain_dbi=self.gnb_gain_dbi + CPE_ANTENNA_GAIN_DBI,
            path_loss_db=loss,
        )
        sample = combine_signal(
            rsrp,
            [],
            self.profile.subcarrier_khz,
            interference_floor_dbm=self.interference_floor_dbm,
        )
        return sample.sinr_db

    def throughput_bps(self, prb_fraction: float = 1.0) -> float:
        """Goodput the CPE delivers to the home network."""
        rate = phy_bit_rate(
            self.profile, self.sinr_db(), direction="dl", prb_fraction=prb_fraction
        )
        return rate * TRANSPORT_EFFICIENCY

    @property
    def usable(self) -> bool:
        """Whether the link supports any MCS at all."""
        return spectral_efficiency_from_sinr(self.sinr_db()) > 0.0


@dataclass(frozen=True)
class DslComparison:
    """Outcome of the neighbourhood sharing analysis."""

    cpe_throughput_bps: float
    houses: int
    sectors: int
    per_house_bps: float
    dsl_bps: float

    @property
    def replaces_dsl(self) -> bool:
        """Whether the per-house share beats the DSL average."""
        return self.per_house_bps > self.dsl_bps


def dsl_replacement_study(
    profile: RadioProfile,
    houses: int = 50,
    sectors: int = 3,
    cpe_distance_m: float = 240.0,
) -> DslComparison:
    """Share a gNB across a residential area and compare against DSL.

    Uses the paper's own arithmetic (Sec. 8): each house's share is the
    per-CPE throughput times the sector count, divided evenly over the
    covered houses.

    Args:
        profile: The NR profile serving the neighbourhood.
        houses: Homes covered by the gNB (paper: ~50 within 200 m).
        sectors: Sectors on the site (paper: 3).
        cpe_distance_m: Typical gNB-to-window distance in a residential
            deployment (default at the coverage-edge side of the cell,
            where the paper's ~650 Mbps CPE measurement lands).
    """
    if houses < 1 or sectors < 1:
        raise ValueError("houses and sectors must be >= 1")
    link = CpeLink(profile=profile, distance_m=cpe_distance_m)
    cpe = min(link.throughput_bps(), max_phy_bit_rate(profile) * TRANSPORT_EFFICIENCY)
    per_house = cpe * sectors / houses
    return DslComparison(
        cpe_throughput_bps=cpe,
        houses=houses,
        sectors=sectors,
        per_house_bps=per_house,
        dsl_bps=US_DSL_MEAN_BPS,
    )
