"""Radio access layer: propagation, antennas, signal quality, link
adaptation, PHY rates, HARQ and coverage surveying."""

from repro.radio.antenna import OmniAntenna, SectorAntenna
from repro.radio.cell import Cell, RadioNetwork
from repro.radio.cpe import (
    US_DSL_MEAN_BPS,
    CpeLink,
    DslComparison,
    dsl_replacement_study,
)
from repro.radio.coverage import (
    RSRP_BIN_EDGES,
    SurveyPoint,
    cell_grid_survey,
    coverage_hole_fraction,
    coverage_radius_m,
    indoor_outdoor_gap,
    road_survey,
    rsrp_distribution,
)
from repro.radio.harq import RETRANSMISSION_THRESHOLD, HarqProcess, HarqStats
from repro.radio.linkadapt import (
    CQI_TABLE,
    MAX_SPECTRAL_EFFICIENCY,
    LinkAdaptation,
    cqi_from_sinr,
    spectral_efficiency_from_sinr,
)
from repro.radio.phy import (
    TRANSPORT_EFFICIENCY,
    PrbAllocation,
    PrbAllocator,
    max_phy_bit_rate,
    phy_bit_rate,
)
from repro.radio.propagation import (
    Environment,
    free_space_path_loss_db,
    uma_los_path_loss_db,
    uma_nlos_path_loss_db,
    wall_penetration_loss_db,
)
from repro.radio.signal import (
    MIN_SERVICE_RSRP_DBM,
    SignalSample,
    combine_signal,
    noise_per_re_dbm,
    rsrp_dbm,
)

__all__ = [
    "CQI_TABLE",
    "Cell",
    "CpeLink",
    "DslComparison",
    "Environment",
    "HarqProcess",
    "HarqStats",
    "LinkAdaptation",
    "MAX_SPECTRAL_EFFICIENCY",
    "MIN_SERVICE_RSRP_DBM",
    "OmniAntenna",
    "PrbAllocation",
    "PrbAllocator",
    "RETRANSMISSION_THRESHOLD",
    "RSRP_BIN_EDGES",
    "RadioNetwork",
    "SectorAntenna",
    "SignalSample",
    "SurveyPoint",
    "TRANSPORT_EFFICIENCY",
    "US_DSL_MEAN_BPS",
    "cell_grid_survey",
    "combine_signal",
    "coverage_hole_fraction",
    "coverage_radius_m",
    "cqi_from_sinr",
    "dsl_replacement_study",
    "free_space_path_loss_db",
    "indoor_outdoor_gap",
    "max_phy_bit_rate",
    "noise_per_re_dbm",
    "phy_bit_rate",
    "road_survey",
    "rsrp_dbm",
    "rsrp_distribution",
    "spectral_efficiency_from_sinr",
    "uma_los_path_loss_db",
    "uma_nlos_path_loss_db",
    "wall_penetration_loss_db",
]
