"""Signal-quality metrics: RSRP, RSSI, RSRQ and SINR.

These are the physical-layer KPIs the paper logs through XCAL-Mobile.  All
metrics are computed per resource element (RE) so they are directly
comparable across the 20 MHz LTE and 100 MHz NR channels, matching how the
standards define them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.units import dbm_to_mw, mw_to_dbm, thermal_noise_dbm

__all__ = [
    "MIN_SERVICE_RSRP_DBM",
    "SignalSample",
    "rsrp_dbm",
    "noise_per_re_dbm",
    "combine_signal",
]

#: Service threshold from Rel-15 TS 36.211 cited in Sec. 3.1: below
#: -105 dBm RSRP the network cannot initiate communication service.
MIN_SERVICE_RSRP_DBM = -105.0

#: Resource elements per PRB in the frequency domain.
_RE_PER_PRB = 12


def rsrp_dbm(
    tx_power_dbm: float,
    num_prb: int,
    antenna_gain_dbi: float,
    path_loss_db: float,
) -> float:
    """Reference-signal received power for one cell at one location.

    The cell's transmit power is spread uniformly over its resource
    elements; RSRP is the per-RE power after antenna gain and path loss.
    """
    if num_prb <= 0:
        raise ValueError(f"num_prb must be positive, got {num_prb}")
    per_re_tx = tx_power_dbm - 10.0 * math.log10(num_prb * _RE_PER_PRB)
    return per_re_tx + antenna_gain_dbi - path_loss_db


def noise_per_re_dbm(subcarrier_khz: float, noise_figure_db: float = 7.0) -> float:
    """Thermal-noise power within one resource element."""
    return thermal_noise_dbm(subcarrier_khz * 1e3, noise_figure_db)


@dataclass(frozen=True)
class SignalSample:
    """The joint signal-quality observation at one location for one cell."""

    rsrp_dbm: float
    rsrq_db: float
    sinr_db: float

    @property
    def in_service(self) -> bool:
        """Whether communication service can be initiated here (Sec. 3.1)."""
        return self.rsrp_dbm >= MIN_SERVICE_RSRP_DBM


def combine_signal(
    serving_rsrp_dbm: float,
    interferer_rsrps_dbm: Sequence[float],
    subcarrier_khz: float,
    noise_figure_db: float = 7.0,
    interference_floor_dbm: float | None = None,
    interference_activity: float = 1.0,
) -> SignalSample:
    """Combine serving power, co-channel interference and noise.

    SINR scales neighbour power by the actual resource-element activity
    (the measured campus network was nearly idle), while RSRQ follows the
    standard full-load convention — RSSI counts every co-channel
    transmitter at full power — which is what gives RSRQ its wide dynamic
    range in the hand-off traces (Fig. 4/5).

    Args:
        serving_rsrp_dbm: Per-RE power of the serving cell.
        interferer_rsrps_dbm: Per-RE power of each co-channel neighbour.
        subcarrier_khz: Subcarrier spacing, for the per-RE noise floor.
        noise_figure_db: Receiver noise figure.
        interference_floor_dbm: Residual wideband interference-plus-
            impairment floor per RE.  Real receivers never reach the
            thermal floor: phase noise, quantization, inter-cell control
            channels and fast fading leave a residual floor that makes the
            achievable MCS track RSRP across the whole serving range, as
            the paper's bit-rate contours show (Fig. 2b).
        interference_activity: Fraction of REs the neighbours transmit on,
            applied to the SINR term only.
    """
    if not 0.0 <= interference_activity <= 1.0:
        raise ValueError(
            f"interference_activity must be in [0, 1], got {interference_activity}"
        )
    signal_mw = dbm_to_mw(serving_rsrp_dbm)
    full_interference_mw = sum(dbm_to_mw(p) for p in interferer_rsrps_dbm)
    active_interference_mw = interference_activity * full_interference_mw
    if interference_floor_dbm is not None:
        active_interference_mw += dbm_to_mw(interference_floor_dbm)
    noise_mw = dbm_to_mw(noise_per_re_dbm(subcarrier_khz, noise_figure_db))

    sinr_linear = signal_mw / (active_interference_mw + noise_mw)
    # RSSI per PRB aggregates the 12 REs of every transmitter, the residual
    # impairment floor and thermal noise.  Including the floor is what makes
    # RSRQ collapse for a dying serving cell even when no strong neighbour
    # is around — the condition that precedes the paper's vertical
    # hand-offs.
    floor_mw = dbm_to_mw(interference_floor_dbm) if interference_floor_dbm is not None else 0.0
    rssi_prb_mw = _RE_PER_PRB * (signal_mw + full_interference_mw + floor_mw + noise_mw)
    rsrq_linear = signal_mw / rssi_prb_mw

    return SignalSample(
        rsrp_dbm=serving_rsrp_dbm,
        rsrq_db=mw_to_dbm(rsrq_linear) if rsrq_linear > 0 else -math.inf,
        sinr_db=10.0 * math.log10(sinr_linear),
    )
