"""Physical-layer bit-rate computation and PRB allocation.

Ties together the radio profile (bandwidth, numerology, MIMO rank, TDD
split), the link-adaptation efficiency and the PRB share granted by the
scheduler.  Calibration constants absorb control-channel overhead, special
slots and effective-rank loss; they are chosen so that the model's maxima
match the figures the paper derives from TS 38.306:

* 5G NR downlink peak: 1200.98 Mbps at MCS 27 with all 273 PRBs (Sec. 4.1);
* 4G LTE downlink peak: ~267 Mbps (full 100 PRBs, 256-QAM, 2x2), giving the
  measured ~200 Mbps UDP baseline after transport overhead;
* uplink peaks giving the measured 130 Mbps (5G) / 100 Mbps (4G) baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import RadioProfile
from repro.radio.linkadapt import (
    MAX_SPECTRAL_EFFICIENCY,
    spectral_efficiency_from_sinr,
    spectral_efficiency_from_sinr_array,
)

__all__ = [
    "TRANSPORT_EFFICIENCY",
    "max_phy_bit_rate",
    "phy_bit_rate",
    "phy_bit_rate_array",
    "PrbAllocator",
    "PrbAllocation",
]

#: Fraction of the physical bit-rate visible as UDP goodput (RLC/PDCP/IP
#: headers plus scheduling gaps).  The paper measures 880-900 Mbps UDP over a
#: 1200.98 Mbps physical rate, i.e. 74.94% (Sec. 4.1).
TRANSPORT_EFFICIENCY = 0.7494

#: Calibrated efficiency by (generation, direction).  Absorbs control
#: overhead, special-slot structure and effective-rank loss.
_PHY_EFFICIENCY: dict[tuple[int, str], float] = {
    (4, "dl"): 1.0,
    (4, "ul"): 1.0,
    (5, "dl"): 0.55,
    (5, "ul"): 0.95,
}

#: Uplink spatial rank (single-layer uplink on both measured networks).
_UL_LAYERS = 1


def _direction_params(profile: RadioProfile, direction: str) -> tuple[float, int, float]:
    """(slot fraction, layers, calibration efficiency) for a direction."""
    if direction not in ("dl", "ul"):
        raise ValueError(f"direction must be 'dl' or 'ul', got {direction!r}")
    efficiency = _PHY_EFFICIENCY[(profile.generation, direction)]
    if direction == "dl":
        return profile.dl_slot_fraction, profile.mimo_layers, efficiency
    return profile.ul_slot_fraction, _UL_LAYERS, efficiency


def phy_bit_rate(
    profile: RadioProfile,
    sinr_db: float,
    direction: str = "dl",
    prb_fraction: float = 1.0,
) -> float:
    """Physical-layer bit-rate in bits/s for one UE.

    Args:
        profile: Radio profile (bandwidth, numerology, rank, TDD split).
        sinr_db: Post-combining SINR driving link adaptation.
        direction: ``"dl"`` or ``"ul"``.
        prb_fraction: Share of PRBs the scheduler grants this UE.
    """
    if not 0.0 <= prb_fraction <= 1.0:
        raise ValueError(f"prb_fraction must be in [0, 1], got {prb_fraction}")
    efficiency = spectral_efficiency_from_sinr(sinr_db)
    if efficiency == 0.0:
        return 0.0
    slot_fraction, layers, calibration = _direction_params(profile, direction)
    subcarrier_rate_hz = profile.num_prb * profile.subcarriers_per_prb * (
        profile.subcarrier_khz * 1e3
    )
    return (
        efficiency
        * subcarrier_rate_hz
        * layers
        * slot_fraction
        * calibration
        * prb_fraction
    )


def phy_bit_rate_array(
    profile: RadioProfile,
    sinr_db: np.ndarray,
    direction: str = "dl",
    prb_fraction: float = 1.0,
) -> np.ndarray:
    """Vectorized :func:`phy_bit_rate` over an SINR array.

    A zero efficiency multiplies through to exactly ``0.0``, so the
    scalar early-return for undecodable links needs no special casing.
    """
    if not 0.0 <= prb_fraction <= 1.0:
        raise ValueError(f"prb_fraction must be in [0, 1], got {prb_fraction}")
    efficiency = spectral_efficiency_from_sinr_array(sinr_db)
    slot_fraction, layers, calibration = _direction_params(profile, direction)
    subcarrier_rate_hz = profile.num_prb * profile.subcarriers_per_prb * (
        profile.subcarrier_khz * 1e3
    )
    return (
        efficiency
        * subcarrier_rate_hz
        * layers
        * slot_fraction
        * calibration
        * prb_fraction
    )


def max_phy_bit_rate(profile: RadioProfile, direction: str = "dl") -> float:
    """Peak physical bit-rate (best MCS, all PRBs) in bits/s."""
    slot_fraction, layers, calibration = _direction_params(profile, direction)
    subcarrier_rate_hz = profile.num_prb * profile.subcarriers_per_prb * (
        profile.subcarrier_khz * 1e3
    )
    return MAX_SPECTRAL_EFFICIENCY * subcarrier_rate_hz * layers * slot_fraction * calibration


@dataclass(frozen=True)
class PrbAllocation:
    """The PRB grant observed for the measured UE in one scheduling epoch."""

    granted: int
    total: int

    @property
    def fraction(self) -> float:
        """Granted share of the channel's PRBs."""
        return self.granted / self.total


class PrbAllocator:
    """Scheduler model reproducing the paper's PRB observations (Sec. 4.1).

    The early-commercial 5G network is nearly empty, so the measured UE gets
    almost all 273 PRBs (260-264) day and night.  The mature 4G network is
    contended: daytime grants drop to 40-85 of 100 PRBs, recovering to
    95-100 at night.
    """

    _RANGES: dict[tuple[int, str], tuple[int, int]] = {
        (5, "day"): (260, 264),
        (5, "night"): (260, 264),
        (4, "day"): (40, 85),
        (4, "night"): (95, 100),
    }

    def __init__(
        self, profile: RadioProfile, rng: np.random.Generator | None = None
    ) -> None:
        self._profile = profile
        self._rng = rng

    def allocate(self, time_of_day: str = "day") -> PrbAllocation:
        """Draw a PRB grant for one scheduling epoch.

        Args:
            time_of_day: ``"day"`` or ``"night"``.

        Raises:
            ValueError: if the allocator was built without a generator —
                only the deterministic :meth:`mean_fraction` works then.
        """
        if self._rng is None:
            raise ValueError(
                "PrbAllocator needs an np.random.Generator to draw grants; "
                "pass one at construction (mean_fraction() needs none)"
            )
        if time_of_day not in ("day", "night"):
            raise ValueError(f"time_of_day must be 'day' or 'night', got {time_of_day!r}")
        lo, hi = self._RANGES[(self._profile.generation, time_of_day)]
        hi = min(hi, self._profile.num_prb)
        granted = int(self._rng.integers(lo, hi + 1))
        return PrbAllocation(granted=granted, total=self._profile.num_prb)

    def mean_fraction(self, time_of_day: str = "day") -> float:
        """Expected PRB share without drawing randomness."""
        if time_of_day not in ("day", "night"):
            raise ValueError(f"time_of_day must be 'day' or 'night', got {time_of_day!r}")
        lo, hi = self._RANGES[(self._profile.generation, time_of_day)]
        hi = min(hi, self._profile.num_prb)
        return ((lo + hi) / 2.0) / self._profile.num_prb
