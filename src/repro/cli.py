"""Command-line interface: run any paper experiment from the shell.

Usage:
    python -m repro list [--params]
    python -m repro run fig7 [--seed 7] [--json out.json]
    python -m repro run tab2 fig3 fig6 --timings
    python -m repro run --all --parallel 4
    python -m repro run fig6 --scenario sa-mode
    python -m repro run fig7 --set workload.sim_scale=0.1
    python -m repro sweep fig6 tab4 --set radio.sa_mode=false,true
    python -m repro paper-index

``run`` goes through the campaign runner (:mod:`repro.runner`): results
are cached on disk under ``.repro_cache/`` keyed by (experiment, seed,
source hash, scenario digest), so repeating an invocation returns
instantly until the code changes.  ``--no-cache`` bypasses the cache,
``--parallel N`` fans cache misses out over N worker processes, and
``--timings`` prints per-run provenance (wall time, simulator events,
RNG streams, peak RSS).

``--scenario`` selects the deployment to simulate — a preset name
(``repro.scenario.PRESET_NAMES``; default ``paper-nsa``, the paper's NSA
campus) or a TOML/JSON scenario file — and ``--set dotted.key=value``
applies individual overrides on top.  ``sweep`` cartesian-expands
``--set key=v1,v2,...`` axes into a grid and runs the experiment set
under every point, reporting per-point KPI snapshots.

Observability companions: ``run --metrics PATH`` exports the campaign's
merged KPI registry (``repro metrics show|export|diff`` inspects it),
``run --profile PATH`` wraps each run in cProfile and dumps a combined
pstats file, and ``repro bench`` records BENCH_<date>.json performance
trajectory points gated against ``benchmarks/bench-baseline.json``.

Runs execute under the :mod:`repro.audit` runtime-verification layer by
default: conservation ledgers and invariant probes run alongside the
simulation, a probe violation fails the run, and the flight recorder of
a failed run is dumped under ``.repro_audit/`` (override with
``$REPRO_AUDIT_DIR``) for ``repro audit show|diff``.  ``--no-audit``
disables the layer, ``--audit-dump DIR`` dumps every run's flight
recorder, and ``--stall-timeout N`` arms a heartbeat watchdog that
reports parallel workers busy longer than N seconds.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import Any

import numpy as np

from repro import trace
from repro.audit.cli import add_audit_arguments, run_audit
from repro.core.results import ResultTable
from repro.experiments.registry import EXPERIMENTS, UnknownExperimentError
from repro.lint.cli import add_lint_arguments, run_lint
from repro.metrics.cli import add_metrics_arguments, run_metrics
from repro.metrics.export import write_jsonl
from repro.trace.cli import add_trace_arguments, run_trace
from repro.runner import (
    CampaignOutcome,
    ExperimentFailure,
    ProfileCollector,
    ResultCache,
    SweepPoint,
    campaign_timings,
    merged_metrics,
    run_campaign,
    run_sweep,
    source_hash,
    streams_by_worker,
)
from repro.runner import profiling
from repro.runner.bench import add_bench_arguments, run_bench
from repro.scenario import (
    Scenario,
    ScenarioOverrideError,
    UnknownScenarioError,
    apply_overrides,
    default_scenario,
    parse_set_args,
    parse_sweep_args,
    resolve_scenario,
    scenario_digest,
)

__all__ = ["EXPERIMENTS", "main"]

#: Version tag for the ``--json`` export layout.
JSON_SCHEMA_VERSION = 1


def _to_jsonable(value: Any) -> Any:
    """Best-effort conversion of experiment results to JSON.

    Numpy scalars and arrays are converted to their Python equivalents —
    falling through to ``repr`` would export strings like
    ``"np.int64(42)"`` instead of numbers.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_to_jsonable(v) for v in value.tolist()]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def _print_result(name: str, result: Any) -> None:
    spec = EXPERIMENTS[name]
    if hasattr(result, "table"):
        print(result.table().render())
    elif spec.describe is not None:
        print(spec.describe(result))
    else:
        print(repr(result))


def _cmd_list(show_params: bool = False) -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, spec in EXPERIMENTS.items():
        print(f"  {name:<{width}}  {spec.description}")
        if show_params:
            params = spec.default_params
            if params:
                rendered = ", ".join(f"{k}={v!r}" for k, v in params.items())
                print(f"  {'':<{width}}    params: {rendered}")
    return 0


def _cli_scenario(args: argparse.Namespace) -> Scenario:
    """Resolve ``--scenario`` + ``--set`` into one concrete scenario."""
    scenario = resolve_scenario(args.scenario)
    overrides = parse_set_args(args.set_args or [])
    if overrides:
        scenario = apply_overrides(scenario, overrides)
    return scenario


def _timings_table(outcomes: list[CampaignOutcome]) -> ResultTable:
    records = campaign_timings(outcomes)
    # Heartbeats exist only for worker-executed runs under an audit dir;
    # the column would be all "-" for serial/cached campaigns.
    with_heartbeats = any(r.heartbeat_finished_s for r in records)
    columns = ["experiment", "wall (s)", "cached", "events run", "rng streams",
               "peak RSS (MiB)", "RSS growth (MiB)"]
    if with_heartbeats:
        columns.append("worker busy (s)")
    table = ResultTable("Campaign timings (slowest first)", columns)
    for record in records:
        row = [
            record.experiment,
            f"{record.wall_time_s:.2f}",
            "yes" if record.cached else "no",
            record.events_executed,
            record.rng_streams_drawn,
            f"{record.peak_rss_kib / 1024:.0f}",
            f"{record.rss_growth_kib / 1024:.0f}",
        ]
        if with_heartbeats:
            busy = record.heartbeat_finished_s - record.heartbeat_started_s
            row.append(f"{busy:.2f}" if record.heartbeat_finished_s else "-")
        table.add_row(row)
    return table


def _export_json(
    path: str, outcomes: list[CampaignOutcome], seed: int, scenario: Scenario
) -> None:
    payload: dict[str, Any] = {
        "schema_version": JSON_SCHEMA_VERSION,
        "seed": seed,
        "source_hash": source_hash(),
        "scenario": {"name": scenario.name, "digest": scenario_digest(scenario)},
        "experiments": {
            o.name: {
                "description": EXPERIMENTS[o.name].description,
                "wall_time_s": o.record.wall_time_s,
                "cached": o.record.cached,
                "record": o.record.as_dict(),
                "result": _to_jsonable(o.result),
            }
            for o in outcomes
        },
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {path}")


def _write_trace(path: str, tracer: trace.Tracer, args: argparse.Namespace) -> None:
    meta = {"experiments": sorted(args.names), "seed": args.seed, "all": args.run_all}
    if path.endswith(".jsonl"):
        count = trace.write_jsonl(tracer, path, meta=meta)
    else:
        count = trace.write_chrome(tracer, path, meta=meta)
    stats = tracer.stats()
    dropped = f", {stats.dropped} dropped" if stats.dropped else ""
    print(f"wrote trace {path} ({count} record(s){dropped})")


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        scenario = _cli_scenario(args)
    except (UnknownScenarioError, ScenarioOverrideError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.no_audit:
        os.environ["REPRO_NO_AUDIT"] = "1"
    else:
        # CLI runs always have somewhere to drop a failing run's flight
        # recorder; library/pytest callers must opt in via the env var.
        os.environ.setdefault("REPRO_AUDIT_DIR", ".repro_audit")
        if args.audit_dump is not None:
            os.environ["REPRO_AUDIT_DUMP"] = args.audit_dump
    non_default = scenario_digest(scenario) != scenario_digest(default_scenario())
    if non_default:
        print(f"scenario: {scenario.describe()}\n")
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if args.trace_path is not None:
        # The tracer lives in this process: tracing forces a serial,
        # cache-bypassing campaign so every record is actually emitted here.
        if args.parallel > 1:
            print("tracing is in-process; ignoring --parallel", file=sys.stderr)
            args.parallel = 1
        cache = None
    if args.profile_path is not None:
        # cProfile state is per-process and a cache hit profiles nothing,
        # so profiling forces a serial, cache-bypassing campaign too.
        if args.parallel > 1:
            print("profiling is in-process; ignoring --parallel", file=sys.stderr)
            args.parallel = 1
        cache = None
    serial = args.parallel <= 1

    def progress(outcome: CampaignOutcome) -> None:
        record = outcome.record
        origin = "cache" if record.cached else f"{record.wall_time_s:.1f}s"
        if serial:
            print(f"== {outcome.name}: {EXPERIMENTS[outcome.name].description} "
                  f"(seed={args.seed}) ==")
            _print_result(outcome.name, outcome.result)
            print(f"   [{origin}]\n")
        else:
            print(f"   done {outcome.name} [{origin}]")

    tracer = trace.Tracer() if args.trace_path is not None else None
    collector = (
        ProfileCollector() if args.profile_path is not None else None
    )
    try:
        if tracer is not None:
            trace.install(tracer)
        if collector is not None:
            profiling.install(collector)
        try:
            outcomes = run_campaign(
                args.names,
                seed=args.seed,
                parallel=args.parallel,
                cache=cache,
                run_all=args.run_all,
                progress=progress,
                scenario=scenario,
                stall_timeout_s=args.stall_timeout,
            )
        finally:
            if collector is not None:
                profiling.uninstall(collector)
            if tracer is not None:
                trace.uninstall(tracer)
    except UnknownExperimentError as exc:
        print(str(exc), file=sys.stderr)
        print("use `python -m repro list` to see the catalogue", file=sys.stderr)
        return 2
    except ExperimentFailure as exc:
        print(str(exc), file=sys.stderr)
        if exc.audit_dump_path:
            print(
                f"inspect with: python -m repro audit show {exc.audit_dump_path}",
                file=sys.stderr,
            )
        return 1

    if not serial:
        print()
        for outcome in outcomes:
            print(f"== {outcome.name}: {EXPERIMENTS[outcome.name].description} "
                  f"(seed={args.seed}) ==")
            _print_result(outcome.name, outcome.result)
            print()
    if args.timings and outcomes:
        total = sum(o.record.wall_time_s for o in outcomes if not o.record.cached)
        print(_timings_table(outcomes).render())
        per_worker = streams_by_worker(o.record for o in outcomes)
        if len(per_worker) > 1:
            # A parallel campaign: RNG counters are per-process, so a single
            # total would be misleading — show each worker's own tally.
            workers = ", ".join(f"pid {pid}: {n}" for pid, n in per_worker.items())
            print(f"rng streams by worker: {workers}")
        print(f"total uncached wall time: {total:.2f}s\n")
    if tracer is not None:
        _write_trace(args.trace_path, tracer, args)
    if collector is not None:
        if collector.empty:
            print("no profiled runs; nothing written", file=sys.stderr)
        else:
            collector.dump(args.profile_path)
            print(collector.top_table().render())
            print(f"wrote profile {args.profile_path} "
                  f"(load with `python -m pstats {args.profile_path}`)")
    if args.metrics_path is not None:
        snapshot = merged_metrics(outcomes)
        meta: dict[str, Any] = {
            "experiments": sorted(o.name for o in outcomes), "seed": args.seed
        }
        if non_default:
            # Default-scenario metrics files stay byte-identical to the
            # pre-scenario layout; alternative deployments are labelled.
            meta["scenario"] = {
                "name": scenario.name, "digest": scenario_digest(scenario)
            }
        count = write_jsonl(snapshot, args.metrics_path, meta=meta)
        print(f"wrote metrics {args.metrics_path} ({count} metric(s))")
    if args.json_path is not None:
        _export_json(args.json_path, outcomes, args.seed, scenario)
    return 0


def _overrides_label(point: SweepPoint) -> str:
    if not point.overrides:
        return "(base scenario)"
    return " ".join(f"{k}={v}" for k, v in point.overrides.items())


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        base = resolve_scenario(args.scenario)
        axes = parse_sweep_args(args.set_args or [])
    except (UnknownScenarioError, ScenarioOverrideError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    cache = None if args.no_cache else ResultCache(args.cache_dir)

    def point_progress(point: SweepPoint) -> None:
        print(f"== point {point.index}: {_overrides_label(point)} "
              f"[scn={point.digest}] ==")
        for outcome in point.outcomes:
            record = outcome.record
            origin = "cache" if record.cached else f"{record.wall_time_s:.1f}s"
            print(f"   {outcome.name} [{origin}]")
        print()

    try:
        points = run_sweep(
            args.names,
            base=base,
            axes=axes,
            seed=args.seed,
            parallel=args.parallel,
            cache=cache,
            run_all=args.run_all,
            point_progress=point_progress,
        )
    except (UnknownExperimentError, ScenarioOverrideError) as exc:
        print(str(exc), file=sys.stderr)
        if isinstance(exc, UnknownExperimentError):
            print("use `python -m repro list` to see the catalogue", file=sys.stderr)
        return 2
    except ExperimentFailure as exc:
        print(str(exc), file=sys.stderr)
        return 1

    print(f"swept {len(points)} point(s) x {len(points[0].outcomes)} experiment(s)")
    if args.json_path is not None:
        payload = {
            "schema_version": JSON_SCHEMA_VERSION,
            "seed": args.seed,
            "source_hash": source_hash(),
            "base_scenario": {"name": base.name, "digest": scenario_digest(base)},
            "axes": [{"key": key, "values": list(values)} for key, values in axes],
            "points": [point.as_dict() for point in points],
        }
        with open(args.json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json_path}")
    return 0


def _cmd_paper_index() -> int:
    print("Paper table/figure -> experiment name -> benchmark file")
    for name, spec in EXPERIMENTS.items():
        bench = f"benchmarks/test_{spec.module.__name__.rsplit('.', 1)[-1]}.py"
        print(f"  {name:<18} {spec.description:<45} {bench}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction toolkit for 'Understanding Operational 5G' (SIGCOMM 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    list_parser = sub.add_parser("list", help="list available experiments")
    list_parser.add_argument("--params", action="store_true",
                             help="also show each experiment's tunable "
                                  "parameters and their defaults")
    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument("names", nargs="*", default=[],
                            help="experiment names (see `list`)")
    run_parser.add_argument("--all", dest="run_all", action="store_true",
                            help="run the whole catalogue")
    run_parser.add_argument("--seed", type=int, default=7)
    run_parser.add_argument("--scenario", default=None, metavar="NAME|PATH",
                            help="deployment scenario: a preset name or a "
                                 "TOML/JSON file (default: paper-nsa)")
    run_parser.add_argument("--set", dest="set_args", action="append",
                            default=[], metavar="KEY=VALUE",
                            help="override one scenario field, e.g. "
                                 "--set radio.sa_mode=true (repeatable)")
    run_parser.add_argument("--json", dest="json_path", default=None,
                            help="also dump results + run metadata to a JSON file")
    run_parser.add_argument("--parallel", type=int, default=1, metavar="N",
                            help="run across N worker processes (default: 1, serial)")
    run_parser.add_argument("--no-cache", action="store_true",
                            help="bypass the on-disk result cache")
    run_parser.add_argument("--cache-dir", default=None, metavar="PATH",
                            help="result cache location (default: .repro_cache, "
                                 "or $REPRO_CACHE_DIR)")
    run_parser.add_argument("--timings", action="store_true",
                            help="print per-experiment instrumentation records")
    run_parser.add_argument("--trace", dest="trace_path", default=None, metavar="PATH",
                            help="record a simulation trace (.jsonl = JSON lines, "
                                 "anything else = Chrome trace_event JSON); forces "
                                 "serial, uncached execution")
    run_parser.add_argument("--metrics", dest="metrics_path", default=None,
                            metavar="PATH",
                            help="write the campaign's merged KPI registry as "
                                 "metrics JSONL (inspect with `repro metrics`)")
    run_parser.add_argument("--profile", dest="profile_path", default=None,
                            metavar="PATH",
                            help="profile each run under cProfile and dump a "
                                 "combined pstats file; forces serial, uncached "
                                 "execution")
    run_parser.add_argument("--no-audit", action="store_true",
                            help="disable the runtime verification layer "
                                 "(conservation ledgers, invariant probes)")
    run_parser.add_argument("--audit-dump", default=None, metavar="DIR",
                            help="dump every run's flight recorder (JSONL) "
                                 "under DIR, violating or not")
    run_parser.add_argument("--stall-timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="parallel runs only: warn when a worker's "
                                 "heartbeat shows one run busy longer than this")
    sweep_parser = sub.add_parser(
        "sweep",
        help="run experiments under every point of a scenario parameter grid",
    )
    sweep_parser.add_argument("names", nargs="*", default=[],
                              help="experiment names (see `list`)")
    sweep_parser.add_argument("--all", dest="run_all", action="store_true",
                              help="sweep the whole catalogue")
    sweep_parser.add_argument("--seed", type=int, default=7)
    sweep_parser.add_argument("--scenario", default=None, metavar="NAME|PATH",
                              help="base scenario the sweep axes override")
    sweep_parser.add_argument("--set", dest="set_args", action="append",
                              default=[], metavar="KEY=V1,V2,...",
                              help="sweep axis: a dotted scenario key and its "
                                   "comma-separated values (repeatable; the "
                                   "grid is the cartesian product)")
    sweep_parser.add_argument("--parallel", type=int, default=1, metavar="N",
                              help="worker processes per point (default: 1)")
    sweep_parser.add_argument("--no-cache", action="store_true",
                              help="bypass the on-disk result cache")
    sweep_parser.add_argument("--cache-dir", default=None, metavar="PATH",
                              help="result cache location (default: "
                                   ".repro_cache, or $REPRO_CACHE_DIR)")
    sweep_parser.add_argument("--json", dest="json_path", default=None,
                              metavar="PATH",
                              help="dump per-point overrides, scenario digests "
                                   "and merged KPI snapshots to a JSON file")
    sub.add_parser("paper-index", help="map experiments to benchmark files")
    lint_parser = sub.add_parser(
        "lint",
        help="run the replint domain linter (determinism, units, simulator API)",
    )
    add_lint_arguments(lint_parser)
    trace_parser = sub.add_parser(
        "trace",
        help="inspect trace files from `run --trace` (summary, export, diff)",
    )
    add_trace_arguments(trace_parser)
    metrics_parser = sub.add_parser(
        "metrics",
        help="inspect metrics files from `run --metrics` (show, export, diff)",
    )
    add_metrics_arguments(metrics_parser)
    audit_parser = sub.add_parser(
        "audit",
        help="inspect flight-recorder dumps and worker heartbeats "
             "(show, diff, stalls)",
    )
    add_audit_arguments(audit_parser)
    bench_parser = sub.add_parser(
        "bench",
        help="write a BENCH_<date>.json trajectory point and gate it against "
             "the committed baseline",
    )
    add_bench_arguments(bench_parser)

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(show_params=args.params)
    if args.command == "run":
        if not args.names and not args.run_all:
            parser.error("run: provide experiment names or --all")
        return _cmd_run(args)
    if args.command == "sweep":
        if not args.names and not args.run_all:
            parser.error("sweep: provide experiment names or --all")
        return _cmd_sweep(args)
    if args.command == "paper-index":
        return _cmd_paper_index()
    if args.command == "lint":
        return run_lint(args)
    if args.command == "trace":
        return run_trace(args)
    if args.command == "metrics":
        return run_metrics(args)
    if args.command == "audit":
        return run_audit(args)
    if args.command == "bench":
        return run_bench(args)
    parser.error(f"unknown command {args.command!r}")
    return 2
