"""Command-line interface: run any paper experiment from the shell.

Usage:
    python -m repro list
    python -m repro run fig7 [--seed 7] [--json out.json]
    python -m repro run tab2 fig3 fig6
    python -m repro paper-index
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from typing import Any, Callable

from repro.experiments import (
    ablation_buffer_sizing,
    appendix_tables,
    ablation_coexistence,
    ablation_sa_mode,
    discussion_cpe_dsl,
    discussion_edge_computing,
    fig2_coverage_map,
    fig3_indoor_outdoor,
    fig4_handoff_rsrq,
    fig5_rsrq_gap,
    fig6_handoff_latency,
    fig7_throughput,
    fig8_cwnd,
    fig9_loss_rate,
    fig10_retransmissions,
    fig11_bursty_loss,
    fig12_ho_throughput,
    fig13_rtt_scatter,
    fig14_rtt_hops,
    fig15_rtt_distance,
    fig16_plt_sites,
    fig17_plt_images,
    fig18_video_throughput,
    fig19_video_fluctuation,
    fig20_frame_delay,
    fig21_power_breakdown,
    fig22_energy_per_bit,
    fig23_energy_timeline,
    tab1_physical_info,
    tab2_rsrp_distribution,
    sec34_event_mix,
    tab3_buffer_size,
    tab4_energy_models,
)

__all__ = ["EXPERIMENTS", "main"]


def _describe_fig4(r: Any) -> str:
    return (
        f"5G-5G hand-off at t={r.handoff_time_s:.1f}s "
        f"(PCI {r.source_pci} -> {r.target_pci}), {len(r.times_s)} RSRQ samples, "
        f"serving degrades beforehand: {r.serving_degrades_before_handoff}"
    )


def _describe_fig8(r: Any) -> str:
    cubic = r.mean_cwnd(r.cubic_trace, 10.0) / 1448
    bbr = r.mean_cwnd(r.bbr_trace, 10.0) / 1448
    return (
        f"mean cwnd after slow-start: cubic {cubic:.0f} segs vs bbr {bbr:.0f} segs; "
        f"cubic fast-retransmits: {r.cubic_fast_retransmits}"
    )


def _describe_fig11(r: Any) -> str:
    return (
        f"loss {r.loss_rate:.2%}; mean run {r.mean_run_length:.1f} pkts "
        f"(i.i.d. would be {r.expected_random_mean_run:.2f}); "
        f"burst fraction {r.burst_fraction:.0%}"
    )


def _describe_fig19(r: Any) -> str:
    return (
        f"throughput CV static {r.fluctuation(r.static_trace_mbps):.3f} vs "
        f"dynamic {r.fluctuation(r.dynamic_trace_mbps):.3f}; "
        f"freezes static {r.static_freezes} / dynamic {r.dynamic_freezes}"
    )


def _describe_fig20(r: Any) -> str:
    return (
        f"mean frame delay 5G {r.nr_mean_s * 1000:.0f} ms / 4G {r.lte_mean_s * 1000:.0f} ms; "
        f"processing {r.processing_s * 1000:.0f} ms vs "
        f"5G network {r.nr_network_s * 1000:.0f} ms"
    )


#: name -> (module, one-line description, fallback describe fn).
EXPERIMENTS: dict[str, tuple[Any, str, Callable[[Any], str] | None]] = {
    "tab1": (tab1_physical_info, "basic physical info of both networks", None),
    "tab2": (tab2_rsrp_distribution, "RSRP distribution and coverage holes", None),
    "fig2": (fig2_coverage_map, "campus RSRP map + cell-72 bit-rate contour", None),
    "fig3": (fig3_indoor_outdoor, "indoor/outdoor bit-rate gap", None),
    "fig4": (fig4_handoff_rsrq, "RSRQ evolution across one hand-off", _describe_fig4),
    "fig5": (fig5_rsrq_gap, "RSRQ gain across hand-offs", None),
    "fig6": (fig6_handoff_latency, "hand-off latency by kind", None),
    "fig7": (fig7_throughput, "UDP baselines + TCP utilization anomaly", None),
    "fig8": (fig8_cwnd, "Cubic vs BBR cwnd evolution", _describe_fig8),
    "fig9": (fig9_loss_rate, "UDP loss vs offered load", None),
    "fig10": (fig10_retransmissions, "HARQ retransmission depth", None),
    "fig11": (fig11_bursty_loss, "bursty loss pattern", _describe_fig11),
    "tab3": (tab3_buffer_size, "in-network buffer estimation", None),
    "fig12": (fig12_ho_throughput, "TCP throughput drop at hand-off", None),
    "fig13": (fig13_rtt_scatter, "4G vs 5G RTT over 80 paths", None),
    "fig14": (fig14_rtt_hops, "per-hop RTT decomposition", None),
    "fig15": (fig15_rtt_distance, "RTT vs path distance", None),
    "fig16": (fig16_plt_sites, "PLT by website category", None),
    "fig17": (fig17_plt_images, "PLT vs image size", None),
    "fig18": (fig18_video_throughput, "video throughput by resolution", None),
    "fig19": (fig19_video_fluctuation, "5.7K throughput fluctuation", _describe_fig19),
    "fig20": (fig20_frame_delay, "4K telephony frame delay", _describe_fig20),
    "fig21": (fig21_power_breakdown, "power breakdown per app", None),
    "fig22": (fig22_energy_per_bit, "energy per bit, saturated", None),
    "fig23": (fig23_energy_timeline, "energy-management showcase", None),
    "tab4": (tab4_energy_models, "energy of the four power models", None),
    "ablation-buffers": (
        ablation_buffer_sizing,
        "wired buffer sizing vs TCP anomaly",
        None,
    ),
    "ablation-sa": (ablation_sa_mode, "NSA vs projected SA architecture", None),
    "ablation-coexistence": (
        ablation_coexistence,
        "4G/5G flows sharing a wireline path",
        None,
    ),
    "cpe-dsl": (discussion_cpe_dsl, "5G fixed wireless vs DSL", None),
    "event-mix": (sec34_event_mix, "measurement-event mix along a walk", None),
    "appendix": (appendix_tables, "appendix tables 5/6/7", None),
    "edge": (discussion_edge_computing, "mobile edge computing", None),
}


def _to_jsonable(value: Any) -> Any:
    """Best-effort conversion of experiment results to JSON."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def _print_result(name: str, result: Any) -> None:
    module, _, describe = EXPERIMENTS[name]
    if hasattr(result, "table"):
        print(result.table().render())
    elif describe is not None:
        print(describe(result))
    else:
        print(repr(result))


def _cmd_list() -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, (_, description, _) in EXPERIMENTS.items():
        print(f"  {name:<{width}}  {description}")
    return 0


def _cmd_run(names: list[str], seed: int, json_path: str | None) -> int:
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use `python -m repro list` to see the catalogue", file=sys.stderr)
        return 2
    exported: dict[str, Any] = {}
    for name in names:
        module, description, _ = EXPERIMENTS[name]
        print(f"== {name}: {description} (seed={seed}) ==")
        started = time.time()
        result = module.run(seed=seed)
        _print_result(name, result)
        print(f"   [{time.time() - started:.1f}s]\n")
        exported[name] = _to_jsonable(result)
    if json_path is not None:
        with open(json_path, "w") as handle:
            json.dump(exported, handle, indent=2)
        print(f"wrote {json_path}")
    return 0


def _cmd_paper_index() -> int:
    print("Paper table/figure -> experiment name -> benchmark file")
    for name, (module, description, _) in EXPERIMENTS.items():
        bench = f"benchmarks/test_{module.__name__.rsplit('.', 1)[-1]}.py"
        print(f"  {name:<18} {description:<45} {bench}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction toolkit for 'Understanding Operational 5G' (SIGCOMM 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument("names", nargs="+", help="experiment names (see `list`)")
    run_parser.add_argument("--seed", type=int, default=7)
    run_parser.add_argument("--json", dest="json_path", default=None,
                            help="also dump results to a JSON file")
    sub.add_parser("paper-index", help="map experiments to benchmark files")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.names, args.seed, args.json_path)
    if args.command == "paper-index":
        return _cmd_paper_index()
    parser.error(f"unknown command {args.command!r}")
    return 2
