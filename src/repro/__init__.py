"""repro: a simulation-based reproduction of "Understanding Operational 5G:
A First Measurement Study on Its Coverage, Performance and Energy
Consumption" (SIGCOMM 2020).

Subpackages:
    core        units, seeded RNG, radio profiles, statistics
    geometry    planar geometry and the synthetic measurement campus
    radio       propagation, cells, link adaptation, coverage, CPE
    mobility    walkers, measurement events, NSA/SA hand-off
    net         discrete-event network simulation and path models
    transport   TCP (Reno/Cubic/Vegas/Veno/BBR) and UDP over the simulator
    apps        web browsing, panoramic video telephony, file transfer
    energy      RRC/DRX power state machine and energy models
    analysis    buffer estimation, KPI logging, dataset IO
    experiments one module per paper table/figure

Run ``python -m repro list`` for the experiment catalogue.
"""

__version__ = "1.0.0"
