"""Planar and geographic point primitives.

The campus survey (Sec. 3) uses a local planar frame in meters; the
end-to-end delay study (Sec. 4.4) uses latitude/longitude of nationwide
servers, for which we provide haversine distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterator

__all__ = ["Point", "Segment", "GeoPoint", "haversine_km"]

_EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True)
class Point:
    """A point in the local planar frame, coordinates in meters."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance in meters."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def bearing_to(self, other: "Point") -> float:
        """Azimuth from this point to ``other`` in degrees, 0 = +y (north),
        increasing clockwise, in [0, 360)."""
        angle = math.degrees(math.atan2(other.x - self.x, other.y - self.y))
        return angle % 360.0

    def offset(self, dx: float, dy: float) -> "Point":
        """Return a translated copy."""
        return Point(self.x + dx, self.y + dy)


@dataclass(frozen=True)
class Segment:
    """A directed line segment between two planar points."""

    start: Point
    end: Point

    @property
    def length(self) -> float:
        """Segment length in meters."""
        return self.start.distance_to(self.end)

    def interpolate(self, fraction: float) -> Point:
        """Point at ``fraction`` in [0, 1] along the segment."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        return Point(
            self.start.x + fraction * (self.end.x - self.start.x),
            self.start.y + fraction * (self.end.y - self.start.y),
        )

    def sample(self, spacing: float) -> Iterator[Point]:
        """Yield points every ``spacing`` meters along the segment,
        including both endpoints."""
        if spacing <= 0:
            raise ValueError(f"spacing must be positive, got {spacing}")
        steps = max(1, int(math.ceil(self.length / spacing)))
        for i in range(steps + 1):
            yield self.interpolate(i / steps)


@dataclass(frozen=True)
class GeoPoint:
    """A geographic coordinate in decimal degrees."""

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude out of range: {self.longitude}")


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two geographic points in kilometers."""
    lat1, lon1 = math.radians(a.latitude), math.radians(a.longitude)
    lat2, lon2 = math.radians(b.latitude), math.radians(b.longitude)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2.0 * _EARTH_RADIUS_KM * math.asin(math.sqrt(h))
