"""The synthetic measurement campus.

The paper's campaign ran on a 0.5 km x 0.92 km university campus containing
6 5G gNB sites (13 NR cells), 13 4G eNB sites (34 LTE cells, 6 of them
co-sited with the gNBs), 6.019 km of walkable roads and dense brick/concrete
buildings.  This module builds a deterministic planar replica with the same
aggregate statistics so coverage experiments run against comparable geometry:

* area 500 m x 920 m (0.46 km^2),
* gNB density 6 / 0.46 km^2 = 13.0 per km^2 (paper: 12.99),
* eNB density 13 / 0.46 km^2 = 28.3 per km^2 (paper: 28.14),
* road network ~6.0 km.

The map type itself lives in :mod:`repro.geometry.world`: :class:`Campus`
is an alias of :class:`~repro.geometry.world.WorldModel`, and this module
is the producer behind the ``paper-campus`` topology generator preset
(:mod:`repro.topology.generate`).  Procedural districts come from the other
presets; everything downstream consumes the abstract world model.
"""

from __future__ import annotations

from repro.geometry.buildings import Building, BuildingMap
from repro.geometry.points import Point, Segment
from repro.geometry.world import SectorSpec, SiteSpec, WorldModel

__all__ = ["SectorSpec", "SiteSpec", "Campus", "build_campus"]

#: Campus bounds in meters.
WIDTH_M = 500.0
HEIGHT_M = 920.0

#: The hand-crafted campus is a plain world model; the alias survives for
#: callers (and papers) that think in terms of "the campus".
Campus = WorldModel


def _grid_roads() -> tuple[Segment, ...]:
    """Four north-south avenues and five east-west streets (~6.02 km)."""
    verticals = [30.0, 140.0, 360.0, 470.0]
    horizontals = [40.0, 260.0, 480.0, 700.0, 880.0]
    roads: list[Segment] = []
    for x in verticals:
        roads.append(Segment(Point(x, 0.0), Point(x, HEIGHT_M)))
    for y in horizontals:
        roads.append(Segment(Point(0.0, y), Point(WIDTH_M, y)))
    return tuple(roads)


def _campus_buildings() -> BuildingMap:
    """Brick/concrete blocks filling the spaces between roads.

    One or two buildings per city block, leaving a >=10 m sidewalk margin so
    road samples stay outdoors.
    """
    x_blocks = [(40.0, 130.0), (150.0, 350.0), (370.0, 460.0)]
    y_blocks = [(50.0, 250.0), (270.0, 470.0), (490.0, 690.0), (710.0, 870.0)]
    buildings: list[Building] = []
    idx = 0
    for xi, (x0, x1) in enumerate(x_blocks):
        for yi, (y0, y1) in enumerate(y_blocks):
            idx += 1
            if xi == 1:
                # Wide central blocks hold two buildings with a courtyard.
                mid = (y0 + y1) / 2.0
                buildings.append(
                    Building(x0 + 10, y0 + 10, x1 - 10, mid - 15, name=f"B{idx}a")
                )
                buildings.append(
                    Building(x0 + 10, mid + 15, x1 - 10, y1 - 10, name=f"B{idx}b")
                )
            else:
                buildings.append(
                    Building(x0 + 8, y0 + 12, x1 - 8, y1 - 12, name=f"B{idx}")
                )
    return BuildingMap(buildings)


def _gnb_sites() -> tuple[SiteSpec, ...]:
    """Six gNB sites, 13 NR cells; PCIs follow Fig. 2(a) where possible."""
    return (
        SiteSpec(
            "gnb-SE",
            Point(460.0, 120.0),
            (SectorSpec(60, 300.0), SectorSpec(61, 60.0)),
        ),
        SiteSpec("gnb-SW", Point(35.0, 180.0), (SectorSpec(63, 30.0), SectorSpec(64, 210.0))),
        SiteSpec("gnb-W", Point(60.0, 500.0), (SectorSpec(68, 0.0), SectorSpec(69, 150.0))),
        SiteSpec(
            "gnb-C",
            Point(250.0, 480.0),
            (SectorSpec(72, 90.0), SectorSpec(73, 210.0), SectorSpec(74, 330.0)),
        ),
        SiteSpec("gnb-NE", Point(460.0, 640.0), (SectorSpec(79, 315.0), SectorSpec(80, 135.0))),
        SiteSpec("gnb-N", Point(200.0, 875.0), (SectorSpec(115, 45.0), SectorSpec(116, 225.0))),
    )


#: Positions of the seven 4G-only infill sites (also used as candidate
#: locations when a scenario densifies the gNB grid).
_INFILL_POSITIONS: tuple[tuple[str, Point], ...] = (
    ("enb-7", Point(250.0, 45.0)),
    ("enb-8", Point(470.0, 350.0)),
    ("enb-9", Point(30.0, 330.0)),
    ("enb-10", Point(250.0, 260.0)),
    ("enb-11", Point(470.0, 820.0)),
    ("enb-12", Point(40.0, 760.0)),
    ("enb-13", Point(140.0, 600.0)),
)


def _extra_gnb_sites(count: int) -> tuple[SiteSpec, ...]:
    """Densification gNBs co-sited at the first ``count`` infill positions.

    Two sectors each, PCIs from 130 upward (clear of the measured NR PCIs
    and below the LTE range starting at 200).
    """
    if count > len(_INFILL_POSITIONS):
        raise ValueError(
            f"extra_gnb_sites supports at most {len(_INFILL_POSITIONS)} sites, got {count}"
        )
    sites: list[SiteSpec] = []
    pci = 130
    for i, (_, pos) in enumerate(_INFILL_POSITIONS[:count]):
        sectors = (SectorSpec(pci, 0.0), SectorSpec(pci + 1, 180.0))
        pci += 2
        sites.append(SiteSpec(f"gnb-x{i + 1}", pos, sectors))
    return tuple(sites)


def _enb_sites() -> tuple[SiteSpec, ...]:
    """Thirteen eNB sites, 34 LTE cells.

    The first six share positions with the gNB sites (the NSA anchors); the
    remaining seven are 4G-only, which is why the measured 4G coverage is
    denser than 5G (Sec. 3.1).
    """
    gnbs = _gnb_sites()
    extra_positions = _INFILL_POSITIONS
    sites: list[SiteSpec] = []
    pci = 200
    # Co-sited anchors: 3 sectors each except the last (2) -> 17 cells.
    for i, gnb in enumerate(gnbs):
        n_sec = 3 if i < 5 else 2
        sectors = tuple(
            SectorSpec(pci + k, (k * 360.0 / n_sec) % 360.0) for k in range(n_sec)
        )
        pci += n_sec
        sites.append(SiteSpec(f"enb-{i + 1}", gnb.position, sectors))
    # Stand-alone eNBs: 3+3+3+2+2+2+2 -> 17 cells (34 total).
    extra_sector_counts = [3, 3, 3, 2, 2, 2, 2]
    for (name, pos), n_sec in zip(extra_positions, extra_sector_counts):
        sectors = tuple(
            SectorSpec(pci + k, (k * 360.0 / n_sec + 30.0) % 360.0) for k in range(n_sec)
        )
        pci += n_sec
        sites.append(SiteSpec(name, pos, sectors, power_class="micro"))
    return tuple(sites)


def build_campus(extra_gnb_sites: int = 0) -> Campus:
    """Construct the deterministic campus replica.

    Args:
        extra_gnb_sites: Densification gNBs (0-7) co-sited at the 4G-only
            infill positions, as requested by ``Scenario.topology``.  The
            default 0 reproduces the measured deployment exactly.

    Returns:
        A :class:`Campus` whose aggregate statistics (area, densities, road
        length, cell counts) match the paper's Tab. 1 and Sec. 2/3.
    """
    campus = Campus(
        width_m=WIDTH_M,
        height_m=HEIGHT_M,
        roads=_grid_roads(),
        buildings=_campus_buildings(),
        gnb_sites=_gnb_sites() + _extra_gnb_sites(extra_gnb_sites),
        enb_sites=_enb_sites(),
        landmarks={
            # Location "A" of Fig. 2(b): ~230 m down a LoS path from cell 72.
            "A": Point(480.0, 480.0),
            # Indoor/outdoor sampling spots ~100 m from cell 72 (Fig. 3).
            "F": Point(250.0, 580.0),
            "G": Point(160.0, 480.0),
            "H": Point(340.0, 480.0),
            "I": Point(250.0, 380.0),
        },
    )
    return campus
