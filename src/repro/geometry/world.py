"""The abstract world model consumed by every experiment layer.

Historically the repo had exactly one map: the hand-crafted campus replica
in :mod:`repro.geometry.campus`.  :class:`WorldModel` extracts the contract
that map satisfied — planar extent, a road network, a building stock and
two radio layers of sites — so the same radio core, mobility model and
survey machinery run unchanged on procedurally generated districts
(:mod:`repro.topology`).  The hand-crafted map is now just one producer of
this type (the ``paper-campus`` generator preset).

:class:`RoadGraph` precomputes junction adjacency over the road segments:
which roads are reachable when a walker stands at a segment endpoint.  It
uses the same ``< 15 m`` proximity predicate the original nearest-segment
scan in :class:`repro.mobility.walker.RouteWalker` used, so trajectories on
the paper campus stay byte-identical while turn decisions become O(1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property

from repro.geometry.buildings import BuildingMap
from repro.geometry.points import Point, Segment

__all__ = [
    "JUNCTION_TOLERANCE_M",
    "RoadGraph",
    "SectorSpec",
    "SiteSpec",
    "WorldModel",
    "distance_point_to_segment",
    "world_to_dict",
]

#: A road is incident to a junction node when it passes within this distance.
#: This is the historical RouteWalker turn radius; changing it would change
#: every committed trajectory.
JUNCTION_TOLERANCE_M = 15.0


@dataclass(frozen=True)
class SectorSpec:
    """One sector (cell) of a base-station site.

    Attributes:
        pci: Physical cell identifier.
        azimuth_deg: Boresight azimuth (0 = north / +y, clockwise).
    """

    pci: int
    azimuth_deg: float


@dataclass(frozen=True)
class SiteSpec:
    """A base-station site: a position plus its sectors.

    ``power_class`` distinguishes full macro sites from the low-power
    street-level small cells that densify the 4G layer: the six NSA anchor
    eNBs are macros (which is why the paper's 6-eNB subset still covers
    better than the 6 gNBs, Tab. 2), while the seven 4G-only infill sites
    are micros.
    """

    name: str
    position: Point
    sectors: tuple[SectorSpec, ...]
    power_class: str = "macro"

    def __post_init__(self) -> None:
        if not self.sectors:
            raise ValueError(f"site {self.name!r} must have at least one sector")
        if self.power_class not in ("macro", "micro"):
            raise ValueError(f"unknown power class {self.power_class!r}")


def distance_point_to_segment(p: Point, seg: Segment) -> float:
    """Shortest distance from ``p`` to ``seg`` in meters."""
    dx = seg.end.x - seg.start.x
    dy = seg.end.y - seg.start.y
    length_sq = dx * dx + dy * dy
    if length_sq == 0.0:
        return p.distance_to(seg.start)
    t = ((p.x - seg.start.x) * dx + (p.y - seg.start.y) * dy) / length_sq
    t = min(1.0, max(0.0, t))
    return p.distance_to(Point(seg.start.x + t * dx, seg.start.y + t * dy))


def _ccw(a: Point, b: Point, c: Point) -> float:
    return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)


def _segments_cross(s1: Segment, s2: Segment) -> bool:
    """True when the two segments share at least one point (incl. touching)."""
    d1 = _ccw(s2.start, s2.end, s1.start)
    d2 = _ccw(s2.start, s2.end, s1.end)
    d3 = _ccw(s1.start, s1.end, s2.start)
    d4 = _ccw(s1.start, s1.end, s2.end)
    if ((d1 > 0) != (d2 > 0) or d1 == 0 or d2 == 0) and (
        (d3 > 0) != (d4 > 0) or d3 == 0 or d4 == 0
    ):
        # Proper crossings pass both straddle tests; collinear/touching
        # cases (some d == 0) still need a bounding-box overlap check.
        return (
            min(s1.start.x, s1.end.x) <= max(s2.start.x, s2.end.x)
            and min(s2.start.x, s2.end.x) <= max(s1.start.x, s1.end.x)
            and min(s1.start.y, s1.end.y) <= max(s2.start.y, s2.end.y)
            and min(s2.start.y, s2.end.y) <= max(s1.start.y, s1.end.y)
        )
    return False


class RoadGraph:
    """Junction adjacency over a road network.

    ``roads_at(node)`` answers "standing at this point, which road segments
    can I continue on?" using the historical ``< 15 m`` proximity predicate,
    precomputed once per endpoint instead of rescanned every turn.  Indices
    are returned in road-tuple order, which keeps the RNG-driven turn choice
    of :class:`repro.mobility.walker.RouteWalker` byte-compatible with the
    old linear scan.
    """

    def __init__(
        self,
        roads: tuple[Segment, ...],
        junction_tolerance_m: float = JUNCTION_TOLERANCE_M,
    ) -> None:
        self._roads = tuple(roads)
        self._tolerance_m = float(junction_tolerance_m)
        self._incidence: dict[tuple[float, float], tuple[int, ...]] = {}
        for seg in self._roads:
            for node in (seg.start, seg.end):
                key = (node.x, node.y)
                if key not in self._incidence:
                    self._incidence[key] = self._scan(node)

    @property
    def roads(self) -> tuple[Segment, ...]:
        """The road segments this graph indexes."""
        return self._roads

    @property
    def junction_tolerance_m(self) -> float:
        """Incidence radius in meters."""
        return self._tolerance_m

    def _scan(self, node: Point) -> tuple[int, ...]:
        return tuple(
            i
            for i, seg in enumerate(self._roads)
            if distance_point_to_segment(node, seg) < self._tolerance_m
        )

    def roads_at(self, node: Point) -> tuple[int, ...]:
        """Indices of roads passing within the junction tolerance of ``node``."""
        key = (node.x, node.y)
        cached = self._incidence.get(key)
        if cached is None:
            cached = self._scan(node)
            self._incidence[key] = cached
        return cached

    def is_connected(self) -> bool:
        """True when every road is reachable from every other.

        Two roads are joined when an endpoint of one lies within the
        junction tolerance of the other (shared or near-shared nodes) or
        when the segments cross mid-span (the paper campus's full-length
        avenues intersect without sharing endpoints).
        """
        n = len(self._roads)
        if n <= 1:
            return True
        parent = list(range(n))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[rj] = ri

        for i, seg in enumerate(self._roads):
            for node in (seg.start, seg.end):
                for j in self.roads_at(node):
                    union(i, j)
        for i in range(n):
            for j in range(i + 1, n):
                if find(i) != find(j) and _segments_cross(self._roads[i], self._roads[j]):
                    union(i, j)
        root = find(0)
        return all(find(i) == root for i in range(n))


@dataclass(frozen=True)
class WorldModel:
    """A complete simulated deployment area.

    Attributes:
        width_m, height_m: Planar extent in meters (origin at south-west).
        roads: Walkable road segments.
        buildings: Building stock (blockage + indoor penetration).
        gnb_sites: 5G NR sites.
        enb_sites: 4G LTE sites.
        landmarks: Named points of interest (paper locations, hotspots).
    """

    width_m: float
    height_m: float
    roads: tuple[Segment, ...]
    buildings: BuildingMap
    gnb_sites: tuple[SiteSpec, ...]
    enb_sites: tuple[SiteSpec, ...]
    landmarks: dict[str, Point] = field(default_factory=dict)

    @property
    def area_km2(self) -> float:
        """Deployment area in square kilometers, derived from the extent."""
        return (self.width_m / 1000.0) * (self.height_m / 1000.0)

    @property
    def road_length_km(self) -> float:
        """Total road length in kilometers."""
        return sum(seg.length for seg in self.roads) / 1000.0

    @property
    def gnb_density_per_km2(self) -> float:
        """5G site density."""
        return len(self.gnb_sites) / self.area_km2

    @property
    def enb_density_per_km2(self) -> float:
        """4G site density."""
        return len(self.enb_sites) / self.area_km2

    def cell_count(self, network: str) -> int:
        """Total sector count for ``network`` in {'5G', '4G'}."""
        sites = self.gnb_sites if network == "5G" else self.enb_sites
        return sum(len(site.sectors) for site in sites)

    def co_sited_enbs(self) -> tuple[SiteSpec, ...]:
        """The 4G sites sharing a mast with a 5G gNB (NSA anchors)."""
        gnb_positions = {(s.position.x, s.position.y) for s in self.gnb_sites}
        return tuple(
            s for s in self.enb_sites if (s.position.x, s.position.y) in gnb_positions
        )

    def contains(self, p: Point) -> bool:
        """True when ``p`` falls inside the extent (boundary inclusive)."""
        return 0.0 <= p.x <= self.width_m and 0.0 <= p.y <= self.height_m

    @cached_property
    def road_graph(self) -> RoadGraph:
        """Junction adjacency over :attr:`roads` (built once, cached)."""
        return RoadGraph(self.roads)


def _round(value: float) -> float:
    """Canonical float for serialization: exact, but -0.0 folded to 0.0."""
    return value + 0.0 if value != 0.0 else 0.0


def world_to_dict(world: WorldModel) -> dict:
    """A JSON-able, byte-stable description of ``world``.

    Used by the golden-file tests: serializing the same ``(seed, section)``
    world in two different processes must produce identical bytes, and the
    ``paper-campus`` generator preset must reproduce ``build_campus()``
    exactly.  Floats are emitted verbatim (``repr`` round-trip via
    ``json``), so any numeric drift fails the comparison.
    """
    if math.isnan(world.width_m) or math.isnan(world.height_m):  # pragma: no cover
        raise ValueError("world extent is NaN")
    return {
        "width_m": _round(world.width_m),
        "height_m": _round(world.height_m),
        "roads": [
            {
                "start": [_round(seg.start.x), _round(seg.start.y)],
                "end": [_round(seg.end.x), _round(seg.end.y)],
            }
            for seg in world.roads
        ],
        "buildings": [
            {
                "x_min": _round(b.x_min),
                "y_min": _round(b.y_min),
                "x_max": _round(b.x_max),
                "y_max": _round(b.y_max),
                "name": b.name,
                "height_m": _round(b.height_m),
                "wall_loss_class": b.wall_loss_class,
            }
            for b in world.buildings
        ],
        "gnb_sites": [_site_to_dict(site) for site in world.gnb_sites],
        "enb_sites": [_site_to_dict(site) for site in world.enb_sites],
        "landmarks": {
            name: [_round(p.x), _round(p.y)]
            for name, p in sorted(world.landmarks.items())
        },
    }


def _site_to_dict(site: SiteSpec) -> dict:
    return {
        "name": site.name,
        "position": [_round(site.position.x), _round(site.position.y)],
        "power_class": site.power_class,
        "sectors": [
            {"pci": sec.pci, "azimuth_deg": _round(sec.azimuth_deg)}
            for sec in site.sectors
        ],
    }
