"""Planar geometry, buildings and the synthetic measurement campus."""

from repro.geometry.buildings import Building, BuildingMap
from repro.geometry.campus import Campus, SectorSpec, SiteSpec, build_campus
from repro.geometry.points import GeoPoint, Point, Segment, haversine_km

__all__ = [
    "Building",
    "BuildingMap",
    "Campus",
    "GeoPoint",
    "Point",
    "SectorSpec",
    "Segment",
    "SiteSpec",
    "build_campus",
    "haversine_km",
]
