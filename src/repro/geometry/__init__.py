"""Planar geometry, buildings and the abstract world model.

``SectorSpec``/``SiteSpec`` and the map type itself live in
:mod:`repro.geometry.world`; :mod:`repro.geometry.campus` merely produces
the hand-crafted paper replica (``Campus`` is an alias of ``WorldModel``).
"""

from repro.geometry.buildings import WALL_LOSS_CLASSES, Building, BuildingMap
from repro.geometry.campus import Campus, build_campus
from repro.geometry.points import GeoPoint, Point, Segment, haversine_km
from repro.geometry.world import (
    JUNCTION_TOLERANCE_M,
    RoadGraph,
    SectorSpec,
    SiteSpec,
    WorldModel,
    distance_point_to_segment,
    world_to_dict,
)

__all__ = [
    "Building",
    "BuildingMap",
    "Campus",
    "GeoPoint",
    "JUNCTION_TOLERANCE_M",
    "Point",
    "RoadGraph",
    "SectorSpec",
    "Segment",
    "SiteSpec",
    "WALL_LOSS_CLASSES",
    "WorldModel",
    "build_campus",
    "distance_point_to_segment",
    "haversine_km",
    "world_to_dict",
]
