"""Building footprints and radio blockage tests.

Buildings matter twice in the study: they block line-of-sight outdoors
(coverage defects at locations D/E in Fig. 2(b)) and their walls attenuate
signals reaching indoor receivers (the indoor/outdoor gap of Fig. 3).  We
model footprints as axis-aligned rectangles — adequate for a campus of
brick-and-concrete blocks — and count wall crossings along a propagation ray.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.geometry.points import Point

__all__ = ["WALL_LOSS_CLASSES", "Building", "BuildingMap"]

#: Recognised wall construction classes, in increasing penetration loss.
#: The paper's campus is brick-and-concrete; procedural stocks draw from
#: the full set by density class.
WALL_LOSS_CLASSES: tuple[str, ...] = ("timber", "glass", "brick", "concrete")


@dataclass(frozen=True)
class Building:
    """An axis-aligned rectangular building footprint.

    Attributes:
        x_min, y_min, x_max, y_max: Footprint bounds in meters.
        name: Optional label for debugging / map rendering.
        height_m: Roof height; metadata for generated stocks (the planar
            radio model does not ray-trace in elevation).
        wall_loss_class: Construction class from :data:`WALL_LOSS_CLASSES`.
    """

    x_min: float
    y_min: float
    x_max: float
    y_max: float
    name: str = ""
    height_m: float = 12.0
    wall_loss_class: str = "brick"

    def __post_init__(self) -> None:
        if self.x_min >= self.x_max or self.y_min >= self.y_max:
            raise ValueError(
                f"degenerate building bounds: "
                f"({self.x_min}, {self.y_min})..({self.x_max}, {self.y_max})"
            )
        if self.height_m <= 0.0:
            raise ValueError(f"building height must be positive, got {self.height_m}")
        if self.wall_loss_class not in WALL_LOSS_CLASSES:
            raise ValueError(
                f"unknown wall loss class {self.wall_loss_class!r}; "
                f"expected one of {WALL_LOSS_CLASSES}"
            )

    def overlaps(self, other: "Building") -> bool:
        """True when the two footprints share interior area (not mere touch)."""
        return (
            self.x_min < other.x_max
            and other.x_min < self.x_max
            and self.y_min < other.y_max
            and other.y_min < self.y_max
        )

    def contains(self, p: Point) -> bool:
        """True if ``p`` lies inside (or on the boundary of) the footprint."""
        return self.x_min <= p.x <= self.x_max and self.y_min <= p.y <= self.y_max

    @property
    def center(self) -> Point:
        """Footprint centroid."""
        return Point((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    def wall_crossings(self, a: Point, b: Point) -> int:
        """Number of exterior walls the segment ``a``–``b`` crosses.

        A ray passing fully through the building crosses 2 walls; a ray
        ending inside it crosses 1; a ray missing it crosses 0.
        """
        inside_a = self.contains(a)
        inside_b = self.contains(b)
        if inside_a and inside_b:
            return 0
        if inside_a or inside_b:
            return 1 if self._intersects(a, b) else 0
        return 2 if self._intersects(a, b) else 0

    def _intersects(self, a: Point, b: Point) -> bool:
        """Liang-Barsky clip test of segment a-b against the rectangle."""
        dx = b.x - a.x
        dy = b.y - a.y
        t0, t1 = 0.0, 1.0
        for p, q in (
            (-dx, a.x - self.x_min),
            (dx, self.x_max - a.x),
            (-dy, a.y - self.y_min),
            (dy, self.y_max - a.y),
        ):
            if p == 0.0:
                if q < 0.0:
                    return False
                continue
            t = q / p
            if p < 0.0:
                if t > t1:
                    return False
                t0 = max(t0, t)
            else:
                if t < t0:
                    return False
                t1 = min(t1, t)
        return t0 <= t1

    def contains_mask(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`contains` over coordinate arrays (broadcasts)."""
        return (
            (self.x_min <= x) & (x <= self.x_max)
            & (self.y_min <= y) & (y <= self.y_max)
        )

    def intersects_mask(
        self, ax: np.ndarray, ay: np.ndarray, bx: np.ndarray, by: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`_intersects` over segment-endpoint arrays.

        Runs the same four Liang-Barsky clip steps lane-parallel: a lane
        that the scalar code would have rejected early is masked dead, and
        its (then irrelevant) ``t0``/``t1`` updates are harmless.  Every
        division and comparison is the exact IEEE operation the scalar
        path performs, so the outcome is identical per lane.
        """
        ax, ay, bx, by = np.broadcast_arrays(ax, ay, bx, by)
        dx = bx - ax
        dy = by - ay
        shape = ax.shape
        t0 = np.zeros(shape)
        t1 = np.ones(shape)
        alive = np.ones(shape, dtype=bool)
        for p, q in (
            (-dx, ax - self.x_min),
            (dx, self.x_max - ax),
            (-dy, ay - self.y_min),
            (dy, self.y_max - ay),
        ):
            zero = p == 0.0
            alive &= ~(zero & (q < 0.0))
            t = q / np.where(zero, 1.0, p)
            neg = p < 0.0
            pos = p > 0.0
            alive &= ~((neg & (t > t1)) | (pos & (t < t0)))
            t0 = np.where(neg, np.maximum(t0, t), t0)
            t1 = np.where(pos, np.minimum(t1, t), t1)
        return alive & (t0 <= t1)

    def wall_crossings_counts(
        self, ax: np.ndarray, ay: np.ndarray, bx: np.ndarray, by: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`wall_crossings` over segment-endpoint arrays."""
        ax, ay, bx, by = np.broadcast_arrays(ax, ay, bx, by)
        inside_a = self.contains_mask(ax, ay)
        inside_b = self.contains_mask(bx, by)
        hits = self.intersects_mask(ax, ay, bx, by).astype(np.int64)
        both = inside_a & inside_b
        either = inside_a | inside_b
        return np.where(both, 0, np.where(either, hits, 2 * hits))


class BuildingMap:
    """A queryable collection of building footprints."""

    def __init__(self, buildings: Iterable[Building]) -> None:
        self._buildings: tuple[Building, ...] = tuple(buildings)

    def __len__(self) -> int:
        return len(self._buildings)

    def __iter__(self):
        return iter(self._buildings)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BuildingMap):
            return NotImplemented
        return self._buildings == other._buildings

    def __hash__(self) -> int:
        return hash(self._buildings)

    @property
    def buildings(self) -> Sequence[Building]:
        """The building tuple (read-only)."""
        return self._buildings

    def is_indoor(self, p: Point) -> bool:
        """True if ``p`` falls inside any building footprint."""
        return any(b.contains(p) for b in self._buildings)

    def building_at(self, p: Point) -> Building | None:
        """The building containing ``p``, or None."""
        for b in self._buildings:
            if b.contains(p):
                return b
        return None

    def wall_crossings(self, a: Point, b: Point) -> int:
        """Total exterior-wall crossings along the ray ``a``–``b``."""
        return sum(b_.wall_crossings(a, b) for b_ in self._buildings)

    def has_line_of_sight(self, a: Point, b: Point) -> bool:
        """True if no building wall obstructs the direct path."""
        return self.wall_crossings(a, b) == 0

    def contains_mask(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`is_indoor` over coordinate arrays."""
        x, y = np.broadcast_arrays(x, y)
        mask = np.zeros(x.shape, dtype=bool)
        for building in self._buildings:
            mask |= building.contains_mask(x, y)
        return mask

    def building_indices(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`building_at`: first containing index, or -1.

        Iterating in reverse and overwriting preserves the scalar
        first-match semantics when footprints overlap.
        """
        x, y = np.broadcast_arrays(x, y)
        indices = np.full(x.shape, -1, dtype=np.int64)
        for i in range(len(self._buildings) - 1, -1, -1):
            indices = np.where(self._buildings[i].contains_mask(x, y), i, indices)
        return indices

    def wall_crossings_counts(
        self, ax: np.ndarray, ay: np.ndarray, bx: np.ndarray, by: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`wall_crossings` over segment-endpoint arrays."""
        ax, ay, bx, by = np.broadcast_arrays(ax, ay, bx, by)
        total = np.zeros(ax.shape, dtype=np.int64)
        for building in self._buildings:
            total += building.wall_crossings_counts(ax, ay, bx, by)
        return total
