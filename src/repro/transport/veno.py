"""TCP Veno congestion control (Fu & Liew 2003).

Veno blends Reno with a Vegas-style queue estimate to distinguish random
wireless loss from congestion loss: when the estimated backlog is small,
a loss is treated as random and the window only shrinks to 80%.
"""

from __future__ import annotations

from repro.transport.base import CongestionControl

__all__ = ["Veno"]


class Veno(CongestionControl):
    """Reno with a Vegas-informed decrease and moderated increase."""

    name = "veno"

    def __init__(
        self, mss_bytes: int, beta_segments: float = 3.0, rate_scale: float = 1.0
    ) -> None:
        super().__init__(mss_bytes, rate_scale)
        self.beta_segments = beta_segments
        self.base_rtt_s = float("inf")
        self._smoothed_rtt_s: float | None = None
        self._diff_segments = 0.0
        self._increase_credit = 0.0

    def on_ack(self, acked_bytes, rtt_s, now, delivery_rate_bps=None):
        """Reno-style growth, moderated when the backlog estimate is high."""
        if rtt_s > 0:
            self.base_rtt_s = min(self.base_rtt_s, rtt_s)
            if self._smoothed_rtt_s is None:
                self._smoothed_rtt_s = rtt_s
            else:
                self._smoothed_rtt_s = 0.8 * self._smoothed_rtt_s + 0.2 * rtt_s
            expected = self.cwnd_bytes / self.base_rtt_s
            actual = self.cwnd_bytes / self._smoothed_rtt_s
            self._diff_segments = (expected - actual) * self.base_rtt_s / self.mss

        if self.in_slow_start:
            self.cwnd_bytes += acked_bytes
            return
        if self._diff_segments < self.beta_segments:
            # Available bandwidth: normal Reno additive increase.
            self.cwnd_bytes += self.rate_scale * self.mss * acked_bytes / self.cwnd_bytes
        else:
            # Network near saturation: increase half as fast.
            self._increase_credit += acked_bytes
            if self._increase_credit >= 2 * self.cwnd_bytes:
                self.cwnd_bytes += self.rate_scale * self.mss
                self._increase_credit = 0.0

    def on_loss(self, now):
        """Decrease by 0.8 for random loss, 0.5 for congestion loss."""
        if self._diff_segments < self.beta_segments:
            # Backlog small: most likely a random (non-congestive) loss.
            factor = 0.8
        else:
            factor = 0.5
        self.ssthresh_bytes = max(self.cwnd_bytes * factor, 2.0 * self.mss)
        self.cwnd_bytes = self.ssthresh_bytes
