"""Constant-bit-rate UDP flows and loss accounting.

Used for the paper's baseline capacity probes (Sec. 4.1) and the loss-
versus-load experiment of Fig. 9; the receiver keeps per-packet ids so
the bursty loss pattern of Fig. 11 can be reconstructed.
"""

from __future__ import annotations

from repro.net.packet import DATA, Packet
from repro.net.path import NetworkPath
from repro.net.sim import Simulator

__all__ = ["UdpSender", "UdpSink", "loss_runs"]


class UdpSender:
    """Sends fixed-size datagrams at a constant bit-rate."""

    def __init__(
        self,
        sim: Simulator,
        path: NetworkPath,
        rate_bps: float,
        flow_id: int = 1,
        packet_bytes: int = 1500,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        self.sim = sim
        self.path = path
        self.rate_bps = rate_bps
        self.flow_id = flow_id
        self.packet_bytes = packet_bytes
        self.sent = 0
        self._next_seq = 0
        self._stopped = False

    def start(self) -> None:
        """Begin the CBR packet train."""
        self._tick()

    def stop(self) -> None:
        """Stop generating datagrams."""
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        packet = Packet(
            flow_id=self.flow_id,
            kind=DATA,
            size_bytes=self.packet_bytes,
            seq=self._next_seq,
            created_at=self.sim.now,
            meta={"payload": self.packet_bytes},
        )
        self._next_seq += 1
        self.sent += 1
        self.path.send_forward(packet)
        self.sim.schedule(self.packet_bytes * 8 / self.rate_bps, self._tick)


class UdpSink:
    """Counts deliveries and remembers arrival order for loss analysis."""

    def __init__(self, path: NetworkPath, flow_id: int = 1) -> None:
        self.flow_id = flow_id
        self.received = 0
        self.bytes_received = 0
        self.received_seqs: list[int] = []
        path.on_forward_delivery(self._on_packet)

    def _on_packet(self, packet: Packet) -> None:
        if packet.kind != DATA or packet.flow_id != self.flow_id:
            return
        self.received += 1
        self.bytes_received += packet.size_bytes
        self.received_seqs.append(packet.seq)

    def loss_rate(self, sent: int) -> float:
        """Fraction of ``sent`` datagrams that never arrived."""
        if sent <= 0:
            raise ValueError(f"sent must be positive, got {sent}")
        return max(0.0, 1.0 - self.received / sent)

    def lost_seqs(self, sent: int) -> list[int]:
        """Sequence numbers that never arrived (Fig. 11 raw data)."""
        got = set(self.received_seqs)
        return [seq for seq in range(sent) if seq not in got]


def loss_runs(lost_seqs: list[int]) -> list[int]:
    """Lengths of consecutive-loss runs.

    A bursty pattern (Fig. 11) shows up as long runs; independent random
    loss would produce mostly runs of length 1.
    """
    if not lost_seqs:
        return []
    runs = []
    run = 1
    for prev, cur in zip(lost_seqs, lost_seqs[1:]):
        if cur == prev + 1:
            run += 1
        else:
            runs.append(run)
            run = 1
    runs.append(run)
    return runs
