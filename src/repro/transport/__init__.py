"""Transport protocols: TCP variants, UDP and the iperf-style harness."""

from repro.transport.base import CongestionControl, FlowStats, TcpConnection, TcpReceiver, TcpSender
from repro.transport.bbr import Bbr
from repro.transport.cubic import Cubic
from repro.transport.iperf import (
    CC_ALGORITHMS,
    TcpRunResult,
    UdpRunResult,
    make_cc,
    run_tcp,
    run_udp,
    run_udp_baseline,
)
from repro.transport.reno import Reno
from repro.transport.udp import UdpSender, UdpSink, loss_runs
from repro.transport.vegas import Vegas
from repro.transport.veno import Veno

__all__ = [
    "Bbr",
    "CC_ALGORITHMS",
    "CongestionControl",
    "Cubic",
    "FlowStats",
    "Reno",
    "TcpConnection",
    "TcpReceiver",
    "TcpRunResult",
    "TcpSender",
    "UdpRunResult",
    "UdpSender",
    "UdpSink",
    "Vegas",
    "Veno",
    "loss_runs",
    "make_cc",
    "run_tcp",
    "run_udp",
    "run_udp_baseline",
]
