"""An iperf3-style measurement harness over the simulated network.

Mirrors the paper's methodology (Sec. 4.1): measure the UDP baseline by
ramping a CBR flow, then measure each TCP variant's throughput against
that baseline and report bandwidth utilization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rng import default_rng
from repro.net.path import PathConfig, build_cellular_path, build_split_paths
from repro.net.sim import Simulator
from repro.qdisc.pep import PepRelay
from repro.transport.base import CongestionControl, TcpConnection
from repro.transport.bbr import Bbr
from repro.transport.cubic import Cubic
from repro.transport.reno import Reno
from repro.transport.udp import UdpSender, UdpSink
from repro.transport.vegas import Vegas
from repro.transport.veno import Veno

__all__ = [
    "CC_ALGORITHMS",
    "make_cc",
    "UdpRunResult",
    "TcpRunResult",
    "run_udp",
    "run_udp_baseline",
    "run_tcp",
    "run_tcp_pep",
]

CC_ALGORITHMS: dict[str, type[CongestionControl]] = {
    "reno": Reno,
    "cubic": Cubic,
    "vegas": Vegas,
    "veno": Veno,
    "bbr": Bbr,
}


def make_cc(name: str, mss_bytes: int, rate_scale: float = 1.0) -> CongestionControl:
    """Instantiate a congestion-control algorithm by kernel-module name.

    ``rate_scale`` is the path's bandwidth scale; additive window growth
    is slowed proportionally so utilization dynamics match full scale
    (see :class:`repro.transport.base.CongestionControl`).
    """
    try:
        cls = CC_ALGORITHMS[name]
    except KeyError:
        raise ValueError(
            f"unknown congestion control {name!r}; choose from {sorted(CC_ALGORITHMS)}"
        ) from None
    cc = cls(mss_bytes)
    cc.rate_scale = rate_scale
    return cc


@dataclass(frozen=True)
class UdpRunResult:
    """Outcome of one CBR UDP run."""

    offered_bps: float
    throughput_bps: float
    loss_rate: float
    sent: int
    received: int
    lost_seqs: tuple[int, ...]


@dataclass(frozen=True)
class TcpRunResult:
    """Outcome of one TCP run."""

    algorithm: str
    throughput_bps: float
    utilization: float
    retransmissions: int
    timeouts: int
    fast_retransmits: int
    cwnd_trace: tuple[tuple[float, float], ...]
    rtt_samples: tuple[tuple[float, float], ...]


def run_udp(
    config: PathConfig,
    offered_bps: float,
    duration_s: float = 20.0,
    seed: int = 1,
    packet_bytes: int = 1500,
) -> UdpRunResult:
    """Send CBR UDP at ``offered_bps`` and measure delivery."""
    sim = Simulator()
    rng = default_rng(seed)
    path = build_cellular_path(sim, config, rng)
    sender = UdpSender(sim, path, offered_bps, packet_bytes=packet_bytes)
    sink = UdpSink(path)
    sender.start()
    sim.run(until=duration_s)
    sender.stop()
    sim.run(until=duration_s + 2.0)  # drain in-flight packets
    return UdpRunResult(
        offered_bps=offered_bps,
        throughput_bps=sink.bytes_received * 8 / duration_s,
        loss_rate=sink.loss_rate(sender.sent),
        sent=sender.sent,
        received=sink.received,
        lost_seqs=tuple(sink.lost_seqs(sender.sent)),
    )


def run_udp_baseline(
    config: PathConfig, duration_s: float = 20.0, seed: int = 1
) -> float:
    """Peak deliverable UDP throughput (bits/s): offer slightly above the
    access capacity and take what arrives, as the paper's ramp-up does."""
    offered = config.access_rate_bps() * config.scale * 1.1
    return run_udp(config, offered, duration_s=duration_s, seed=seed).throughput_bps


def run_tcp(
    config: PathConfig,
    algorithm: str,
    duration_s: float = 30.0,
    seed: int = 1,
    baseline_bps: float | None = None,
    warmup_s: float = 0.0,
) -> TcpRunResult:
    """Run one TCP flow for ``duration_s`` and report throughput/utilization.

    Args:
        config: Path to measure.
        algorithm: One of :data:`CC_ALGORITHMS`.
        duration_s: Flow duration.
        seed: Cross-traffic randomness seed.
        baseline_bps: UDP baseline for the utilization ratio; measured on
            the fly when omitted.
        warmup_s: Initial interval excluded from the throughput average.

    When the path's ``[remedy]`` section asks for a split connection
    (``remedy.pep``), the run dispatches to :func:`run_tcp_pep` with
    ``algorithm`` as the origin (server-side) congestion controller, so
    remedied scenarios flow through every TCP experiment unchanged.
    """
    if config.remedy.pep:
        return run_tcp_pep(
            config,
            duration_s=duration_s,
            seed=seed,
            baseline_bps=baseline_bps,
            warmup_s=warmup_s,
            origin_algorithm=algorithm,
        )
    if baseline_bps is None:
        baseline_bps = run_udp_baseline(config, duration_s=min(duration_s, 15.0), seed=seed)
    sim = Simulator()
    rng = default_rng(seed)
    path = build_cellular_path(sim, config, rng)
    cc = make_cc(algorithm, config.mss_bytes, rate_scale=config.scale)
    conn = TcpConnection.establish(sim, path, cc)
    conn.start()
    sim.run(until=duration_s)
    stats = conn.sender.stats
    throughput = stats.throughput_bps(duration_s, from_s=warmup_s)
    return TcpRunResult(
        algorithm=algorithm,
        throughput_bps=throughput,
        utilization=throughput / baseline_bps if baseline_bps > 0 else 0.0,
        retransmissions=stats.retransmissions,
        timeouts=stats.timeouts,
        fast_retransmits=stats.fast_retransmits,
        cwnd_trace=tuple(stats.cwnd_trace),
        rtt_samples=tuple(stats.rtt_samples),
    )


def _aligned_rtt_sum(
    outer: list[tuple[float, float]], inner: list[tuple[float, float]]
) -> tuple[tuple[float, float], ...]:
    """End-to-end RTT samples for a split connection.

    For each sample of the ``outer`` (UE-facing) connection, add the most
    recent sample of the ``inner`` (wireline) connection — a stepwise
    time alignment that composes the two halves' joint delay without
    inventing cross-products.  Before the inner connection has a sample,
    the outer sample stands alone (the relay buffer answers from cache,
    as a real split proxy does during slow start).
    """
    combined: list[tuple[float, float]] = []
    idx = 0
    current_inner = 0.0
    for t, rtt in outer:
        while idx < len(inner) and inner[idx][0] <= t:
            current_inner = inner[idx][1]
            idx += 1
        combined.append((t, rtt + current_inner))
    return tuple(combined)


def run_tcp_pep(
    config: PathConfig,
    duration_s: float = 30.0,
    seed: int = 1,
    baseline_bps: float | None = None,
    warmup_s: float = 0.0,
    transfer_bytes: int | None = None,
    origin_algorithm: str | None = None,
) -> TcpRunResult:
    """Run a split-connection (PEP) transfer and report UE-side delivery.

    The origin half runs ``origin_algorithm`` (defaulting to
    ``config.remedy.pep_wan_cc``) over the wireline segment, the proxy's
    half runs ``config.remedy.pep_ran_cc`` over the radio segment (see
    :class:`repro.qdisc.pep.PepRelay`).  Goodput is what the UE-facing
    connection delivered; RTT samples compose both halves via stepwise
    time alignment.
    """
    if baseline_bps is None:
        baseline_bps = run_udp_baseline(config, duration_s=min(duration_s, 15.0), seed=seed)
    remedy = config.remedy
    wan_cc = origin_algorithm if origin_algorithm is not None else remedy.pep_wan_cc
    sim = Simulator()
    rng = default_rng(seed)
    wan_path, ran_path = build_split_paths(sim, config, rng)
    origin_path, egress_path = (
        (wan_path, ran_path) if config.direction == "dl" else (ran_path, wan_path)
    )
    relay = PepRelay(
        sim,
        origin_path,
        egress_path,
        origin_cc=make_cc(wan_cc, config.mss_bytes, rate_scale=config.scale),
        egress_cc=make_cc(remedy.pep_ran_cc, config.mss_bytes, rate_scale=config.scale),
        buffer_bytes=remedy.pep_buffer_bytes,
        transfer_bytes=transfer_bytes,
    )
    relay.start()
    sim.run(until=duration_s)
    egress_stats = relay.egress.stats
    origin_stats = relay.origin.stats
    throughput = egress_stats.throughput_bps(duration_s, from_s=warmup_s)
    return TcpRunResult(
        algorithm=f"pep:{wan_cc}+{remedy.pep_ran_cc}",
        throughput_bps=throughput,
        utilization=throughput / baseline_bps if baseline_bps > 0 else 0.0,
        retransmissions=origin_stats.retransmissions + egress_stats.retransmissions,
        timeouts=origin_stats.timeouts + egress_stats.timeouts,
        fast_retransmits=origin_stats.fast_retransmits + egress_stats.fast_retransmits,
        cwnd_trace=tuple(origin_stats.cwnd_trace),
        rtt_samples=_aligned_rtt_sum(egress_stats.rtt_samples, origin_stats.rtt_samples),
    )
