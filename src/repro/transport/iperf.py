"""An iperf3-style measurement harness over the simulated network.

Mirrors the paper's methodology (Sec. 4.1): measure the UDP baseline by
ramping a CBR flow, then measure each TCP variant's throughput against
that baseline and report bandwidth utilization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rng import default_rng
from repro.net.path import PathConfig, build_cellular_path
from repro.net.sim import Simulator
from repro.transport.base import CongestionControl, TcpConnection
from repro.transport.bbr import Bbr
from repro.transport.cubic import Cubic
from repro.transport.reno import Reno
from repro.transport.udp import UdpSender, UdpSink
from repro.transport.vegas import Vegas
from repro.transport.veno import Veno

__all__ = [
    "CC_ALGORITHMS",
    "make_cc",
    "UdpRunResult",
    "TcpRunResult",
    "run_udp",
    "run_udp_baseline",
    "run_tcp",
]

CC_ALGORITHMS: dict[str, type[CongestionControl]] = {
    "reno": Reno,
    "cubic": Cubic,
    "vegas": Vegas,
    "veno": Veno,
    "bbr": Bbr,
}


def make_cc(name: str, mss_bytes: int, rate_scale: float = 1.0) -> CongestionControl:
    """Instantiate a congestion-control algorithm by kernel-module name.

    ``rate_scale`` is the path's bandwidth scale; additive window growth
    is slowed proportionally so utilization dynamics match full scale
    (see :class:`repro.transport.base.CongestionControl`).
    """
    try:
        cls = CC_ALGORITHMS[name]
    except KeyError:
        raise ValueError(
            f"unknown congestion control {name!r}; choose from {sorted(CC_ALGORITHMS)}"
        ) from None
    cc = cls(mss_bytes)
    cc.rate_scale = rate_scale
    return cc


@dataclass(frozen=True)
class UdpRunResult:
    """Outcome of one CBR UDP run."""

    offered_bps: float
    throughput_bps: float
    loss_rate: float
    sent: int
    received: int
    lost_seqs: tuple[int, ...]


@dataclass(frozen=True)
class TcpRunResult:
    """Outcome of one TCP run."""

    algorithm: str
    throughput_bps: float
    utilization: float
    retransmissions: int
    timeouts: int
    fast_retransmits: int
    cwnd_trace: tuple[tuple[float, float], ...]
    rtt_samples: tuple[tuple[float, float], ...]


def run_udp(
    config: PathConfig,
    offered_bps: float,
    duration_s: float = 20.0,
    seed: int = 1,
    packet_bytes: int = 1500,
) -> UdpRunResult:
    """Send CBR UDP at ``offered_bps`` and measure delivery."""
    sim = Simulator()
    rng = default_rng(seed)
    path = build_cellular_path(sim, config, rng)
    sender = UdpSender(sim, path, offered_bps, packet_bytes=packet_bytes)
    sink = UdpSink(path)
    sender.start()
    sim.run(until=duration_s)
    sender.stop()
    sim.run(until=duration_s + 2.0)  # drain in-flight packets
    return UdpRunResult(
        offered_bps=offered_bps,
        throughput_bps=sink.bytes_received * 8 / duration_s,
        loss_rate=sink.loss_rate(sender.sent),
        sent=sender.sent,
        received=sink.received,
        lost_seqs=tuple(sink.lost_seqs(sender.sent)),
    )


def run_udp_baseline(
    config: PathConfig, duration_s: float = 20.0, seed: int = 1
) -> float:
    """Peak deliverable UDP throughput (bits/s): offer slightly above the
    access capacity and take what arrives, as the paper's ramp-up does."""
    offered = config.access_rate_bps() * config.scale * 1.1
    return run_udp(config, offered, duration_s=duration_s, seed=seed).throughput_bps


def run_tcp(
    config: PathConfig,
    algorithm: str,
    duration_s: float = 30.0,
    seed: int = 1,
    baseline_bps: float | None = None,
    warmup_s: float = 0.0,
) -> TcpRunResult:
    """Run one TCP flow for ``duration_s`` and report throughput/utilization.

    Args:
        config: Path to measure.
        algorithm: One of :data:`CC_ALGORITHMS`.
        duration_s: Flow duration.
        seed: Cross-traffic randomness seed.
        baseline_bps: UDP baseline for the utilization ratio; measured on
            the fly when omitted.
        warmup_s: Initial interval excluded from the throughput average.
    """
    if baseline_bps is None:
        baseline_bps = run_udp_baseline(config, duration_s=min(duration_s, 15.0), seed=seed)
    sim = Simulator()
    rng = default_rng(seed)
    path = build_cellular_path(sim, config, rng)
    cc = make_cc(algorithm, config.mss_bytes, rate_scale=config.scale)
    conn = TcpConnection.establish(sim, path, cc)
    conn.start()
    sim.run(until=duration_s)
    stats = conn.sender.stats
    throughput = stats.throughput_bps(duration_s, from_s=warmup_s)
    return TcpRunResult(
        algorithm=algorithm,
        throughput_bps=throughput,
        utilization=throughput / baseline_bps if baseline_bps > 0 else 0.0,
        retransmissions=stats.retransmissions,
        timeouts=stats.timeouts,
        fast_retransmits=stats.fast_retransmits,
        cwnd_trace=tuple(stats.cwnd_trace),
        rtt_samples=tuple(stats.rtt_samples),
    )
