"""TCP sender/receiver machinery with pluggable congestion control.

Implements the transport behaviour the paper's iperf3 experiments
exercise: NewReno-style loss recovery (fast retransmit on three duplicate
ACKs, partial-ACK retransmission), RFC 6298 RTO estimation, optional
pacing (for BBR) and delivery-rate sampling.  Congestion control is a
strategy object so Reno/Cubic/Vegas/Veno/BBR plug into identical
machinery — matching the paper's methodology of switching kernel modules
while keeping everything else fixed (Sec. 4.1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.audit import core as audit
from repro.net.packet import ACK, DATA, Packet
from repro.net.path import NetworkPath
from repro.net.sim import Event, Simulator
from repro.trace import core as trace

__all__ = ["CongestionControl", "TcpSender", "TcpReceiver", "TcpConnection", "FlowStats"]

_INITIAL_CWND_SEGMENTS = 10
_DUPACK_THRESHOLD = 3
_MIN_RTO_S = 0.2
_MAX_RTO_S = 60.0
_ACK_SIZE_BYTES = 60
_HEADER_BYTES = 52  # IP + TCP headers on the wire


class CongestionControl(ABC):
    """Strategy interface for congestion-control algorithms."""

    name: str = "abstract"

    def __init__(self, mss_bytes: int, rate_scale: float = 1.0) -> None:
        if not 0.0 < rate_scale <= 1.0:
            raise ValueError(f"rate_scale must be in (0, 1], got {rate_scale}")
        self.mss = mss_bytes
        #: Bandwidth scale of the simulated path relative to the real
        #: system.  Additive window increments are multiplied by this so
        #: that AIMD recovery takes the same wall-clock time as at full
        #: scale — the dimensionless ratio (loss-event interval / window
        #: regrowth time) is what determines utilization, and it must
        #: survive the rate down-scaling that keeps packet-level
        #: simulation tractable.
        self.rate_scale = rate_scale
        self.cwnd_bytes: float = _INITIAL_CWND_SEGMENTS * mss_bytes
        self.ssthresh_bytes: float = float("inf")
        self.tracer = trace.current()

    @property
    def pacing_rate_bps(self) -> float | None:
        """Pacing rate, or None for pure ACK clocking."""
        return None

    @property
    def in_slow_start(self) -> bool:
        """Whether cwnd is still below the slow-start threshold."""
        return self.cwnd_bytes < self.ssthresh_bytes

    @abstractmethod
    def on_ack(
        self,
        acked_bytes: int,
        rtt_s: float,
        now: float,
        delivery_rate_bps: float | None = None,
    ) -> None:
        """New data was cumulatively acknowledged."""

    @abstractmethod
    def on_loss(self, now: float) -> None:
        """Loss detected by fast retransmit."""

    def on_timeout(self, now: float) -> None:
        """Retransmission timeout: collapse to one segment."""
        self.ssthresh_bytes = max(self.cwnd_bytes / 2.0, 2.0 * self.mss)
        self.cwnd_bytes = float(self.mss)


@dataclass
class FlowStats:
    """Counters and traces collected over a TCP flow's lifetime."""

    bytes_acked: int = 0
    packets_sent: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    fast_retransmits: int = 0
    cwnd_trace: list[tuple[float, float]] = field(default_factory=list)
    rtt_samples: list[tuple[float, float]] = field(default_factory=list)
    delivered_trace: list[tuple[float, int]] = field(default_factory=list)

    def throughput_bps(self, duration_s: float, from_s: float = 0.0) -> float:
        """Mean goodput over ``[from_s, duration_s]`` from the ack trace."""
        if duration_s <= from_s:
            raise ValueError("duration must exceed the start offset")
        start_bytes = 0
        for t, delivered in self.delivered_trace:
            if t <= from_s:
                start_bytes = delivered
            else:
                break
        end_bytes = self.delivered_trace[-1][1] if self.delivered_trace else 0
        return (end_bytes - start_bytes) * 8 / (duration_s - from_s)


class TcpReceiver:
    """Receiver half: reassembly cursor plus cumulative ACK generation."""

    def __init__(self, sim: Simulator, path: NetworkPath, flow_id: int) -> None:
        self.sim = sim
        self.path = path
        self.flow_id = flow_id
        self.rcv_next = 0
        self._out_of_order: dict[int, int] = {}  # seq -> payload length
        self.bytes_received = 0
        path.on_forward_delivery(self._on_data)

    def _on_data(self, packet: Packet) -> None:
        if packet.kind != DATA or packet.flow_id != self.flow_id:
            return
        payload = packet.meta["payload"]
        self.bytes_received += payload
        if packet.seq == self.rcv_next:
            self.rcv_next += payload
            # Drain any contiguous buffered segments.
            while self.rcv_next in self._out_of_order:
                self.rcv_next += self._out_of_order.pop(self.rcv_next)
        elif packet.seq > self.rcv_next:
            self._out_of_order[packet.seq] = payload
        ack = Packet(
            flow_id=self.flow_id,
            kind=ACK,
            size_bytes=_ACK_SIZE_BYTES,
            seq=0,
            created_at=self.sim.now,
            meta={
                "ack": self.rcv_next,
                "ts_echo": packet.meta.get("ts"),
                "retx_echo": packet.meta.get("retx", False),
                "sacked": sum(self._out_of_order.values()),
                "holes": self._holes(),
            },
        )
        self.path.send_reverse(ack)

    def _holes(self, limit: int = 16) -> tuple[tuple[int, int], ...]:
        """Missing byte ranges between the cumulative ack and the highest
        out-of-order segment (a bounded SACK scoreboard)."""
        if not self._out_of_order:
            return ()
        holes: list[tuple[int, int]] = []
        cursor = self.rcv_next
        for seq in sorted(self._out_of_order):
            if seq > cursor:
                holes.append((cursor, seq))
                if len(holes) >= limit:
                    break
            cursor = max(cursor, seq + self._out_of_order[seq])
        return tuple(holes)


class TcpSender:
    """Sender half: windowing, loss recovery, RTO, pacing, rate sampling."""

    def __init__(
        self,
        sim: Simulator,
        path: NetworkPath,
        cc: CongestionControl,
        flow_id: int,
        transfer_bytes: int | None = None,
    ) -> None:
        self.sim = sim
        self.path = path
        self.cc = cc
        self.flow_id = flow_id
        self.mss = cc.mss
        self.rwnd_bytes = path.config.rwnd_bytes
        self.transfer_bytes = transfer_bytes

        self.next_seq = 0
        self.cum_ack = 0
        self.high_water = 0
        self.dup_acks = 0
        self.recover_seq: int | None = None  # NewReno recovery point
        self.delivered_bytes = 0
        self.completed_at: float | None = None

        self._sacked_bytes = 0
        self._retx_times: dict[int, float] = {}
        self.srtt: float | None = None
        self.rttvar = 0.0
        self.rto_s = 1.0
        self._rto_event: Event | None = None
        self._pace_event: Event | None = None
        self._send_log: dict[int, tuple[float, int]] = {}  # seq -> (time, delivered)

        self.stats = FlowStats()
        self._tracer = trace.current()
        self._auditor = audit.current()
        if self._auditor.enabled:
            self._register_audit()
        path.on_reverse_delivery(self._on_ack)

    def _register_audit(self) -> None:
        """Register sequence-conservation ledgers with the active auditor.

        ``in_flight_bytes`` clamps its subtraction at zero, so the
        sequence residual is nonzero exactly when the books claim more
        bytes were acknowledged than were ever sent — the clamp engaging
        is the anomaly, not a rounding artifact.
        """
        self._auditor.watch(
            "audit.tcp.sequence_residual_bytes",
            lambda: self.next_seq - self.cum_ack - self._sacked_bytes - self.in_flight_bytes,
        )
        self._auditor.watch(
            "audit.tcp.delivered_residual_bytes",
            lambda: self.delivered_bytes - self.cum_ack,
        )

    # -- public API ----------------------------------------------------

    def start(self) -> None:
        """Begin transmitting."""
        self._try_send()

    @property
    def in_flight_bytes(self) -> int:
        """Unacknowledged, un-SACKed bytes in the network."""
        return max(self.next_seq - self.cum_ack - self._sacked_bytes, 0)

    @property
    def done(self) -> bool:
        """Whether a fixed-size transfer is fully acknowledged."""
        return (
            self.transfer_bytes is not None and self.cum_ack >= self.transfer_bytes
        )

    # -- transmission --------------------------------------------------

    def _window_bytes(self) -> float:
        return min(self.cc.cwnd_bytes, float(self.rwnd_bytes))

    def _has_data(self) -> bool:
        if self.transfer_bytes is None:
            return True
        return self.next_seq < self.transfer_bytes

    def _try_send(self) -> None:
        pacing = self.cc.pacing_rate_bps
        if pacing is not None:
            self._pace(pacing)
            return
        while self._has_data() and self.in_flight_bytes + self.mss <= self._window_bytes():
            self._transmit(self.next_seq, advance=True)

    def _pace(self, pacing_rate: float) -> None:
        if self._pace_event is not None:
            return
        if not self._has_data() or self.in_flight_bytes + self.mss > self._window_bytes():
            return
        self._transmit(self.next_seq, advance=True)
        gap = self.mss * 8 / max(pacing_rate, 1.0)
        self._pace_event = self.sim.schedule(gap, self._pace_tick)

    def _pace_tick(self) -> None:
        self._pace_event = None
        pacing = self.cc.pacing_rate_bps
        if pacing is not None:
            self._pace(pacing)
        else:
            self._try_send()

    def _transmit(self, seq: int, advance: bool, retx: bool = False) -> None:
        payload = self.mss
        if self.transfer_bytes is not None:
            payload = min(payload, self.transfer_bytes - seq)
            if payload <= 0:
                return
        # Anything below the high-water mark is a retransmission even when
        # sent through the regular path (e.g. after an RTO rollback); Karn's
        # rule then suppresses its RTT sample.
        retx = retx or seq < self.high_water
        packet = Packet(
            flow_id=self.flow_id,
            kind=DATA,
            size_bytes=payload + _HEADER_BYTES,
            seq=seq,
            created_at=self.sim.now,
            meta={"payload": payload, "ts": self.sim.now, "retx": retx},
        )
        self.stats.packets_sent += 1
        if retx:
            self.stats.retransmissions += 1
            self._tracer.bump("tcp.retransmissions", self.sim.now)
        else:
            # Delivery-rate bookkeeping counts SACKed bytes as delivered
            # (as real BBR does); otherwise a cumulative-ACK jump after
            # hole repair would attribute seconds of deliveries to one
            # short interval and blow up the bandwidth estimate.
            self._send_log[seq] = (self.sim.now, self.delivered_bytes + self._sacked_bytes)
        if advance:
            self.next_seq = seq + payload
            self.high_water = max(self.high_water, self.next_seq)
        self.path.send_forward(packet)
        self._arm_rto()

    # -- acknowledgement handling ---------------------------------------

    def _on_ack(self, packet: Packet) -> None:
        if packet.kind != ACK or packet.flow_id != self.flow_id:
            return
        ack = packet.meta["ack"]
        now = self.sim.now
        # Per-ACK hot path: inline comparison, flag only on violation (the
        # simulator's time-monotonicity probe uses the same pattern).  A
        # probe() call per ACK — even a passing one — costs a method call
        # plus kwargs construction, which is measurable at ~100k ACKs/run.
        if ack > self.high_water and self._auditor.enabled:
            self._auditor.flag(
                "audit.tcp.ack_bounds_bytes",
                now,
                ack=ack,
                high_water=self.high_water,
                flow=self.flow_id,
            )

        self._sacked_bytes = packet.meta.get("sacked", 0)
        if ack > self.cum_ack:
            newly_acked = ack - self.cum_ack
            self.cum_ack = ack
            self.delivered_bytes += newly_acked
            self.dup_acks = 0
            # Forward progress clears any RTO backoff (RFC 6298 restart).
            if self.srtt is not None:
                self.rto_s = min(max(self.srtt + 4 * self.rttvar, _MIN_RTO_S), _MAX_RTO_S)
            self.stats.bytes_acked = self.delivered_bytes
            self.stats.delivered_trace.append((now, self.delivered_bytes))

            rtt, rate = self._rtt_and_rate_sample(packet, ack, now)
            if rtt is not None:
                self._update_rto(rtt)
            if self.recover_seq is not None:
                if ack >= self.recover_seq:
                    self.recover_seq = None  # full recovery
                else:
                    # Partial ACK: the next hole starts exactly here.
                    self._retransmit_hole(ack)
            if rtt is not None or rate is not None:
                self.cc.on_ack(
                    newly_acked,
                    rtt if rtt is not None else (self.srtt or 0.0),
                    now,
                    delivery_rate_bps=rate,
                )
            else:
                self.cc.on_ack(newly_acked, self.srtt or 0.0, now)
            self.stats.cwnd_trace.append((now, self.cc.cwnd_bytes))
            tracer = self._tracer
            if tracer.enabled:  # one branch on the per-ACK hot path
                tracer.counter("tcp.cwnd_bytes", now, self.cc.cwnd_bytes)
                if rtt is not None:
                    tracer.counter("tcp.rtt_ms", now, rtt * 1e3)
            self._arm_rto()
            if self.done:
                if self.completed_at is None:
                    self.completed_at = now
                self._cancel_rto()
                return
        else:
            self.dup_acks += 1
            if self.dup_acks == _DUPACK_THRESHOLD and self.recover_seq is None:
                self.recover_seq = self.high_water
                self.cc.on_loss(now)
                self.stats.fast_retransmits += 1
                self.stats.cwnd_trace.append((now, self.cc.cwnd_bytes))
                self._tracer.bump("tcp.fast_retransmits", now)
                self._retransmit_hole(self.cum_ack)
        # SACK-style repair: refill every hole the receiver reports, at
        # most once per smoothed RTT each (Linux TCP behaviour; NewReno's
        # one-hole-per-RTT would stall for whole seconds under the bursty
        # multi-packet drops of the 5G path).  This runs regardless of the
        # recovery state: holes created above the recovery point would
        # otherwise linger until an RTO whose backoff has spiralled.
        for start, end in packet.meta.get("holes", ()):
            seq = start
            while seq < end:
                self._retransmit_hole(seq)
                seq += self.mss
        self._try_send()

    def _retransmit_hole(self, seq: int) -> None:
        """Retransmit the segment at ``seq`` unless recently repaired."""
        if seq < self.cum_ack:
            return
        recent = self._retx_times.get(seq)
        holdoff = self.srtt if self.srtt is not None else self.rto_s
        if recent is not None and self.sim.now - recent < holdoff:
            return
        self._retx_times[seq] = self.sim.now
        if len(self._retx_times) > 8192:
            self._retx_times = {
                s2: t2 for s2, t2 in self._retx_times.items() if s2 >= self.cum_ack
            }
        self._transmit(seq, advance=False, retx=True)

    def _rtt_and_rate_sample(
        self, packet: Packet, ack: int, now: float
    ) -> tuple[float | None, float | None]:
        """RTT from the timestamp echo; delivery rate from the send log."""
        rtt = None
        if not packet.meta.get("retx_echo") and packet.meta.get("ts_echo") is not None:
            rtt = now - packet.meta["ts_echo"]
            self.stats.rtt_samples.append((now, rtt))
        rate = None
        # Find the send record for the last acked segment.
        record = self._send_log.pop(ack - (ack % self.mss or self.mss), None)
        # Drop stale records below the cumulative ack to bound memory.
        if len(self._send_log) > 4096:
            self._send_log = {
                seq: rec for seq, rec in self._send_log.items() if seq >= self.cum_ack
            }
        if record is not None:
            sent_at, delivered_at_send = record
            elapsed = now - sent_at
            delivered_now = self.delivered_bytes + self._sacked_bytes
            if elapsed > 0 and delivered_now > delivered_at_send:
                rate = (delivered_now - delivered_at_send) * 8 / elapsed
        return rtt, rate

    # -- retransmission timer --------------------------------------------

    def _update_rto(self, rtt: float) -> None:
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        self.rto_s = min(max(self.srtt + 4 * self.rttvar, _MIN_RTO_S), _MAX_RTO_S)

    def _arm_rto(self) -> None:
        self._cancel_rto()
        if self.in_flight_bytes > 0:
            self._rto_event = self.sim.schedule(self.rto_s, self._on_timeout)

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _on_timeout(self) -> None:
        self._rto_event = None
        if self.in_flight_bytes == 0:
            return
        self.stats.timeouts += 1
        self.cc.on_timeout(self.sim.now)
        self.stats.cwnd_trace.append((self.sim.now, self.cc.cwnd_bytes))
        self._tracer.bump("tcp.timeouts", self.sim.now)
        self._tracer.instant("tcp.rto", self.sim.now, rto_s=self.rto_s)
        self.recover_seq = None
        self.dup_acks = 0
        self._retx_times.clear()
        self.rto_s = min(self.rto_s * 2, _MAX_RTO_S)
        # Go-back-N rollback: everything past the cumulative ACK is
        # presumed lost (an RTO means no SACK feedback is flowing) and is
        # resent window-by-window.  Without this, a tail-of-transfer burst
        # loss would crawl out one segment per exponentially-backed-off
        # timeout.
        self.next_seq = self.cum_ack
        self._try_send()


@dataclass
class TcpConnection:
    """A wired-up sender/receiver pair over one path."""

    sender: TcpSender
    receiver: TcpReceiver

    @classmethod
    def establish(
        cls,
        sim: Simulator,
        path: NetworkPath,
        cc: CongestionControl,
        flow_id: int = 1,
        transfer_bytes: int | None = None,
    ) -> "TcpConnection":
        """Wire a receiver and sender onto ``path`` and return the pair."""
        receiver = TcpReceiver(sim, path, flow_id)
        sender = TcpSender(sim, path, cc, flow_id, transfer_bytes=transfer_bytes)
        return cls(sender=sender, receiver=receiver)

    def start(self) -> None:
        """Begin transmitting."""
        self.sender.start()
