"""TCP Vegas delay-based congestion control (Brakmo & Peterson 1994)."""

from __future__ import annotations

from repro.transport.base import CongestionControl

__all__ = ["Vegas"]


class Vegas(CongestionControl):
    """Keeps a small number of packets queued, backing off on RTT rise.

    Parameters follow the classic formulation: the flow targets between
    ``alpha`` and ``beta`` extra segments buffered in the network.
    Delay-based backoff is exactly why Vegas performs worst over 5G
    (12.1% utilization, Fig. 7): the bursty cross traffic on the
    under-provisioned wired segment inflates RTTs, which Vegas reads as
    self-induced congestion.
    """

    name = "vegas"

    def __init__(
        self, mss_bytes: int, alpha: float = 1.0, beta: float = 3.0, rate_scale: float = 1.0
    ) -> None:
        super().__init__(mss_bytes, rate_scale)
        self.alpha = alpha
        self.beta = beta
        self.base_rtt_s = float("inf")
        self._smoothed_rtt_s: float | None = None
        self._last_adjust_at = 0.0

    def on_ack(self, acked_bytes, rtt_s, now, delivery_rate_bps=None):
        """Adjust the window from the estimated queue backlog."""
        if rtt_s <= 0:
            return
        self.base_rtt_s = min(self.base_rtt_s, rtt_s)
        # The kernel averages RTT samples over the observation window, so
        # transient radio-scheduling spikes leak into every decision.
        if self._smoothed_rtt_s is None:
            self._smoothed_rtt_s = rtt_s
        else:
            self._smoothed_rtt_s = 0.8 * self._smoothed_rtt_s + 0.2 * rtt_s
        rtt = self._smoothed_rtt_s
        expected_rate = self.cwnd_bytes / self.base_rtt_s
        actual_rate = self.cwnd_bytes / rtt
        diff_segments = (expected_rate - actual_rate) * self.base_rtt_s / self.mss

        if self.in_slow_start:
            # Vegas exits slow start as soon as queueing is detected.
            if diff_segments > 1.0:
                self.ssthresh_bytes = self.cwnd_bytes
            else:
                self.cwnd_bytes += acked_bytes
            return

        # Adjust once per RTT.
        if now - self._last_adjust_at < rtt_s:
            return
        self._last_adjust_at = now
        if diff_segments < self.alpha:
            self.cwnd_bytes += self.rate_scale * self.mss
        elif diff_segments > self.beta:
            self.cwnd_bytes = max(self.cwnd_bytes - self.rate_scale * self.mss, 2.0 * self.mss)

    def on_loss(self, now):
        """Gentle decrease: Vegas treats loss as a secondary signal."""
        self.ssthresh_bytes = max(self.cwnd_bytes / 2.0, 2.0 * self.mss)
        self.cwnd_bytes = max(self.cwnd_bytes * 0.75, 2.0 * self.mss)
