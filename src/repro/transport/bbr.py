"""BBR congestion control (Cardwell et al. 2016), simplified.

Model-based control: estimate the bottleneck bandwidth (windowed max of
delivery-rate samples) and the propagation RTT (windowed min), then pace
at the estimated bandwidth with a gain cycle.  Because BBR never reacts
to individual losses, it is the only algorithm in the paper's lineup that
rides out the bursty drops of the under-buffered 5G path, reaching 82.5%
utilization where Cubic manages 31.9% (Fig. 7).
"""

from __future__ import annotations

from collections import deque

from repro.transport.base import CongestionControl

__all__ = ["Bbr"]

_STARTUP_GAIN = 2.885
_DRAIN_GAIN = 1.0 / _STARTUP_GAIN
_PROBE_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
_BW_WINDOW_ROUNDS = 10
_MIN_RTT_WINDOW_S = 10.0
_PROBE_RTT_DURATION_S = 0.2
_STARTUP_GROWTH_THRESHOLD = 1.25
_STARTUP_FULL_BW_ROUNDS = 3


class Bbr(CongestionControl):
    """STARTUP -> DRAIN -> PROBE_BW (+ periodic PROBE_RTT)."""

    name = "bbr"

    def __init__(self, mss_bytes: int, rate_scale: float = 1.0) -> None:
        super().__init__(mss_bytes, rate_scale)
        self.state = "STARTUP"
        self._bw_samples: deque[tuple[int, float]] = deque()  # (round, bps)
        self._round = 0
        self._round_start_delivered = 0
        self._delivered = 0
        self._min_rtt_s = float("inf")
        self._min_rtt_stamp = 0.0
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._cycle_index = 0
        self._cycle_stamp = 0.0
        self._probe_rtt_done_at: float | None = None
        self._pacing_gain = _STARTUP_GAIN
        self._cwnd_gain = _STARTUP_GAIN

    # -- estimators -----------------------------------------------------

    @property
    def bottleneck_bw_bps(self) -> float:
        """Windowed-max bottleneck bandwidth estimate."""
        if not self._bw_samples:
            return 8.0 * self.mss / 0.01  # arbitrary small bootstrap rate
        return max(bw for _, bw in self._bw_samples)

    @property
    def min_rtt_s(self) -> float:
        """Windowed-min propagation RTT estimate."""
        return self._min_rtt_s if self._min_rtt_s != float("inf") else 0.1

    @property
    def bdp_bytes(self) -> float:
        """Estimated bandwidth-delay product."""
        return self.bottleneck_bw_bps * self.min_rtt_s / 8.0

    @property
    def pacing_rate_bps(self) -> float | None:
        """Current pacing rate: gain times the bandwidth estimate."""
        return max(self._pacing_gain * self.bottleneck_bw_bps, 8.0 * self.mss / 0.1)

    # -- main hooks -------------------------------------------------------

    def on_ack(self, acked_bytes, rtt_s, now, delivery_rate_bps=None):
        """Update the bandwidth/RTT model and advance the state machine."""
        self._delivered += acked_bytes
        if self._delivered - self._round_start_delivered >= self.cwnd_bytes:
            self._round += 1
            self._round_start_delivered = self._delivered

        if rtt_s > 0 and (
            rtt_s <= self._min_rtt_s or now - self._min_rtt_stamp > _MIN_RTT_WINDOW_S
        ):
            self._min_rtt_s = rtt_s
            self._min_rtt_stamp = now

        if delivery_rate_bps is not None and delivery_rate_bps > 0:
            self._bw_samples.append((self._round, delivery_rate_bps))
            while self._bw_samples and self._bw_samples[0][0] < self._round - _BW_WINDOW_ROUNDS:
                self._bw_samples.popleft()

        self._advance_state(now)
        self._set_cwnd()

    def on_loss(self, now):
        """No-op: BBR does not treat loss as a congestion signal."""
        # BBR does not treat loss as a congestion signal; the shrunken
        # delivery-rate samples already reflect any real slowdown.
        pass

    def on_timeout(self, now):
        """Restart from a small window, keeping the bandwidth model."""
        # Conservative on RTO: restart from a small window but keep the
        # bandwidth model.
        self.cwnd_bytes = 4.0 * self.mss

    # -- state machine ----------------------------------------------------

    def _enter_state(self, state: str, now: float) -> None:
        self.state = state
        self.tracer.instant("bbr.state", now, state=state)

    def _advance_state(self, now: float) -> None:
        if self.state == "STARTUP":
            bw = self.bottleneck_bw_bps
            if bw > self._full_bw * _STARTUP_GROWTH_THRESHOLD:
                self._full_bw = bw
                self._full_bw_rounds = 0
            else:
                self._full_bw_rounds += 1
                if self._full_bw_rounds >= _STARTUP_FULL_BW_ROUNDS:
                    self._enter_state("DRAIN", now)
                    self._pacing_gain = _DRAIN_GAIN
                    self._cwnd_gain = _STARTUP_GAIN
        elif self.state == "DRAIN":
            # Drained once in-flight is near one BDP; approximated by time.
            self._enter_state("PROBE_BW", now)
            self._cycle_index = 0
            self._cycle_stamp = now
            self._pacing_gain = _PROBE_GAINS[0]
            self._cwnd_gain = 2.0
        elif self.state == "PROBE_BW":
            if now - self._min_rtt_stamp > _MIN_RTT_WINDOW_S:
                self._enter_state("PROBE_RTT", now)
                self._probe_rtt_done_at = now + _PROBE_RTT_DURATION_S
                self._pacing_gain = 1.0
            elif now - self._cycle_stamp > self.min_rtt_s:
                self._cycle_index = (self._cycle_index + 1) % len(_PROBE_GAINS)
                self._cycle_stamp = now
                self._pacing_gain = _PROBE_GAINS[self._cycle_index]
        elif self.state == "PROBE_RTT":
            assert self._probe_rtt_done_at is not None
            if now >= self._probe_rtt_done_at:
                self._min_rtt_stamp = now
                self._enter_state("PROBE_BW", now)
                self._cycle_stamp = now
                self._pacing_gain = _PROBE_GAINS[self._cycle_index]

    def _set_cwnd(self) -> None:
        if self.state == "PROBE_RTT":
            self.cwnd_bytes = 4.0 * self.mss
        else:
            self.cwnd_bytes = max(self._cwnd_gain * self.bdp_bytes, 4.0 * self.mss)
