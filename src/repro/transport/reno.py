"""TCP Reno (NewReno flavour) congestion control."""

from __future__ import annotations

from repro.transport.base import CongestionControl

__all__ = ["Reno"]


class Reno(CongestionControl):
    """Classic AIMD: slow start, congestion avoidance, halve on loss."""

    name = "reno"

    def on_ack(self, acked_bytes, rtt_s, now, delivery_rate_bps=None):
        """Slow-start doubling, then linear congestion avoidance."""
        if self.in_slow_start:
            self.cwnd_bytes += acked_bytes
        else:
            self.cwnd_bytes += self.rate_scale * self.mss * acked_bytes / self.cwnd_bytes

    def on_loss(self, now):
        """Halve the window (classic multiplicative decrease)."""
        self.ssthresh_bytes = max(self.cwnd_bytes / 2.0, 2.0 * self.mss)
        self.cwnd_bytes = self.ssthresh_bytes
