"""TCP Cubic congestion control (Ha, Rhee, Xu 2008).

The de facto Linux default the paper tests; its window grows as a cubic
function of time since the last loss, plateauing near the previous
maximum — which makes it collapse persistently under the bursty loss of
the under-buffered 5G wireline path (Fig. 8).
"""

from __future__ import annotations

from repro.transport.base import CongestionControl

__all__ = ["Cubic"]

_C = 0.4  # cubic scaling constant (segments/s^3)
_BETA = 0.7  # multiplicative decrease factor


class Cubic(CongestionControl):
    """Cubic window growth with fast convergence."""

    name = "cubic"

    def __init__(self, mss_bytes: int, rate_scale: float = 1.0) -> None:
        super().__init__(mss_bytes, rate_scale)
        self._w_max_segments = 0.0
        self._epoch_start: float | None = None
        self._k = 0.0

    def _cwnd_segments(self) -> float:
        return self.cwnd_bytes / self.mss

    def on_ack(self, acked_bytes, rtt_s, now, delivery_rate_bps=None):
        """Grow the window along the cubic curve toward W_max."""
        if self.in_slow_start:
            self.cwnd_bytes += acked_bytes
            return
        if self._epoch_start is None:
            self._epoch_start = now
            w = self._cwnd_segments()
            self._w_max_segments = max(self._w_max_segments, w)
            c_eff = _C * self.rate_scale
            self._k = (
                ((self._w_max_segments - w) / c_eff) ** (1.0 / 3.0)
                if self._w_max_segments > w
                else 0.0
            )
        t = now - self._epoch_start
        c_eff = _C * self.rate_scale
        target_segments = c_eff * (t - self._k) ** 3 + self._w_max_segments
        current = self._cwnd_segments()
        if target_segments > current:
            # Close 10% of the gap per ACK batch, as the kernel's per-RTT
            # interpolation effectively does.
            self.cwnd_bytes += max(
                (target_segments - current) * self.mss * acked_bytes / self.cwnd_bytes,
                0.0,
            )
        else:
            # TCP-friendly floor: at least Reno-like growth.
            self.cwnd_bytes += 0.1 * self.rate_scale * self.mss * acked_bytes / self.cwnd_bytes

    def on_loss(self, now):
        """Multiplicative decrease to 0.7 with fast convergence."""
        w = self._cwnd_segments()
        if w < self._w_max_segments:
            # Fast convergence: release bandwidth for newer flows.
            self._w_max_segments = w * (2.0 - _BETA) / 2.0
        else:
            self._w_max_segments = w
        self.cwnd_bytes = max(self.cwnd_bytes * _BETA, 2.0 * self.mss)
        self.ssthresh_bytes = self.cwnd_bytes
        self._epoch_start = None
        self.tracer.counter("cubic.w_max_segments", now, self._w_max_segments)

    def on_timeout(self, now):
        """Collapse the window and reset the cubic epoch."""
        super().on_timeout(now)
        self._epoch_start = None
        self._w_max_segments = 0.0
