"""Remedy benchmarks: the fixes the measurement papers could only sketch.

The acceptance gate of the `repro.qdisc` subsystem: on the fig. 8
bulk-transfer workload, CoDel, CAKE and the split-connection PEP must
each beat the measured drop-tail deployment on goodput *and* p99 RTT.
"""

from repro.experiments import remedy_cca_matrix, remedy_comparison


def test_remedy_comparison(run_once):
    result = run_once(remedy_comparison.run)
    print()
    print(result.table().render())
    # The headline: every deployable remedy beats the measured
    # deployment on both axes.
    assert result.remedies_beat_droptail
    # The anomaly itself is present in the drop-tail column (Cubic far
    # below the UDP baseline, Sec. 4.2's collapsed utilization).
    assert result.utilization("droptail") < 0.35
    # AQM cuts retransmissions by an order of magnitude: burst losses
    # become isolated control-law drops.
    assert result.retransmissions["codel"] * 5 < result.retransmissions["droptail"]


def test_remedy_cca_matrix(run_once):
    result = run_once(remedy_cca_matrix.run)
    print()
    print(result.table().render())
    # The fixes generalize: every loss-based CCA the paper measured
    # (Reno, Cubic, Veno) gains under both CoDel and the PEP.
    assert result.loss_based_all_recover
    # First, do no harm: BBR — the paper's recommended workaround — is
    # not degraded by running over an AQM'd bottleneck.
    assert result.gain("bbr", "codel") > 0.9
