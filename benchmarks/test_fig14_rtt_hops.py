"""Fig. 14 benchmark: per-hop RTT decomposition."""

from repro.experiments import fig14_rtt_hops


def test_fig14_rtt_hops(run_once):
    result = run_once(fig14_rtt_hops.run)
    print()
    print(result.table().render())
    # Hop 1 (air interface): negligible 5G gain (<1 ms, paper ~0.4 ms).
    assert 0.0 <= result.ran_gap_ms <= 1.5
    # Hop 2 (RAN->core): the ~20 ms RTT reduction of the flat 5G core.
    assert 15.0 <= result.core_gap_ms <= 25.0
    # Cumulative RTTs are monotone along the path for both networks.
    for series in (result.lte_hop_rtts_ms, result.nr_hop_rtts_ms):
        assert all(a <= b for a, b in zip(series, series[1:]))
