"""Fig. 21 benchmark: smartphone power breakdown per app and RAT."""

from repro.experiments import fig21_power_breakdown


def test_fig21_power_breakdown(run_once):
    result = run_once(fig21_power_breakdown.run)
    print()
    print(result.table().render())
    # Paper: the 5G module averages ~55% of the budget, beating the screen
    # (~31%); 4G stays between 24% and 50%.
    assert 0.40 <= result.mean_radio_fraction(5) <= 0.65
    assert result.mean_radio_fraction(5) > result.mean_screen_fraction(5)
    assert result.mean_radio_fraction(4) < result.mean_radio_fraction(5)
    # Per-app 5G/4G radio power ratio: 2-3x (Sec. 6.1); the saturated
    # download is the extreme case (5G moves 7x the bits).
    for app in ("browser", "player", "game"):
        assert 1.8 <= result.radio_power_ratio(app) <= 3.2, app
    assert 2.0 <= result.radio_power_ratio("download") <= 4.0
