"""Ablation benchmark: NSA vs projected SA architecture (Sec. 8)."""

from repro.experiments import ablation_sa_mode


def test_ablation_sa_mode(run_once):
    result = run_once(ablation_sa_mode.run)
    print()
    print(result.table().render())
    # SA's direct Xn hand-off should land near 4G-4G latency, erasing the
    # 3.6x NSA penalty.
    assert result.sa_closes_handoff_gap
    assert result.handoff_speedup > 2.5
    # RRC_INACTIVE + short tails recover real web-session energy...
    assert 0.2 <= result.energy_saving <= 0.6
    # ...but the hardware floor remains above the 4G-era budget.
    assert result.sa_web_energy_j > 0.5 * result.oracle_floor_j
