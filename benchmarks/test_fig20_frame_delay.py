"""Fig. 20 benchmark: end-to-end frame delay of 4K telephony."""

from repro.experiments import fig20_frame_delay


def test_fig20_frame_delay(run_once):
    result = run_once(fig20_frame_delay.run)
    print()
    print(f"mean frame delay: 5G {result.nr_mean_s * 1000:.0f} ms, "
          f"4G {result.lte_mean_s * 1000:.0f} ms; "
          f"processing {result.processing_s * 1000:.0f} ms vs "
          f"5G network {result.nr_network_s * 1000:.0f} ms")
    # Paper: ~950 ms on 5G — far beyond the 460 ms telephony budget.
    assert 0.80 <= result.nr_mean_s <= 1.10
    assert result.nr_mean_s > 0.460
    # 4G is no better (congestion spikes push it past 5G).
    assert result.lte_mean_s >= result.nr_mean_s * 0.95
    # Processing outweighs transmission by ~10x.
    assert result.processing_dominates
