"""Fig. 3 benchmark: indoor/outdoor bit-rate gap."""

from repro.experiments import fig3_indoor_outdoor


def test_fig3_indoor_outdoor(run_once):
    result = run_once(fig3_indoor_outdoor.run)
    print()
    print(result.table().render())
    # Paper: 5G drops 50.59% moving indoors vs 20.38% for 4G.
    assert 0.35 <= result.nr_drop <= 0.75
    assert result.lte_drop <= 0.45
    # The 5G gap is roughly twice the 4G gap ("more than 2x" in Sec. 3.3).
    assert result.nr_drop > 1.5 * result.lte_drop
