"""Fig. 18 benchmark: uplink video throughput by resolution."""

from repro.experiments import fig18_video_throughput


def test_fig18_video_throughput(run_once):
    result = run_once(fig18_video_throughput.run)
    print()
    print(result.table().render())
    tput = result.throughput_mbps
    # Up to 4K, both networks keep up with the stream.
    for resolution, nominal in (("720P", 6), ("1080P", 12), ("4K", 45)):
        for network in ("4G", "5G"):
            assert tput[(resolution, network, "static")] > 0.8 * nominal
    # 5.7K: 5G carries ~80 Mbps; 4G collapses (paper: congestion, frame loss).
    assert tput[("5.7K", "5G", "static")] > 60.0
    assert tput[("5.7K", "4G", "static")] < 0.6 * tput[("5.7K", "5G", "static")]
    # The 4G 5.7K session freezes massively; the 5G one barely.
    assert result.freeze_counts[("5.7K", "4G", "dynamic")] > 50
    assert result.freeze_counts[("5.7K", "5G", "static")] < 10
