"""Ablation benchmark: 4G/5G flows sharing a wireline path (Sec. 4.2)."""

from repro.experiments import ablation_coexistence


def test_ablation_coexistence(run_once):
    result = run_once(ablation_coexistence.run)
    print()
    print(result.table().render())
    # The paper's open trade-off: deeper wired buffers reduce the 5G
    # flow's loss...
    assert result.bigger_buffer_cuts_nr_loss
    # ...but inflate the tail latency the co-resident 4G flow sees.
    assert result.bigger_buffer_bloats_lte_rtt
    # Both flows keep making progress at every buffer size.
    for point in result.points.values():
        assert point.nr_throughput_bps > 0
        assert point.lte_throughput_bps > 0
