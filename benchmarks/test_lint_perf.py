"""The whole-program pass must ride the shared parsed-file cache cheaply.

Times ``lint_paths`` over ``src/`` two ways — file pass only
(``project=False``) and the default two-pass run — and gates the
relative overhead of the REP009/REP010 project pass.  Both share one
``FileContext`` per file and the per-type ``ctx.walk`` node cache, so
the second pass costs graph construction and two rule sweeps, not a
reparse.

The wall-time ledger behind the budget: the node cache collapsed the
file pass's ~9 per-rule ``ast.walk`` sweeps into one (a ~35% saving on
the pre-cache linter), and the project pass spends a measured ~35% of
the cached file pass on graph build + project rules.  Net: the full
two-pass ``repro lint src/`` is *faster* than the single-pass linter
before the whole-program pass existed (849 ms -> 761 ms on the
calibration box), and this gate pins the project-pass overhead so
neither side of that trade can silently rot.  A small absolute slack
keeps scheduler jitter on a sub-second baseline from failing the gate.

Run with plain ``pytest benchmarks/test_lint_perf.py -s`` (this test
times itself and does not use the pytest-benchmark fixture).
"""

import time
from pathlib import Path

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"

#: Allowed relative overhead of the project pass on top of the file pass
#: (measured ~1.35x; the node cache bought more than this on the file pass).
MAX_OVERHEAD = 1.50

#: Absolute slack (seconds) so jitter on a fast baseline cannot fail the gate.
SLACK_S = 0.25


def _best_of(runs, fn):
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_two_pass_lint_overhead_is_bounded():
    # Warm imports, bytecode caches and the filesystem once, untimed.
    warm = lint_paths([SRC], root=REPO_ROOT)
    assert warm.files_scanned > 100

    file_pass_s = _best_of(
        3, lambda: lint_paths([SRC], root=REPO_ROOT, project=False)
    )
    two_pass_s = _best_of(3, lambda: lint_paths([SRC], root=REPO_ROOT))

    overhead = two_pass_s / file_pass_s
    print(
        f"\nfile pass {file_pass_s * 1e3:.0f} ms, "
        f"two-pass {two_pass_s * 1e3:.0f} ms, "
        f"overhead {overhead:.2f}x over {warm.files_scanned} files"
    )

    assert two_pass_s <= file_pass_s * MAX_OVERHEAD + SLACK_S, (
        f"project pass regressed lint wall time {overhead:.2f}x "
        f"(budget {MAX_OVERHEAD}x + {SLACK_S}s slack)"
    )
