"""Batched radio core speedup: the dense-grid survey must be >=10x faster.

Times the full-campus dense grid survey two ways on the densified
``dense-grid`` scenario:

* batched — one :func:`survey_at_locations` call over every grid point;
* scalar — the per-point ``_survey_at`` loop the surveys used before the
  struct-of-arrays core, run over a subsample and extrapolated per point.

The shadow-fading cache is warmed first (one untimed batched pass): both
paths draw the same per-grid-cell shadowing streams through the same
cache, so warm-cache timing isolates the path-loss/combining math that
the vectorization actually targets.  Results must also agree exactly —
the speedup claim is only meaningful if the answers are bit-identical.

Run with plain ``pytest benchmarks/test_batch_speedup.py -s`` (this test
times itself and does not use the pytest-benchmark fixture).
"""

import time

from repro.experiments.common import testbed as build_testbed
from repro.experiments.dense_survey import grid_locations
from repro.radio.coverage import _survey_at, survey_at_locations

#: Scalar subsample size: big enough for a stable per-point time, small
#: enough to keep the (slow) scalar side under a few seconds.
SCALAR_SAMPLE = 150

MIN_SPEEDUP = 10.0


def test_dense_grid_survey_speedup():
    bed = build_testbed(scenario="dense-grid")
    locations = grid_locations(bed.campus.width_m, bed.campus.height_m, 10.0)

    # Warm the testbed caches and the shared shadow-fading draws.
    survey_at_locations(bed.nr, locations)

    start = time.perf_counter()
    batched = survey_at_locations(bed.nr, locations)
    batched_s = time.perf_counter() - start

    sample = locations[:: max(1, len(locations) // SCALAR_SAMPLE)]
    start = time.perf_counter()
    scalar = [_survey_at(bed.nr, location) for location in sample]
    scalar_s = time.perf_counter() - start

    per_point_batched = batched_s / len(locations)
    per_point_scalar = scalar_s / len(sample)
    speedup = per_point_scalar / per_point_batched
    print(
        f"\nbatched {per_point_batched * 1e6:.1f} us/pt over {len(locations)} pts, "
        f"scalar {per_point_scalar * 1e6:.1f} us/pt over {len(sample)} pts, "
        f"speedup {speedup:.1f}x"
    )

    by_location = {point.location: point for point in batched}
    assert [by_location[point.location] for point in scalar] == scalar

    assert speedup >= MIN_SPEEDUP, (
        f"batched survey only {speedup:.1f}x faster than the scalar loop "
        f"(need >= {MIN_SPEEDUP}x)"
    )
