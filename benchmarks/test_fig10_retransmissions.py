"""Fig. 10 benchmark: HARQ retransmission depth in the RAN."""

from repro.experiments import fig10_retransmissions


def test_fig10_retransmissions(run_once):
    result = run_once(fig10_retransmissions.run)
    print()
    print(result.table().render())
    # Paper: all RAN losses recover within 4 attempts on 4G, 2 on 5G.
    assert result.lte.max_retransmissions <= 4
    assert result.nr.max_retransmissions <= 2
    assert result.lte.residual_losses == 0
    assert result.nr.residual_losses == 0
    # The 50%-loss-link sanity bound: ~2.3e-10 abandonment probability.
    assert result.abandonment_probability_50pct_link < 1e-9
