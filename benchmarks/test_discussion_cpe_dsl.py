"""Discussion benchmark: 5G fixed wireless vs DSL (Sec. 8)."""

from repro.experiments import discussion_cpe_dsl


def test_discussion_cpe_dsl(run_once):
    result = run_once(discussion_cpe_dsl.run)
    print()
    print(result.table().render())
    # Paper: ~650 Mbps to a window-mounted CPE; ~39 Mbps per house beats
    # the 24 Mbps US DSL average.
    assert 400e6 <= result.window_throughput_bps <= 800e6
    assert result.comparison.replaces_dsl
    assert 25e6 <= result.comparison.per_house_bps <= 60e6
    # Placement matters: 'favorable locations (e.g., near windows)'.
    assert result.window_placement_matters
