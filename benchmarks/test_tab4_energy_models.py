"""Tab. 4 benchmark: energy of the four power-management models."""

from repro.experiments import tab4_energy_models


def test_tab4_energy_models(run_once):
    result = run_once(tab4_energy_models.run)
    print()
    print(result.table().render())
    e = result.energy_j
    # Web: light bursty traffic — NSA wastes energy vs LTE; the dynamic
    # switch recovers essentially the LTE cost (paper: 24.8% saving).
    assert e[("NR NSA", "Web")] > 1.2 * e[("LTE", "Web")]
    assert 0.15 <= result.saving_vs_nsa("Dyn. switch", "Web") <= 0.45
    # Video/File: heavy traffic — 5G's efficiency wins despite its power.
    for workload in ("Video", "File"):
        assert e[("NR NSA", workload)] < e[("LTE", workload)]
    # Oracle sleep only trims 11-16%: the hardware, not the protocol,
    # sets the floor (we allow up to 25%).
    for workload in ("Web", "Video", "File"):
        assert 0.05 <= result.saving_vs_nsa("NR Oracle", workload) <= 0.28, workload
    # Dynamic switching beats NR NSA on every workload.
    for workload in ("Web", "Video", "File"):
        assert e[("Dyn. switch", workload)] < e[("NR NSA", workload)]
