"""Fig. 2 benchmark: coverage map and single-cell bit-rate contour."""

from repro.experiments import fig2_coverage_map


def test_fig2_coverage_map(run_once):
    result = run_once(fig2_coverage_map.run)
    print()
    print(result.table().render())
    print(f"LoS service radius: 5G {result.coverage_radius_m:.0f} m, "
          f"4G {result.lte_coverage_radius_m:.0f} m")
    # Contour: bit-rate decays monotonically with distance from the cell.
    rates = result.contour_rates_mbps
    assert all(a >= b for a, b in zip(rates, rates[1:]))
    assert rates[0] > 300.0  # near the cell: hundreds of Mbps
    assert rates[-1] < 100.0  # cell edge: service fading out
    # Paper: gNB radius ~230 m vs eNB ~520 m; shape = 5G much smaller.
    assert result.coverage_radius_m < 0.7 * result.lte_coverage_radius_m
