"""Tab. 1 benchmark: basic physical info of the two networks."""

from repro.experiments import tab1_physical_info


def test_tab1_physical_info(run_once):
    result = run_once(tab1_physical_info.run)
    print()
    print(result.table().render())
    # Paper: 13 NR cells vs 34 LTE cells; mean RSRP ~ -84 dBm on both.
    assert result.nr_cells == 13
    assert result.lte_cells == 34
    assert -90.0 <= result.nr_rsrp.mean <= -78.0
    assert -90.0 <= result.lte_rsrp.mean <= -78.0
    # 5G RSRP spreads wider than 4G (paper: +-11.72 vs +-8.72 dB).
    assert result.nr_rsrp.std > result.lte_rsrp.std
