"""Benchmark: the measurement-event mix of Sec. 3.4."""

from repro.experiments import sec34_event_mix
from repro.mobility.events import EventType


def test_sec34_event_mix(run_once):
    result = run_once(sec34_event_mix.run)
    print()
    print(result.table().render())
    # The paper's structure: A1 (stop-measuring) is the most common event,
    # A3 dominates the intra-RAT hand-off triggers, A2/B2 are rare.
    assert result.fraction(EventType.A1) > 0.5
    assert result.a3_dominates_intra_rat_triggers
    assert result.fraction(EventType.A2) < 0.08
    assert result.fraction(EventType.B2) < 0.03
    assert result.total > 0
