"""Fig. 12 benchmark: TCP throughput collapse across hand-offs."""

from repro.experiments import fig12_ho_throughput
from repro.mobility.handoff import HandoffKind


def test_fig12_ho_throughput(run_once):
    result = run_once(fig12_ho_throughput.run)
    print()
    print(result.table().render())
    lte = result.mean_drop(HandoffKind.LTE_TO_LTE)
    nr = result.mean_drop(HandoffKind.NR_TO_NR)
    vertical = result.mean_drop(HandoffKind.NR_TO_LTE)
    # Paper: 20.10% (4G-4G) < 73.15% (5G-5G) < 83.04% (5G-4G).
    assert lte < 0.35
    assert nr > 1.8 * lte
    assert vertical > nr
    assert vertical > 0.5
