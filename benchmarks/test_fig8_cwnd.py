"""Fig. 8 benchmark: Cubic vs BBR congestion-window evolution over 5G."""

from repro.experiments import fig8_cwnd


def test_fig8_cwnd(run_once):
    result = run_once(fig8_cwnd.run)
    cubic = result.mean_cwnd(result.cubic_trace, 10.0) / 1448
    bbr = result.mean_cwnd(result.bbr_trace, 10.0) / 1448
    print()
    print(f"mean cwnd after slow-start: cubic {cubic:.0f} segs, bbr {bbr:.0f} segs; "
          f"cubic fast-retransmits: {result.cubic_fast_retransmits}")
    # BBR's window dwarfs Cubic's, which never holds altitude (Fig. 8).
    assert result.bbr_holds_higher_window
    # Cubic keeps getting knocked down by loss events.
    assert result.cubic_fast_retransmits >= 5
