"""Fig. 19 benchmark: 5.7K throughput fluctuation, static vs dynamic."""

from repro.experiments import fig19_video_fluctuation


def test_fig19_video_fluctuation(run_once):
    result = run_once(fig19_video_fluctuation.run)
    static_cv = result.fluctuation(result.static_trace_mbps)
    dynamic_cv = result.fluctuation(result.dynamic_trace_mbps)
    print()
    print(f"throughput CV: static {static_cv:.3f}, dynamic {dynamic_cv:.3f}; "
          f"freezes: static {result.static_freezes}, dynamic {result.dynamic_freezes}")
    # Dynamic scenes fluctuate visibly more than static ones.
    assert result.dynamic_fluctuates_more
    # Freezing is a dynamic-scene phenomenon (paper observed 6 events).
    assert result.dynamic_freezes >= result.static_freezes
