"""Fig. 4 benchmark: RSRQ evolution across one 5G-5G hand-off."""

from repro.experiments import fig4_handoff_rsrq


def test_fig4_handoff_rsrq(run_once):
    result = run_once(fig4_handoff_rsrq.run)
    print()
    print(f"hand-off at {result.handoff_time_s:.1f}s: "
          f"PCI {result.source_pci} -> {result.target_pci}, "
          f"{len(result.times_s)} trace samples, "
          f"{len(result.neighbor_rsrq_db)} neighbours tracked")
    assert result.source_pci != result.target_pci
    assert len(result.times_s) > 20
    assert result.neighbor_rsrq_db
    # RSRQ values live in the plausible reporting range.
    assert all(-45.0 <= v <= 5.0 for v in result.serving_rsrq_db)
