"""Fig. 5 benchmark: RSRQ gain distribution across hand-offs."""

from repro.experiments import fig5_rsrq_gap
from repro.mobility.handoff import HandoffKind


def test_fig5_rsrq_gap(run_once):
    result = run_once(fig5_rsrq_gap.run)
    print()
    print(result.table().render())
    # Paper: only ~75% of hand-offs gain >3 dB despite the 3 dB trigger.
    assert 0.55 <= result.overall_fraction_above_3db < 1.0
    # Horizontal hand-offs mostly pay off...
    assert result.fraction_above_3db[HandoffKind.LTE_TO_LTE] >= 0.6
    # ...while 4G->5G re-additions are the least rewarding kind (61% in
    # the paper, the lowest of the four).
    if HandoffKind.LTE_TO_NR in result.fraction_above_3db:
        assert result.fraction_above_3db[HandoffKind.LTE_TO_NR] == min(
            result.fraction_above_3db.values()
        )
