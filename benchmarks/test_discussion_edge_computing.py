"""Discussion benchmark: mobile edge computing (Sec. 8)."""

from repro.experiments import discussion_edge_computing


def test_discussion_edge_computing(run_once):
    result = run_once(discussion_edge_computing.run)
    print()
    print(result.table().render())
    # Only the edge deployment meets the 10 ms one-way interactive budget
    # the wide-area NSA paths miss (Sec. 4.4).
    assert result.meets_urllc_budget
    assert all(rtt / 2 > 10.0 for d, rtt in result.cloud_rtt_ms.items() if d >= 30.0)
    # Edge also speeds up short web flows (less slow-start latency).
    assert result.edge_plt_s < result.cloud_plt_s
