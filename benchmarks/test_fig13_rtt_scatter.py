"""Fig. 13 benchmark: end-to-end RTT over 80 nationwide paths."""

from repro.experiments import fig13_rtt_scatter


def test_fig13_rtt_scatter(run_once):
    result = run_once(fig13_rtt_scatter.run)
    print()
    print(result.table().render())
    # Paper: 5G trims 22.3 ms off the RTT but mean one-way latency is
    # still ~21.8 ms — far above the 10 ms interactive budget.
    assert 16.0 <= result.mean_gap_ms <= 28.0
    assert result.mean_nr_latency_ms > 10.0
    assert 15.0 <= result.mean_nr_latency_ms <= 35.0
    # Every path: 5G RTT below its paired 4G RTT.
    assert all(n < l for n, l in zip(result.nr_rtts_ms, result.lte_rtts_ms))
