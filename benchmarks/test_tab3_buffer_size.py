"""Tab. 3 benchmark: in-network buffer estimation."""

from repro.experiments import tab3_buffer_size


def test_tab3_buffer_size(run_once):
    result = run_once(tab3_buffer_size.run)
    print()
    print(result.table().render())
    # Paper ratios: RAN 2586/468 ~ 5.5x; wired 26724/10539 ~ 2.5x.
    assert 4.0 <= result.ratio("ran") <= 7.0
    assert 1.8 <= result.ratio("wired") <= 3.2
    # The wired segment dominates the whole-path buffer on both networks.
    for network in ("4G", "5G"):
        assert result.wired_packets[network] > result.ran_packets[network]
    # The structural mismatch: capacity grew ~5x but the whole-path buffer
    # grew well under 4x.
    assert result.ratio("whole") < 4.0
