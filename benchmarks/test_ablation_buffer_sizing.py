"""Ablation benchmark: wired buffer sizing vs the TCP anomaly (Sec. 4.2)."""

from repro.experiments import ablation_buffer_sizing


def test_ablation_buffer_sizing(run_once):
    result = run_once(ablation_buffer_sizing.run)
    print()
    print(result.table().render())
    # The paper's remedy (i): roughly doubling the wired buffers restores
    # a healthy share of Cubic's utilization.
    assert result.doubling_helps
    # Utilization grows monotonically with buffer size.
    utils = [result.cubic_utilization[m] for m in ablation_buffer_sizing.BUFFER_MULTIPLIERS]
    assert utils == sorted(utils)
    # Remedy (ii): BBR already achieves the 4x-buffer level without any
    # infrastructure change.
    assert result.bbr_utilization_at_1x > 0.7
