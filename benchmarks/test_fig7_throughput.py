"""Fig. 7 benchmark: UDP baselines and the TCP utilization anomaly."""

from repro.experiments import fig7_throughput


def test_fig7_throughput(run_once):
    result = run_once(fig7_throughput.run)
    print()
    print(result.table().render())
    # UDP baselines (paper): 5G DL 880 day / 900 night; 4G 130 day / 200 night.
    assert 700e6 <= result.udp_baselines_bps[("5G", "day")] <= 1000e6
    assert 100e6 <= result.udp_baselines_bps[("4G", "day")] <= 160e6
    assert result.udp_baselines_bps[("4G", "night")] > 1.3 * result.udp_baselines_bps[("4G", "day")]

    util = result.utilization
    # The anomaly: loss/delay-based algorithms under-utilize 5G (<40%)...
    for alg in ("reno", "cubic", "vegas", "veno"):
        assert util[("5G", alg)] < 0.40, alg
    # ...while BBR rides it out (paper: 82.5%).
    assert util[("5G", "bbr")] > 0.70
    # Vegas is the worst performer on 5G (paper: 12.1%).
    assert util[("5G", "vegas")] == min(
        util[("5G", alg)] for alg in ("reno", "cubic", "vegas", "veno")
    )
    # 4G behaves far more reasonably for the loss-based algorithms.
    assert util[("4G", "cubic")] > 1.5 * util[("5G", "cubic")]
    assert util[("4G", "bbr")] > 0.65
