"""Benchmark configuration.

Each benchmark runs its experiment exactly once (``pedantic`` with one
round): the experiments are deterministic simulations, so repetition
only buys wall-clock pain.  Every benchmark also asserts the paper's
qualitative shape, making the suite double as an end-to-end regression
harness for the reproduction.
"""

import pytest


@pytest.fixture()
def run_once(benchmark):
    """Run ``fn`` once under the benchmark timer and return its result."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
