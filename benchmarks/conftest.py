"""Benchmark configuration.

Each benchmark runs its experiment exactly once (``pedantic`` with one
round): the experiments are deterministic simulations, so repetition
only buys wall-clock pain.  Every benchmark also asserts the paper's
qualitative shape, making the suite double as an end-to-end regression
harness for the reproduction.

Set ``REPRO_BENCH_CACHE=1`` to opt the suite into the campaign runner's
shared on-disk result cache (``.repro_cache/``, or ``$REPRO_CACHE_DIR``):
cache misses are executed under the benchmark timer and stored; hits are
returned without re-running the simulation, so a cached pass only checks
the assertions.  The cache key includes the experiment's kwargs and the
package source hash, so edited code or changed parameters always re-run.
"""

import os

import pytest

from repro.experiments.common import DEFAULT_SEED
from repro.runner import ResultCache, instrumented_call


def _bench_cache() -> ResultCache | None:
    if os.environ.get("REPRO_BENCH_CACHE", "") in ("", "0"):
        return None
    return ResultCache()


@pytest.fixture()
def run_once(benchmark):
    """Run ``fn`` once under the benchmark timer and return its result."""

    def _run(fn, *args, **kwargs):
        cache = _bench_cache()
        if cache is None:
            return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

        name = f"bench--{fn.__module__}.{fn.__qualname__}"
        seed = kwargs.get("seed", DEFAULT_SEED)
        extra = repr((args, sorted(kwargs.items())))
        hit = cache.load(name, seed, extra=extra)
        if hit is not None:
            return benchmark.pedantic(lambda: hit.result, rounds=1, iterations=1)

        captured = {}

        def timed():
            result, record = instrumented_call(name, seed, lambda: fn(*args, **kwargs))
            captured["record"] = record
            return result

        result = benchmark.pedantic(timed, rounds=1, iterations=1)
        cache.store(name, seed, result, captured["record"], extra=extra)
        return result

    return _run
