"""Topology generation stays cheap: a district-scale map in under 2 s.

Times :func:`repro.topology.generate_world` on the largest committed
preset (``urban-canyon``: 1.5 x 1.5 km, split-segment road grid, full
urban-canyon building stock, road-following 5G plus co-sited 4G) and on
a deliberately oversized 3 x 3 km stress district.  Generation is pure
Python over numpy draws and measures in single-digit milliseconds; the
2 s budget is the contract that keeps world building negligible next to
the surveys it feeds (ROADMAP item 4's acceptance bar).

Run with plain ``pytest benchmarks/test_topology_gen.py -s`` (this test
times itself and does not use the pytest-benchmark fixture).
"""

import time

from repro.scenario import preset
from repro.scenario.core import TopologySection
from repro.topology import generate_world

#: Wall-clock budget per generated district.
BUDGET_S = 2.0

#: Stress district: 9 km^2, denser road pitch than any committed preset.
STRESS_SECTION = TopologySection(
    generator="grid",
    width_m=3000.0,
    height_m=3000.0,
    road_pitch_m=120.0,
    road_jitter_ratio=0.15,
    density_class="urban-canyon",
    site_policy="road-following",
    gnb_site_count=40,
    enb_site_count=50,
)


def _time_generation(section) -> float:
    start = time.perf_counter()
    world = generate_world(7, section)
    elapsed_s = time.perf_counter() - start
    assert world.roads and world.gnb_sites
    assert world.road_graph.is_connected()
    return elapsed_s


def test_urban_canyon_preset_generates_under_budget():
    elapsed_s = _time_generation(preset("urban-canyon").topology)
    print(f"\nurban-canyon generation: {elapsed_s * 1e3:.1f} ms")
    assert elapsed_s < BUDGET_S


def test_stress_district_generates_under_budget():
    elapsed_s = _time_generation(STRESS_SECTION)
    print(f"\n3x3 km stress district generation: {elapsed_s * 1e3:.1f} ms")
    assert elapsed_s < BUDGET_S
