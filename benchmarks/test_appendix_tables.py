"""Benchmark: the appendix tables (Tab. 5/6/7) stay in sync with the code."""

from repro.experiments import appendix_tables


def test_appendix_tables(run_once):
    result = run_once(appendix_tables.run)
    print()
    print(result.tab5().render())
    print()
    print(result.tab7().render())
    # Tab. 6 distances recompute within ~20 km of the paper's values for
    # every server except Suzhou, whose published 638.00 km is inconsistent
    # with its own coordinates (the haversine distance is ~1026 km) — an
    # erratum in the original table that the cross-check surfaces.
    from repro.net.servers import SPEEDTEST_SERVERS

    errors = {
        s.city: abs(s.distance_km - s.recomputed_distance_km())
        for s in SPEEDTEST_SERVERS
    }
    suzhou = errors.pop("Suzhou")
    assert suzhou > 300.0  # the documented erratum
    assert max(errors.values()) < 20.0
