"""Fig. 22 benchmark: energy per bit under saturated traffic."""

from repro.experiments import fig22_energy_per_bit


def test_fig22_energy_per_bit(run_once):
    result = run_once(fig22_energy_per_bit.run)
    print()
    print(result.table().render())
    # Paper: 5G's energy-per-bit is ~1/4 of 4G's once the pipe is full.
    for t in (10.0, 30.0, 50.0):
        assert 0.15 <= result.ratio_at(t) <= 0.45
    # Efficiency improves with transfer duration (overhead amortizes).
    assert result.efficiency_improves_with_duration
