"""Tracing overhead benchmark: the disabled path must stay (nearly) free.

Two measurements:

* the dispatch loop with tracing disabled vs. a local replica of the
  uninstrumented seed loop — the only addition is one ``tracer.enabled``
  check per ``run()`` call, so the ratio must stay under 3%;
* a reduced fig7 campaign with tracing enabled vs. disabled — enabled
  tracing records millions of events, so it is allowed to cost real time,
  but it must not change the result and must stay within a loose bound.

Run with plain ``pytest benchmarks/test_trace_overhead.py -s`` (these
tests time themselves and do not use the pytest-benchmark fixture).
"""

import heapq
import time

from repro.experiments import fig7_throughput
from repro.net.sim import Simulator
from repro.trace import Tracer, tracing

#: Replica's own module global, so the counter increment compiles to the
#: same LOAD_GLOBAL/STORE_GLOBAL bytecode as the seed loop's.
_replica_executed = 0


def _seed_loop(sim, until=None):
    """Verbatim replica of the pre-tracing ``Simulator.run`` hot loop."""
    global _replica_executed
    heap = sim._heap
    while heap:
        event = heap[0]
        if until is not None and event.time > until:
            break
        heapq.heappop(heap)
        if event.cancelled:
            continue
        event.sim = None
        sim._pending -= 1
        sim.events_executed += 1
        _replica_executed += 1
        sim.now = event.time
        event.callback(*event.args)
    if until is not None and sim.now < until:
        sim.now = until


def _noop():
    pass


def _filled_simulator(num_events):
    sim = Simulator()
    for i in range(num_events):
        sim.schedule(i * 1e-6, _noop)
    return sim


def _min_time(fn, rounds):
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_disabled_path_overhead_vs_seed_loop():
    num_events, rounds = 100_000, 5
    # Interleave the two variants so clock drift hits both equally; time
    # only the drain, not the heap construction.
    real_times, replica_times = [], []
    for _ in range(rounds):
        sim = _filled_simulator(num_events)
        real_times.append(_min_time(sim.run, 1))
        sim = _filled_simulator(num_events)
        replica_times.append(_min_time(lambda: _seed_loop(sim), 1))
    real, replica = min(real_times), min(replica_times)
    ratio = real / replica
    rate = num_events / real / 1e6
    print(f"\ndisabled-path dispatch: {rate:.2f} M events/s, "
          f"vs seed loop x{ratio:.3f}")
    assert ratio < 1.03, (
        f"disabled tracing costs {(ratio - 1) * 100:.1f}% over the seed loop"
    )


def test_fig7_reduced_traced_vs_untraced():
    kwargs = dict(seed=7, duration_s=6.0, algorithms=("cubic", "bbr"), repeats=1)

    started = time.perf_counter()
    plain = fig7_throughput.run(**kwargs)
    untraced_s = time.perf_counter() - started

    started = time.perf_counter()
    with tracing(Tracer()) as tracer:
        traced = fig7_throughput.run(**kwargs)
    traced_s = time.perf_counter() - started

    stats = tracer.stats()
    print(f"\nfig7 (reduced): untraced {untraced_s:.2f}s, traced {traced_s:.2f}s "
          f"(x{traced_s / untraced_s:.2f}), {stats.emitted} records emitted")
    # Tracing must never perturb the physics.
    assert traced.udp_baselines_bps == plain.udp_baselines_bps
    assert traced.utilization == plain.utilization
    # The enabled path records per-ACK counters and per-dispatch spans, so
    # it costs real time; 3x is the loose alarm threshold.
    assert traced_s < 3.0 * untraced_s
    assert stats.spans > 0 and stats.counter_samples > 0
