"""Fig. 17 benchmark: PLT versus image page size."""

from repro.experiments import fig17_plt_images
from repro.experiments.fig17_plt_images import IMAGE_SIZES_MB


def test_fig17_plt_images(run_once):
    result = run_once(fig17_plt_images.run)
    print()
    print(result.table().render())
    # PLT grows with page size on both networks.
    for network in ("4G", "5G"):
        totals = [result.total_s(size, network) for size in IMAGE_SIZES_MB]
        assert all(a < b for a, b in zip(totals, totals[1:]))
    # The network gap widens with size (bigger pages exercise capacity).
    assert result.gap_grows_with_size
    # But even at 16 MB the 5G PLT is dominated by non-network time.
    p5 = result.plts[(16.0, "5G")]
    assert p5.render_s > 0.5 * p5.download_s
