"""Fig. 16 benchmark: page load time by website category."""

from repro.experiments import fig16_plt_sites


def test_fig16_plt_sites(run_once):
    result = run_once(fig16_plt_sites.run)
    print()
    print(result.table().render())
    print(f"total PLT reduction {result.total_plt_reduction:.1%}, "
          f"download-only {result.download_reduction:.1%}")
    # Despite 5x the bandwidth, total PLT improves only marginally
    # (paper: ~5%; we allow up to 30%), far less than the capacity ratio.
    assert 0.0 <= result.total_plt_reduction <= 0.30
    # The download phase improves more than the total (paper: 20.7%).
    assert result.download_reduction > result.total_plt_reduction
    # Rendering dominates the heavyweight categories on 5G.
    assert result.rendering_fraction("map", "5G") > 0.5
