"""Fig. 23 benchmark: the 5G energy-management showcase."""

from repro.experiments import fig23_energy_timeline


def test_fig23_energy_timeline(run_once):
    result = run_once(fig23_energy_timeline.run)
    print()
    print(f"web-session energy: 4G {result.lte_energy_j:.1f} J, "
          f"5G {result.nr_energy_j:.1f} J (ratio {result.nr_over_lte_energy:.2f}); "
          f"tails: 4G {result.lte_tail_duration_s:.1f} s, "
          f"5G {result.nr_tail_duration_s:.1f} s")
    # Paper: the same web sessions cost ~1.67x more on 5G, and the NSA
    # tail (~20 s) is roughly double the 4G tail (~10 s).
    assert result.nr_over_lte_energy > 1.3
    assert 8.0 <= result.lte_tail_duration_s <= 13.0
    assert 18.0 <= result.nr_tail_duration_s <= 24.0
    assert result.nr_tail_duration_s > 1.6 * result.lte_tail_duration_s
    # The sampled traces show the jagged load/DRX alternation.
    powers = [s.power_w for s in result.nr_samples]
    assert max(powers) > 2.0 * min(p for p in powers if p > 0)
