"""Fig. 9 benchmark: UDP loss versus offered load."""

from repro.experiments import fig9_loss_rate


def test_fig9_loss_rate(run_once):
    result = run_once(fig9_loss_rate.run)
    print()
    print(result.table().render())
    nr = result.series("5G")
    # Loss grows monotonically with load on 5G.
    assert all(a <= b + 1e-6 for a, b in zip(nr, nr[1:]))
    # Paper: at 1/2 load, 5G already loses >3% — ~10x the 4G session.
    nr_half = result.loss_rates[("5G", 0.5)]
    lte_half = result.loss_rates[("4G", 0.5)]
    assert nr_half > 0.02
    assert nr_half > 5.0 * max(lte_half, 1e-4)
    # 4G stays essentially clean at low loads.
    assert result.loss_rates[("4G", 0.2)] < 0.005
