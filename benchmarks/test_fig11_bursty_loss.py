"""Fig. 11 benchmark: the bursty loss signature of 5G sessions."""

from repro.experiments import fig11_bursty_loss


def test_fig11_bursty_loss(run_once):
    result = run_once(fig11_bursty_loss.run)
    print()
    print(f"loss {result.loss_rate:.2%}, mean run {result.mean_run_length:.1f} pkts "
          f"(i.i.d. expectation {result.expected_random_mean_run:.2f}), "
          f"burst fraction {result.burst_fraction:.0%}")
    assert result.lost > 0
    # Losses are clustered far beyond what independent drops would give.
    assert result.mean_run_length > 3.0 * result.expected_random_mean_run
    # Most lost packets fall inside multi-packet bursts.
    assert result.burst_fraction > 0.7
