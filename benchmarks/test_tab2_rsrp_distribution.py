"""Tab. 2 benchmark: RSRP distribution and coverage holes."""

from repro.experiments import tab2_rsrp_distribution


def test_tab2_rsrp_distribution(run_once):
    result = run_once(tab2_rsrp_distribution.run)
    print()
    print(result.table().render())
    print(f"holes: 4G {result.lte_holes:.2%}  5G {result.nr_holes:.2%}  "
          f"4G(6 eNBs) {result.lte_anchor_holes:.2%}")
    # Paper: 5G holes 8.07%, 4G 1.77%, 4G-from-6-anchors 3.84%.
    assert 0.04 <= result.nr_holes <= 0.14
    assert result.lte_holes <= 0.04
    # Ordering: full 4G < 4G anchors-only < 5G.
    assert result.lte_holes < result.lte_anchor_holes < result.nr_holes
    # 5G's hole fraction is several-fold the 4G one.
    assert result.nr_holes > 3.0 * result.lte_holes
