"""Fig. 6 benchmark: hand-off latency by kind."""

from repro.experiments import fig6_handoff_latency
from repro.mobility.handoff import HandoffKind


def test_fig6_handoff_latency(run_once):
    result = run_once(fig6_handoff_latency.run)
    print()
    print(result.table().render())
    nr = result.mean_ms(HandoffKind.NR_TO_NR)
    lte = result.mean_ms(HandoffKind.LTE_TO_LTE)
    # Paper: 108.40 ms (5G-5G) vs 30.10 ms (4G-4G) vs 80.23 ms (4G-5G).
    assert 90.0 <= nr <= 130.0
    assert 24.0 <= lte <= 38.0
    assert 2.8 <= nr / lte <= 4.5  # the 3.6x NSA penalty
    if HandoffKind.LTE_TO_NR in result.latencies_ms:
        assert 60.0 <= result.mean_ms(HandoffKind.LTE_TO_NR) <= 100.0
