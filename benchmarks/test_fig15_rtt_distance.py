"""Fig. 15 benchmark: RTT versus geographical path length."""

from repro.experiments import fig15_rtt_distance


def test_fig15_rtt_distance(run_once):
    result = run_once(fig15_rtt_distance.run)
    print()
    print(result.table().render())
    # Paper: RTT grows ~5x from 100 km to 2500 km; reaches ~82 ms on 5G.
    assert 3.0 <= result.rtt_growth_factor() <= 7.0
    assert max(result.nr_rtts_ms) > 60.0
    # The 4G-5G gap is roughly constant (~22 ms) across distances...
    gaps = result.gaps_ms
    assert all(16.0 <= g <= 28.0 for g in gaps)
    # ...so its relative value shrinks as paths grow.
    assert result.relative_gaps[-1] < result.relative_gaps[0]
