"""Audit overhead benchmark: conservation ledgers must be near-free.

Two measurements, mirroring ``test_trace_overhead``:

* the dispatch loop with auditing disabled vs. a local replica of the
  uninstrumented seed loop — with no auditor installed the only addition
  is one ``auditor.enabled`` check per ``run()`` call, so the ratio must
  stay under 3%;
* fig11 (the UDP bursty-loss sweep, the audit-heaviest catalogue entry:
  ~30 link ledgers and ~100k idle-path checks per run) audited vs.
  unaudited — the enabled path registers watches and flags violations
  inline, so it may cost real time, but the books must balance at the
  checkpoint, the result must stay byte-identical, and the wall-clock
  ratio must stay under the 10% guard.

Run with plain ``pytest benchmarks/test_audit_overhead.py -s`` (these
tests time themselves and do not use the pytest-benchmark fixture).
"""

import heapq
import pickle
import time

from repro.audit import Auditor, auditing
from repro.experiments import fig11_bursty_loss
from repro.net.sim import Simulator

#: Replica's own module global, so the counter increment compiles to the
#: same LOAD_GLOBAL/STORE_GLOBAL bytecode as the seed loop's.
_replica_executed = 0


def _seed_loop(sim, until=None):
    """Verbatim replica of the pre-instrumentation ``Simulator.run`` loop."""
    global _replica_executed
    heap = sim._heap
    while heap:
        event = heap[0]
        if until is not None and event.time > until:
            break
        heapq.heappop(heap)
        if event.cancelled:
            continue
        event.sim = None
        sim._pending -= 1
        sim.events_executed += 1
        _replica_executed += 1
        sim.now = event.time
        event.callback(*event.args)
    if until is not None and sim.now < until:
        sim.now = until


def _noop():
    pass


def _filled_simulator(num_events):
    sim = Simulator()
    for i in range(num_events):
        sim.schedule(i * 1e-6, _noop)
    return sim


def test_disabled_path_overhead_vs_seed_loop():
    num_events, rounds = 100_000, 5
    # Interleave the two variants so clock drift hits both equally; time
    # only the drain, not the heap construction.
    real_times, replica_times = [], []
    for _ in range(rounds):
        sim = _filled_simulator(num_events)
        started = time.perf_counter()
        sim.run()
        real_times.append(time.perf_counter() - started)
        sim = _filled_simulator(num_events)
        started = time.perf_counter()
        _seed_loop(sim)
        replica_times.append(time.perf_counter() - started)
    real, replica = min(real_times), min(replica_times)
    ratio = real / replica
    rate = num_events / real / 1e6
    print(f"\ndisabled-path dispatch: {rate:.2f} M events/s, "
          f"vs seed loop x{ratio:.3f}")
    assert ratio < 1.03, (
        f"disabled auditing costs {(ratio - 1) * 100:.1f}% over the seed loop"
    )


def test_fig11_audited_vs_unaudited():
    rounds = 5
    fig11_bursty_loss.run(7)  # warm caches before timing anything

    unaudited_times, audited_times = [], []
    plain = audited = None
    checkpoint_auditor = None
    for _ in range(rounds):
        started = time.perf_counter()
        plain = fig11_bursty_loss.run(7)
        unaudited_times.append(time.perf_counter() - started)

        started = time.perf_counter()
        with auditing(Auditor()) as auditor:
            audited = fig11_bursty_loss.run(7)
            auditor.checkpoint("bench-end")
        audited_times.append(time.perf_counter() - started)
        checkpoint_auditor = auditor

    unaudited_s, audited_s = min(unaudited_times), min(audited_times)
    ratio = audited_s / unaudited_s
    stats = checkpoint_auditor.stats()
    print(f"\nfig11: unaudited {unaudited_s:.2f}s, audited {audited_s:.2f}s "
          f"(x{ratio:.2f}), {stats.checks} checks, "
          f"{len(checkpoint_auditor.ledger_totals())} ledgers")
    # Auditing must never perturb the physics.
    assert pickle.dumps(audited) == pickle.dumps(plain)
    # ...and the books must actually balance (the bench doubles as an
    # end-to-end conservation regression for the hottest experiment).
    assert checkpoint_auditor.violation_count == 0
    assert stats.checks > 0
    assert any(
        name.startswith("audit.link.")
        for name in checkpoint_auditor.ledger_totals()
    )
    # Ledgers are watch closures evaluated at checkpoints plus inline
    # flag-on-violation guards on the hot paths, so the enabled run must
    # stay within 10% of the unaudited one (min-of-rounds on both sides
    # to suppress scheduler noise).
    assert ratio < 1.10, (
        f"enabled auditing costs {(ratio - 1) * 100:.1f}% over an unaudited run"
    )
