"""Tests for the drive-test workflow and the dataset release builder."""


import pytest

from repro.analysis import DatasetRelease, DriveTester
from repro.analysis.dataset import read_csv, read_json
from repro.core import NR_PROFILE
from repro.energy import WEB_CAPACITIES, simulate_lte, web_browsing_trace
from repro.experiments import testbed as make_testbed
from repro.mobility import RouteWalker
from repro.net import PathConfig
from repro.radio.coverage import road_locations, survey_at_locations
from repro.transport import run_tcp, run_udp


@pytest.fixture(scope="module")
def drive_result():
    bed = make_testbed(seed=13)
    walker = RouteWalker(bed.campus, bed.rng_factory.stream("dt-walk"))
    tester = DriveTester(bed.nr, bed.lte, walker, bed.rng_factory.stream("dt"))
    return tester.run(duration_s=30.0, report_interval_s=0.5)


class TestDriveTester:
    def test_both_networks_logged(self, drive_result):
        assert drive_result.kpi_count("5G") == drive_result.kpi_count("4G")
        assert drive_result.kpi_count() == drive_result.kpi_count("5G") * 2

    def test_sample_rate(self, drive_result):
        # 30 s at 0.5 s intervals: 61 reports per network.
        assert drive_result.kpi_count("5G") == 61

    def test_kpis_plausible(self, drive_result):
        for sample in drive_result.kpis.samples("5G"):
            assert -140.0 <= sample.rsrp_dbm <= -30.0
            assert 0 <= sample.cqi <= 15
            assert sample.prb_granted <= NR_PROFILE.num_prb
            assert sample.bit_rate_bps >= 0

    def test_handoff_log_attached(self, drive_result):
        assert drive_result.handoffs is not None

    def test_validation(self):
        bed = make_testbed(seed=13)
        walker = RouteWalker(bed.campus, bed.rng_factory.stream("dt2"))
        tester = DriveTester(bed.nr, bed.lte, walker, bed.rng_factory.stream("dt2r"))
        with pytest.raises(ValueError):
            tester.run(duration_s=0.0)


class TestDatasetRelease:
    def test_full_release_roundtrip(self, tmp_path, drive_result):
        bed = make_testbed(seed=13)
        release = DatasetRelease("unit_test_release")
        locations = road_locations(bed.campus, 30, bed.rng_factory.stream("rel"))
        points = survey_at_locations(bed.nr, locations)
        release.add_coverage_survey("survey", points)
        release.add_drive_test("walk", drive_result)

        config = PathConfig(profile=NR_PROFILE, scale=0.02)
        capacity = config.access_rate_bps() * config.scale
        release.add_tcp_run("tcp", run_tcp(config, "cubic", duration_s=3.0, seed=1,
                                           baseline_bps=capacity))
        release.add_udp_run("udp", run_udp(config, capacity * 0.5, duration_s=2.0, seed=1))
        release.add_energy_timeline("web", simulate_lte(web_browsing_trace(num_pages=2, rng=bed.rng_factory.stream("web")),
                                                        WEB_CAPACITIES))

        root = release.write(tmp_path)
        manifest = read_json(root / "MANIFEST.json")
        assert manifest["name"] == "unit_test_release"
        for filename, meta in manifest["files"].items():
            if meta.get("rows") == 0:
                continue  # empty traces are manifest-only
            assert (root / filename).exists()
            if meta["kind"] == "csv":
                assert len(read_csv(root / filename)) == meta.get("rows")

        survey_rows = read_csv(root / "coverage_survey.csv")
        assert len(survey_rows) == 30
        assert {"x_m", "y_m", "pci", "rsrp_dbm"} <= set(survey_rows[0])

    def test_empty_release_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DatasetRelease("empty").write(tmp_path)

    def test_unnamed_release_rejected(self):
        with pytest.raises(ValueError):
            DatasetRelease("")

    def test_tcp_json_fields(self, tmp_path):
        config = PathConfig(profile=NR_PROFILE, scale=0.02)
        capacity = config.access_rate_bps() * config.scale
        release = DatasetRelease("tcp_only")
        release.add_tcp_run("x", run_tcp(config, "bbr", duration_s=2.0, seed=1,
                                         baseline_bps=capacity))
        root = release.write(tmp_path)
        payload = read_json(root / "tcp_x.json")
        assert payload["algorithm"] == "bbr"
        assert payload["throughput_bps"] > 0
